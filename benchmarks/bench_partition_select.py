"""Perf harness for the partition-selection hot path.

Times every stage of one TD-AC pass — reference run, truth-vector
build, pairwise distance matrix, k-sweep, per-block runs — and emits the
result as ``BENCH_partition_select.json`` so future PRs have a wall-time
trajectory to regress against.  The *partition-selection stage* (what
Algorithm 1 adds on top of one base run: vector build + distances +
sweep) is reported separately; that is the quantity TD-AC's efficiency
claim over the Bell-number brute force rests on.

Two entry points:

* standalone — ``python benchmarks/bench_partition_select.py --config
  smoke`` (the ``make bench-smoke`` target); ``--baseline FILE`` merges
  an externally measured record (e.g. from a pre-optimization commit)
  into the emitted JSON and reports the speedup;
* pytest — collected with the rest of the bench suite, runs the smoke
  config and asserts the JSON artefact is produced.

Stage timings are min-of-``--repeat`` to damp scheduler noise.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.algorithms import Accu
from repro.core import TDAC, build_truth_vectors, run_blocks

CONFIGS = {
    # The smallest config: fast enough for `make bench-smoke` / CI.
    "smoke": {"dataset": "DS2", "scale": 0.05},
    # The largest config of bench_ablation_scaling.py, the reference
    # point for cross-PR perf comparisons.
    "scaling-largest": {"dataset": "DS2", "scale": 0.4},
}

DEFAULT_OUTPUT = Path(__file__).resolve().parents[1] / "BENCH_partition_select.json"


def measure(
    dataset_name: str,
    scale: float,
    seed: int = 0,
    n_jobs: int = 1,
    backend: str = "threads",
    sparse: str | bool = "auto",
    repeat: int = 3,
) -> dict:
    """Stage wall times (seconds, min over ``repeat`` runs) for one config."""
    from repro.datasets import load

    best: dict[str, float] = {}
    partition = None
    for _ in range(max(repeat, 1)):
        dataset = load(dataset_name, scale=scale)
        tdac = TDAC(
            Accu(), seed=seed, n_jobs=n_jobs, backend=backend, sparse=sparse
        )

        start = time.perf_counter()
        reference = tdac.reference_algorithm.discover(dataset)
        stage_reference = time.perf_counter() - start

        start = time.perf_counter()
        vectors = build_truth_vectors(dataset, reference)
        stage_vectors = time.perf_counter() - start

        start = time.perf_counter()
        tdac.pairwise_distances(vectors)
        stage_distance = time.perf_counter() - start

        start = time.perf_counter()
        partition, _ = tdac.select_partition(vectors)
        stage_sweep = time.perf_counter() - start

        start = time.perf_counter()
        run_blocks(tdac.base, dataset, partition, n_jobs=n_jobs, backend=backend)
        stage_blocks = time.perf_counter() - start

        stages = {
            "reference": stage_reference,
            "vector_build": stage_vectors,
            "distance_matrix": stage_distance,
            # select_partition recomputes the distances internally, so
            # the sweep stage covers distances + k-means grid + scoring.
            "sweep": stage_sweep,
            "block_runs": stage_blocks,
            "partition_select_stage": stage_vectors + stage_sweep,
            "total": stage_reference + stage_vectors + stage_sweep + stage_blocks,
        }
        for name, seconds in stages.items():
            best[name] = min(best.get(name, float("inf")), seconds)
    return {
        "dataset": dataset_name,
        "scale": scale,
        "seed": seed,
        "n_jobs": n_jobs,
        "backend": backend,
        "sparse": str(sparse),
        "repeat": repeat,
        "partition": str(partition),
        "stages_seconds": {k: round(v, 6) for k, v in best.items()},
    }


def build_report(
    config: str,
    repeat: int = 3,
    n_jobs: int = 1,
    backend: str = "threads",
    baseline: dict | None = None,
) -> dict:
    parameters = CONFIGS[config]
    record = measure(
        parameters["dataset"],
        parameters["scale"],
        n_jobs=n_jobs,
        backend=backend,
        repeat=repeat,
    )
    report = {"config": config, "optimized": record}
    if baseline is not None:
        report["baseline"] = baseline
        base_stage = baseline.get("stages_seconds", {}).get(
            "partition_select_stage"
        )
        new_stage = record["stages_seconds"]["partition_select_stage"]
        if base_stage:
            report["partition_select_speedup"] = round(base_stage / new_stage, 2)
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--config", choices=sorted(CONFIGS), default="smoke")
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT)
    parser.add_argument("--repeat", type=int, default=3)
    parser.add_argument("--n-jobs", type=int, default=1)
    parser.add_argument("--backend", choices=["threads", "processes"], default="threads")
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="JSON file with a pre-optimization measurement to merge",
    )
    args = parser.parse_args(argv)

    baseline = None
    if args.baseline is not None:
        baseline = json.loads(args.baseline.read_text())
    report = build_report(
        args.config,
        repeat=args.repeat,
        n_jobs=args.n_jobs,
        backend=args.backend,
        baseline=baseline,
    )
    args.output.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(json.dumps(report, indent=2, sort_keys=True))
    print(f"wrote {args.output}")
    return 0


def test_partition_select_bench(record_artifact, benchmark, tmp_path):
    """Bench-suite entry: smoke config must produce the JSON artefact."""
    from conftest import run_once

    output = tmp_path / "BENCH_partition_select.json"
    run_once(benchmark, main, ["--config", "smoke", "--repeat", "1", "--output", str(output)])
    assert output.is_file(), "bench failed to emit BENCH_partition_select.json"
    report = json.loads(output.read_text())
    stages = report["optimized"]["stages_seconds"]
    for stage in (
        "reference",
        "vector_build",
        "distance_matrix",
        "sweep",
        "block_runs",
        "partition_select_stage",
    ):
        assert stage in stages, stage
    record_artifact(
        "partition_select_bench", json.dumps(report, indent=2, sort_keys=True)
    )


if __name__ == "__main__":
    sys.exit(main())
