"""Perf harness for the partition-selection hot path.

Times every stage of one TD-AC pass — reference run, truth-vector
build, pairwise distance matrix, k-sweep, per-block runs — and emits the
result as ``BENCH_partition_select.json`` so future PRs have a wall-time
trajectory to regress against.  The *partition-selection stage* (what
Algorithm 1 adds on top of one base run: vector build + distances +
sweep) is reported separately; that is the quantity TD-AC's efficiency
claim over the Bell-number brute force rests on.

Two entry points:

* standalone — ``python benchmarks/bench_partition_select.py --config
  smoke`` (the ``make bench-smoke`` target); ``--baseline FILE`` merges
  an externally measured record (e.g. from a pre-optimization commit)
  into the emitted JSON and reports the speedup;
* pytest — collected with the rest of the bench suite, runs the smoke
  config and asserts the JSON artefact is produced.

Stage timings are min-of-``--repeat`` to damp scheduler noise.  Since
the observability layer landed, the stages come from the span tracer of
:mod:`repro.observability` — one traced ``TDAC.run`` per repeat instead
of ad-hoc ``perf_counter`` bookkeeping around hand-copied pipeline
fragments — while the emitted JSON keeps the same ``stages_seconds``
schema (``sweep`` still covers distances + k-means grid + scoring, and
``total`` is still the sum of the four top-level stages).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.algorithms import Accu
from repro.core import TDAC
from repro.observability import SpanTracer, activate

CONFIGS = {
    # The smallest config: fast enough for `make bench-smoke` / CI.
    "smoke": {"dataset": "DS2", "scale": 0.05},
    # The largest config of bench_ablation_scaling.py, the reference
    # point for cross-PR perf comparisons.
    "scaling-largest": {"dataset": "DS2", "scale": 0.4},
}

DEFAULT_OUTPUT = Path(__file__).resolve().parents[1] / "BENCH_partition_select.json"


def measure(
    dataset_name: str,
    scale: float,
    seed: int = 0,
    n_jobs: int = 1,
    backend: str = "threads",
    sparse: str | bool = "auto",
    repeat: int = 3,
) -> dict:
    """Stage wall times (seconds, min over ``repeat`` runs) for one config.

    Each repeat is one traced ``TDAC.run``; the per-stage numbers are
    read off the tracer's top-level spans, so the bench measures exactly
    the pipeline users run (and inherits its retry/fallback behaviour)
    instead of a hand-copied re-enactment.
    """
    from repro.datasets import load

    best: dict[str, float] = {}
    partition = None
    counters: dict[str, int] = {}
    for _ in range(max(repeat, 1)):
        dataset = load(dataset_name, scale=scale)
        tdac = TDAC(
            Accu(), seed=seed, n_jobs=n_jobs, backend=backend, sparse=sparse
        )
        tracer = SpanTracer()
        with activate(tracer):
            partition = tdac.run(dataset).partition
        spans = tracer.stage_seconds()
        counters = dict(tracer.counters)

        stage_reference = spans.get("reference", 0.0)
        stage_vectors = spans.get("truth_vectors", 0.0)
        stage_distance = spans.get("distance_matrix", 0.0)
        # Same aggregate the pre-tracer bench reported: the sweep stage
        # covers distances + k-means grid + silhouette scoring.
        stage_sweep = (
            stage_distance
            + spans.get("k_sweep", 0.0)
            + spans.get("silhouette_scoring", 0.0)
        )
        stage_blocks = spans.get("block_runs", 0.0)

        stages = {
            "reference": stage_reference,
            "vector_build": stage_vectors,
            "distance_matrix": stage_distance,
            "sweep": stage_sweep,
            "block_runs": stage_blocks,
            "merge": spans.get("merge", 0.0),
            "partition_select_stage": stage_vectors + stage_sweep,
            "total": stage_reference + stage_vectors + stage_sweep + stage_blocks,
        }
        for name, seconds in stages.items():
            best[name] = min(best.get(name, float("inf")), seconds)
    return {
        "dataset": dataset_name,
        "scale": scale,
        "seed": seed,
        "n_jobs": n_jobs,
        "backend": backend,
        "sparse": str(sparse),
        "repeat": repeat,
        "partition": str(partition),
        "stages_seconds": {k: round(v, 6) for k, v in best.items()},
        "counters": counters,
    }


def build_report(
    config: str,
    repeat: int = 3,
    n_jobs: int = 1,
    backend: str = "threads",
    baseline: dict | None = None,
) -> dict:
    parameters = CONFIGS[config]
    record = measure(
        parameters["dataset"],
        parameters["scale"],
        n_jobs=n_jobs,
        backend=backend,
        repeat=repeat,
    )
    report = {"config": config, "optimized": record}
    if baseline is not None:
        report["baseline"] = baseline
        base_stage = baseline.get("stages_seconds", {}).get(
            "partition_select_stage"
        )
        new_stage = record["stages_seconds"]["partition_select_stage"]
        if base_stage:
            report["partition_select_speedup"] = round(base_stage / new_stage, 2)
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--config", choices=sorted(CONFIGS), default="smoke")
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT)
    parser.add_argument("--repeat", type=int, default=3)
    parser.add_argument("--n-jobs", type=int, default=1)
    parser.add_argument("--backend", choices=["threads", "processes"], default="threads")
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="JSON file with a pre-optimization measurement to merge",
    )
    args = parser.parse_args(argv)

    baseline = None
    if args.baseline is not None:
        baseline = json.loads(args.baseline.read_text())
    report = build_report(
        args.config,
        repeat=args.repeat,
        n_jobs=args.n_jobs,
        backend=args.backend,
        baseline=baseline,
    )
    args.output.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(json.dumps(report, indent=2, sort_keys=True))
    print(f"wrote {args.output}")
    return 0


def test_partition_select_bench(record_artifact, benchmark, tmp_path):
    """Bench-suite entry: smoke config must produce the JSON artefact."""
    from conftest import run_once

    output = tmp_path / "BENCH_partition_select.json"
    run_once(benchmark, main, ["--config", "smoke", "--repeat", "1", "--output", str(output)])
    assert output.is_file(), "bench failed to emit BENCH_partition_select.json"
    report = json.loads(output.read_text())
    stages = report["optimized"]["stages_seconds"]
    for stage in (
        "reference",
        "vector_build",
        "distance_matrix",
        "sweep",
        "block_runs",
        "partition_select_stage",
    ):
        assert stage in stages, stage
    record_artifact(
        "partition_select_bench", json.dumps(report, indent=2, sort_keys=True)
    )


if __name__ == "__main__":
    sys.exit(main())
