"""A-4 — Ablation: parallel per-block execution (paper perspective ii).

Measures TD-AC wall time with sequential versus thread-pooled block
execution on the widest dataset (Exam 124, many blocks) and checks that
parallelism never changes the result.
"""

import time

from conftest import run_once

from repro.algorithms import TruthFinder
from repro.core import TDAC
from repro.datasets import load
from repro.evaluation import format_table


def test_parallel_blocks(record_artifact, benchmark):
    dataset = load("Semi 124 range 100")

    def sweep():
        rows = []
        outcomes = {}
        for n_jobs in (1, 4):
            tdac = TDAC(TruthFinder(), seed=0, n_jobs=n_jobs)
            start = time.perf_counter()
            outcomes[n_jobs] = tdac.run(dataset)
            rows.append([f"n_jobs={n_jobs}", time.perf_counter() - start])
        return rows, outcomes

    rows, outcomes = run_once(benchmark, sweep)
    table = format_table(
        ["Configuration", "Wall time (s)"],
        rows,
        title="Ablation A-4 (Semi 124 range 100): per-block parallelism",
    )
    record_artifact("ablation_parallel", table)

    assert outcomes[1].predictions == outcomes[4].predictions
    assert outcomes[1].partition == outcomes[4].partition
