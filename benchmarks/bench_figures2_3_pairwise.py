"""E-F2 / E-F3 — Figures 2-3: pairwise accuracy on semi-synthetic data.

Regenerates the paired-bars series (base algorithm vs TD-AC+base per
false-value range) for the 62- and 124-attribute semi-synthetic Exams.
"""

import pytest
from conftest import run_once

from repro.evaluation import pairwise_accuracy_series, semi_synthetic_experiment

RANGES = (25, 50, 100, 1000)


def _render(series, title):
    lines = [title]
    for label, accuracies in series.items():
        lines.append(f"{label}:")
        for algorithm, accuracy in accuracies.items():
            bar = "#" * int(round(accuracy * 40))
            lines.append(f"  {algorithm:<26} {accuracy:5.3f} |{bar}")
    return "\n".join(lines)


@pytest.mark.parametrize(
    "n_attributes,figure", [(62, "figure2"), (124, "figure3")]
)
def test_pairwise_accuracy(n_attributes, figure, record_artifact, benchmark):
    def build_series():
        return pairwise_accuracy_series(
            {
                f"Range {r}": semi_synthetic_experiment(n_attributes, r)
                for r in RANGES
            }
        )

    series = run_once(benchmark, build_series)
    record_artifact(
        f"{figure}_pairwise_{n_attributes}",
        _render(
            series,
            f"Figure {'2' if n_attributes == 62 else '3'}: TD-AC impact on "
            f"Accu and TruthFinder, semi-synthetic {n_attributes} attributes",
        ),
    )
    # Shape: accuracy is weakly increasing in the range size for the
    # base algorithms (less false consensus with a wider pool).
    for base in ("Accu", "TruthFinder"):
        first = series["Range 25"][base]
        last = series["Range 1000"][base]
        assert last >= first - 0.03, base
