"""A-2 — Ablation: clustering family and distance for TD-AC.

Swaps TD-AC's clusterer (k-means vs agglomerative, single / complete /
average linkage) and its distance (plain vs missing-data-aware masked
Hamming, the paper's research perspective (i)) and compares accuracy on
a low-coverage dataset where the masked variant should matter most.
"""

from conftest import run_once

from repro.algorithms import Accu
from repro.clustering import (
    Agglomerative,
    Spectral,
    pairwise_hamming,
    pairwise_masked_hamming,
    silhouette_score,
)
from repro.core import TDAC, Partition, build_truth_vectors, run_blocks
from repro.data import Fact
from repro.datasets import load
from repro.evaluation import format_table
from repro.metrics import evaluate_predictions


def _swept_tdac(dataset, vectors, distances, make_clusterer):
    """TD-AC step 3 with an alternative clusterer, silhouette-swept."""
    best = None
    n = vectors.n_attributes
    for k in range(2, n):
        fit = make_clusterer(k).fit_distances(distances)
        labels = fit.labels
        import numpy as np

        if len(np.unique(labels)) < 2:
            continue
        score = silhouette_score(distances, labels, average="macro")
        if best is None or score > best[0]:
            best = (score, labels)
    partition = Partition.from_labels(vectors.attributes, best[1])
    results = run_blocks(Accu(), dataset, partition)
    merged = {}
    for result in results:
        merged.update(result.predictions)
    return partition, merged


def test_clustering_variants(record_artifact, benchmark):
    dataset = load("Flights", seed=0)
    vectors = build_truth_vectors(dataset, Accu())
    plain = pairwise_hamming(vectors.matrix.astype(float))
    masked = pairwise_masked_hamming(
        vectors.matrix.astype(float), vectors.mask
    )

    def sweep():
        rows = []
        for label, tdac in (
            ("k-means + hamming", TDAC(Accu(), seed=0)),
            ("k-means + masked", TDAC(Accu(), distance="masked", seed=0)),
        ):
            outcome = tdac.run(dataset)
            report = evaluate_predictions(dataset, outcome.predictions)
            rows.append([label, str(outcome.partition), report.accuracy])
        for linkage in ("single", "complete", "average"):
            for dist_label, distances in (("hamming", plain), ("masked", masked)):
                partition, predictions = _swept_tdac(
                    dataset,
                    vectors,
                    distances,
                    lambda k, linkage=linkage: Agglomerative(k, linkage),
                )
                report = evaluate_predictions(dataset, predictions)
                rows.append(
                    [f"agglo/{linkage} + {dist_label}", str(partition), report.accuracy]
                )
        for dist_label, distances in (("hamming", plain), ("masked", masked)):
            partition, predictions = _swept_tdac(
                dataset,
                vectors,
                distances,
                lambda k: Spectral(k, seed=0),
            )
            report = evaluate_predictions(dataset, predictions)
            rows.append(
                [f"spectral + {dist_label}", str(partition), report.accuracy]
            )
        return rows

    rows = run_once(benchmark, sweep)
    table = format_table(
        ["Variant", "Partition", "Accuracy"],
        rows,
        title="Ablation A-2 (Flights): clustering family and distance",
    )
    record_artifact("ablation_clustering", table)

    accuracies = [row[2] for row in rows]
    # The paper's choice (k-means + plain Hamming) should be competitive.
    assert rows[0][2] >= max(accuracies) - 0.05
