"""E-F1 — Figure 1: accuracy of all tested algorithms on DS1-DS3.

Regenerates the bar-chart series behind Figure 1 (one accuracy value per
algorithm per synthetic dataset) as an ASCII table plus text bars.
"""

from conftest import run_once

from repro.evaluation import figure1_series, table4_experiment


def _bars(series):
    lines = []
    for dataset_name, accuracies in series.items():
        lines.append(f"{dataset_name}:")
        for algorithm, accuracy in accuracies.items():
            bar = "#" * int(round(accuracy * 40))
            lines.append(f"  {algorithm:<26} {accuracy:5.3f} |{bar}")
    return "\n".join(lines)


def test_figure1(record_artifact, benchmark):
    def build_series():
        return figure1_series(
            {
                name: table4_experiment(
                    name, scale=0.1, gen_partition_scale=0.03
                )
                for name in ("DS1", "DS2", "DS3")
            }
        )

    series = run_once(benchmark, build_series)
    record_artifact(
        "figure1_accuracy",
        "Figure 1: accuracy of all tested algorithms on DS1, DS2, DS3\n"
        + _bars(series),
    )
    # Shape check: on every dataset TD-AC's accuracy is within a whisker
    # of the best approach in the chart.
    for dataset_name, accuracies in series.items():
        tdac = accuracies["TD-AC (F=Accu)"]
        assert tdac >= max(accuracies.values()) - 0.08, dataset_name
