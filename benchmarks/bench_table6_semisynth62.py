"""E-T6 — Table 6: semi-synthetic Exam with 62 attributes.

Regenerates the four sub-tables (false-value ranges 25 / 50 / 100 /
1000): Accu vs TD-AC(F=Accu) and TruthFinder vs TD-AC(F=TruthFinder) on
the fully-filled 62-attribute Exam.  Shape: TD-AC neither collapses nor
explodes the base algorithm's accuracy (the paper's "does not highly
deteriorate ... and even improves it in some cases").
"""

import pytest
from conftest import run_once

from repro.evaluation import performance_table, semi_synthetic_experiment

RANGES = (25, 50, 100, 1000)


@pytest.mark.parametrize("range_size", RANGES)
def test_table6(range_size, record_artifact, benchmark):
    records = run_once(
        benchmark, semi_synthetic_experiment, 62, range_size
    )
    table = performance_table(
        records,
        title=f"Table 6 (Range {range_size}): semi-synthetic, 62 attributes",
    )
    record_artifact(f"table6_range{range_size}", table)

    by_name = {r.algorithm: r for r in records}
    for base in ("Accu", "TruthFinder"):
        plain = by_name[base]
        tdac = by_name[f"TD-AC (F={base})"]
        assert tdac.accuracy >= plain.accuracy - 0.05, base
