"""A-8 — Ablation: claim normalisation on quote-style numeric data.

Real price/sensor corpora split honest votes across near-identical
numbers (10.00 vs 10.01).  This bench generates a stocks-like dataset
with per-claim reporting jitter and measures every stage with and
without :func:`repro.data.normalize.normalize_dataset`, quantifying how
much of the headline accuracy the preprocessing is worth.
"""

from conftest import run_once

from repro.algorithms import Accu, MajorityVote, TruthFinder
from repro.core import TDAC
from repro.data import normalize_dataset
from repro.datasets import GeneratorConfig, SourceClass, generate
from repro.datasets.engine import noisy_numeric_values
from repro.evaluation import format_table
from repro.metrics import tolerant_fact_accuracy


def quote_dataset(seed=0):
    """Stocks-like numeric corpus with reporting jitter."""
    return generate(
        GeneratorConfig(
            name="Quotes",
            n_objects=60,
            groups=(("bid", "ask", "last"), ("volume", "turnover")),
            classes=(
                SourceClass("feed", 6, (0.95, 0.5), collusion=0.4),
                SourceClass("scraper", 6, (0.55, 0.85), collusion=0.6),
            ),
            pool_size=3,
            value_factory=noisy_numeric_values(3, jitter=0.0008),
            seed=seed,
        )
    ).dataset


def test_normalization_impact(record_artifact, benchmark):
    raw = quote_dataset()

    def sweep():
        normalized, report = normalize_dataset(raw, threshold=0.995)
        rows = []
        for label, dataset in (("raw", raw), ("normalised", normalized)):
            for algorithm in (MajorityVote(), TruthFinder(), Accu(),
                              TDAC(Accu(), seed=0)):
                predictions = (
                    algorithm.run(dataset).predictions
                    if isinstance(algorithm, TDAC)
                    else algorithm.discover(dataset).predictions
                )
                # Tolerance-based correctness: exact matching would count
                # every jittered (but honest) number as wrong on the raw
                # input and make the comparison meaningless.
                accuracy = tolerant_fact_accuracy(
                    dataset, predictions, tolerance=0.995
                )
                rows.append([label, algorithm.name, accuracy])
        return rows, report

    rows, report = run_once(benchmark, sweep)
    table = format_table(
        ["Input", "Algorithm", "Fact accuracy (tolerant)"],
        rows,
        title=(
            "Ablation A-8 (Quotes): claim normalisation "
            f"(merged {report.n_values_merged} values across "
            f"{report.n_facts_touched} facts)"
        ),
    )
    record_artifact("ablation_normalization", table)

    by_key = {(r[0], r[1]): r[2] for r in rows}
    # Normalisation must substantially lift the vote-splitting victims.
    assert by_key[("normalised", "MajorityVote")] >= (
        by_key[("raw", "MajorityVote")]
    )
    assert report.n_values_merged > 0
