"""Degradation-leaderboard harness for the adversarial scenario sweeps.

Runs the full (scenario x severity) grid of :mod:`repro.scenarios` over
a clean corpus for TD-AC plus unpartitioned baselines, and — before
reporting anything — asserts the severity-0 parity contract: every
generator is an identity at severity 0, so each curve's first point must
equal a direct clean-corpus run of the same algorithm *exactly*
(bit-identical accuracy / F1 / fact accuracy).  The numbers are only
meaningful if the adversarial axis starts from the clean baseline.

The emitted JSON records every per-cell metric row with its fingerprinted
scenario config, the per-scenario robustness leaderboard (clean
accuracy, worst-case accuracy, drop), and any capability skips.  ``ok``
is false unless every parity assertion held.

Entry points: standalone (``make bench-scenarios-smoke`` runs
``--config smoke``; ``--config full`` produced the committed
BENCH_scenarios.json) and pytest (collected with the bench suite, runs
the smoke config).
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import asdict
from pathlib import Path

from repro.core import TDACConfig
from repro.datasets import load
from repro.evaluation import run_algorithm
from repro.evaluation.tables import format_table
from repro.scenarios import (
    LEADERBOARD_HEADER,
    degradation_leaderboard,
    degradation_sweep,
    resolve_algorithm,
)

DEFAULT_OUTPUT = Path(__file__).resolve().parents[1] / "BENCH_scenarios.json"
ARTIFACT_DIR = Path(__file__).resolve().parent / "output"

CONFIGS = {
    # CI-sized: a couple of seconds, used by `make bench-scenarios-smoke`.
    "smoke": {
        "datasets": ["DS1"],
        "scale": 0.02,
        "severities": [0.0, 0.5, 1.0],
        "algorithms": ["TDAC+MajorityVote", "MajorityVote", "CRH"],
        "seed": 0,
    },
    # The committed BENCH_scenarios.json: the paper-style roster on the
    # categorical corpus plus the typed corpus through the router.
    "full": {
        "datasets": ["DS1", "Mixed"],
        "scale": 0.1,
        "severities": [0.0, 0.25, 0.5, 0.75, 1.0],
        "algorithms": [
            "TDAC+MajorityVote",
            "MajorityVote",
            "TruthFinder",
            "CRH",
            "TDAC+Routed",
            "Routed",
        ],
        "seed": 0,
    },
}


def assert_severity_zero_parity(dataset, sweep, config):
    """Each severity-0 record must equal a clean run, bit for bit."""
    failures = []
    clean = {}
    for record in sweep.records:
        if record.severity != 0.0:
            continue
        if record.algorithm not in clean:
            algorithm = resolve_algorithm(record.algorithm, config)
            clean[record.algorithm] = run_algorithm(algorithm, dataset)
        reference = clean[record.algorithm]
        for metric in ("accuracy", "f1", "fact_accuracy"):
            got = getattr(record, metric)
            want = getattr(reference, metric)
            if got != want:
                failures.append(
                    f"{dataset.name}/{record.scenario}/{record.algorithm}: "
                    f"severity-0 {metric} {got!r} != clean {want!r}"
                )
    return failures


def run_bench(config_name: str, overrides: dict | None = None) -> dict:
    cfg = dict(CONFIGS[config_name])
    cfg.update(overrides or {})
    tdac_config = TDACConfig(seed=cfg["seed"])
    failures = []
    sweeps = []
    for name in cfg["datasets"]:
        dataset = load(name, seed=cfg["seed"], scale=cfg["scale"])
        sweep = degradation_sweep(
            dataset,
            severities=tuple(cfg["severities"]),
            algorithms=tuple(cfg["algorithms"]),
            seed=cfg["seed"],
            config=tdac_config,
        )
        failures.extend(
            assert_severity_zero_parity(dataset, sweep, tdac_config)
        )
        sweeps.append(
            {
                "dataset": sweep.dataset,
                "records": [asdict(r) for r in sweep.records],
                "skipped": [asdict(s) for s in sweep.skipped],
                "configs": [
                    dict(asdict(c), fingerprint=c.fingerprint)
                    for c in sweep.configs
                ],
                "leaderboard": [
                    asdict(row) for row in degradation_leaderboard(sweep)
                ],
            }
        )
    return {
        "bench": "scenarios",
        "config": config_name,
        "parameters": cfg,
        "sweeps": sweeps,
        "severity_zero_parity": not failures,
        "ok": not failures,
        "failures": failures,
    }


def leaderboard_text(sweep: dict) -> str:
    """Render one sweep as a report artefact: leaderboard + provenance."""
    rows = [
        (
            row["rank"],
            row["scenario"],
            row["algorithm"],
            f"{row['clean_accuracy']:.3f}",
            f"{row['worst_accuracy']:.3f}",
            f"{row['drop']:.3f}",
            f"{row['clean_f1']:.3f}",
            f"{row['worst_f1']:.3f}",
        )
        for row in sweep["leaderboard"]
    ]
    title = (
        f"Degradation leaderboard ({sweep['dataset']}): robustness rank "
        "per scenario, smallest accuracy drop first"
    )
    lines = [format_table(LEADERBOARD_HEADER, rows, title=title)]
    for skip in sweep["skipped"]:
        lines.append(f"skipped {skip['algorithm']}: {skip['reason']}")
    lines.append("Scenario cell fingerprints (sha256 of seeded config):")
    for cell in sweep["configs"]:
        lines.append(
            f"  {cell['scenario']} severity={cell['severity']} "
            f"seed={cell['seed']}: {cell['fingerprint']}"
        )
    return "\n".join(lines)


def write_artifacts(record: dict, artifact_dir: Path) -> None:
    artifact_dir.mkdir(parents=True, exist_ok=True)
    for sweep in record["sweeps"]:
        name = f"scenarios_{sweep['dataset'].lower()}.txt"
        (artifact_dir / name).write_text(leaderboard_text(sweep) + "\n")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--config", choices=sorted(CONFIGS), default="smoke")
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT)
    parser.add_argument("--artifact-dir", type=Path, default=None)
    args = parser.parse_args(argv)
    record = run_bench(args.config)
    args.output.parent.mkdir(parents=True, exist_ok=True)
    args.output.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    if args.artifact_dir is not None:
        write_artifacts(record, args.artifact_dir)
    print(json.dumps(record, indent=2, sort_keys=True))
    if not record["ok"]:
        print("FAILED: " + "; ".join(record["failures"]), file=sys.stderr)
        return 1
    return 0


def test_scenarios_bench_smoke(artifact_dir, benchmark):
    """Pytest entry: severity-0 parity must hold before reporting."""
    from conftest import run_once

    record = run_once(benchmark, run_bench, "smoke")
    (artifact_dir / "BENCH_scenarios_smoke.json").write_text(
        json.dumps(record, indent=2, sort_keys=True) + "\n"
    )
    assert record["ok"], record["failures"]


if __name__ == "__main__":
    sys.exit(main())
