"""E-T8 — Table 8: statistics of the real datasets (incl. coverage).

Regenerates the statistics table for the Stocks, Exam (32/62/124) and
Flights stand-ins and checks every structural column against the paper's
published row.
"""

import pytest
from conftest import run_once

from repro.evaluation import format_table, table8_experiment

#: The paper's Table 8 (sources, objects, attributes, observations, DCR%).
PAPER_TABLE8 = {
    "Stocks": (55, 100, 15, 56_992, 75),
    "Exam 32": (248, 1, 32, 6_451, 81),
    "Exam 62": (248, 1, 62, 8_585, 55),
    "Exam 124": (248, 1, 124, 11_305, 36),
    "Flights": (38, 100, 6, 8_644, 66),
}


def test_table8(record_artifact, benchmark):
    stats = run_once(benchmark, table8_experiment)
    rows = [s.as_row() for s in stats]
    table = format_table(
        [
            "Dataset",
            "Sources",
            "Objects",
            "Attributes",
            "Observations",
            "DCR (%)",
        ],
        rows,
        title="Table 8: statistics about the real datasets",
    )
    record_artifact("table8_stats", table)

    for s in stats:
        paper = PAPER_TABLE8[s.name]
        assert (s.n_sources, s.n_objects, s.n_attributes) == paper[:3], s.name
        assert s.n_observations == pytest.approx(paper[3], rel=0.05), s.name
        assert s.coverage_rate == pytest.approx(paper[4], abs=4), s.name
