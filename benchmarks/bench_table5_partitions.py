"""E-T5 — Table 5: partitions chosen by every partitioning approach.

Regenerates the partition table: the generator's planted partition, the
three AccuGenPartition weightings and TD-AC per synthetic dataset, plus
agreement scores (Rand / adjusted Rand) against the planted one.
"""

import pytest
from conftest import run_once

from repro.datasets import planted_partition
from repro.evaluation import format_table, table5_experiment
from repro.metrics import compare_partitions, is_refinement


@pytest.mark.parametrize("dataset_name", ["DS1", "DS2", "DS3"])
def test_table5(dataset_name, record_artifact, benchmark):
    rows = run_once(
        benchmark, table5_experiment, dataset_name, scale=0.05
    )
    planted = planted_partition(dataset_name)
    table_rows = []
    tdac_agreement = None
    for row in rows:
        agreement = compare_partitions(planted, row.partition)
        table_rows.append(
            [
                row.approach,
                str(row.partition),
                f"{agreement.rand:.2f}",
                f"{agreement.adjusted_rand:.2f}",
            ]
        )
        if row.approach.startswith("TD-AC"):
            tdac_agreement = agreement
    table = format_table(
        ["Approach", "Partition", "Rand", "ARI"],
        table_rows,
        title=f"Table 5 ({dataset_name}): partitions returned (scale 0.05)",
    )
    record_artifact(f"table5_{dataset_name.lower()}", table)

    # Shape check: TD-AC's partition never mixes attributes from planted
    # groups with *different* reliability profiles — it equals the
    # planted partition or merges profile-identical groups, as the
    # paper's own Table 5 shows for DS1.
    assert tdac_agreement is not None
    tdac_partition = next(
        r.partition for r in rows if r.approach.startswith("TD-AC")
    )
    if not is_refinement(planted, tdac_partition):
        assert is_refinement(tdac_partition, planted)
