"""E-T9 — Table 9: performance on the real datasets.

Regenerates the five sub-tables (Exam 32/62/124, Stocks, Flights) with
Accu, TD-AC(F=Accu), TruthFinder and TD-AC(F=TruthFinder) at the full
dataset sizes.
"""

import pytest
from conftest import run_once

from repro.evaluation import performance_table, table9_experiment

DATASETS = ("Exam 32", "Exam 62", "Exam 124", "Stocks", "Flights")


@pytest.mark.parametrize("dataset_name", DATASETS)
def test_table9(dataset_name, record_artifact, benchmark):
    records = run_once(benchmark, table9_experiment, dataset_name)
    table = performance_table(
        records, title=f"Table 9 ({dataset_name})"
    )
    slug = dataset_name.lower().replace(" ", "")
    record_artifact(f"table9_{slug}", table)

    by_name = {r.algorithm: r for r in records}
    for base in ("Accu", "TruthFinder"):
        plain = by_name[base]
        tdac = by_name[f"TD-AC (F={base})"]
        # Shape: TD-AC tracks the base algorithm on real data — large
        # regressions would contradict the paper's Section 4.4.
        assert tdac.accuracy >= plain.accuracy - 0.07, (dataset_name, base)
