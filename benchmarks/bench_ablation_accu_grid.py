"""A-9 — Ablation: the Accu stabilisation grid behind the defaults.

DESIGN.md §5b documents a grid search over the Accu family's
stabilisation knobs (confidence gate, true-agreement calibration,
warm-up).  This bench re-runs that grid through the sweep harness —
wrapped in TD-AC, on small DS1/DS2/DS3 — and asserts the shipped
defaults are the min-max winner, so the design decision stays
reproducible instead of anecdotal.
"""

from conftest import run_once

from repro.algorithms import Accu
from repro.core import TDAC
from repro.datasets import load
from repro.evaluation import format_table
from repro.evaluation.sweeps import best_configuration, sweep

GRID = {
    "confidence_gate": [0.0, 0.15],
    "calibrate_true_agreement": [True, False],
    "warmup_iterations": [0, 2],
}

DEFAULTS = {
    "confidence_gate": 0.0,
    "calibrate_true_agreement": True,
    "warmup_iterations": 0,
}


def test_accu_stabilisation_grid(record_artifact, benchmark):
    datasets = [load(name, scale=0.05) for name in ("DS1", "DS2", "DS3")]

    def run_sweep():
        return sweep(
            Accu,
            GRID,
            datasets,
            wrapper=lambda base: TDAC(base, seed=0),
        )

    records = run_once(benchmark, run_sweep)
    rows = [
        [r.label(), r.dataset, r.accuracy] for r in records
    ]
    table = format_table(
        ["Configuration", "Dataset", "TD-AC accuracy"],
        rows,
        title="Ablation A-9: Accu stabilisation grid (TD-AC wrapped)",
    )
    record_artifact("ablation_accu_grid", table)

    winner = best_configuration(records)
    # The shipped defaults must be min-max competitive: their worst-case
    # accuracy across DS1-3 matches the grid winner's.
    def worst(config):
        return min(
            r.accuracy
            for r in records
            if all(r.parameters[k] == v for k, v in config.items())
        )

    assert worst(DEFAULTS) >= worst(winner) - 0.02
