"""E-F4 / E-F5 — Figures 4-5: TD-AC impact split by data coverage.

Regenerates the paired accuracy series of the real datasets, split into
the paper's high-coverage group (DCR >= 66%: Exam 32, Stocks, Flights —
Figure 4) and low-coverage group (DCR <= 55%: Exam 62, Exam 124 —
Figure 5), and checks the paper's main observation: TD-AC's *average*
impact on the base algorithms is stronger at high coverage.
"""

import numpy as np
from conftest import run_once

from repro.evaluation import pairwise_accuracy_series, table9_experiment

HIGH_COVERAGE = ("Exam 32", "Stocks", "Flights")
LOW_COVERAGE = ("Exam 62", "Exam 124")


def _render(series, title):
    lines = [title]
    for label, accuracies in series.items():
        lines.append(f"{label}:")
        for algorithm, accuracy in accuracies.items():
            bar = "#" * int(round(accuracy * 40))
            lines.append(f"  {algorithm:<26} {accuracy:5.3f} |{bar}")
    return "\n".join(lines)


def _deltas(series):
    out = []
    for accuracies in series.values():
        for base in ("Accu", "TruthFinder"):
            out.append(accuracies[f"TD-AC (F={base})"] - accuracies[base])
    return out


def test_figures4_and_5(record_artifact, benchmark):
    def build():
        return {
            name: table9_experiment(name)
            for name in HIGH_COVERAGE + LOW_COVERAGE
        }

    records = run_once(benchmark, build)
    high = pairwise_accuracy_series(
        {n: records[n] for n in HIGH_COVERAGE}
    )
    low = pairwise_accuracy_series({n: records[n] for n in LOW_COVERAGE})
    record_artifact(
        "figure4_high_coverage",
        _render(high, "Figure 4: TD-AC impact, DCR >= 66%"),
    )
    record_artifact(
        "figure5_low_coverage",
        _render(low, "Figure 5: TD-AC impact, DCR <= 55%"),
    )
    # Shape: mean TD-AC delta at high coverage >= mean delta at low
    # coverage (the paper's coverage-correlation observation).
    assert np.mean(_deltas(high)) >= np.mean(_deltas(low)) - 0.01
