"""E-T4 — Tables 4a-4c: full algorithm comparison on DS1, DS2, DS3.

Regenerates the paper's central tables: the five standard algorithms,
the three AccuGenPartition weightings and TD-AC(F=Accu) on each
synthetic dataset.  Sizes are scaled down (the brute-force rows sweep
Bell(6) = 203 partitions with a full Accu run per block each — the very
blow-up the paper reports as a ~200x slowdown), but the comparison
*shape* is preserved:

* partition-aware approaches beat the standard algorithms;
* TD-AC is at or near the Oracle row;
* TD-AC costs about one base run, AccuGenPartition costs hundreds.
"""

import pytest
from conftest import run_once

from repro.evaluation import performance_table, table4_experiment

#: Standard-suite scale (fraction of the paper's 1000 objects) and the
#: further-reduced scale for the Bell-number brute-force rows.
SCALE = 0.1
GEN_SCALE = 0.03


@pytest.mark.parametrize("dataset_name", ["DS1", "DS2", "DS3"])
def test_table4(dataset_name, record_artifact, benchmark):
    records = run_once(
        benchmark,
        table4_experiment,
        dataset_name,
        scale=SCALE,
        gen_partition_scale=GEN_SCALE,
    )
    table = performance_table(
        records,
        title=(
            f"Table 4 ({dataset_name}): performance of all tested "
            f"algorithms (standard suite at scale {SCALE}, "
            f"AccuGenPartition at scale {GEN_SCALE})"
        ),
    )
    record_artifact(f"table4_{dataset_name.lower()}", table)

    by_name = {r.algorithm: r for r in records}
    tdac = by_name["TD-AC (F=Accu)"]
    # Shape check (the paper's central claim): TD-AC lifts its base
    # algorithm substantially and lands near the Oracle partition.
    assert tdac.accuracy >= by_name["Accu"].accuracy
    assert tdac.accuracy >= by_name["AccuGenPartition (Oracle)"].accuracy - 0.07
    # Shape check: TD-AC costs a small multiple of one base run, while
    # the brute force costs hundreds of runs even on a 3x smaller input.
    brute = by_name["AccuGenPartition (Oracle)"]
    assert brute.elapsed_seconds > 5 * tdac.elapsed_seconds
