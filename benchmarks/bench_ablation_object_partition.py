"""A-7 — Ablation: attribute partitioning (TD-AC) vs object partitioning.

The paper's future work plans a comparison against the object-based
partitioning of Yang et al. [13]; ``repro.core.ObjectTDAC`` supplies the
comparator.  Two regimes are benchmarked:

* DS1 — reliability correlated by *attribute group* (TD-AC's setting);
* an engine dataset transposed so reliability correlates by *object
  topic* (sources specialise by entity), where object clustering has
  the structural advantage.
"""

import numpy as np
from conftest import run_once

from repro.algorithms import Accu
from repro.core import ObjectTDAC, TDAC
from repro.data import DatasetBuilder
from repro.datasets import load
from repro.evaluation import format_table
from repro.metrics import evaluate_predictions


def object_correlated_dataset(n_per_topic=40, seed=0):
    """Sources specialise by object topic: sports vs finance entities."""
    rng = np.random.default_rng(seed)
    builder = DatasetBuilder(name="topic-correlated")
    specialities = {
        "sport1": "sports",
        "sport2": "sports",
        "sport3": "sports",
        "fin1": "finance",
        "fin2": "finance",
        "fin3": "finance",
        "wire1": "both",
        "wire2": "both",
    }
    for topic, prefix in (("sports", "match"), ("finance", "ticker")):
        for i in range(n_per_topic):
            obj = f"{prefix}{i}"
            for attribute in ("a1", "a2", "a3", "a4"):
                truth = f"{obj}-{attribute}-t"
                builder.set_truth(obj, attribute, truth)
                shared_wrong = f"{obj}-{attribute}-w"
                for source, speciality in specialities.items():
                    good = speciality in (topic, "both")
                    p_right = 0.95 if good else 0.15
                    if rng.random() < p_right:
                        value = truth
                    elif rng.random() < 0.7:
                        value = shared_wrong
                    else:
                        value = f"{obj}-{attribute}-w-{source}"
                    builder.add_claim(source, obj, attribute, value)
    return builder.build()


def test_attribute_vs_object_partitioning(record_artifact, benchmark):
    attribute_regime = load("DS1", scale=0.08)
    object_regime = object_correlated_dataset()

    def sweep():
        rows = []
        for label, dataset in (
            ("attribute-correlated (DS1)", attribute_regime),
            ("object-correlated (topics)", object_regime),
        ):
            flat = evaluate_predictions(
                dataset, Accu().discover(dataset).predictions
            ).accuracy
            tdac = evaluate_predictions(
                dataset, TDAC(Accu(), seed=0).run(dataset).predictions
            ).accuracy
            tdoc = evaluate_predictions(
                dataset,
                ObjectTDAC(Accu(), k_max=6, seed=0).run(dataset).predictions,
            ).accuracy
            rows.append([label, flat, tdac, tdoc])
        return rows

    rows = run_once(benchmark, sweep)
    table = format_table(
        ["Regime", "Accu", "TD-AC (attrs)", "TD-OC (objects)"],
        rows,
        title="Ablation A-7: attribute vs object partitioning",
    )
    record_artifact("ablation_object_partition", table)

    attribute_row, object_row = rows
    # Each family should win (or tie) on its own regime.
    assert attribute_row[2] >= attribute_row[3] - 0.02
    assert object_row[3] >= object_row[1] - 0.02
