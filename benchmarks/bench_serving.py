"""Load/soak harness for the network serving stack.

Drives a ``repro serve --listen`` subprocess with Poisson open-loop
traffic from many concurrent asyncio clients replaying the
stocks/flights/exam simulators (the conflicting-source scenarios of the
truth-discovery evaluations), layered with fault injection:

* **mid-frame disconnects** — clients that vanish halfway through a
  request line (torn frames);
* **byte-truncated writes** — framed lines whose tail bytes are missing
  (malformed JSON, answered loudly);
* **slow-loris clients** — one byte every couple of seconds, never
  completing a frame (cut by the server's idle timeout);
* **kill-and-restore** — the serving process is SIGKILLed mid-soak and
  relaunched over the same ``--store-dir``, exercising WAL recovery
  while live clients reconnect with capped exponential backoff.

After the soak the server is drained with SIGTERM and the store is
re-opened in-process via ``TruthService.restore()``; the harness then
asserts the two invariants the serving stack promises before reporting
any numbers:

1. **no lost acked claims** — every claim batch a client saw
   ``{"ok": true}`` for is present in the recovered corpus;
2. **bit-identity** — the recovered snapshot equals an offline
   ``TDAC.run`` over the accumulated claim log, field for field.

The emitted JSON records sustained claims/sec, p50/p90/p99 ingest
latency, snapshot staleness (pending-claims lag sampled during the
soak), fault/overload counters and the kill/restart timeline.

Entry points: standalone (``make bench-serving-smoke`` runs ``--config
smoke``; ``--config soak`` produced the committed BENCH_serving.json)
and pytest (collected with the bench suite, runs the smoke config).
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import json
import os
import random
import select
import shutil
import socket
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from repro.algorithms import create
from repro.core import TDAC
from repro.datasets.exam import make_exam
from repro.datasets.flights import make_flights
from repro.datasets.stocks import make_stocks
from repro.serving import (
    AsyncTruthClient,
    RetryPolicy,
    TruthClientError,
    TruthService,
)

SRC = Path(__file__).resolve().parents[1] / "src"
DEFAULT_OUTPUT = Path(__file__).resolve().parents[1] / "BENCH_serving.json"

CONFIGS = {
    # Scaled-down soak for `make bench-serving-smoke` / CI: ~30s wall.
    "smoke": {
        "clients": 24,
        "fault_clients": 4,
        "duration": 20.0,
        "rate_hz": 2.0,
        "kill_fraction": 0.4,
        "pool_limit": 1_200,
        "batch_max": 3,
        "algorithm": "MajorityVote",
        "dataset": "DS1",
        "scale": 0.05,
        "seed": 0,
        "max_batch_size": 256,
        "max_wait_ms": 25.0,
        "queue_capacity": 2_048,
        "snapshot_every": 8,
        "idle_timeout": 15.0,
        "drain_timeout": 30.0,
        "k_max": 6,
        "n_init": 2,
    },
    # The committed BENCH_serving.json: >=100 concurrent clients.  The
    # kill lands early enough that the WAL-replay restore (tens of
    # seconds at this corpus size) still leaves a live post-restart
    # phase with reconnected clients.
    "soak": {
        "clients": 120,
        "fault_clients": 12,
        "duration": 120.0,
        "rate_hz": 2.0,
        "kill_fraction": 0.33,
        "pool_limit": 12_000,
        "batch_max": 3,
        "algorithm": "MajorityVote",
        "dataset": "DS1",
        "scale": 0.05,
        "seed": 0,
        "max_batch_size": 512,
        "max_wait_ms": 25.0,
        "queue_capacity": 8_192,
        "snapshot_every": 4,
        "idle_timeout": 15.0,
        "drain_timeout": 60.0,
        "k_max": 6,
        "n_init": 2,
    },
}


# ----------------------------------------------------------------------
# Workload
# ----------------------------------------------------------------------


def build_claim_pool(limit: int, seed: int) -> list[dict]:
    """Wire-format claims replaying the three real-data simulators.

    Identifier namespaces are prefixed per corpus so the streams never
    conflict with each other (or the initial corpus) at the one-truth
    level — conflicts *within* each simulator's sources are the point.
    """
    corpora = [
        ("stocks", make_stocks(n_objects=60, seed=seed).dataset),
        ("flights", make_flights(n_objects=60, seed=seed).dataset),
        ("exam", make_exam(n_attributes=32, seed=seed)),
    ]
    pool = []
    for name, ds in corpora:
        for claim in ds.iter_claims():
            pool.append(
                {
                    "source": f"{name}/{claim.source}",
                    "object": f"{name}/{claim.object}",
                    "attribute": f"{name}/{claim.attribute}",
                    "value": claim.value,
                }
            )
    rng = random.Random(seed)
    rng.shuffle(pool)
    return pool[:limit]


class SoakState:
    """Shared counters every client task reports into."""

    def __init__(self) -> None:
        self.acked: list[dict] = []
        self.latencies: list[float] = []
        self.offered = 0
        self.rejected_responses = 0
        self.client_failures = 0
        self.queries = 0
        self.query_mismatches = 0
        self.client_stats: list[dict] = []
        self.fault_counters = {
            "mid_frame": 0,
            "truncated": 0,
            "slowloris": 0,
        }
        self.samples: list[dict] = []
        self.events: dict = {}


def _client_retry() -> RetryPolicy:
    # Generous: must ride out the kill-and-restore window mid-soak.
    return RetryPolicy(
        max_attempts=50,
        base_backoff_seconds=0.05,
        max_backoff_seconds=1.0,
        max_retry_after_seconds=2.0,
    )


async def ingest_client(
    k: int,
    cfg: dict,
    port: int,
    claims: list[dict],
    state: SoakState,
    t_end: float,
) -> None:
    rng = random.Random(cfg["seed"] * 7_919 + k)
    client = AsyncTruthClient(
        "127.0.0.1",
        port,
        connect_timeout=2.0,
        request_timeout=60.0,
        retry=_client_retry(),
    )
    acked_here: list[dict] = []
    idx = 0
    try:
        while True:
            await asyncio.sleep(rng.expovariate(cfg["rate_hz"]))
            if time.monotonic() >= t_end:
                break
            if idx >= len(claims) or (acked_here and rng.random() < 0.1):
                # Interleave reads: verify a claim this client was acked.
                if not acked_here:
                    continue
                probe = rng.choice(acked_here)
                try:
                    answer = await client.query(
                        probe["object"], probe["attribute"]
                    )
                except TruthClientError:
                    state.client_failures += 1
                    continue
                state.queries += 1
                # An acked claim's fact must exist in every later
                # snapshot (its value is the *resolved* truth, which may
                # legitimately differ from this one source's claim).
                if not answer.get("found"):
                    state.query_mismatches += 1
                continue
            n = min(len(claims) - idx, rng.randint(1, cfg["batch_max"]))
            batch = claims[idx : idx + n]
            state.offered += n
            started = time.perf_counter()
            try:
                response = await client.request(
                    {"op": "ingest", "claims": batch}
                )
            except TruthClientError:
                # At-least-once: the batch stays at idx for a later try.
                state.client_failures += 1
                state.offered -= n
                continue
            idx += n
            if response.get("ok"):
                state.latencies.append(time.perf_counter() - started)
                state.acked.extend(batch)
                acked_here.extend(batch)
            else:
                state.rejected_responses += 1
    finally:
        state.client_stats.append(dict(client.stats))
        await client.close()


async def fault_client(
    kind: str, cfg: dict, port: int, state: SoakState, t_end: float, k: int
) -> None:
    rng = random.Random(cfg["seed"] * 104_729 + k)
    while time.monotonic() < t_end:
        await asyncio.sleep(rng.uniform(0.5, 1.5))
        try:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection("127.0.0.1", port), 2.0
            )
        except (ConnectionError, OSError, asyncio.TimeoutError):
            continue  # server mid-restart; faults resume afterwards
        try:
            if kind == "mid_frame":
                writer.write(b'{"op": "ingest", "claims": [{"sou')
                await writer.drain()
                await asyncio.sleep(rng.uniform(0.05, 0.2))
                writer.transport.abort()
            elif kind == "truncated":
                line = json.dumps(
                    {
                        "op": "ingest",
                        "claims": [
                            {
                                "source": "fault",
                                "object": f"trunc-{k}",
                                "attribute": "a",
                                "value": "v",
                            }
                        ],
                    }
                ).encode()
                writer.write(line[: len(line) // 2] + b"\n")
                await writer.drain()
                with contextlib.suppress(
                    asyncio.TimeoutError, ConnectionError, OSError
                ):
                    await asyncio.wait_for(reader.readline(), 2.0)
                writer.close()
            elif kind == "slowloris":
                payload = b'{"op": "stats"}\n'
                for byte in payload:
                    if time.monotonic() >= t_end:
                        break
                    writer.write(bytes([byte]))
                    await writer.drain()
                    await asyncio.sleep(2.0)
                writer.close()
            state.fault_counters[kind] += 1
        except (ConnectionError, OSError):
            continue


async def staleness_sampler(
    port: int, state: SoakState, t_end: float, interval: float = 0.5
) -> None:
    client = AsyncTruthClient(
        "127.0.0.1",
        port,
        connect_timeout=1.0,
        request_timeout=10.0,
        retry=RetryPolicy(max_attempts=2, base_backoff_seconds=0.05),
    )
    started = time.monotonic()
    try:
        while time.monotonic() < t_end:
            try:
                response = await client.request({"op": "stats"})
            except TruthClientError:
                await asyncio.sleep(interval)
                continue
            if response.get("ok"):
                stats = response["stats"]
                state.samples.append(
                    {
                        "t": round(time.monotonic() - started, 3),
                        "pending_claims": stats["pending_claims"],
                        "watermark": stats["watermark"],
                        "version": stats["version"],
                        "net": stats.get("net", {}),
                    }
                )
            await asyncio.sleep(interval)
    finally:
        await client.close()


# ----------------------------------------------------------------------
# Server process management
# ----------------------------------------------------------------------


def free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


class ServerProcess:
    """The ``repro serve --listen`` subprocess under test."""

    def __init__(self, cfg: dict, port: int, store_dir: str) -> None:
        self.cfg = cfg
        self.port = port
        self.store_dir = store_dir
        self.proc: subprocess.Popen | None = None

    def launch(self, timeout: float = 120.0) -> None:
        cfg = self.cfg
        cmd = [
            sys.executable,
            "-m",
            "repro",
            "serve",
            cfg["algorithm"],
            cfg["dataset"],
            "--scale",
            str(cfg["scale"]),
            "--seed",
            str(cfg["seed"]),
            "--listen",
            f"127.0.0.1:{self.port}",
            "--store-dir",
            self.store_dir,
            "--max-batch-size",
            str(cfg["max_batch_size"]),
            "--max-wait-ms",
            str(cfg["max_wait_ms"]),
            "--queue-capacity",
            str(cfg["queue_capacity"]),
            "--snapshot-every",
            str(cfg["snapshot_every"]),
            "--idle-timeout",
            str(cfg["idle_timeout"]),
            "--drain-timeout",
            str(cfg["drain_timeout"]),
            # Bound the per-refit clustering sweep: the soak keeps
            # growing the attribute set, and an unbounded k-sweep makes
            # refit (and hence WAL replay on restore) cost balloon.
            "--k-max",
            str(cfg["k_max"]),
            "--n-init",
            str(cfg["n_init"]),
        ]
        env = dict(os.environ)
        env["PYTHONPATH"] = str(SRC)
        # Append-mode stderr log survives kills and relaunches — the
        # first place to look when a soak goes sideways.
        with open(
            Path(self.store_dir) / "server-stderr.log", "ab"
        ) as stderr_log:
            self.proc = subprocess.Popen(
                cmd,
                stdout=subprocess.PIPE,
                stderr=stderr_log,
                env=env,
            )
        event = self._read_event(timeout)
        if event.get("event") != "listening":
            raise RuntimeError(f"expected listening event, got {event!r}")

    def _read_event(self, timeout: float) -> dict:
        assert self.proc is not None and self.proc.stdout is not None
        deadline = time.monotonic() + timeout
        buf = b""
        stream = self.proc.stdout
        while time.monotonic() < deadline:
            if self.proc.poll() is not None:
                raise RuntimeError(
                    f"server exited early (rc={self.proc.returncode})"
                )
            ready, _, _ = select.select([stream], [], [], 0.25)
            if not ready:
                continue
            chunk = stream.readline()
            if not chunk:
                continue
            buf = chunk
            return json.loads(buf)
        raise TimeoutError("server never announced its listening port")

    def kill(self) -> None:
        assert self.proc is not None
        self.proc.kill()  # SIGKILL: no drain, no final checkpoint
        self.proc.wait()

    def terminate_and_wait(self, timeout: float = 120.0) -> dict:
        """SIGTERM -> graceful drain; returns the drained event."""
        assert self.proc is not None
        self.proc.terminate()
        out, _ = self.proc.communicate(timeout=timeout)
        if self.proc.returncode != 0:
            raise RuntimeError(
                f"server drain failed (rc={self.proc.returncode})"
            )
        for line in reversed(out.decode().splitlines()):
            with contextlib.suppress(json.JSONDecodeError):
                event = json.loads(line)
                if event.get("event") == "drained":
                    return event
        return {}


async def kill_and_restore(
    server: ServerProcess, cfg: dict, t_start: float, state: SoakState
) -> None:
    kill_at = t_start + cfg["duration"] * cfg["kill_fraction"]
    await asyncio.sleep(max(0.0, kill_at - time.monotonic()))
    server.kill()
    state.events["killed_at_seconds"] = round(
        time.monotonic() - t_start, 3
    )
    restart_started = time.monotonic()
    # Relaunch over the same store dir: the CLI auto-resumes via
    # TruthService.restore() (checkpoint + WAL tail replay).
    await asyncio.to_thread(server.launch)
    state.events["restart_seconds"] = round(
        time.monotonic() - restart_started, 3
    )


# ----------------------------------------------------------------------
# Soak + verification
# ----------------------------------------------------------------------


async def drive_traffic(
    cfg: dict, server: ServerProcess, pool: list[dict], state: SoakState
) -> None:
    t_start = time.monotonic()
    t_end = t_start + cfg["duration"]
    n = cfg["clients"]
    tasks = [
        ingest_client(k, cfg, server.port, pool[k::n], state, t_end)
        for k in range(n)
    ]
    kinds = ("mid_frame", "truncated", "slowloris")
    tasks.extend(
        fault_client(
            kinds[k % len(kinds)], cfg, server.port, state, t_end, k
        )
        for k in range(cfg["fault_clients"])
    )
    tasks.append(staleness_sampler(server.port, state, t_end))
    if cfg["kill_fraction"] is not None:
        tasks.append(kill_and_restore(server, cfg, t_start, state))
    await asyncio.gather(*tasks)
    state.events["traffic_seconds"] = round(time.monotonic() - t_start, 3)


def verify_recovery(cfg: dict, store_dir: str, state: SoakState) -> dict:
    """Restore the store in-process and check the two soak invariants."""
    service = TruthService.restore(store_dir)
    try:
        service.drain(timeout=120.0)
        snapshot = service.snapshot()
        replayed = service.replay_dataset(snapshot.watermark)
        offline = TDAC(create(cfg["algorithm"]), config=service.config).run(
            replayed
        )
        identical = (
            dict(snapshot.predictions) == dict(offline.result.predictions)
            and dict(snapshot.source_trust)
            == dict(offline.result.source_trust)
            and snapshot.partition == offline.partition
        )
        corpus = {
            (c.source, c.object, c.attribute): c.value
            for c in replayed.iter_claims()
        }
        lost = sum(
            1
            for claim in state.acked
            if corpus.get(
                (claim["source"], claim["object"], claim["attribute"])
            )
            != claim["value"]
        )
        return {
            "snapshot_bit_identical": identical,
            "acked_claims": len(state.acked),
            "lost_acked_claims": lost,
            "query_mismatches": state.query_mismatches,
            "watermark": snapshot.watermark,
            "version": snapshot.version,
            "corpus_claims": len(corpus),
        }
    finally:
        service.stop()


def _percentile(values: list[float], q: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[index]


def run_soak(config_name: str, overrides: dict | None = None) -> dict:
    cfg = dict(CONFIGS[config_name])
    cfg.update(overrides or {})
    pool = build_claim_pool(cfg["pool_limit"], cfg["seed"])
    state = SoakState()
    store_dir = tempfile.mkdtemp(prefix="bench-serving-store-")
    port = free_port()
    server = ServerProcess(cfg, port, store_dir)
    try:
        server.launch()
        asyncio.run(drive_traffic(cfg, server, pool, state))
        drained = server.terminate_and_wait(
            timeout=cfg["drain_timeout"] + 120.0
        )
        verification = verify_recovery(cfg, store_dir, state)
    except BaseException:
        log = Path(store_dir) / "server-stderr.log"
        if log.exists():
            tail = log.read_text()[-4000:]
            if tail.strip():
                print(f"--- server stderr tail ---\n{tail}", file=sys.stderr)
        raise
    finally:
        if server.proc is not None and server.proc.poll() is None:
            server.proc.kill()
            server.proc.communicate()
        shutil.rmtree(store_dir, ignore_errors=True)

    duration = state.events.get("traffic_seconds", cfg["duration"])
    pending = [s["pending_claims"] for s in state.samples]
    record = {
        "schema": "tdac-bench-serving/v1",
        "config": config_name,
        "knobs": cfg,
        "clients": cfg["clients"],
        "fault_clients": cfg["fault_clients"],
        "duration_seconds": duration,
        "offered_claims": state.offered,
        "acked_claims": len(state.acked),
        "rejected_responses": state.rejected_responses,
        "client_failures": state.client_failures,
        "queries": state.queries,
        "sustained_claims_per_second": round(
            len(state.acked) / duration, 3
        ),
        "ingest_latency_seconds": {
            "count": len(state.latencies),
            "p50": round(_percentile(state.latencies, 0.50), 6),
            "p90": round(_percentile(state.latencies, 0.90), 6),
            "p99": round(_percentile(state.latencies, 0.99), 6),
            "max": round(max(state.latencies), 6)
            if state.latencies
            else 0.0,
        },
        "snapshot_staleness": {
            "samples": len(state.samples),
            "pending_claims_mean": round(
                sum(pending) / len(pending), 3
            )
            if pending
            else 0.0,
            "pending_claims_max": max(pending) if pending else 0,
            "final_watermark": state.samples[-1]["watermark"]
            if state.samples
            else 0,
        },
        "client_totals": {
            key: sum(s.get(key, 0) for s in state.client_stats)
            for key in (
                "requests",
                "responses",
                "retries",
                "reconnects",
                "overloaded",
                "failures",
            )
        },
        "faults_injected": dict(state.fault_counters),
        "kill": {
            "killed_at_seconds": state.events.get("killed_at_seconds"),
            "restart_seconds": state.events.get("restart_seconds"),
        },
        # Two views of the server counters: the drained event covers
        # the final (post-restore) process only; the last stats sample
        # caught the busiest live process before the drain.
        "net": drained.get("net", {}),
        "net_last_sample": next(
            (
                s["net"]
                for s in reversed(state.samples)
                if s.get("net", {}).get("net.requests")
            ),
            {},
        ),
        "verification": verification,
    }
    failures = []
    if not verification["snapshot_bit_identical"]:
        failures.append("recovered snapshot diverged from offline TDAC.run")
    if verification["lost_acked_claims"]:
        failures.append(
            f"{verification['lost_acked_claims']} acked claims lost"
        )
    if verification["query_mismatches"]:
        failures.append(
            f"{verification['query_mismatches']} query mismatches"
        )
    if not state.acked:
        failures.append("soak acked zero claims")
    record["ok"] = not failures
    record["failures"] = failures
    return record


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--config", choices=sorted(CONFIGS), default="smoke")
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT)
    parser.add_argument("--clients", type=int, default=None)
    parser.add_argument("--duration", type=float, default=None)
    args = parser.parse_args(argv)
    overrides = {}
    if args.clients is not None:
        overrides["clients"] = args.clients
    if args.duration is not None:
        overrides["duration"] = args.duration
    record = run_soak(args.config, overrides)
    args.output.parent.mkdir(parents=True, exist_ok=True)
    args.output.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    print(json.dumps(record, indent=2, sort_keys=True))
    if not record["ok"]:
        print("FAILED: " + "; ".join(record["failures"]), file=sys.stderr)
        return 1
    return 0


def test_serving_bench_smoke(artifact_dir, benchmark):
    """Pytest entry: the scaled-down soak must hold both invariants."""
    from conftest import run_once

    record = run_once(benchmark, run_soak, "smoke")
    (artifact_dir / "BENCH_serving_smoke.json").write_text(
        json.dumps(record, indent=2, sort_keys=True) + "\n"
    )
    assert record["ok"], record["failures"]


if __name__ == "__main__":
    sys.exit(main())
