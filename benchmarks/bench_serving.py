"""Load/soak harness for the network serving stack.

Drives a ``repro serve --listen`` subprocess with Poisson open-loop
traffic from many concurrent asyncio clients replaying the
stocks/flights/exam simulators (the conflicting-source scenarios of the
truth-discovery evaluations), layered with fault injection:

* **mid-frame disconnects** — clients that vanish halfway through a
  request line (torn frames);
* **byte-truncated writes** — framed lines whose tail bytes are missing
  (malformed JSON, answered loudly);
* **slow-loris clients** — one byte every couple of seconds, never
  completing a frame (cut by the server's idle timeout);
* **kill-and-restore** — the serving process is SIGKILLed mid-soak and
  relaunched over the same ``--store-dir``, exercising WAL recovery
  while live clients reconnect with capped exponential backoff.

After the soak the server is drained with SIGTERM and the store is
re-opened in-process via ``TruthService.restore()``; the harness then
asserts the two invariants the serving stack promises before reporting
any numbers:

1. **no lost acked claims** — every claim batch a client saw
   ``{"ok": true}`` for is present in the recovered corpus;
2. **bit-identity** — the recovered snapshot equals an offline
   ``TDAC.run`` over the accumulated claim log, field for field.

The emitted JSON records sustained claims/sec, p50/p90/p99 ingest
latency, snapshot staleness (pending-claims lag sampled during the
soak), fault/overload counters and the kill/restart timeline.

Entry points: standalone (``make bench-serving-smoke`` runs ``--config
smoke``; ``--config soak`` produced the committed BENCH_serving.json)
and pytest (collected with the bench suite, runs the smoke config).

The sharded serving path has two further modes:

* ``--mode shard-scaling`` — closed-loop in-process ingest against a
  :class:`ShardRouter` at 1/2/4 shards over the same corpus and batch
  stream, asserting merged bit-identity at every shard count *before*
  reporting, and recording the scaling curve under the
  ``shard_scaling`` key of BENCH_serving.json (the soak record is
  preserved).  Per-batch refits cover only the owning shard's slice of
  the corpus, so throughput scales with shard count even on one core.
* ``--mode shard-smoke`` — a deterministic 2-shard × 2-tenant soak
  through :class:`TenantRegistry` with a mid-soak ``crash_shard`` /
  ``restore_shard`` fault injection, asserting zero acked-claim loss
  and per-tenant merged bit-identity (``make bench-sharding-smoke``).
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import json
import os
import random
import select
import shutil
import socket
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from repro.algorithms import create
from repro.core import TDAC, TDACConfig
from repro.data import Claim, Dataset
from repro.datasets.exam import make_exam
from repro.datasets.flights import make_flights
from repro.datasets.stocks import make_stocks
from repro.serving import (
    AsyncTruthClient,
    RetryPolicy,
    ServiceConfig,
    ServiceOverloadedError,
    ShardRouter,
    TenantRegistry,
    TruthClientError,
    TruthService,
)

SRC = Path(__file__).resolve().parents[1] / "src"
DEFAULT_OUTPUT = Path(__file__).resolve().parents[1] / "BENCH_serving.json"

CONFIGS = {
    # Scaled-down soak for `make bench-serving-smoke` / CI: ~30s wall.
    "smoke": {
        "clients": 24,
        "fault_clients": 4,
        "duration": 20.0,
        "rate_hz": 2.0,
        "kill_fraction": 0.4,
        "pool_limit": 1_200,
        "batch_max": 3,
        "algorithm": "MajorityVote",
        "dataset": "DS1",
        "scale": 0.05,
        "seed": 0,
        "max_batch_size": 256,
        "max_wait_ms": 25.0,
        "queue_capacity": 2_048,
        "snapshot_every": 8,
        "idle_timeout": 15.0,
        "drain_timeout": 30.0,
        "k_max": 6,
        "n_init": 2,
    },
    # The committed BENCH_serving.json: >=100 concurrent clients.  The
    # kill lands early enough that the WAL-replay restore (tens of
    # seconds at this corpus size) still leaves a live post-restart
    # phase with reconnected clients.
    "soak": {
        "clients": 120,
        "fault_clients": 12,
        "duration": 120.0,
        "rate_hz": 2.0,
        "kill_fraction": 0.33,
        "pool_limit": 12_000,
        "batch_max": 3,
        "algorithm": "MajorityVote",
        "dataset": "DS1",
        "scale": 0.05,
        "seed": 0,
        "max_batch_size": 512,
        "max_wait_ms": 25.0,
        "queue_capacity": 8_192,
        "snapshot_every": 4,
        "idle_timeout": 15.0,
        "drain_timeout": 60.0,
        "k_max": 6,
        "n_init": 2,
    },
}


# ----------------------------------------------------------------------
# Workload
# ----------------------------------------------------------------------


def build_claim_pool(limit: int, seed: int) -> list[dict]:
    """Wire-format claims replaying the three real-data simulators.

    Identifier namespaces are prefixed per corpus so the streams never
    conflict with each other (or the initial corpus) at the one-truth
    level — conflicts *within* each simulator's sources are the point.
    """
    corpora = [
        ("stocks", make_stocks(n_objects=60, seed=seed).dataset),
        ("flights", make_flights(n_objects=60, seed=seed).dataset),
        ("exam", make_exam(n_attributes=32, seed=seed)),
    ]
    pool = []
    for name, ds in corpora:
        for claim in ds.iter_claims():
            pool.append(
                {
                    "source": f"{name}/{claim.source}",
                    "object": f"{name}/{claim.object}",
                    "attribute": f"{name}/{claim.attribute}",
                    "value": claim.value,
                }
            )
    rng = random.Random(seed)
    rng.shuffle(pool)
    return pool[:limit]


class SoakState:
    """Shared counters every client task reports into."""

    def __init__(self) -> None:
        self.acked: list[dict] = []
        self.latencies: list[float] = []
        self.offered = 0
        self.rejected_responses = 0
        self.client_failures = 0
        self.queries = 0
        self.query_mismatches = 0
        self.client_stats: list[dict] = []
        self.fault_counters = {
            "mid_frame": 0,
            "truncated": 0,
            "slowloris": 0,
        }
        self.samples: list[dict] = []
        self.events: dict = {}


def _client_retry() -> RetryPolicy:
    # Generous: must ride out the kill-and-restore window mid-soak.
    return RetryPolicy(
        max_attempts=50,
        base_backoff_seconds=0.05,
        max_backoff_seconds=1.0,
        max_retry_after_seconds=2.0,
    )


async def ingest_client(
    k: int,
    cfg: dict,
    port: int,
    claims: list[dict],
    state: SoakState,
    t_end: float,
) -> None:
    rng = random.Random(cfg["seed"] * 7_919 + k)
    client = AsyncTruthClient(
        "127.0.0.1",
        port,
        connect_timeout=2.0,
        request_timeout=60.0,
        retry=_client_retry(),
    )
    acked_here: list[dict] = []
    idx = 0
    try:
        while True:
            await asyncio.sleep(rng.expovariate(cfg["rate_hz"]))
            if time.monotonic() >= t_end:
                break
            if idx >= len(claims) or (acked_here and rng.random() < 0.1):
                # Interleave reads: verify a claim this client was acked.
                if not acked_here:
                    continue
                probe = rng.choice(acked_here)
                try:
                    answer = await client.query(
                        probe["object"], probe["attribute"]
                    )
                except TruthClientError:
                    state.client_failures += 1
                    continue
                state.queries += 1
                # An acked claim's fact must exist in every later
                # snapshot (its value is the *resolved* truth, which may
                # legitimately differ from this one source's claim).
                if not answer.get("found"):
                    state.query_mismatches += 1
                continue
            n = min(len(claims) - idx, rng.randint(1, cfg["batch_max"]))
            batch = claims[idx : idx + n]
            state.offered += n
            started = time.perf_counter()
            try:
                response = await client.request(
                    {"op": "ingest", "claims": batch}
                )
            except TruthClientError:
                # At-least-once: the batch stays at idx for a later try.
                state.client_failures += 1
                state.offered -= n
                continue
            idx += n
            if response.get("ok"):
                state.latencies.append(time.perf_counter() - started)
                state.acked.extend(batch)
                acked_here.extend(batch)
            else:
                state.rejected_responses += 1
    finally:
        state.client_stats.append(dict(client.stats))
        await client.close()


async def fault_client(
    kind: str, cfg: dict, port: int, state: SoakState, t_end: float, k: int
) -> None:
    rng = random.Random(cfg["seed"] * 104_729 + k)
    while time.monotonic() < t_end:
        await asyncio.sleep(rng.uniform(0.5, 1.5))
        try:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection("127.0.0.1", port), 2.0
            )
        except (ConnectionError, OSError, asyncio.TimeoutError):
            continue  # server mid-restart; faults resume afterwards
        try:
            if kind == "mid_frame":
                writer.write(b'{"op": "ingest", "claims": [{"sou')
                await writer.drain()
                await asyncio.sleep(rng.uniform(0.05, 0.2))
                writer.transport.abort()
            elif kind == "truncated":
                line = json.dumps(
                    {
                        "op": "ingest",
                        "claims": [
                            {
                                "source": "fault",
                                "object": f"trunc-{k}",
                                "attribute": "a",
                                "value": "v",
                            }
                        ],
                    }
                ).encode()
                writer.write(line[: len(line) // 2] + b"\n")
                await writer.drain()
                with contextlib.suppress(
                    asyncio.TimeoutError, ConnectionError, OSError
                ):
                    await asyncio.wait_for(reader.readline(), 2.0)
                writer.close()
            elif kind == "slowloris":
                payload = b'{"op": "stats"}\n'
                for byte in payload:
                    if time.monotonic() >= t_end:
                        break
                    writer.write(bytes([byte]))
                    await writer.drain()
                    await asyncio.sleep(2.0)
                writer.close()
            state.fault_counters[kind] += 1
        except (ConnectionError, OSError):
            continue


async def staleness_sampler(
    port: int, state: SoakState, t_end: float, interval: float = 0.5
) -> None:
    client = AsyncTruthClient(
        "127.0.0.1",
        port,
        connect_timeout=1.0,
        request_timeout=10.0,
        retry=RetryPolicy(max_attempts=2, base_backoff_seconds=0.05),
    )
    started = time.monotonic()
    try:
        while time.monotonic() < t_end:
            try:
                response = await client.request({"op": "stats"})
            except TruthClientError:
                await asyncio.sleep(interval)
                continue
            if response.get("ok"):
                stats = response["stats"]
                state.samples.append(
                    {
                        "t": round(time.monotonic() - started, 3),
                        "pending_claims": stats["pending_claims"],
                        "watermark": stats["watermark"],
                        "version": stats["version"],
                        "net": stats.get("net", {}),
                    }
                )
            await asyncio.sleep(interval)
    finally:
        await client.close()


# ----------------------------------------------------------------------
# Server process management
# ----------------------------------------------------------------------


def free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


class ServerProcess:
    """The ``repro serve --listen`` subprocess under test."""

    def __init__(self, cfg: dict, port: int, store_dir: str) -> None:
        self.cfg = cfg
        self.port = port
        self.store_dir = store_dir
        self.proc: subprocess.Popen | None = None

    def launch(self, timeout: float = 120.0) -> None:
        cfg = self.cfg
        cmd = [
            sys.executable,
            "-m",
            "repro",
            "serve",
            cfg["algorithm"],
            cfg["dataset"],
            "--scale",
            str(cfg["scale"]),
            "--seed",
            str(cfg["seed"]),
            "--listen",
            f"127.0.0.1:{self.port}",
            "--store-dir",
            self.store_dir,
            "--max-batch-size",
            str(cfg["max_batch_size"]),
            "--max-wait-ms",
            str(cfg["max_wait_ms"]),
            "--queue-capacity",
            str(cfg["queue_capacity"]),
            "--snapshot-every",
            str(cfg["snapshot_every"]),
            "--idle-timeout",
            str(cfg["idle_timeout"]),
            "--drain-timeout",
            str(cfg["drain_timeout"]),
            # Bound the per-refit clustering sweep: the soak keeps
            # growing the attribute set, and an unbounded k-sweep makes
            # refit (and hence WAL replay on restore) cost balloon.
            "--k-max",
            str(cfg["k_max"]),
            "--n-init",
            str(cfg["n_init"]),
        ]
        env = dict(os.environ)
        env["PYTHONPATH"] = str(SRC)
        # Append-mode stderr log survives kills and relaunches — the
        # first place to look when a soak goes sideways.
        with open(
            Path(self.store_dir) / "server-stderr.log", "ab"
        ) as stderr_log:
            self.proc = subprocess.Popen(
                cmd,
                stdout=subprocess.PIPE,
                stderr=stderr_log,
                env=env,
            )
        event = self._read_event(timeout)
        if event.get("event") != "listening":
            raise RuntimeError(f"expected listening event, got {event!r}")

    def _read_event(self, timeout: float) -> dict:
        assert self.proc is not None and self.proc.stdout is not None
        deadline = time.monotonic() + timeout
        buf = b""
        stream = self.proc.stdout
        while time.monotonic() < deadline:
            if self.proc.poll() is not None:
                raise RuntimeError(
                    f"server exited early (rc={self.proc.returncode})"
                )
            ready, _, _ = select.select([stream], [], [], 0.25)
            if not ready:
                continue
            chunk = stream.readline()
            if not chunk:
                continue
            buf = chunk
            return json.loads(buf)
        raise TimeoutError("server never announced its listening port")

    def kill(self) -> None:
        assert self.proc is not None
        self.proc.kill()  # SIGKILL: no drain, no final checkpoint
        self.proc.wait()

    def terminate_and_wait(self, timeout: float = 120.0) -> dict:
        """SIGTERM -> graceful drain; returns the drained event."""
        assert self.proc is not None
        self.proc.terminate()
        out, _ = self.proc.communicate(timeout=timeout)
        if self.proc.returncode != 0:
            raise RuntimeError(
                f"server drain failed (rc={self.proc.returncode})"
            )
        for line in reversed(out.decode().splitlines()):
            with contextlib.suppress(json.JSONDecodeError):
                event = json.loads(line)
                if event.get("event") == "drained":
                    return event
        return {}


async def kill_and_restore(
    server: ServerProcess, cfg: dict, t_start: float, state: SoakState
) -> None:
    kill_at = t_start + cfg["duration"] * cfg["kill_fraction"]
    await asyncio.sleep(max(0.0, kill_at - time.monotonic()))
    server.kill()
    state.events["killed_at_seconds"] = round(
        time.monotonic() - t_start, 3
    )
    restart_started = time.monotonic()
    # Relaunch over the same store dir: the CLI auto-resumes via
    # TruthService.restore() (checkpoint + WAL tail replay).
    await asyncio.to_thread(server.launch)
    state.events["restart_seconds"] = round(
        time.monotonic() - restart_started, 3
    )


# ----------------------------------------------------------------------
# Soak + verification
# ----------------------------------------------------------------------


async def drive_traffic(
    cfg: dict, server: ServerProcess, pool: list[dict], state: SoakState
) -> None:
    t_start = time.monotonic()
    t_end = t_start + cfg["duration"]
    n = cfg["clients"]
    tasks = [
        ingest_client(k, cfg, server.port, pool[k::n], state, t_end)
        for k in range(n)
    ]
    kinds = ("mid_frame", "truncated", "slowloris")
    tasks.extend(
        fault_client(
            kinds[k % len(kinds)], cfg, server.port, state, t_end, k
        )
        for k in range(cfg["fault_clients"])
    )
    tasks.append(staleness_sampler(server.port, state, t_end))
    if cfg["kill_fraction"] is not None:
        tasks.append(kill_and_restore(server, cfg, t_start, state))
    await asyncio.gather(*tasks)
    state.events["traffic_seconds"] = round(time.monotonic() - t_start, 3)


def verify_recovery(cfg: dict, store_dir: str, state: SoakState) -> dict:
    """Restore the store in-process and check the two soak invariants."""
    service = TruthService.restore(store_dir)
    try:
        service.drain(timeout=120.0)
        snapshot = service.snapshot()
        replayed = service.replay_dataset(snapshot.watermark)
        offline = TDAC(create(cfg["algorithm"]), config=service.config).run(
            replayed
        )
        identical = (
            dict(snapshot.predictions) == dict(offline.result.predictions)
            and dict(snapshot.source_trust)
            == dict(offline.result.source_trust)
            and snapshot.partition == offline.partition
        )
        corpus = {
            (c.source, c.object, c.attribute): c.value
            for c in replayed.iter_claims()
        }
        lost = sum(
            1
            for claim in state.acked
            if corpus.get(
                (claim["source"], claim["object"], claim["attribute"])
            )
            != claim["value"]
        )
        return {
            "snapshot_bit_identical": identical,
            "acked_claims": len(state.acked),
            "lost_acked_claims": lost,
            "query_mismatches": state.query_mismatches,
            "watermark": snapshot.watermark,
            "version": snapshot.version,
            "corpus_claims": len(corpus),
        }
    finally:
        service.stop()


def _percentile(values: list[float], q: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[index]


def run_soak(config_name: str, overrides: dict | None = None) -> dict:
    cfg = dict(CONFIGS[config_name])
    cfg.update(overrides or {})
    pool = build_claim_pool(cfg["pool_limit"], cfg["seed"])
    state = SoakState()
    store_dir = tempfile.mkdtemp(prefix="bench-serving-store-")
    port = free_port()
    server = ServerProcess(cfg, port, store_dir)
    try:
        server.launch()
        asyncio.run(drive_traffic(cfg, server, pool, state))
        drained = server.terminate_and_wait(
            timeout=cfg["drain_timeout"] + 120.0
        )
        verification = verify_recovery(cfg, store_dir, state)
    except BaseException:
        log = Path(store_dir) / "server-stderr.log"
        if log.exists():
            tail = log.read_text()[-4000:]
            if tail.strip():
                print(f"--- server stderr tail ---\n{tail}", file=sys.stderr)
        raise
    finally:
        if server.proc is not None and server.proc.poll() is None:
            server.proc.kill()
            server.proc.communicate()
        shutil.rmtree(store_dir, ignore_errors=True)

    duration = state.events.get("traffic_seconds", cfg["duration"])
    pending = [s["pending_claims"] for s in state.samples]
    record = {
        "schema": "tdac-bench-serving/v1",
        "config": config_name,
        "knobs": cfg,
        "clients": cfg["clients"],
        "fault_clients": cfg["fault_clients"],
        "duration_seconds": duration,
        "offered_claims": state.offered,
        "acked_claims": len(state.acked),
        "rejected_responses": state.rejected_responses,
        "client_failures": state.client_failures,
        "queries": state.queries,
        "sustained_claims_per_second": round(
            len(state.acked) / duration, 3
        ),
        "ingest_latency_seconds": {
            "count": len(state.latencies),
            "p50": round(_percentile(state.latencies, 0.50), 6),
            "p90": round(_percentile(state.latencies, 0.90), 6),
            "p99": round(_percentile(state.latencies, 0.99), 6),
            "max": round(max(state.latencies), 6)
            if state.latencies
            else 0.0,
        },
        "snapshot_staleness": {
            "samples": len(state.samples),
            "pending_claims_mean": round(
                sum(pending) / len(pending), 3
            )
            if pending
            else 0.0,
            "pending_claims_max": max(pending) if pending else 0,
            "final_watermark": state.samples[-1]["watermark"]
            if state.samples
            else 0,
        },
        "client_totals": {
            key: sum(s.get(key, 0) for s in state.client_stats)
            for key in (
                "requests",
                "responses",
                "retries",
                "reconnects",
                "overloaded",
                "failures",
            )
        },
        "faults_injected": dict(state.fault_counters),
        "kill": {
            "killed_at_seconds": state.events.get("killed_at_seconds"),
            "restart_seconds": state.events.get("restart_seconds"),
        },
        # Two views of the server counters: the drained event covers
        # the final (post-restore) process only; the last stats sample
        # caught the busiest live process before the drain.
        "net": drained.get("net", {}),
        "net_last_sample": next(
            (
                s["net"]
                for s in reversed(state.samples)
                if s.get("net", {}).get("net.requests")
            ),
            {},
        ),
        "verification": verification,
    }
    failures = []
    if not verification["snapshot_bit_identical"]:
        failures.append("recovered snapshot diverged from offline TDAC.run")
    if verification["lost_acked_claims"]:
        failures.append(
            f"{verification['lost_acked_claims']} acked claims lost"
        )
    if verification["query_mismatches"]:
        failures.append(
            f"{verification['query_mismatches']} query mismatches"
        )
    if not state.acked:
        failures.append("soak acked zero claims")
    record["ok"] = not failures
    record["failures"] = failures
    return record


# ----------------------------------------------------------------------
# Sharded serving: scaling curve + tenant fault-injection smoke
# ----------------------------------------------------------------------

SHARD_CONFIGS = {
    # Committed shard_scaling entry in BENCH_serving.json.
    "scaling": {
        "stocks_objects": 30,
        "flights_objects": 30,
        "exam_attributes": 32,
        "batches": 24,
        "batch_size": 4,
        "shard_counts": (1, 2, 4),
        "seed": 0,
        # k_min == k_max pins the partition at 8 blocks: enough units
        # of placement for 4 shards to each own a real slice.
        "k_blocks": 8,
        "n_init": 2,
    },
    # Scaled-down variant for pytest / CI.
    "scaling_smoke": {
        "stocks_objects": 12,
        "flights_objects": 12,
        "exam_attributes": 32,
        "batches": 12,
        "batch_size": 3,
        "shard_counts": (1, 4),
        "seed": 0,
        "k_blocks": 8,
        "n_init": 2,
    },
    # 2-shard x 2-tenant soak with a mid-soak shard kill.
    "shard_smoke": {
        "stocks_objects": 12,
        "flights_objects": 12,
        "exam_attributes": 32,
        "batches_per_tenant": 10,
        "batch_size": 3,
        "n_shards": 2,
        "seed": 0,
        "k_blocks": 8,
        "n_init": 2,
    },
}


def build_shard_corpus(cfg: dict) -> Dataset:
    """The scaling corpus: three simulators fused into one wide dataset.

    Prefixed identifier namespaces keep the simulators disjoint at the
    one-truth level while giving the attribute partition (pinned at
    ``k_blocks`` blocks) enough independent groups to spread across
    shards.
    """
    corpora = [
        ("stocks", make_stocks(n_objects=cfg["stocks_objects"],
                               seed=cfg["seed"]).dataset),
        ("flights", make_flights(n_objects=cfg["flights_objects"],
                                 seed=cfg["seed"]).dataset),
        ("exam", make_exam(n_attributes=cfg["exam_attributes"],
                           seed=cfg["seed"])),
    ]
    claims = []
    for name, ds in corpora:
        for c in ds.iter_claims():
            claims.append(
                Claim(f"{name}/{c.source}", f"{name}/{c.object}",
                      f"{name}/{c.attribute}", c.value)
            )
    return Dataset((), (), (), {}, name="shard-bench").extended(claims)


def _shard_tdac_config(cfg: dict) -> TDACConfig:
    return TDACConfig(
        seed=cfg["seed"],
        k_min=cfg["k_blocks"],
        k_max=cfg["k_blocks"],
        n_init=cfg["n_init"],
    )


def _fresh_batches(
    initial: Dataset, count: int, size: int, tag: str = "new"
) -> list[list[Claim]]:
    """Per-attribute batches of fresh objects, cycling the attributes.

    One attribute per batch means one owning shard per batch, so the
    closed-loop writer measures pure per-shard refit cost.
    """
    attrs = list(initial.attributes)
    srcs = list(initial.sources)
    return [
        [
            Claim(srcs[(b + i) % len(srcs)], f"{tag}-{b}-{i}",
                  attrs[b % len(attrs)], f"v-{tag}-{b}-{i}")
            for i in range(size)
        ]
        for b in range(count)
    ]


def run_shard_scaling(
    config_name: str = "scaling", overrides: dict | None = None
) -> dict:
    """Closed-loop ingest at each shard count; identity gates the report.

    The merged view is refreshed once after the timed window (the
    router's lazy-merge default keeps it off the ingest hot path) and
    compared bit-for-bit against an offline ``TDAC.run`` over the
    replayed log before any throughput number is recorded.
    """
    cfg = dict(SHARD_CONFIGS[config_name])
    cfg.update(overrides or {})
    tdac_config = _shard_tdac_config(cfg)
    initial = build_shard_corpus(cfg)
    batches = _fresh_batches(initial, cfg["batches"], cfg["batch_size"])
    total_claims = sum(len(b) for b in batches)
    runs = []
    for n_shards in cfg["shard_counts"]:
        router = ShardRouter(
            create("MajorityVote"),
            initial,
            n_shards=n_shards,
            config=tdac_config,
            service_config=ServiceConfig(max_wait_ms=1.0, max_batch_size=8),
        )
        router.start()
        try:
            if n_shards > 1:
                # Greedy block placement beats hash homes for a corpus
                # whose blocks straddle; the hand-off is exact.
                router.rebalance()
            started = time.perf_counter()
            for batch in batches:
                router.ingest(batch, wait=True)
            router.drain()
            elapsed = time.perf_counter() - started
            merged = router.snapshot()
            offline = TDAC(create("MajorityVote"), config=tdac_config).run(
                router.replay_dataset(merged.watermark)
            )
            identical = (
                dict(merged.predictions) == dict(offline.result.predictions)
                and dict(merged.source_trust)
                == dict(offline.result.source_trust)
                and merged.partition == offline.partition
            )
            stats = router.stats
            runs.append(
                {
                    "shards": n_shards,
                    "ingest_seconds": round(elapsed, 3),
                    "claims_per_second": round(total_claims / elapsed, 3),
                    "snapshot_bit_identical": identical,
                    "watermark": merged.watermark,
                    "skew": round(stats["skew"], 3),
                    "exceptions": stats["exceptions"],
                }
            )
        finally:
            router.stop()
    base = runs[0]["claims_per_second"]
    for run in runs:
        run["speedup_vs_1_shard"] = round(run["claims_per_second"] / base, 3)
    top = runs[-1]
    failures = []
    for run in runs:
        if not run["snapshot_bit_identical"]:
            failures.append(
                f"{run['shards']}-shard merged view diverged from offline run"
            )
    if top["shards"] >= 4 and top["speedup_vs_1_shard"] < 1.8:
        failures.append(
            f"4-shard speedup {top['speedup_vs_1_shard']}x below 1.8x floor"
        )
    return {
        "schema": "tdac-bench-shard-scaling/v1",
        "config": config_name,
        "knobs": cfg,
        "corpus_claims": sum(1 for _ in initial.iter_claims()),
        "corpus_attributes": len(initial.attributes),
        "ingested_claims": total_claims,
        "runs": runs,
        "ok": not failures,
        "failures": failures,
    }


def run_shard_smoke(overrides: dict | None = None) -> dict:
    """2 shards x 2 tenants with a mid-soak shard kill: zero acked loss.

    Both tenants share one engine (same dataset/config key); the writer
    alternates tenant batches, kills one shard a third of the way in,
    restores it two thirds in, and retries rejected batches — the
    at-least-once contract clients are promised.  Afterwards every
    acked claim must be in the replayed corpus and each tenant's merged
    view bit-identical to the offline run.
    """
    cfg = dict(SHARD_CONFIGS["shard_smoke"])
    cfg.update(overrides or {})
    tdac_config = _shard_tdac_config(cfg)
    initial = build_shard_corpus(cfg)
    per_tenant = cfg["batches_per_tenant"]
    schedules = {
        "alice": _fresh_batches(initial, per_tenant, cfg["batch_size"],
                                tag="alice"),
        "bob": _fresh_batches(initial, per_tenant, cfg["batch_size"],
                              tag="bob"),
    }
    acked: dict[str, list[Claim]] = {"alice": [], "bob": []}
    rejected_ingests = 0
    store_dir = tempfile.mkdtemp(prefix="bench-sharding-store-")
    kill_at = per_tenant // 3
    restore_at = (2 * per_tenant) // 3
    events: dict = {}
    try:
        with TenantRegistry(
            store_root=store_dir,
            n_shards=cfg["n_shards"],
            service_config=ServiceConfig(max_wait_ms=1.0, max_batch_size=8),
        ) as registry:
            handles = {
                name: registry.register(
                    name, create("MajorityVote"), initial,
                    config=tdac_config,
                )
                for name in ("alice", "bob")
            }
            engine = handles["alice"].engine
            assert engine is handles["bob"].engine
            victim = engine.shard_of(
                schedules["alice"][kill_at][0].attribute
            )
            pending = {
                name: list(enumerate(schedule))
                for name, schedule in schedules.items()
            }
            for step in range(per_tenant):
                if step == kill_at:
                    engine.crash_shard(victim)
                    events["killed_shard"] = victim
                    events["killed_at_step"] = step
                if step == restore_at:
                    engine.restore_shard(victim)
                    events["restored_at_step"] = step
                for name, handle in handles.items():
                    still = []
                    for index, batch in pending[name]:
                        if index > step:
                            still.append((index, batch))
                            continue
                        try:
                            handle.ingest(batch, wait=True)
                        except ServiceOverloadedError:
                            # Down shard: keep the batch for a retry
                            # after the restore, like a real client.
                            rejected_ingests += 1
                            still.append((index, batch))
                            continue
                        acked[name].extend(batch)
                    pending[name] = still
            # Post-restore: retry everything that was rejected.
            for name, handle in handles.items():
                for _, batch in pending[name]:
                    handle.ingest(batch, wait=True)
                    acked[name].extend(batch)
                pending[name] = []
            verification = {}
            failures = []
            merged = handles["alice"].snapshot()
            offline = TDAC(
                create("MajorityVote"), config=tdac_config
            ).run(handles["alice"].replay_dataset(merged.watermark))
            identical = dict(merged.predictions) == dict(
                offline.result.predictions
            )
            if not identical:
                failures.append("merged view diverged from offline run")
            corpus = {
                (c.source, c.object, c.attribute): c.value
                for c in handles["alice"].replay_dataset().iter_claims()
            }
            lost = sum(
                1
                for batches_acked in acked.values()
                for claim in batches_acked
                if corpus.get(
                    (claim.source, claim.object, claim.attribute)
                ) != claim.value
            )
            if lost:
                failures.append(f"{lost} acked claims lost")
            if not rejected_ingests:
                failures.append(
                    "shard kill never rejected a batch; fault not exercised"
                )
            stats = engine.stats
            verification = {
                "snapshot_bit_identical": identical,
                "acked_claims": sum(len(v) for v in acked.values()),
                "lost_acked_claims": lost,
                "rejected_ingests": rejected_ingests,
                "watermark": merged.watermark,
                "shard_crashes": stats["shard_crashes"],
                "shard_restores": stats["shard_restores"],
                "tenants": {
                    name: handle.stats["applied_claims"]
                    for name, handle in handles.items()
                },
            }
    finally:
        shutil.rmtree(store_dir, ignore_errors=True)
    return {
        "schema": "tdac-bench-shard-smoke/v1",
        "knobs": cfg,
        "events": events,
        "verification": verification,
        "ok": not failures,
        "failures": failures,
    }


def _merge_bench_record(output: Path, key: str, record: dict) -> dict:
    """Update one top-level section of BENCH_serving.json in place.

    The file's top level is the soak record plus named side sections
    (``shard_scaling``); each mode owns its section and preserves the
    others, so re-running one bench never erases another's numbers.
    """
    merged: dict = {}
    if output.exists():
        with contextlib.suppress(json.JSONDecodeError):
            merged = json.loads(output.read_text())
    if key == "soak":
        preserved = {
            k: merged[k] for k in ("shard_scaling",) if k in merged
        }
        merged = {**record, **preserved}
    else:
        merged[key] = record
    output.parent.mkdir(parents=True, exist_ok=True)
    output.write_text(json.dumps(merged, indent=2, sort_keys=True) + "\n")
    return merged


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--mode",
        choices=("soak", "shard-scaling", "shard-smoke"),
        default="soak",
    )
    parser.add_argument("--config", default=None)
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT)
    parser.add_argument("--clients", type=int, default=None)
    parser.add_argument("--duration", type=float, default=None)
    args = parser.parse_args(argv)
    if args.mode == "shard-scaling":
        record = run_shard_scaling(args.config or "scaling")
        _merge_bench_record(args.output, "shard_scaling", record)
    elif args.mode == "shard-smoke":
        # Diagnostic/gate only: smoke numbers don't belong in the
        # committed bench file.
        record = run_shard_smoke()
    else:
        overrides = {}
        if args.clients is not None:
            overrides["clients"] = args.clients
        if args.duration is not None:
            overrides["duration"] = args.duration
        record = run_soak(args.config or "smoke", overrides)
        _merge_bench_record(args.output, "soak", record)
    print(json.dumps(record, indent=2, sort_keys=True))
    if not record["ok"]:
        print("FAILED: " + "; ".join(record["failures"]), file=sys.stderr)
        return 1
    return 0


def test_serving_bench_smoke(artifact_dir, benchmark):
    """Pytest entry: the scaled-down soak must hold both invariants."""
    from conftest import run_once

    record = run_once(benchmark, run_soak, "smoke")
    (artifact_dir / "BENCH_serving_smoke.json").write_text(
        json.dumps(record, indent=2, sort_keys=True) + "\n"
    )
    assert record["ok"], record["failures"]


def test_shard_scaling_smoke(artifact_dir, benchmark):
    """Pytest entry: sharded ingest must scale and stay bit-identical."""
    from conftest import run_once

    record = run_once(benchmark, run_shard_scaling, "scaling_smoke")
    (artifact_dir / "BENCH_shard_scaling_smoke.json").write_text(
        json.dumps(record, indent=2, sort_keys=True) + "\n"
    )
    assert record["ok"], record["failures"]


def test_sharding_fault_smoke(artifact_dir, benchmark):
    """Pytest entry: shard kill mid-soak must lose zero acked claims."""
    from conftest import run_once

    record = run_once(benchmark, run_shard_smoke)
    (artifact_dir / "BENCH_shard_smoke.json").write_text(
        json.dumps(record, indent=2, sort_keys=True) + "\n"
    )
    assert record["ok"], record["failures"]


if __name__ == "__main__":
    sys.exit(main())
