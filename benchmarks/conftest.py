"""Shared helpers for the benchmark suite.

Every bench regenerates one of the paper's tables or figures, prints it,
and also writes it under ``benchmarks/output/`` so the regenerated
artefacts survive pytest's output capture and can be diffed against
EXPERIMENTS.md.
"""

from __future__ import annotations

from pathlib import Path

import pytest

OUTPUT_DIR = Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def artifact_dir() -> Path:
    OUTPUT_DIR.mkdir(exist_ok=True)
    return OUTPUT_DIR


@pytest.fixture
def record_artifact(artifact_dir):
    """Print a regenerated artefact and persist it to disk."""

    def _record(name: str, text: str) -> None:
        print(f"\n{text}\n")
        (artifact_dir / f"{name}.txt").write_text(text + "\n")

    return _record


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark timing.

    The paper's experiments are minutes-long pipelines; re-running them
    the tens of times pytest-benchmark defaults to would be pointless.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
