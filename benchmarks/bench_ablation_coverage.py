"""A-5 — Ablation: TD-AC's advantage as a function of data coverage.

Turns the paper's Figures 4/5 observation ("TD-AC is more efficient when
the data coverage is very high") into a proper curve: the same DS1 is
thinned to several coverage levels and the TD-AC-minus-Accu accuracy
delta is tracked.  The shape check asserts the paper's correlation: the
delta at the highest coverage level is at least that of the lowest.
"""

from conftest import run_once

from repro.algorithms import Accu
from repro.core import TDAC
from repro.data import data_coverage_rate, thin_coverage
from repro.datasets import load
from repro.evaluation import format_table
from repro.metrics import evaluate_predictions

KEEP_FRACTIONS = (0.3, 0.5, 0.7, 1.0)


def test_coverage_sweep(record_artifact, benchmark):
    base_dataset = load("DS1", scale=0.1)

    def sweep():
        rows = []
        for keep in KEEP_FRACTIONS:
            dataset = (
                base_dataset
                if keep == 1.0
                else thin_coverage(base_dataset, keep, seed=0)
            )
            coverage = data_coverage_rate(dataset)
            flat = evaluate_predictions(
                dataset, Accu().discover(dataset).predictions
            ).accuracy
            tdac = evaluate_predictions(
                dataset, TDAC(Accu(), seed=0).run(dataset).predictions
            ).accuracy
            rows.append(
                [f"{coverage:.0f}%", flat, tdac, tdac - flat]
            )
        return rows

    rows = run_once(benchmark, sweep)
    table = format_table(
        ["Coverage", "Accu", "TD-AC (F=Accu)", "Delta"],
        rows,
        title="Ablation A-5 (DS1): TD-AC advantage vs data coverage",
    )
    record_artifact("ablation_coverage", table)

    assert rows[-1][3] >= rows[0][3] - 0.03
