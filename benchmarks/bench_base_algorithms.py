"""Perf harness for the vectorized claim-index engine.

Measures one traced ``TDAC.run`` twice over the same dataset — once with
the historical per-claim reference loops
(``repro.algorithms.kernels.reference_kernels()``) and once with the
vectorized engine — and emits ``BENCH_base_algorithms.json`` recording
the per-stage wall times and the speedups on the two stages the engine
targets: the ``reference`` pass and the ``block_runs`` fan-out.

The two modes run in the same process on the same loaded dataset, so the
speedup is an apples-to-apples kernel comparison; the harness *asserts*
that both modes produce bit-identical merged results (predictions,
confidences, source trust, partition) before reporting any number.  The
baseline runs first and the global value-similarity cache is cleared
before every timed run, so neither mode inherits the other's warm state.

A per-algorithm section times standalone ``discover`` calls for a
representative slice of the base algorithms under both modes.

Entry points:

* standalone — ``python benchmarks/bench_base_algorithms.py --config
  full`` regenerates the committed artefact; ``--config smoke`` is the
  ``make bench-base`` smoke run;
* pytest — runs the smoke config and asserts the artefact is produced
  and that the identity checks held.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.algorithms import (
    CRH,
    Accu,
    AccuSim,
    Sums,
    TruthFinder,
    kernels,
    similarity,
)
from repro.core import TDAC
from repro.core.config import TDACConfig
from repro.observability import SpanTracer, activate

CONFIGS = {
    # Fast enough for `make bench-base` / CI.
    "smoke": {"dataset": "DS2", "scale": 0.05},
    # Matches the committed BENCH_partition_select.json scale, so the
    # two artefacts describe the same workload.
    "full": {"dataset": "DS2", "scale": 0.4},
}

#: Engine-targeted stages; the acceptance criterion is the combined
#: speedup over their sum.
TARGET_STAGES = ("reference", "block_runs")

MICRO_ALGORITHMS = (Accu, AccuSim, TruthFinder, Sums, CRH)

DEFAULT_OUTPUT = Path(__file__).resolve().parents[1] / "BENCH_base_algorithms.json"


def _fresh_caches() -> None:
    """Drop warm state that would flatter whichever mode runs second."""
    similarity._cached_pair_similarity.cache_clear()


def _run_traced(dataset, seed: int):
    tdac = TDAC(Accu(), config=TDACConfig(seed=seed))
    tracer = SpanTracer()
    with activate(tracer):
        outcome = tdac.run(dataset)
    return outcome, tracer.stage_seconds()


def _identity_fields(outcome):
    return (
        outcome.partition,
        outcome.result.predictions,
        outcome.result.confidence,
        outcome.result.source_trust,
    )


def measure(
    dataset_name: str, scale: float, seed: int = 0, repeat: int = 3
) -> dict:
    """Baseline-vs-optimized stage times plus the bit-identity verdict."""
    from repro.datasets import load

    stage_best: dict[str, dict[str, float]] = {"baseline": {}, "optimized": {}}
    witness = {}
    for mode in ("baseline", "optimized"):  # baseline first: no warm gifts
        for _ in range(max(repeat, 1)):
            dataset = load(dataset_name, scale=scale)
            _fresh_caches()
            if mode == "baseline":
                with kernels.reference_kernels():
                    outcome, spans = _run_traced(dataset, seed)
            else:
                outcome, spans = _run_traced(dataset, seed)
            best = stage_best[mode]
            for stage, seconds in spans.items():
                best[stage] = min(best.get(stage, float("inf")), seconds)
            witness[mode] = _identity_fields(outcome)

    identical = witness["baseline"] == witness["optimized"]
    if not identical:
        raise AssertionError(
            "vectorized engine diverged from the reference loops; refusing "
            "to report speedups for a non-identical result"
        )

    speedups = {}
    for stage in TARGET_STAGES:
        base = stage_best["baseline"].get(stage, 0.0)
        opt = stage_best["optimized"].get(stage, 0.0)
        if opt > 0:
            speedups[stage] = round(base / opt, 2)
    base_sum = sum(stage_best["baseline"].get(s, 0.0) for s in TARGET_STAGES)
    opt_sum = sum(stage_best["optimized"].get(s, 0.0) for s in TARGET_STAGES)
    if opt_sum > 0:
        speedups["reference_plus_block_runs"] = round(base_sum / opt_sum, 2)

    micro = {}
    for algorithm_cls in MICRO_ALGORITHMS:
        times = {}
        results = {}
        for mode in ("baseline", "optimized"):
            best = float("inf")
            for _ in range(max(repeat, 1)):
                dataset = load(dataset_name, scale=scale)
                _fresh_caches()
                algorithm = algorithm_cls()
                started = time.perf_counter()
                if mode == "baseline":
                    with kernels.reference_kernels():
                        result = algorithm.discover(dataset)
                else:
                    result = algorithm.discover(dataset)
                best = min(best, time.perf_counter() - started)
            times[mode] = round(best, 6)
            results[mode] = (
                result.predictions,
                result.confidence,
                result.source_trust,
            )
        if results["baseline"] != results["optimized"]:
            raise AssertionError(
                f"{algorithm_cls.__name__} diverged from its reference loop"
            )
        micro[algorithm_cls.__name__] = {
            **times,
            "speedup": round(times["baseline"] / times["optimized"], 2)
            if times["optimized"] > 0
            else None,
        }

    return {
        "dataset": dataset_name,
        "scale": scale,
        "seed": seed,
        "repeat": repeat,
        "bit_identical": identical,
        "stages_seconds": {
            mode: {k: round(v, 6) for k, v in sorted(best.items())}
            for mode, best in stage_best.items()
        },
        "speedups": speedups,
        "per_algorithm_discover": micro,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--config", choices=sorted(CONFIGS), default="smoke")
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT)
    parser.add_argument("--repeat", type=int, default=3)
    args = parser.parse_args(argv)

    parameters = CONFIGS[args.config]
    record = measure(
        parameters["dataset"], parameters["scale"], repeat=args.repeat
    )
    report = {"config": args.config, "measurement": record}
    args.output.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(json.dumps(report, indent=2, sort_keys=True))
    print(f"wrote {args.output}")
    return 0


def test_base_algorithms_bench(record_artifact, benchmark, tmp_path):
    """Bench-suite entry: smoke config must emit the artefact, and the
    in-harness bit-identity assertions must have held."""
    from conftest import run_once

    output = tmp_path / "BENCH_base_algorithms.json"
    run_once(
        benchmark,
        main,
        ["--config", "smoke", "--repeat", "1", "--output", str(output)],
    )
    assert output.is_file(), "bench failed to emit BENCH_base_algorithms.json"
    report = json.loads(output.read_text())
    record = report["measurement"]
    assert record["bit_identical"] is True
    for mode in ("baseline", "optimized"):
        for stage in TARGET_STAGES:
            assert stage in record["stages_seconds"][mode], (mode, stage)
    record_artifact(
        "base_algorithms_bench", json.dumps(report, indent=2, sort_keys=True)
    )


if __name__ == "__main__":
    sys.exit(main())
