"""E-T7 — Table 7: semi-synthetic Exam with 124 attributes.

Same protocol as Table 6 on the full 124-attribute Exam.  The paper
observes TD-AC *improving* the base algorithms more often at this width
(Figure 3); the shape check asserts non-degradation on every range.
"""

import pytest
from conftest import run_once

from repro.evaluation import performance_table, semi_synthetic_experiment

RANGES = (25, 50, 100, 1000)


@pytest.mark.parametrize("range_size", RANGES)
def test_table7(range_size, record_artifact, benchmark):
    records = run_once(
        benchmark, semi_synthetic_experiment, 124, range_size
    )
    table = performance_table(
        records,
        title=f"Table 7 (Range {range_size}): semi-synthetic, 124 attributes",
    )
    record_artifact(f"table7_range{range_size}", table)

    by_name = {r.algorithm: r for r in records}
    for base in ("Accu", "TruthFinder"):
        plain = by_name[base]
        tdac = by_name[f"TD-AC (F={base})"]
        assert tdac.accuracy >= plain.accuracy - 0.05, base
