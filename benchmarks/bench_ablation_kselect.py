"""A-1 — Ablation: how should TD-AC choose k?

Compares the paper's silhouette sweep against the elbow criterion and
the gap statistic on the attribute truth vectors of DS1-DS3, measuring
how close each strategy's partition lands to the planted one.
"""

import pytest
from conftest import run_once

from repro.algorithms import Accu
from repro.clustering import K_SELECTORS
from repro.core import Partition, build_truth_vectors
from repro.datasets import load, planted_partition
from repro.evaluation import format_table
from repro.metrics import compare_partitions


@pytest.mark.parametrize("dataset_name", ["DS1", "DS2", "DS3"])
def test_k_selection_strategies(dataset_name, record_artifact, benchmark):
    dataset = load(dataset_name, scale=0.1)
    vectors = build_truth_vectors(dataset, Accu())
    planted = planted_partition(dataset_name)

    def sweep():
        outcome = {}
        for name, selector in K_SELECTORS.items():
            result = selector(vectors.matrix.astype(float), seed=0)
            outcome[name] = Partition.from_labels(
                vectors.attributes, result.labels
            )
        return outcome

    partitions = run_once(benchmark, sweep)
    rows = []
    for strategy, partition in partitions.items():
        agreement = compare_partitions(planted, partition)
        rows.append(
            [
                strategy,
                str(partition),
                f"{agreement.rand:.2f}",
                f"{agreement.adjusted_rand:.2f}",
            ]
        )
    table = format_table(
        ["Strategy", "Partition", "Rand", "ARI"],
        rows,
        title=f"Ablation A-1 ({dataset_name}): k-selection strategies",
    )
    record_artifact(f"ablation_kselect_{dataset_name.lower()}", table)

    # The silhouette sweep (the paper's choice) should always land on a
    # sane partition (positive agreement with the planted grouping).
    # The ablation's point is the comparison itself: on DS2 the elbow
    # criterion can recover the planted 3-way split exactly while
    # silhouette prefers a 2-way merge — see EXPERIMENTS.md.
    silhouette_ari = compare_partitions(
        planted, partitions["silhouette"]
    ).adjusted_rand
    assert silhouette_ari > 0.2
