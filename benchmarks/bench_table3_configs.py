"""E-T3 — Table 3: generator configurations of the synthetic datasets.

Regenerates the reliability-level table (m1, m2, m3 per dataset) and
benchmarks dataset generation itself at the paper's full scale (1000
objects, 60 000 observations).
"""

from conftest import run_once

from repro.datasets import TABLE3_LEVELS, make_synthetic
from repro.evaluation import format_table


def test_table3_reliability_levels(record_artifact, benchmark):
    generated = run_once(
        benchmark, make_synthetic, "DS1", n_objects=1000, seed=0
    )
    assert generated.dataset.n_claims == 60_000

    rows = [
        [f"m{i + 1}"] + [TABLE3_LEVELS[ds][i] for ds in ("DS1", "DS2", "DS3")]
        for i in range(3)
    ]
    table = format_table(
        ["", "DS1", "DS2", "DS3"],
        rows,
        title="Table 3: reliability levels of the synthetic configurations",
    )
    record_artifact("table3_configs", table)
