"""E-X1 — Extension: the paper's future-work comparison, realised.

The paper's Section 6 plans a comparison against "a larger set of
standard truth discovery algorithms".  This bench runs the full
registry — the paper's five plus Sums, AverageLog, Investment,
PooledInvestment, 2-Estimates, 3-Estimates, CRH and CATD — on DS1, each
alone and wrapped in TD-AC, producing the table the paper never had
room for.
"""

from conftest import run_once

from repro.algorithms import available, create
from repro.core import TDAC
from repro.datasets import load
from repro.evaluation import performance_table, run_algorithm


def test_extension_suite(record_artifact, benchmark):
    dataset = load("DS1", scale=0.1)

    def sweep():
        records = []
        for name in available():
            records.append(run_algorithm(create(name), dataset))
            records.append(
                run_algorithm(TDAC(create(name), seed=0), dataset)
            )
        return records

    records = run_once(benchmark, sweep)
    table = performance_table(
        records,
        title=(
            "Extension: all registered algorithms on DS1, flat vs TD-AC"
        ),
    )
    record_artifact("extension_suite", table)

    # Shape: TD-AC should lift (or at worst preserve) the accuracy of a
    # clear majority of base algorithms on structurally correlated data.
    lifted = 0
    pairs = 0
    by_name = {r.algorithm: r for r in records}
    for name in available():
        flat = by_name[name]
        tdac = by_name[f"TD-AC (F={name})"]
        pairs += 1
        if tdac.accuracy >= flat.accuracy - 1e-9:
            lifted += 1
    assert lifted >= pairs * 0.6
