"""A-3 — Ablation: which algorithm builds the reference truth?

TD-AC uses the same base algorithm ``F`` for the reference pass (truth
vectors) and the per-block passes.  This ablation decouples them: every
combination of reference in {MajorityVote, TruthFinder, Accu} and block
algorithm in the same set, on DS2 (the synthetic dataset where the
reference quality matters most).
"""

from conftest import run_once

from repro.algorithms import Accu, MajorityVote, TruthFinder
from repro.core import TDAC
from repro.datasets import load
from repro.evaluation import format_table
from repro.metrics import evaluate_predictions

FACTORIES = {
    "MajorityVote": MajorityVote,
    "TruthFinder": TruthFinder,
    "Accu": Accu,
}


def test_reference_vs_block_algorithm(record_artifact, benchmark):
    dataset = load("DS2", scale=0.1)

    def sweep():
        rows = []
        for ref_name, ref_factory in FACTORIES.items():
            for base_name, base_factory in FACTORIES.items():
                tdac = TDAC(
                    base_factory(), reference=ref_factory(), seed=0
                )
                outcome = tdac.run(dataset)
                report = evaluate_predictions(dataset, outcome.predictions)
                rows.append(
                    [
                        ref_name,
                        base_name,
                        str(outcome.partition),
                        report.accuracy,
                    ]
                )
        return rows

    rows = run_once(benchmark, sweep)
    table = format_table(
        ["Reference", "Block algorithm", "Partition", "Accuracy"],
        rows,
        title="Ablation A-3 (DS2): reference vs per-block algorithm",
    )
    record_artifact("ablation_base_algorithm", table)

    by_combo = {(r[0], r[1]): r[3] for r in rows}
    # Accu blocks should dominate MajorityVote blocks whatever reference
    # built the truth vectors (per-block reweighting is the whole point).
    for ref_name in FACTORIES:
        assert by_combo[(ref_name, "Accu")] >= by_combo[(ref_name, "MajorityVote")] - 0.02
