"""Refit-latency and restore-downtime harness for the exact delta path.

Streams the same claim batches through the two refit strategies the
serving layer offers and measures what the delta path buys:

1. **Refit latency** — per batch, the full-refit baseline extends the
   corpus and re-runs the whole TD-AC pipeline (``IncrementalTDAC.fit``,
   exactly what ``refit="full"`` serving does), while the delta engine
   absorbs the batch through ``IncrementalTDAC.update`` (spliced index
   compile, patched Eq. 1 matrix, certified partition reuse,
   touched-block-only base runs).  Before reporting any speedup the
   harness asserts both strategies produced bit-identical predictions,
   source trust, partition and silhouettes at every watermark — the
   numbers are only meaningful if the shortcut is exact.
2. **Restore downtime** — two identical crash-shaped stores (WAL tail
   past the last checkpoint) are restored, one with the default
   ``replay_refit="incremental"`` and one with ``replay_refit="full"``;
   the harness asserts the recovered snapshots are field-for-field
   identical and reports both wall-clocks.

The emitted JSON records per-batch refit latencies (mean/p50/max), the
restore wall-clocks, the delta engine's reuse counters and the
speedups.  ``ok`` is false unless every exactness assertion held *and*
the delta path beat the full baseline on both measures.

Entry points: standalone (``make bench-incremental-smoke`` runs
``--config smoke``; ``--config full`` produced the committed
BENCH_incremental.json) and pytest (collected with the bench suite,
runs the smoke config).
"""

from __future__ import annotations

import argparse
import json
import random
import shutil
import statistics
import sys
import tempfile
import time
from pathlib import Path

from repro.core import IncrementalTDAC, TDACConfig
from repro.core.incremental import extend_dataset
from repro.data import Claim
from repro.datasets import make_synthetic
from repro.serving import ServiceConfig, TruthService

DEFAULT_OUTPUT = Path(__file__).resolve().parents[1] / "BENCH_incremental.json"

CONFIGS = {
    # CI-sized: a few seconds, used by `make bench-incremental-smoke`.
    "smoke": {
        "n_objects": 120,
        "seed": 0,
        "batches": 6,
        "batch_size": 12,
        "restore_batches": 3,
        "algorithm": "MajorityVote",
    },
    # The committed BENCH_incremental.json: soak-scale corpus.
    "full": {
        "n_objects": 1500,
        "seed": 0,
        "batches": 12,
        "batch_size": 40,
        "restore_batches": 6,
        "algorithm": "MajorityVote",
    },
}


def make_base(name: str):
    from repro.algorithms import create

    return create(name)


def build_batches(dataset, count, size, seed):
    """Deterministic claim batches: new objects plus corpus overlap."""
    rng = random.Random(seed * 2_654_435_761 % (2**31))
    sources = list(dataset.sources)
    attributes = list(dataset.attributes)
    batches = []
    for b in range(count):
        batch, used = [], set()
        while len(batch) < size:
            s = rng.choice(sources)
            o = (
                f"stream-{b}-{rng.randint(0, size)}"
                if rng.random() < 0.7
                else rng.choice(list(dataset.objects))
            )
            a = rng.choice(attributes)
            if (s, o, a) in used or dataset.value(s, o, a) is not None:
                continue
            used.add((s, o, a))
            batch.append(Claim(s, o, a, f"v{rng.randint(0, 2)}"))
        batches.append(batch)
    return batches


def assert_outcomes_identical(label, a, b):
    failures = []
    if dict(a.predictions) != dict(b.predictions):
        failures.append("predictions")
    if dict(a.source_trust) != dict(b.source_trust):
        failures.append("source_trust")
    if a.partition != b.partition:
        failures.append("partition")
    if dict(a.silhouette_by_k) != dict(b.silhouette_by_k):
        failures.append("silhouette_by_k")
    if failures:
        raise AssertionError(f"{label}: delta diverged on {failures}")


def measure_refits(cfg: dict) -> dict:
    base_name = cfg["algorithm"]
    config = TDACConfig(seed=cfg["seed"])
    seeded = make_synthetic(
        "DS1", n_objects=cfg["n_objects"], seed=cfg["seed"]
    ).dataset
    batches = build_batches(
        seeded, cfg["batches"], cfg["batch_size"], cfg["seed"]
    )

    # Two independent streams over identical claims, so neither engine
    # warms the other's shared claim-index registry.
    full = IncrementalTDAC(make_base(base_name), config=config)
    delta = IncrementalTDAC(
        make_base(base_name), config=config, repartition_fraction=1.0
    )
    full.fit(seeded)
    delta.fit(seeded)

    full_s, delta_s = [], []
    for i, batch in enumerate(batches):
        t0 = time.perf_counter()
        full_outcome = full.fit(extend_dataset(full.dataset, batch))
        full_s.append(time.perf_counter() - t0)

        t0 = time.perf_counter()
        delta_outcome = delta.update(batch)
        delta_s.append(time.perf_counter() - t0)

        assert_outcomes_identical(f"batch {i}", delta_outcome, full_outcome)

    def summarize(xs):
        return {
            "mean_s": statistics.mean(xs),
            "p50_s": statistics.median(xs),
            "max_s": max(xs),
            "total_s": sum(xs),
        }

    return {
        "batches": len(batches),
        "claims_per_batch": cfg["batch_size"],
        "corpus_claims_start": seeded.n_claims,
        "corpus_claims_end": delta.dataset.n_claims,
        "full_refit": summarize(full_s),
        "incremental_refit": summarize(delta_s),
        "speedup": statistics.mean(full_s) / statistics.mean(delta_s),
        "watermarks_verified": len(batches),
        "engine_stats": delta.stats,
    }


def build_store(store_dir, dataset, batches, base_name, config):
    service = TruthService(
        make_base(base_name),
        dataset,
        config=config,
        store=store_dir,
        # keep the whole tail in the WAL
        service_config=ServiceConfig(
            max_wait_ms=1.0, snapshot_every=10_000
        ),
    )
    service.start()
    for batch in batches:
        service.ingest(batch, wait=True)
    service.stop(checkpoint=False)  # crash-shaped: the tail must replay


def measure_restore(cfg: dict, workdir: Path) -> dict:
    base_name = cfg["algorithm"]
    config = TDACConfig(seed=cfg["seed"])
    seeded = make_synthetic(
        "DS1", n_objects=cfg["n_objects"], seed=cfg["seed"] + 1
    ).dataset
    batches = build_batches(
        seeded, cfg["restore_batches"], cfg["batch_size"], cfg["seed"] + 1
    )
    dirs = {}
    for mode in ("incremental", "full"):
        dirs[mode] = workdir / f"store-{mode}"
        build_store(dirs[mode], seeded, batches, base_name, config)

    restored, downtimes = {}, {}
    try:
        for mode in ("incremental", "full"):
            t0 = time.perf_counter()
            restored[mode] = TruthService.restore(
                dirs[mode],
                service_config=ServiceConfig(replay_refit=mode),
            )
            downtimes[mode] = time.perf_counter() - t0
        a = restored["incremental"].snapshot()
        b = restored["full"].snapshot()
        assert_outcomes_identical("restore", a, b)
        if (a.version, a.watermark, a.dataset_fingerprint) != (
            b.version, b.watermark, b.dataset_fingerprint
        ):
            raise AssertionError("restore: version/watermark diverged")
    finally:
        for service in restored.values():
            service.stop()
    return {
        "replayed_batches": len(batches),
        "replayed_claims": len(batches) * cfg["batch_size"],
        "full_restore_s": downtimes["full"],
        "incremental_restore_s": downtimes["incremental"],
        "speedup": downtimes["full"] / downtimes["incremental"],
    }


def run_bench(config_name: str, overrides: dict | None = None) -> dict:
    cfg = dict(CONFIGS[config_name])
    cfg.update(overrides or {})
    workdir = Path(tempfile.mkdtemp(prefix="bench-incremental-"))
    failures = []
    refit = restore = None
    try:
        try:
            refit = measure_refits(cfg)
        except AssertionError as exc:
            failures.append(str(exc))
        try:
            restore = measure_restore(cfg, workdir)
        except AssertionError as exc:
            failures.append(str(exc))
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    if refit is not None and refit["speedup"] <= 1.0:
        failures.append(
            f"incremental refit not faster ({refit['speedup']:.2f}x)"
        )
    if restore is not None and restore["speedup"] <= 1.0:
        failures.append(
            f"incremental restore not faster ({restore['speedup']:.2f}x)"
        )
    return {
        "bench": "incremental",
        "config": config_name,
        "parameters": cfg,
        "refit": refit,
        "restore": restore,
        "ok": not failures,
        "failures": failures,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--config", choices=sorted(CONFIGS), default="smoke")
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT)
    args = parser.parse_args(argv)
    record = run_bench(args.config)
    args.output.parent.mkdir(parents=True, exist_ok=True)
    args.output.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    print(json.dumps(record, indent=2, sort_keys=True))
    if not record["ok"]:
        print("FAILED: " + "; ".join(record["failures"]), file=sys.stderr)
        return 1
    return 0


def test_incremental_bench_smoke(artifact_dir, benchmark):
    """Pytest entry: exactness must hold and the delta path must win."""
    from conftest import run_once

    record = run_once(benchmark, run_bench, "smoke")
    (artifact_dir / "BENCH_incremental_smoke.json").write_text(
        json.dumps(record, indent=2, sort_keys=True) + "\n"
    )
    assert record["ok"], record["failures"]


if __name__ == "__main__":
    sys.exit(main())
