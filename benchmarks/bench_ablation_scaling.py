"""A-6 — Ablation: running-time scaling (paper Section 6's concern).

The paper notes TD-AC's running time "becomes important when the number
of attributes, objects and sources is very large".  This bench sweeps
the object count of DS2 and records TD-AC's wall time split into its
phases (reference run, clustering sweep, per-block runs), verifying the
cost stays within a small multiple of one base run — the property that
separates TD-AC from the Bell-number brute force.
"""

import time

from conftest import run_once

from repro.algorithms import Accu
from repro.core import TDAC, build_truth_vectors, run_blocks
from repro.datasets import load
from repro.evaluation import format_table

OBJECT_COUNTS = (50, 100, 200, 400)


def test_runtime_scaling(record_artifact, benchmark):
    def sweep():
        rows = []
        for n_objects in OBJECT_COUNTS:
            dataset = load("DS2", scale=n_objects / 1000)
            tdac = TDAC(Accu(), seed=0)

            start = time.perf_counter()
            reference = tdac.reference_algorithm.discover(dataset)
            t_reference = time.perf_counter() - start

            start = time.perf_counter()
            vectors = build_truth_vectors(dataset, reference)
            partition, _ = tdac.select_partition(vectors)
            t_clustering = time.perf_counter() - start

            start = time.perf_counter()
            run_blocks(tdac.base, dataset, partition)
            t_blocks = time.perf_counter() - start

            total = t_reference + t_clustering + t_blocks
            rows.append(
                [
                    n_objects,
                    round(t_reference, 3),
                    round(t_clustering, 3),
                    round(t_blocks, 3),
                    round(total, 3),
                    round(total / max(t_reference, 1e-9), 1),
                ]
            )
        return rows

    rows = run_once(benchmark, sweep)
    table = format_table(
        [
            "Objects",
            "Reference (s)",
            "Clustering (s)",
            "Blocks (s)",
            "Total (s)",
            "Total / base-run",
        ],
        rows,
        title="Ablation A-6 (DS2): TD-AC runtime scaling and phase split",
    )
    record_artifact("ablation_scaling", table)

    # TD-AC stays within a small constant factor of one base run at
    # every size (the brute force is 200x+).
    for row in rows:
        assert row[-1] < 25.0
