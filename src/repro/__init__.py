"""repro — a full reproduction of *TD-AC: Efficient Data Partitioning
based Truth Discovery* (Tossou & Ba, EDBT 2021).

The package implements the paper's contribution and every substrate it
depends on, from scratch:

* :mod:`repro.data` — the (sources, attributes, objects, claims) data
  model with ground truth, IO and statistics;
* :mod:`repro.algorithms` — MajorityVote, TruthFinder, DEPEN, Accu,
  AccuSim and six further standard truth discovery algorithms;
* :mod:`repro.clustering` — k-means, silhouette, distances and
  k-selection, built without scikit-learn;
* :mod:`repro.core` — attribute truth vectors, partitions, and the TD-AC
  algorithm itself;
* :mod:`repro.baselines` — the brute-force AccuGenPartition baseline;
* :mod:`repro.datasets` — generators for every evaluation dataset;
* :mod:`repro.metrics` / :mod:`repro.evaluation` — the paper's metrics
  and table harness, plus set-based and tolerance scoring for typed
  corpora;
* :mod:`repro.scenarios` — seeded adversarial workload generators
  (copying cliques, reliability drift, late arrival) and the
  degradation sweep/leaderboard;
* :mod:`repro.observability` — span tracing and structured run reports
  for every pipeline stage;
* :mod:`repro.serving` — the long-lived :class:`TruthService`:
  micro-batched ingests, versioned snapshots, backpressure; plus the
  sharded multi-tenant layer (:class:`ShardRouter`,
  :class:`TenantRegistry`) behind the ``tdac-serve/v1`` wire schema;
* :mod:`repro.store` — durable claim WAL, versioned snapshot
  checkpoints and crash recovery for the serving layer.

Quickstart::

    from repro import TDAC, TDACConfig, Accu, datasets

    dataset = datasets.load("DS1", scale=0.1)
    outcome = TDAC(Accu(), config=TDACConfig(seed=0)).run(dataset)
    print(outcome.partition)            # the attribute clusters found
    print(outcome.result.predictions)   # fact -> resolved truth

Serving::

    from repro import Accu, TruthService

    with TruthService(Accu(), dataset) as service:
        service.ingest(new_claims, wait=True)
        print(service.query("paris", "temp").value)
"""

from repro import (
    algorithms,
    baselines,
    clustering,
    core,
    data,
    datasets,
    evaluation,
    metrics,
    observability,
    scenarios,
    serving,
    store,
)
from repro.algorithms import (
    CATD,
    CRH,
    Accu,
    SimpleLCA,
    AccuSim,
    AverageLog,
    ContinuousCATD,
    ContinuousCRH,
    ContinuousMedian,
    Depen,
    Investment,
    MajorityVote,
    PooledInvestment,
    Sums,
    ThreeEstimates,
    TruthDiscoveryAlgorithm,
    TruthDiscoveryResult,
    TruthFinder,
    TwoEstimates,
    TypeRouted,
)
from repro.baselines import AccuGenPartition
from repro.core import (
    RESULT_SCHEMA,
    TDAC,
    IncrementalTDAC,
    Partition,
    PartitionCache,
    TDACConfig,
    TDACResult,
    build_truth_vectors,
)
from repro.data import (
    CATEGORICAL,
    CONTINUOUS,
    MULTI,
    Claim,
    Dataset,
    DatasetBuilder,
    Fact,
)
from repro.execution import ExecutionPolicy
from repro.scenarios import (
    ScenarioConfig,
    apply_scenario,
    degradation_leaderboard,
    degradation_sweep,
)
from repro.observability import SpanTracer
from repro.serving import (
    AsyncTruthClient,
    MergedSnapshot,
    SERVE_SCHEMA,
    ServeEnvelope,
    ServiceConfig,
    ShardRouter,
    TenantRegistry,
    TruthServer,
    TruthService,
    TruthSnapshot,
    serve_envelope_from_dict,
)
from repro.store import TruthStore

__version__ = "1.6.0"

#: The stable public surface: every name here imports from ``repro``
#: directly and is covered by the API-stability tests.  Additions are
#: allowed; removals or renames require a deprecation cycle (see
#: CHANGELOG.md).
__all__ = [
    "Accu",
    "AccuGenPartition",
    "AccuSim",
    "AsyncTruthClient",
    "AverageLog",
    "CATD",
    "CATEGORICAL",
    "CONTINUOUS",
    "CRH",
    "Claim",
    "ContinuousCATD",
    "ContinuousCRH",
    "ContinuousMedian",
    "Dataset",
    "DatasetBuilder",
    "Depen",
    "ExecutionPolicy",
    "Fact",
    "IncrementalTDAC",
    "Investment",
    "MULTI",
    "MajorityVote",
    "MergedSnapshot",
    "Partition",
    "PartitionCache",
    "PooledInvestment",
    "RESULT_SCHEMA",
    "SERVE_SCHEMA",
    "ScenarioConfig",
    "ServeEnvelope",
    "ServiceConfig",
    "ShardRouter",
    "SimpleLCA",
    "SpanTracer",
    "Sums",
    "TDAC",
    "TDACConfig",
    "TDACResult",
    "TenantRegistry",
    "ThreeEstimates",
    "TruthDiscoveryAlgorithm",
    "TruthDiscoveryResult",
    "TruthFinder",
    "TruthServer",
    "TruthService",
    "TruthSnapshot",
    "TruthStore",
    "TwoEstimates",
    "TypeRouted",
    "__version__",
    "algorithms",
    "apply_scenario",
    "baselines",
    "build_truth_vectors",
    "clustering",
    "core",
    "data",
    "datasets",
    "degradation_leaderboard",
    "degradation_sweep",
    "evaluation",
    "metrics",
    "observability",
    "scenarios",
    "serve_envelope_from_dict",
    "serving",
    "store",
]
