"""Dataset generators for every dataset of the paper's evaluation.

* :mod:`~repro.datasets.synthetic` — DS1 / DS2 / DS3 (Tables 3–5);
* :mod:`~repro.datasets.exam` — the Exam stand-in and its semi-synthetic
  fillings (Tables 6–8);
* :mod:`~repro.datasets.stocks` / :mod:`~repro.datasets.flights` — the
  real-data stand-ins (Tables 8–9);
* :mod:`~repro.datasets.engine` — the shared group-structured generator;
* :mod:`~repro.datasets.registry` — name-based access.
"""

from repro.datasets.books import make_books
from repro.datasets.engine import (
    GeneratedDataset,
    GeneratorConfig,
    SourceClass,
    generate,
    integer_values,
    token_values,
)
from repro.datasets.tokens import token
from repro.datasets.exam import (
    DOMAINS,
    fill_missing,
    make_exam,
    make_semi_synthetic,
)
from repro.datasets.flights import flights_planted_partition, make_flights
from repro.datasets.registry import available, load
from repro.datasets.stocks import make_stocks, stocks_planted_partition
from repro.datasets.synthetic import (
    MIXED_ATTRIBUTE_TYPES,
    MIXED_GROUPS,
    PLANTED_PARTITIONS,
    TABLE3_LEVELS,
    make_mixed,
    make_synthetic,
    planted_partition,
)

__all__ = [
    "DOMAINS",
    "GeneratedDataset",
    "GeneratorConfig",
    "MIXED_ATTRIBUTE_TYPES",
    "MIXED_GROUPS",
    "PLANTED_PARTITIONS",
    "SourceClass",
    "TABLE3_LEVELS",
    "available",
    "fill_missing",
    "flights_planted_partition",
    "generate",
    "integer_values",
    "load",
    "make_books",
    "make_exam",
    "make_flights",
    "make_mixed",
    "make_semi_synthetic",
    "make_stocks",
    "make_synthetic",
    "planted_partition",
    "stocks_planted_partition",
    "token",
    "token_values",
]
