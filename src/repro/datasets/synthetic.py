"""The synthetic datasets DS1, DS2, DS3 (paper Section 4.2).

The paper re-implements the generator of Ba et al. (WebDB 2015) and
publishes its configurations: 6 attributes, 1000 objects, 10 sources and
60 000 observations per dataset, with the planted attribute partitions of
Table 5 and the reliability levels (m1, m2, m3) of Table 3:

========  ====================================  =================
dataset   planted partition                     (m1, m2, m3)
========  ====================================  =================
DS1       [(a1,a2), (a4,a6), (a3), (a5)]        (1.0, 0.0, 1.0)
DS2       [(a2,a5), (a1,a4), (a3,a6)]           (1.0, 0.0, 0.8)
DS3       [(a1,a3,a6), (a2,a4,a5)]              (1.0, 0.2, 0.8)
========  ====================================  =================

The generator code itself is not public, so this module reconstructs it
from the published parameters (see DESIGN.md): ten sources split into
three classes of sizes (5, 3, 2); each attribute group assigns one
reliability level to each class, rotating the levels so classes have
complementary expertise (the Table 1 motivation).  DS1's two singleton
groups (a3) and (a5) are given the *same* class profile — which is why
the paper's own TD-AC merges them into (a3, a5) while still beating the
Max/Avg heuristics, exactly as Table 5 reports.  Wrong answers collude
within a class (one shared distractor per fact), which is what defeats
plain majority voting on the groups where the big class is unreliable
and gives the Accu family's copy detector real copying to find.
"""

from __future__ import annotations

from repro.core.partition import Partition
from repro.datasets.engine import (
    GeneratedDataset,
    GeneratorConfig,
    SourceClass,
    generate,
)

_ATTRIBUTES = ("a1", "a2", "a3", "a4", "a5", "a6")
_CLASS_SIZES = (5, 3, 2)
_CLASS_NAMES = ("alpha", "beta", "gamma")


def _config(
    name: str,
    groups: tuple[tuple[str, ...], ...],
    profiles: tuple[tuple[float, float, float], ...],
    n_objects: int,
    seed: int,
    collusion: float,
) -> GeneratorConfig:
    """Assemble a GeneratorConfig from per-group class profiles.

    ``profiles[g][c]`` is the reliability of class ``c`` on group ``g``;
    the engine wants the transpose (per-class tuples over groups).
    """
    classes = tuple(
        SourceClass(
            name=_CLASS_NAMES[c],
            size=_CLASS_SIZES[c],
            reliability=tuple(profiles[g][c] for g in range(len(groups))),
            collusion=collusion,
        )
        for c in range(len(_CLASS_SIZES))
    )
    return GeneratorConfig(
        name=name,
        n_objects=n_objects,
        groups=groups,
        classes=classes,
        pool_size=3,
        seed=seed,
    )


#: Reliability levels of Table 3, per dataset.
TABLE3_LEVELS = {
    "DS1": (1.0, 0.0, 1.0),
    "DS2": (1.0, 0.0, 0.8),
    "DS3": (1.0, 0.2, 0.8),
}

#: Planted partitions of Table 5 ("Synthetic data generator" row).
PLANTED_PARTITIONS = {
    "DS1": (("a1", "a2"), ("a4", "a6"), ("a3",), ("a5",)),
    "DS2": (("a2", "a5"), ("a1", "a4"), ("a3", "a6")),
    "DS3": (("a1", "a3", "a6"), ("a2", "a4", "a5")),
}


def _profiles(name: str) -> tuple[tuple[float, float, float], ...]:
    """Class reliability profile of every group, rotating Table 3 levels."""
    m1, m2, m3 = TABLE3_LEVELS[name]
    if name == "DS1":
        # Last two (singleton) groups share a profile on purpose: the
        # paper's TD-AC merges (a3) and (a5), see Table 5.
        return ((m1, m2, m3), (m2, m3, m1), (m3, m1, m2), (m3, m1, m2))
    if name == "DS2":
        return ((m1, m2, m3), (m2, m3, m1), (m3, m1, m2))
    if name == "DS3":
        return ((m1, m2, m3), (m2, m3, m1))
    raise ValueError(f"unknown synthetic dataset {name!r}")


def make_synthetic(
    name: str,
    n_objects: int = 1000,
    seed: int = 0,
    collusion: float = 0.85,
) -> GeneratedDataset:
    """Generate DS1, DS2 or DS3 (smaller ``n_objects`` for quick tests)."""
    key = name.upper()
    if key not in PLANTED_PARTITIONS:
        raise ValueError(
            f"unknown synthetic dataset {name!r}; known: DS1, DS2, DS3"
        )
    return generate(
        _config(
            name=key,
            groups=PLANTED_PARTITIONS[key],
            profiles=_profiles(key),
            n_objects=n_objects,
            seed=seed,
            collusion=collusion,
        )
    )


def planted_partition(name: str) -> Partition:
    """The generator's partition for Table 5 comparisons."""
    key = name.upper()
    if key not in PLANTED_PARTITIONS:
        raise ValueError(
            f"unknown synthetic dataset {name!r}; known: DS1, DS2, DS3"
        )
    return Partition.from_blocks(PLANTED_PARTITIONS[key])
