"""The synthetic datasets DS1, DS2, DS3 (paper Section 4.2).

The paper re-implements the generator of Ba et al. (WebDB 2015) and
publishes its configurations: 6 attributes, 1000 objects, 10 sources and
60 000 observations per dataset, with the planted attribute partitions of
Table 5 and the reliability levels (m1, m2, m3) of Table 3:

========  ====================================  =================
dataset   planted partition                     (m1, m2, m3)
========  ====================================  =================
DS1       [(a1,a2), (a4,a6), (a3), (a5)]        (1.0, 0.0, 1.0)
DS2       [(a2,a5), (a1,a4), (a3,a6)]           (1.0, 0.0, 0.8)
DS3       [(a1,a3,a6), (a2,a4,a5)]              (1.0, 0.2, 0.8)
========  ====================================  =================

The generator code itself is not public, so this module reconstructs it
from the published parameters (see DESIGN.md): ten sources split into
three classes of sizes (5, 3, 2); each attribute group assigns one
reliability level to each class, rotating the levels so classes have
complementary expertise (the Table 1 motivation).  DS1's two singleton
groups (a3) and (a5) are given the *same* class profile — which is why
the paper's own TD-AC merges them into (a3, a5) while still beating the
Max/Avg heuristics, exactly as Table 5 reports.  Wrong answers collude
within a class (one shared distractor per fact), which is what defeats
plain majority voting on the groups where the big class is unreliable
and gives the Accu family's copy detector real copying to find.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.core.partition import Partition
from repro.data.types import CONTINUOUS, MULTI
from repro.datasets.engine import (
    GeneratedDataset,
    GeneratorConfig,
    SourceClass,
    ValueFactory,
    generate,
    token_values,
)
from repro.datasets.tokens import token

_ATTRIBUTES = ("a1", "a2", "a3", "a4", "a5", "a6")
_CLASS_SIZES = (5, 3, 2)
_CLASS_NAMES = ("alpha", "beta", "gamma")


def _config(
    name: str,
    groups: tuple[tuple[str, ...], ...],
    profiles: tuple[tuple[float, float, float], ...],
    n_objects: int,
    seed: int,
    collusion: float,
) -> GeneratorConfig:
    """Assemble a GeneratorConfig from per-group class profiles.

    ``profiles[g][c]`` is the reliability of class ``c`` on group ``g``;
    the engine wants the transpose (per-class tuples over groups).
    """
    classes = tuple(
        SourceClass(
            name=_CLASS_NAMES[c],
            size=_CLASS_SIZES[c],
            reliability=tuple(profiles[g][c] for g in range(len(groups))),
            collusion=collusion,
        )
        for c in range(len(_CLASS_SIZES))
    )
    return GeneratorConfig(
        name=name,
        n_objects=n_objects,
        groups=groups,
        classes=classes,
        pool_size=3,
        seed=seed,
    )


#: Reliability levels of Table 3, per dataset.
TABLE3_LEVELS = {
    "DS1": (1.0, 0.0, 1.0),
    "DS2": (1.0, 0.0, 0.8),
    "DS3": (1.0, 0.2, 0.8),
}

#: Planted partitions of Table 5 ("Synthetic data generator" row).
PLANTED_PARTITIONS = {
    "DS1": (("a1", "a2"), ("a4", "a6"), ("a3",), ("a5",)),
    "DS2": (("a2", "a5"), ("a1", "a4"), ("a3", "a6")),
    "DS3": (("a1", "a3", "a6"), ("a2", "a4", "a5")),
}


def _profiles(name: str) -> tuple[tuple[float, float, float], ...]:
    """Class reliability profile of every group, rotating Table 3 levels."""
    m1, m2, m3 = TABLE3_LEVELS[name]
    if name == "DS1":
        # Last two (singleton) groups share a profile on purpose: the
        # paper's TD-AC merges (a3) and (a5), see Table 5.
        return ((m1, m2, m3), (m2, m3, m1), (m3, m1, m2), (m3, m1, m2))
    if name == "DS2":
        return ((m1, m2, m3), (m2, m3, m1), (m3, m1, m2))
    if name == "DS3":
        return ((m1, m2, m3), (m2, m3, m1))
    raise ValueError(f"unknown synthetic dataset {name!r}")


def make_synthetic(
    name: str,
    n_objects: int = 1000,
    seed: int = 0,
    collusion: float = 0.85,
) -> GeneratedDataset:
    """Generate DS1, DS2 or DS3 (smaller ``n_objects`` for quick tests)."""
    key = name.upper()
    if key not in PLANTED_PARTITIONS:
        raise ValueError(
            f"unknown synthetic dataset {name!r}; known: DS1, DS2, DS3"
        )
    return generate(
        _config(
            name=key,
            groups=PLANTED_PARTITIONS[key],
            profiles=_profiles(key),
            n_objects=n_objects,
            seed=seed,
            collusion=collusion,
        )
    )


#: Planted structure of the mixed-type preset: one purely categorical
#: group, one categorical+multi group, one continuous group.
MIXED_GROUPS = (
    ("color", "material"),
    ("origin", "tags"),
    ("price", "weight"),
)

#: Non-categorical type tags of the mixed preset (the rest default).
MIXED_ATTRIBUTE_TYPES = {
    "tags": MULTI,
    "price": CONTINUOUS,
    "weight": CONTINUOUS,
}

#: Token index offset for multi-valued truths, far past anything
#: token_values reaches, so tag elements never collide with the
#: categorical value universe.
_MULTI_TOKEN_BASE = 10_000_000


def _mixed_factory(pool_size: int) -> ValueFactory:
    """Per-attribute dispatch: tokens, numeric quotes, or tag tuples.

    * categorical attributes reuse :func:`token_values`;
    * ``price`` / ``weight`` get float truths with materially wrong
      distractors (5-40% off), claimed verbatim — no reporting jitter, so
      the exact-equality truth vectors of Eq. 1 stay meaningful;
    * ``tags`` gets a two-element tuple truth; distractors drop an
      element, swap one for a spurious tag, or add the spurious tag — the
      three canonical multi-truth corruption modes.
    """
    categorical = token_values(pool_size)
    counter = {"next": 0}

    def factory(
        rng: np.random.Generator, obj: str, attribute: str
    ) -> tuple:
        if attribute in ("price", "weight"):
            truth = float(np.round(rng.uniform(10.0, 500.0), 2))
            pool = [
                float(
                    np.round(truth * (1.0 + sign * rng.uniform(0.05, 0.4)), 2)
                )
                for sign, _ in zip([1, -1] * pool_size, range(pool_size))
            ]
            return truth, pool
        if attribute == "tags":
            base = _MULTI_TOKEN_BASE + counter["next"] * 3
            counter["next"] += 1
            kept = sorted(token(base + d) for d in range(2))
            spurious = token(base + 2)
            truth = tuple(kept)
            pool = [
                (kept[0],),
                tuple(sorted((kept[0], spurious))),
                tuple(sorted(kept + [spurious])),
            ][:pool_size]
            return truth, pool
        return categorical(rng, obj, attribute)

    return factory


def make_mixed(
    n_objects: int = 200,
    seed: int = 0,
    collusion: float = 0.85,
) -> GeneratedDataset:
    """Generate the mixed categorical / multi / continuous dataset.

    Same class structure as DS1-DS3 (sizes 5/3/2, rotated DS3 reliability
    levels) over :data:`MIXED_GROUPS`, with per-attribute value families
    from :data:`MIXED_ATTRIBUTE_TYPES`; the planted partition aligns with
    the type boundaries, so TD-AC's clustering and the type router see
    the same structure.
    """
    m1, m2, m3 = TABLE3_LEVELS["DS3"]
    profiles = ((m1, m2, m3), (m2, m3, m1), (m3, m1, m2))
    config = _config(
        name="Mixed",
        groups=MIXED_GROUPS,
        profiles=profiles,
        n_objects=n_objects,
        seed=seed,
        collusion=collusion,
    )
    config = replace(
        config,
        value_factory=_mixed_factory(config.pool_size),
        attribute_types=MIXED_ATTRIBUTE_TYPES,
    )
    return generate(config)


def planted_partition(name: str) -> Partition:
    """The generator's partition for Table 5 comparisons."""
    key = name.upper()
    if key not in PLANTED_PARTITIONS:
        raise ValueError(
            f"unknown synthetic dataset {name!r}; known: DS1, DS2, DS3"
        )
    return Partition.from_blocks(PLANTED_PARTITIONS[key])
