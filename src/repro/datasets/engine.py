"""Shared claim-generation engine for group-structured datasets.

Every dataset in the paper's evaluation (synthetic DS1–DS3, and the
simulated stand-ins for Stocks and Flights) shares one structural story:

* attributes form *groups* (the planted partition TD-AC must recover);
* sources form *classes* (cliques with a common reliability profile —
  e.g. web aggregators that syndicate the same feed);
* a class × group *reliability matrix* gives the probability that a
  member of the class reports the true value for a fact in the group —
  the "structural correlation" of the paper: every source of a class has
  the same reliability on all attributes of a group;
* wrong answers are drawn from a small per-fact distractor pool, and
  members of a class *collude* (pick the same distractor) with a
  configurable probability — this is what makes low-reliability blocs
  dangerous for majority voting and what gives the copy detector of the
  Accu family something to find;
* coverage is controlled per (source, object) and per attribute, so the
  Data Coverage Rate of Table 8 can be dialled in.

The engine is deterministic given its seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.data.builder import DatasetBuilder
from repro.data.dataset import Dataset
from repro.data.types import Value
from repro.datasets.tokens import token

ValueFactory = Callable[[np.random.Generator, str, str], tuple[Value, list[Value]]]


def integer_values(pool_size: int) -> ValueFactory:
    """Truth and distractors as small disjoint integers.

    The truth of fact ``i`` is ``i * (pool_size + 1)``; distractors are
    the next ``pool_size`` integers, so value spaces of distinct facts
    never overlap.  Note that consecutive integers look *similar* to the
    numeric-similarity kernel; similarity-aware algorithms should be
    exercised with :func:`token_values` instead.
    """

    counter = {"next": 0}

    def factory(
        rng: np.random.Generator, obj: str, attribute: str
    ) -> tuple[Value, list[Value]]:
        base = counter["next"] * (pool_size + 1)
        counter["next"] += 1
        return base, [base + d for d in range(1, pool_size + 1)]

    return factory


def noisy_numeric_values(
    pool_size: int,
    base_range: tuple[float, float] = (10.0, 500.0),
    jitter: float = 0.0005,
) -> ValueFactory:
    """Numeric truths whose *reports* carry per-source rounding noise.

    Models quote-style corpora (stock prices, sensor readings): the true
    value is a float, distractors are materially different floats, and
    ``jitter`` is the relative magnitude of benign reporting noise the
    caller should apply per claim (exposed through the returned
    factory's ``jitter`` attribute so generators can add it).  Such
    datasets split the votes of honest sources across near-identical
    values — the situation :func:`repro.data.normalize.normalize_dataset`
    exists to repair.
    """

    def factory(
        rng: np.random.Generator, obj: str, attribute: str
    ) -> tuple[Value, list[Value]]:
        truth = float(np.round(rng.uniform(*base_range), 2))
        # Distractors differ by 5-40%: clearly wrong, not jitter.
        pool = [
            float(np.round(truth * (1.0 + sign * rng.uniform(0.05, 0.4)), 2))
            for sign, _ in zip(
                [1, -1] * pool_size, range(pool_size)
            )
        ]
        return truth, pool

    factory.jitter = jitter  # type: ignore[attr-defined]
    return factory


def token_values(pool_size: int) -> ValueFactory:
    """Truth and distractors as unstructured categorical tokens.

    Values of distinct facts never overlap, and pairwise string
    similarity between any two labels is low, so similarity-aware
    algorithms (TruthFinder, AccuSim) see genuinely distinct candidates.
    This is the engine's default factory.
    """

    counter = {"next": 0}

    def factory(
        rng: np.random.Generator, obj: str, attribute: str
    ) -> tuple[Value, list[Value]]:
        base = counter["next"] * (pool_size + 1)
        counter["next"] += 1
        return token(base), [token(base + d) for d in range(1, pool_size + 1)]

    return factory


@dataclass(frozen=True)
class SourceClass:
    """A clique of sources sharing a reliability profile.

    Attributes
    ----------
    name:
        Class label, used to derive source identifiers.
    size:
        Number of sources in the class.
    reliability:
        Per-attribute-group probability of reporting the truth; one entry
        per attribute group, aligned with ``GeneratorConfig.groups``.
    collusion:
        Probability that a wrong answer is the class's shared distractor
        rather than an independent draw from the pool.
    """

    name: str
    size: int
    reliability: tuple[float, ...]
    collusion: float = 0.8

    def __post_init__(self) -> None:
        if self.size < 1:
            raise ValueError("source class must contain at least one source")
        for level in self.reliability:
            if not 0.0 <= level <= 1.0:
                raise ValueError("reliability levels must be in [0, 1]")
        if not 0.0 <= self.collusion <= 1.0:
            raise ValueError("collusion must be in [0, 1]")


@dataclass(frozen=True)
class GeneratorConfig:
    """Full specification of one group-structured dataset."""

    name: str
    n_objects: int
    groups: tuple[tuple[str, ...], ...]
    classes: tuple[SourceClass, ...]
    #: Probability a source covers an object at all.
    object_coverage: float = 1.0
    #: Probability a source covering an object claims each attribute.
    attribute_coverage: float = 1.0
    #: Distractor pool size per fact.
    pool_size: int = 3
    #: Fraction of facts that are intrinsically hard: every class's
    #: reliability is scaled by ``hard_fact_factor`` on them.  Models the
    #: irreducible noise of real corpora (extraction glitches, genuinely
    #: ambiguous facts) that caps even oracle-partition accuracy below 1.
    hard_fact_rate: float = 0.0
    hard_fact_factor: float = 0.3
    #: Optional custom value factory; defaults to categorical tokens.
    value_factory: ValueFactory | None = None
    #: Non-categorical attribute type tags (attribute -> kind), declared
    #: on the built dataset so typed routing and metrics engage.
    attribute_types: Mapping[str, str] = field(default_factory=dict)
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_objects < 1:
            raise ValueError("need at least one object")
        for attribute in self.attribute_types:
            if attribute not in self.attributes:
                raise ValueError(
                    f"attribute type declared for unknown attribute "
                    f"{attribute!r}"
                )
        if not self.groups:
            raise ValueError("need at least one attribute group")
        n_groups = len(self.groups)
        for source_class in self.classes:
            if len(source_class.reliability) != n_groups:
                raise ValueError(
                    f"class {source_class.name!r} has "
                    f"{len(source_class.reliability)} reliability levels "
                    f"for {n_groups} groups"
                )
        if not 0.0 < self.object_coverage <= 1.0:
            raise ValueError("object_coverage must be in (0, 1]")
        if not 0.0 < self.attribute_coverage <= 1.0:
            raise ValueError("attribute_coverage must be in (0, 1]")
        if self.pool_size < 1:
            raise ValueError("pool_size must be at least 1")
        if not 0.0 <= self.hard_fact_rate <= 1.0:
            raise ValueError("hard_fact_rate must be in [0, 1]")
        if not 0.0 <= self.hard_fact_factor <= 1.0:
            raise ValueError("hard_fact_factor must be in [0, 1]")

    @property
    def attributes(self) -> tuple[str, ...]:
        """All attributes, flattened in group order."""
        return tuple(a for group in self.groups for a in group)

    @property
    def n_sources(self) -> int:
        """Total number of sources across classes."""
        return sum(c.size for c in self.classes)


@dataclass(frozen=True)
class GeneratedDataset:
    """A generated dataset plus its planted structure, for evaluation."""

    dataset: Dataset
    planted_groups: tuple[tuple[str, ...], ...]
    source_class_of: dict[str, str] = field(default_factory=dict)


def generate(config: GeneratorConfig) -> GeneratedDataset:
    """Generate claims according to ``config`` (deterministic per seed)."""
    rng = np.random.default_rng(config.seed)
    value_factory = config.value_factory or token_values(config.pool_size)
    # Quote-style factories expose a relative reporting-noise magnitude;
    # each emitted numeric claim gets its own rounding jitter.
    jitter = float(getattr(value_factory, "jitter", 0.0))
    builder = DatasetBuilder(name=config.name)

    sources: list[str] = []
    class_of: dict[str, str] = {}
    for source_class in config.classes:
        for member in range(source_class.size):
            source = f"{source_class.name}-{member + 1}"
            sources.append(source)
            class_of[source] = source_class.name
    # Interleave the classes in the declared source order.  Tie-breaking
    # in vote counting is deterministic toward the earliest-seen value;
    # declaring a whole class first would hand it every tied fact, which
    # is an artefact no real corpus has.
    order = rng.permutation(len(sources))
    sources = [sources[i] for i in order]
    builder.declare_sources(sources)
    objects = [f"o{i + 1}" for i in range(config.n_objects)]
    builder.declare_objects(objects)
    builder.declare_attributes(config.attributes)
    # After declare_attributes: type tagging must not perturb the
    # group-flattened attribute order (tagging setdefaults its attribute).
    builder.declare_attribute_types(config.attribute_types)

    group_of_attribute = {
        attribute: g
        for g, group in enumerate(config.groups)
        for attribute in group
    }

    # Pre-draw which objects each source covers.
    covers_object = {
        source: rng.random(config.n_objects) < config.object_coverage
        for source in sources
    }

    for o_index, obj in enumerate(objects):
        for attribute in config.attributes:
            truth, pool = value_factory(rng, obj, attribute)
            builder.set_truth(obj, attribute, truth)
            group = group_of_attribute[attribute]
            hard = (
                config.hard_fact_rate > 0.0
                and rng.random() < config.hard_fact_rate
            )
            # One shared distractor per (fact, class): the collusion target.
            shared = {
                source_class.name: pool[int(rng.integers(len(pool)))]
                for source_class in config.classes
            }
            for source_class in config.classes:
                reliability = source_class.reliability[group]
                if hard:
                    reliability *= config.hard_fact_factor
                for member in range(source_class.size):
                    source = f"{source_class.name}-{member + 1}"
                    if not covers_object[source][o_index]:
                        continue
                    if rng.random() >= config.attribute_coverage:
                        continue
                    if rng.random() < reliability:
                        claim_value = truth
                    elif rng.random() < source_class.collusion:
                        claim_value = shared[source_class.name]
                    else:
                        claim_value = pool[int(rng.integers(len(pool)))]
                    if jitter > 0 and isinstance(claim_value, float):
                        claim_value = float(
                            np.round(
                                claim_value
                                * (1.0 + rng.normal(0.0, jitter)),
                                2,
                            )
                        )
                    builder.add_claim(source, obj, attribute, claim_value)
    return GeneratedDataset(
        dataset=builder.build(),
        planted_groups=config.groups,
        source_class_of=class_of,
    )
