"""Name-based access to every dataset of the paper's evaluation.

Benchmarks and examples ask for datasets by the names the paper's tables
use (``"DS1"``, ``"Exam 62"``, ``"Stocks"``, ...); this registry builds
them with their default sizes and seeds.  Sizes can be overridden with
``scale`` to keep test runs quick.
"""

from __future__ import annotations

from repro.data.dataset import Dataset
from repro.datasets.books import make_books
from repro.datasets.exam import make_exam, make_semi_synthetic
from repro.datasets.flights import make_flights
from repro.datasets.stocks import make_stocks
from repro.datasets.synthetic import make_mixed, make_synthetic

SYNTHETIC_NAMES = ("DS1", "DS2", "DS3")
EXAM_SLICES = (32, 62, 124)
SEMI_SYNTHETIC_RANGES = (25, 50, 100, 1000)


def load(name: str, seed: int = 0, scale: float = 1.0) -> Dataset:
    """Build the dataset registered under ``name``.

    ``scale`` shrinks object counts (synthetic / stocks / flights) for
    quick runs; Exam datasets have a single object and ignore it.
    """
    if not 0.0 < scale <= 1.0:
        raise ValueError("scale must be in (0, 1]")
    key = name.strip()
    upper = key.upper()
    if upper in SYNTHETIC_NAMES:
        n_objects = max(int(1000 * scale), 10)
        return make_synthetic(upper, n_objects=n_objects, seed=seed).dataset
    if upper == "MIXED":
        # Typed preset: categorical + multi + continuous attributes with
        # per-attribute type tags (drives TypeRouted and typed metrics).
        n_objects = max(int(200 * scale), 10)
        return make_mixed(n_objects=n_objects, seed=seed).dataset
    if upper == "BOOKS":
        # Bonus corpus (not in the paper's evaluation): list-valued
        # author claims in TruthFinder's original domain.
        return make_books(n_books=max(int(80 * scale), 5), seed=seed)
    if upper == "STOCKS":
        return make_stocks(n_objects=max(int(100 * scale), 10), seed=seed).dataset
    if upper == "FLIGHTS":
        return make_flights(n_objects=max(int(100 * scale), 10), seed=seed).dataset
    if upper.startswith("EXAM"):
        remainder = key[4:].strip()
        try:
            n_attributes = int(remainder)
        except ValueError:
            raise ValueError(
                f"Exam dataset name must be 'Exam 32|62|124', got {name!r}"
            ) from None
        return make_exam(n_attributes, seed=seed)
    if upper.startswith("SEMI"):
        # "Semi 62 range 50" style names.
        parts = key.split()
        if len(parts) != 4 or parts[2].lower() != "range":
            raise ValueError(
                "semi-synthetic names look like 'Semi 62 range 50', "
                f"got {name!r}"
            )
        return make_semi_synthetic(int(parts[1]), int(parts[3]), seed=seed)
    raise ValueError(f"unknown dataset {name!r}")


def available() -> tuple[str, ...]:
    """All registered dataset names."""
    names = list(SYNTHETIC_NAMES) + ["Mixed", "Stocks", "Flights", "Books"]
    names += [f"Exam {n}" for n in EXAM_SLICES]
    names += [
        f"Semi {n} range {r}"
        for n in (62, 124)
        for r in SEMI_SYNTHETIC_RANGES
    ]
    return tuple(names)
