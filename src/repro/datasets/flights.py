"""Simulator of the **Flights** dataset (Li et al., VLDB 2012).

The real Flights corpus tracks 38 sources reporting 6 attributes of 100
flights (scheduled / actual departure and arrival, departure and arrival
gates).  The stand-in matches the paper's Table 8 row
(38 / 100 / 6 / 8644 observations / DCR ≈66 %) and plants the structure
that made partitioning pay off on the real data:

* *schedule* attributes — everybody is accurate (schedules rarely move);
* *actual times* — flight trackers recycle each other's stale estimates
  (a large colluding clique), airlines are authoritative;
* *gates* — airports are authoritative, trackers unreliable.
"""

from __future__ import annotations

from repro.core.partition import Partition
from repro.datasets.engine import (
    GeneratedDataset,
    GeneratorConfig,
    SourceClass,
    generate,
)

SCHEDULE_ATTRIBUTES = ("sched_dep", "sched_arr")
ACTUAL_ATTRIBUTES = ("act_dep", "act_arr")
GATE_ATTRIBUTES = ("dep_gate", "arr_gate")

GROUPS = (SCHEDULE_ATTRIBUTES, ACTUAL_ATTRIBUTES, GATE_ATTRIBUTES)


def make_flights(n_objects: int = 100, seed: int = 0) -> GeneratedDataset:
    """Generate the Flights stand-in (Table 8 row: 38/100/6/8644/66 %)."""
    classes = (
        SourceClass(
            name="airline",
            size=6,
            reliability=(0.97, 0.95, 0.60),
            collusion=0.3,
        ),
        SourceClass(
            name="airport",
            size=10,
            reliability=(0.90, 0.70, 0.95),
            collusion=0.4,
        ),
        SourceClass(
            name="tracker",
            size=22,
            reliability=(0.92, 0.25, 0.30),
            collusion=0.9,
        ),
    )
    return generate(
        GeneratorConfig(
            name="Flights",
            n_objects=n_objects,
            groups=GROUPS,
            classes=classes,
            object_coverage=0.575,
            attribute_coverage=0.66,
            pool_size=4,
            hard_fact_rate=0.06,
            hard_fact_factor=0.3,
            seed=seed,
        )
    )


def flights_planted_partition() -> Partition:
    """The attribute grouping the generator planted."""
    return Partition.from_blocks(GROUPS)
