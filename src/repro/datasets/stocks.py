"""Simulator of the **Stocks** dataset (Li et al., VLDB 2012).

The real Stocks corpus is a deep-web crawl of 55 financial sites serving
daily data about 100 stock symbols over 15 attributes; it is matched here
by a group-structured generator dialled to the paper's Table 8 row
(55 sources / 100 objects / 15 attributes / ≈57 000 observations / DCR
≈75 %).  The attribute groups and source classes encode what made the
real corpus interesting for partitioned truth discovery:

* *price* attributes (quotes) — exchanges and aggregators are accurate,
  scrapers serve stale numbers;
* *volume / fundamentals* — aggregators syndicate the same sloppy feed
  (a copying clique), scrapers are decent;
* *metadata* — similar split.

See DESIGN.md's substitution table for why this preserves the paper's
experimental shape.
"""

from __future__ import annotations

from repro.core.partition import Partition
from repro.datasets.engine import (
    GeneratedDataset,
    GeneratorConfig,
    SourceClass,
    generate,
)

PRICE_ATTRIBUTES = (
    "open",
    "close",
    "high",
    "low",
    "last_price",
    "change_pct",
)
VOLUME_ATTRIBUTES = (
    "volume",
    "avg_volume",
    "shares_outstanding",
    "market_cap",
    "pe_ratio",
)
METADATA_ATTRIBUTES = ("dividend", "yield", "eps", "week52_high")

GROUPS = (PRICE_ATTRIBUTES, VOLUME_ATTRIBUTES, METADATA_ATTRIBUTES)


def make_stocks(n_objects: int = 100, seed: int = 0) -> GeneratedDataset:
    """Generate the Stocks stand-in (Table 8 row: 55/100/15/≈57k/75 %)."""
    classes = (
        SourceClass(
            name="exchange",
            size=8,
            reliability=(0.92, 0.85, 0.85),
            collusion=0.2,
        ),
        SourceClass(
            name="aggregator",
            size=30,
            reliability=(0.85, 0.35, 0.40),
            collusion=0.55,
        ),
        SourceClass(
            name="scraper",
            size=17,
            reliability=(0.45, 0.65, 0.60),
            collusion=0.55,
        ),
    )
    return generate(
        GeneratorConfig(
            name="Stocks",
            n_objects=n_objects,
            groups=GROUPS,
            classes=classes,
            object_coverage=0.92,
            attribute_coverage=0.75,
            pool_size=4,
            hard_fact_rate=0.15,
            hard_fact_factor=0.25,
            seed=seed,
        )
    )


def stocks_planted_partition() -> Partition:
    """The attribute grouping the generator planted."""
    return Partition.from_blocks(GROUPS)
