"""Unstructured categorical value labels for generated datasets.

Generated claim values are compared by the library's similarity kernels
(TruthFinder implication, AccuSim).  Systematic labels — consecutive
integers, ``fill7`` / ``fill12`` strings — look nearly identical to
those kernels and manufacture support between unrelated wrong answers,
so generators draw value labels from this deterministic token stream:
pseudo-random 6-letter strings whose pairwise similarity is low and
unstructured.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

_ALPHABET = "abcdefghijklmnopqrstuvwxyz"


@lru_cache(maxsize=None)
def token(k: int) -> str:
    """Deterministic pseudo-random 6-letter label for id ``k``."""
    rng = np.random.default_rng(0xE8A + k)
    letters = rng.integers(0, len(_ALPHABET), size=6)
    return "".join(_ALPHABET[i] for i in letters)
