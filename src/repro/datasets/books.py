"""Simulator of a **Books** author-list corpus (Yin et al.'s domain).

TruthFinder's original evaluation (TKDE 2008) fused author lists of
computer-science books from online bookstores — the archetypal
*list-valued* truth discovery workload: stores drop middle authors,
truncate long lists, or copy each other's records wholesale.  The paper
reproduced here does not evaluate on Books, but the corpus type
exercises two pieces of this library nothing else does:

* tuple-valued claims compared with the Jaccard sequence kernel
  (:func:`repro.algorithms.similarity.sequence_similarity`), which
  drives TruthFinder's implication and AccuSim's support on lists;
* error models that *degrade* the truth (dropped / reordered authors)
  rather than substituting an unrelated value.

Sources:

* *publisher* feeds — near-perfect lists;
* *store* sites — occasionally drop a middle author or truncate;
* *aggregator* sites — syndicate one shared degraded record (a copying
  clique for the Accu family to find).
"""

from __future__ import annotations

import numpy as np

from repro.data.builder import DatasetBuilder
from repro.data.dataset import Dataset
from repro.datasets.tokens import token

_FIRST = 0x2000  # token id offset so author names never collide with
# other generators' value streams


def _author(k: int) -> str:
    return token(_FIRST + k)


def make_books(
    n_books: int = 80,
    seed: int = 0,
    n_publishers: int = 3,
    n_stores: int = 10,
    n_aggregators: int = 8,
) -> Dataset:
    """Generate the Books stand-in: one ``authors`` attribute per book.

    Every claim value is a *tuple* of author-name tokens; ground truth
    is the full list.
    """
    if n_books < 1:
        raise ValueError("need at least one book")
    rng = np.random.default_rng(seed)
    builder = DatasetBuilder(name="Books")
    publishers = [f"publisher-{i + 1}" for i in range(n_publishers)]
    stores = [f"store-{i + 1}" for i in range(n_stores)]
    aggregators = [f"aggregator-{i + 1}" for i in range(n_aggregators)]
    builder.declare_sources(publishers + stores + aggregators)

    author_pool = 0
    for b in range(n_books):
        book = f"book{b + 1}"
        n_authors = int(rng.integers(1, 5))
        authors = tuple(_author(author_pool + i) for i in range(n_authors))
        author_pool += n_authors
        builder.set_truth(book, "authors", authors)

        # One shared degraded record for the aggregator clique.
        degraded = _degrade(authors, rng, severity=0.5)

        for source in publishers:
            value = authors if rng.random() < 0.97 else _degrade(authors, rng, 0.2)
            if rng.random() < 0.95:  # publishers cover nearly everything
                builder.add_claim(source, book, "authors", value)
        for source in stores:
            if rng.random() >= 0.75:
                continue
            value = authors if rng.random() < 0.75 else _degrade(authors, rng, 0.35)
            builder.add_claim(source, book, "authors", value)
        for source in aggregators:
            if rng.random() >= 0.85:
                continue
            if rng.random() < 0.8:  # the clique syndicates one record
                value = degraded
            else:
                value = authors
            builder.add_claim(source, book, "authors", value)
    return builder.build()


def _degrade(authors: tuple, rng: np.random.Generator, severity: float) -> tuple:
    """Drop or truncate authors; guaranteed different from the input
    when the list has more than one author."""
    if len(authors) == 1:
        # Nothing to drop: misattribute to a lone wrong author.
        return (_author(0),) if authors != (_author(0),) else (_author(1),)
    if rng.random() < severity:
        # Truncate to the first author ("et al." style).
        return authors[:1]
    # Drop one non-first author.
    victim = int(rng.integers(1, len(authors)))
    return tuple(a for i, a in enumerate(authors) if i != victim)
