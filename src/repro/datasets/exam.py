"""Simulator of the **Exam** dataset and its semi-synthetic variants.

The real Exam dataset (Ba et al. 2015) aggregates anonymous admission
examination results: 248 students (sources) answering up to 124 questions
(attributes) about a single exam (one object), across 9 domains.  It is
private and cannot be redistributed, so this module generates a
structurally faithful stand-in (see DESIGN.md, substitution table):

* the 9 published domains, with question counts summing to 124;
* **Math 1A** and **Physics** mandatory (the 32-attribute slice),
* a forced choice between **Chemistry 1** and **Math 1B** (together with
  the mandatory ones, the 62-attribute slice),
* the remaining five domains optional with wrong answers penalised —
  hence heavy skipping and the low coverage of the 124-attribute slice;
* per-student ability drawn per *domain family* (math / physical /
  chemistry / life-science / computing), which is the structural
  correlation TD-AC exploits;
* wrong answers biased toward a per-question "common misconception"
  distractor, so mistakes collide like real multiple-choice mistakes.

Coverage constants are tuned so the three slices land near the paper's
Table 8 coverage rates (81 / 55 / 36 %).

The **semi-synthetic** datasets of Tables 6 and 7 are produced by
:func:`fill_missing`: every unanswered (student, question) cell is filled
with a false answer drawn uniformly from a pool of ``range_size``
(25 / 50 / 100 / 1000) — small pools create false consensus among the
filled answers, which is exactly the stress the paper studies.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.builder import DatasetBuilder
from repro.data.dataset import Dataset
from repro.datasets.tokens import token


@dataclass(frozen=True)
class Domain:
    """One exam domain: name, question count, family and enrolment rule."""

    name: str
    n_questions: int
    family: str
    #: "mandatory", "choice" (exactly one of the choice pair) or "optional"
    enrolment: str


DOMAINS: tuple[Domain, ...] = (
    Domain("Math1A", 18, "math", "mandatory"),
    Domain("Physics", 14, "physical", "mandatory"),
    Domain("Chemistry1", 14, "chemistry", "choice"),
    Domain("Math1B", 16, "math", "choice"),
    Domain("CS", 12, "computing", "optional"),
    Domain("EE", 12, "physical", "optional"),
    Domain("Chemistry2", 12, "chemistry", "optional"),
    Domain("ScienceOfLife", 13, "life", "optional"),
    Domain("Math2", 13, "math", "optional"),
)

FAMILIES = ("math", "physical", "chemistry", "life", "computing")

#: Attribute counts of the three published slices.
SLICES = {32: 2, 62: 4, 124: 9}  # attribute count -> domain count

_N_STUDENTS = 248
_OBJECT = "exam"
_N_DISTRACTORS = 3

#: Answer labels come from the shared unstructured token stream so the
#: similarity kernels see genuinely distinct wrong answers.
answer_token = token

# Coverage constants tuned against Table 8 (see tests/test_exam.py).
_ANSWER_RATE = {"mandatory": 0.81, "choice": 0.62, "optional": 0.55}
_MISCONCEPTION_BIAS = 0.6

# Optional domains self-select: wrong answers were penalised, so mostly
# students confident in the domain's family enrol.  A small unconditional
# share models the risk-takers.
_OPTIONAL_ABILITY_THRESHOLD = 0.66
_OPTIONAL_ENROLMENT_IF_ABLE = 0.60
_OPTIONAL_ENROLMENT_ANYWAY = 0.08

# Question difficulty: the probability of a correct answer is
# ``ability ** (1 / difficulty)``, so hard questions (low difficulty
# factor) defeat weak students disproportionately — on the hardest ones
# the common misconception outpolls the key and only algorithms that
# weight skilled students recover the truth.  Mandatory questions skew
# hard (everyone must sit them, including students weak in the family),
# which is why the paper's Exam-32 slice is its hardest configuration
# despite the highest coverage.
_DIFFICULTY_RANGE = {
    "mandatory": (0.30, 0.75),
    "choice": (0.40, 0.90),
    "optional": (0.50, 1.00),
}

# Ability distribution: strong families vs weak families per student.
_STRONG_ABILITY = (0.78, 0.97)  # uniform range
_WEAK_ABILITY = (0.35, 0.70)


def question_id(domain: Domain, number: int) -> str:
    """Stable attribute identifier of one question."""
    return f"{domain.name}-q{number + 1}"


def _slice_domains(n_attributes: int) -> tuple[Domain, ...]:
    """The domains making up the 32 / 62 / 124-attribute slice."""
    if n_attributes not in SLICES:
        raise ValueError(
            f"unknown Exam slice {n_attributes}; known: {sorted(SLICES)}"
        )
    return DOMAINS[: SLICES[n_attributes]]


def make_exam(n_attributes: int = 124, seed: int = 0) -> Dataset:
    """Generate the Exam stand-in restricted to a published slice."""
    domains = _slice_domains(n_attributes)
    total = sum(d.n_questions for d in domains)
    if total != n_attributes:
        raise AssertionError(
            f"domain table inconsistent: slice {n_attributes} sums to {total}"
        )
    rng = np.random.default_rng(seed)
    builder = DatasetBuilder(name=f"Exam {n_attributes}")
    students = [f"student{i + 1}" for i in range(_N_STUDENTS)]
    builder.declare_sources(students)
    builder.declare_objects([_OBJECT])
    attributes = [
        question_id(domain, q)
        for domain in domains
        for q in range(domain.n_questions)
    ]
    builder.declare_attributes(attributes)

    # Answer key and per-question difficulty.
    difficulty: dict[str, float] = {}
    for domain in domains:
        low, high = _DIFFICULTY_RANGE[domain.enrolment]
        for q in range(domain.n_questions):
            attribute = question_id(domain, q)
            builder.set_truth(_OBJECT, attribute, "key")
            difficulty[attribute] = float(rng.uniform(low, high))

    # Per-student family abilities: each student is strong in 1-2 random
    # families and weak elsewhere.
    ability: dict[tuple[str, str], float] = {}
    for student in students:
        n_strong = int(rng.integers(1, 3))
        strong = set(
            rng.choice(len(FAMILIES), size=n_strong, replace=False).tolist()
        )
        for f_index, family in enumerate(FAMILIES):
            low, high = _STRONG_ABILITY if f_index in strong else _WEAK_ABILITY
            ability[(student, family)] = float(rng.uniform(low, high))

    # Choice-pair pick: exactly one of Chemistry1 / Math1B per student,
    # mostly the one whose family the student is stronger in.
    choice_domains = [d for d in domains if d.enrolment == "choice"]
    flip = rng.random(_N_STUDENTS) < 0.1

    for s_index, student in enumerate(students):
        enrolled: set[str] = set()
        for domain in domains:
            if domain.enrolment == "mandatory":
                enrolled.add(domain.name)
            elif domain.enrolment == "choice":
                if len(choice_domains) == 2:
                    ranked = sorted(
                        choice_domains,
                        key=lambda d: ability[(student, d.family)],
                        reverse=True,
                    )
                    picked = ranked[1] if flip[s_index] else ranked[0]
                else:  # slice without the full pair
                    picked = choice_domains[0]
                enrolled.add(picked.name)
            else:
                able = (
                    ability[(student, domain.family)]
                    > _OPTIONAL_ABILITY_THRESHOLD
                )
                joins = rng.random() < (
                    _OPTIONAL_ENROLMENT_IF_ABLE
                    if able
                    else _OPTIONAL_ENROLMENT_ANYWAY
                )
                if joins:
                    enrolled.add(domain.name)
        for domain in domains:
            if domain.name not in enrolled:
                continue
            answer_rate = _ANSWER_RATE[domain.enrolment]
            skill = ability[(student, domain.family)]
            for q in range(domain.n_questions):
                if rng.random() >= answer_rate:
                    continue
                attribute = question_id(domain, q)
                p_correct = skill ** (1.0 / difficulty[attribute])
                if rng.random() < p_correct:
                    value = "key"
                elif rng.random() < _MISCONCEPTION_BIAS:
                    value = answer_token(0)  # the common misconception
                else:
                    value = answer_token(int(rng.integers(1, _N_DISTRACTORS)))
                builder.add_claim(student, _OBJECT, attribute, value)
    return builder.build()


def fill_missing(dataset: Dataset, range_size: int, seed: int = 0) -> Dataset:
    """The paper's semi-synthetic procedure (Section 4.3).

    Every (source, fact) cell without a claim is filled with a false
    answer drawn uniformly from a pool of ``range_size`` values; the
    result has full coverage.  Small pools make the filled answers
    collide, manufacturing false consensus.
    """
    if range_size < 1:
        raise ValueError("range_size must be at least 1")
    rng = np.random.default_rng(seed)
    builder = DatasetBuilder(
        name=f"{dataset.name} (range {range_size})"
    )
    builder.declare_sources(dataset.sources)
    builder.declare_objects(dataset.objects)
    builder.declare_attributes(dataset.attributes)
    builder.set_truths(dataset.truth)
    existing = set()
    for claim in dataset.iter_claims():
        builder.add_claim(claim.source, claim.object, claim.attribute, claim.value)
        existing.add((claim.source, claim.object, claim.attribute))
    for obj in dataset.objects:
        for attribute in dataset.attributes:
            for source in dataset.sources:
                if (source, obj, attribute) in existing:
                    continue
                value = answer_token(_N_DISTRACTORS + int(rng.integers(range_size)))
                builder.add_claim(source, obj, attribute, value)
    return builder.build()


def make_semi_synthetic(
    n_attributes: int, range_size: int, seed: int = 0
) -> Dataset:
    """Exam slice with every missing cell filled (Tables 6 and 7)."""
    return fill_missing(
        make_exam(n_attributes, seed=seed), range_size, seed=seed + 1
    )
