"""The durable store facade: claim WAL + snapshot checkpoints + recovery.

:class:`TruthStore` owns one directory::

    <root>/
      wal/        rotating JSON-lines claim segments  (ClaimWAL)
      snapshots/  versioned checkpoint files          (SnapshotStore)

and exposes exactly the operations the serving layer needs:

* **append_admit** — called by ``TruthService.ingest`` *before* the
  admission is acknowledged, so every claim a client ever got a ticket
  for survives a crash;
* **append_commit / append_abort** — the batcher's outcome records.
  Only committed batches are replayed by recovery; an admitted batch
  that was rejected (one-truth conflict) or still pending at the crash
  is surfaced, never silently re-applied, because the uninterrupted
  service did not apply it either;
* **record_snapshot** — checkpoint the full served state (result +
  accumulated dataset) so recovery replays only the WAL tail above the
  snapshot watermark;
* **recover** — the read path behind ``TruthService.restore``: latest
  valid snapshot, committed tail batches in commit order, uncommitted
  leftovers, and every corruption warning the scan raised;
* **compact** — delete sealed WAL segments wholly below the latest
  snapshot's live frontier (``min_live_lsn``), the offset below which
  no admit or commit record can ever be needed again.

All operations run under the ambient
:class:`~repro.observability.SpanTracer` (``store.append``,
``store.flush``, ``store.recover``, ``store.compact`` spans;
``store.durable_bytes`` and ``store.replayed_claims`` counters), so a
traced serving run shows durability cost next to refit cost.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Sequence

from repro.data.types import Claim
from repro.observability import current_tracer
from repro.store.records import (
    StoreError,
    decode_claim,
    encode_claim,
)
from repro.store.snapshots import SnapshotStore
from repro.store.wal import ClaimWAL, WALCorruptionWarning

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.config import TDACConfig
    from repro.serving.snapshot import TruthSnapshot


@dataclass(frozen=True)
class ReplayBatch:
    """One committed micro-batch recovery must re-apply, in commit order."""

    version: int
    watermark: int
    claims: tuple[Claim, ...]


@dataclass
class StoreRecovery:
    """Everything :meth:`TruthStore.recover` reconstructed from disk."""

    checkpoint: dict | None = None
    checkpoint_path: Path | None = None
    batches: list[ReplayBatch] = field(default_factory=list)
    uncommitted: list[tuple[int, tuple[Claim, ...]]] = field(
        default_factory=list
    )
    aborted_claims: int = 0
    next_sequence: int = 0
    wal_lsn: int = 0
    warnings: list[str] = field(default_factory=list)

    @property
    def replayed_claims(self) -> int:
        """Claims recovery re-applies on top of the checkpoint."""
        return sum(len(batch.claims) for batch in self.batches)

    @property
    def uncommitted_claims(self) -> int:
        """Admitted claims whose outcome the crash swallowed."""
        return sum(len(claims) for _, claims in self.uncommitted)

    def summary(self) -> dict:
        """JSON-ready condensation (CLI / logs)."""
        serving = {}
        if self.checkpoint is not None:
            serving = self.checkpoint.get("result", {}).get("serving", {})
        return {
            "checkpoint_version": serving.get("version"),
            "checkpoint_watermark": serving.get("watermark"),
            "replayed_batches": len(self.batches),
            "replayed_claims": self.replayed_claims,
            "uncommitted_claims": self.uncommitted_claims,
            "aborted_claims": self.aborted_claims,
            "warnings": list(self.warnings),
        }


class TruthStore:
    """Durable claim WAL + snapshot checkpoints under one directory."""

    def __init__(
        self,
        root: str | Path,
        *,
        segment_max_records: int = 1024,
        segment_max_bytes: int = 1 << 20,
        sync: str = "commit",
        snapshots: SnapshotStore | str | Path | None = None,
    ) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.wal = ClaimWAL(
            self.root / "wal",
            segment_max_records=segment_max_records,
            segment_max_bytes=segment_max_bytes,
            sync=sync,
        )
        # The snapshot store is injectable so a multi-tenant registry
        # can point many WAL namespaces (one per tenant/shard) at one
        # shared, content-addressed checkpoint pool; default stays the
        # private per-store directory.
        if snapshots is None:
            self.snapshots = SnapshotStore(self.root / "snapshots")
        elif isinstance(snapshots, SnapshotStore):
            self.snapshots = snapshots
        else:
            self.snapshots = SnapshotStore(snapshots)
        #: admission offset -> (admit record lsn, claim count) for every
        #: admitted batch with no commit/abort record yet; its minimum
        #: lsn is the compaction frontier.
        self._uncommitted: dict[int, tuple[int, int]] = {}
        # Ingest threads admit while the batcher commits/aborts; the
        # lock keeps the uncommitted map and the WAL append it mirrors
        # atomic with respect to each other.
        self._lock = threading.Lock()
        self._snapshots_written = 0
        self._compactions = 0
        self._rebuild_pending()

    def _rebuild_pending(self) -> None:
        """Re-derive the uncommitted-admit map from the log on open."""
        for record in self.wal.scan().records:
            if record.type == "admit":
                offset = int(record.body["offset"])
                self._uncommitted[offset] = (
                    record.lsn,
                    len(record.body["claims"]),
                )
            else:  # commit / abort both settle their admits
                for offset, _count in record.body.get("applied", []):
                    self._uncommitted.pop(int(offset), None)

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------

    def is_empty(self) -> bool:
        """Whether neither the WAL nor the snapshot store holds state."""
        return self.wal.is_empty() and self.snapshots.is_empty()

    @property
    def min_live_lsn(self) -> int:
        """Smallest LSN recovery could still need (compaction frontier)."""
        with self._lock:
            if self._uncommitted:
                return min(lsn for lsn, _ in self._uncommitted.values())
        return self.wal.next_lsn

    @property
    def stats(self) -> dict:
        """Durability counters for ``TruthService.stats``."""
        return {
            "wal_records": self.wal.next_lsn,
            "durable_bytes": self.wal.bytes_appended,
            "segments": len(self.wal.segments()),
            "snapshots": len(self.snapshots.entries()),
            "snapshots_written": self._snapshots_written,
            "compactions": self._compactions,
            "uncommitted_batches": len(self._uncommitted),
        }

    def close(self) -> None:
        self.wal.close()

    # ------------------------------------------------------------------
    # Write path (called by the serving layer)
    # ------------------------------------------------------------------

    def append_admit(self, offset: int, claims: Sequence[Claim]) -> int:
        """Durably record an admitted batch *before* its ticket is issued."""
        tracer = current_tracer()
        before = self.wal.bytes_appended
        with tracer.span("store.append", kind="admit", claims=len(claims)):
            with self._lock:
                lsn = self.wal.append(
                    "admit",
                    {
                        "offset": offset,
                        "claims": [encode_claim(c) for c in claims],
                    },
                )
                self._uncommitted[offset] = (lsn, len(claims))
        tracer.count("store.durable_bytes", self.wal.bytes_appended - before)
        tracer.count("store.appends")
        return lsn

    def append_commit(
        self,
        version: int,
        watermark: int,
        applied: Sequence[tuple[int, int]],
    ) -> int:
        """Record that the batches in ``applied`` produced ``watermark``."""
        tracer = current_tracer()
        before = self.wal.bytes_appended
        with tracer.span("store.append", kind="commit"):
            with self._lock:
                lsn = self.wal.append(
                    "commit",
                    {
                        "version": version,
                        "watermark": watermark,
                        "applied": [[o, n] for o, n in applied],
                    },
                )
                for offset, _n in applied:
                    self._uncommitted.pop(offset, None)
        tracer.count("store.durable_bytes", self.wal.bytes_appended - before)
        tracer.count("store.commits")
        return lsn

    def append_abort(
        self, applied: Sequence[tuple[int, int]], reason: str
    ) -> int:
        """Record that the batches in ``applied`` were rejected."""
        tracer = current_tracer()
        before = self.wal.bytes_appended
        with tracer.span("store.append", kind="abort"):
            with self._lock:
                lsn = self.wal.append(
                    "abort",
                    {
                        "applied": [[o, n] for o, n in applied],
                        "reason": reason[:500],
                    },
                )
                for offset, _n in applied:
                    self._uncommitted.pop(offset, None)
        tracer.count("store.durable_bytes", self.wal.bytes_appended - before)
        tracer.count("store.aborts")
        return lsn

    def record_snapshot(
        self,
        snapshot: "TruthSnapshot",
        dataset,
        *,
        next_sequence: int,
        base_algorithm: str,
        reference_algorithm: str,
        config: "TDACConfig",
    ) -> Path:
        """Checkpoint the served state; fsyncs the WAL first."""
        tracer = current_tracer()
        with tracer.span(
            "store.flush", version=snapshot.version, watermark=snapshot.watermark
        ):
            self.wal.flush()
            path = self.snapshots.record(
                snapshot,
                dataset,
                wal_lsn=self.wal.next_lsn - 1,
                min_live_lsn=self.min_live_lsn,
                next_sequence=next_sequence,
                base_algorithm=base_algorithm,
                reference_algorithm=reference_algorithm,
                config=config,
            )
        self._snapshots_written += 1
        tracer.count("store.snapshots")
        return path

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------

    def recover(self) -> StoreRecovery:
        """Rebuild the applied-claim history from disk.

        Returns the latest valid checkpoint plus every batch committed
        after its watermark, in commit order — exactly the prefix an
        uninterrupted service applied.  Corruption (torn tail, bad
        checksum, sequence gap) recovers to the last valid record with
        a :class:`WALCorruptionWarning`; interior records past a
        corruption are reported, never silently dropped.
        """
        import warnings as _warnings

        tracer = current_tracer()
        recovery = StoreRecovery()
        with tracer.span("store.recover"):
            latest = self.snapshots.latest_valid()
            base_watermark = 0
            if latest is not None:
                recovery.checkpoint, recovery.checkpoint_path = latest
                serving = recovery.checkpoint["result"].get("serving", {})
                base_watermark = int(serving.get("watermark", 0))
                recovery.next_sequence = int(
                    recovery.checkpoint["store"].get("next_sequence", 0)
                )
            scan = self.wal.scan()
            recovery.warnings.extend(scan.warnings)
            recovery.wal_lsn = scan.next_lsn
            admits: dict[int, tuple[Claim, ...]] = {}
            for record in scan.records:
                if record.type == "admit":
                    offset = int(record.body["offset"])
                    claims = tuple(
                        decode_claim(c) for c in record.body["claims"]
                    )
                    admits[offset] = claims
                    recovery.next_sequence = max(
                        recovery.next_sequence, offset + len(claims)
                    )
                elif record.type == "abort":
                    for offset, count in record.body.get("applied", []):
                        claims = admits.pop(int(offset), ())
                        recovery.aborted_claims += len(claims) or int(count)
                else:  # commit
                    watermark = int(record.body["watermark"])
                    applied = [
                        (int(o), int(n))
                        for o, n in record.body.get("applied", [])
                    ]
                    if watermark <= base_watermark:
                        # Folded into the checkpoint already; the admit
                        # records may legitimately be compacted away.
                        for offset, _n in applied:
                            admits.pop(offset, None)
                        continue
                    batch_claims: list[Claim] = []
                    missing = False
                    for offset, count in applied:
                        claims = admits.pop(offset, None)
                        if claims is None or len(claims) != count:
                            missing = True
                            break
                        batch_claims.extend(claims)
                    if missing:
                        message = (
                            f"commit at lsn {record.lsn} (watermark "
                            f"{watermark}) references admit records that "
                            "are missing or short; stopping replay at the "
                            "last complete batch"
                        )
                        recovery.warnings.append(message)
                        _warnings.warn(
                            message, WALCorruptionWarning, stacklevel=2
                        )
                        break
                    recovery.batches.append(
                        ReplayBatch(
                            version=int(record.body.get("version", 0)),
                            watermark=watermark,
                            claims=tuple(batch_claims),
                        )
                    )
            recovery.uncommitted = sorted(
                (offset, claims) for offset, claims in admits.items()
            )
            tracer.count("store.replayed_claims", recovery.replayed_claims)
            tracer.count("store.recoveries")
        return recovery

    # ------------------------------------------------------------------
    # Compaction
    # ------------------------------------------------------------------

    def compact(self) -> dict:
        """Fold sealed WAL segments below the latest snapshot's frontier.

        Safe by construction: the frontier is the snapshot's recorded
        ``min_live_lsn`` — the smallest LSN of any admit record that was
        still unsettled when the checkpoint was cut.  Every record a
        future :meth:`recover` can need (tail commits, their admits,
        pending admits) lives at or above it.  Without a snapshot there
        is nothing to fold into, so compaction is a no-op.
        """
        tracer = current_tracer()
        with tracer.span("store.compact"):
            latest = self.snapshots.latest_valid()
            if latest is None:
                return {"removed_segments": [], "keep_from_lsn": 0}
            payload, _path = latest
            keep_from = int(payload["store"].get("min_live_lsn", 0))
            removed = self.wal.compact(keep_from)
        self._compactions += 1
        tracer.count("store.compactions")
        tracer.count("store.compacted_segments", len(removed))
        return {
            "removed_segments": [p.name for p in removed],
            "keep_from_lsn": keep_from,
        }

    # ------------------------------------------------------------------
    # Inspection (CLI)
    # ------------------------------------------------------------------

    def inspect(self) -> dict:
        """JSON-ready structural summary of the store directory."""
        import warnings as _warnings

        with _warnings.catch_warnings():
            _warnings.simplefilter("ignore", WALCorruptionWarning)
            scan = self.wal.scan()
            latest = self.snapshots.latest_valid()
        by_type: dict[str, int] = {}
        for record in scan.records:
            by_type[record.type] = by_type.get(record.type, 0) + 1
        serving = {}
        if latest is not None:
            serving = latest[0]["result"].get("serving", {})
        return {
            "root": str(self.root),
            "wal": {
                "segments": [p.name for p in self.wal.segments()],
                "records": len(scan.records),
                "records_by_type": by_type,
                "next_lsn": scan.next_lsn,
                "uncommitted_batches": len(self._uncommitted),
                "warnings": list(scan.warnings),
            },
            "snapshots": [
                {
                    "file": entry.path.name,
                    "version": entry.version,
                    "address": entry.address,
                }
                for entry in self.snapshots.entries()
            ],
            "latest": {
                "version": serving.get("version"),
                "watermark": serving.get("watermark"),
                "dataset_fingerprint": serving.get("dataset_fingerprint"),
                "config_fingerprint": serving.get("config_fingerprint"),
            },
        }


def open_store(path: str | Path | TruthStore, **kwargs) -> TruthStore:
    """Coerce a path (or pass through an instance) into a TruthStore."""
    if isinstance(path, TruthStore):
        if kwargs:
            raise StoreError(
                "store options cannot be re-specified for an open TruthStore"
            )
        return path
    return TruthStore(path, **kwargs)
