"""Checksummed JSON-lines record envelopes for the claim WAL.

Every WAL record is one line of JSON with a fixed envelope::

    {"lsn": <int>, "type": <str>, "body": {...}, "crc": "xxxxxxxx"}

``lsn`` (log sequence number) is a gap-free, monotonically increasing
record counter across segment files; ``crc`` is the CRC-32 of the
canonical serialization of the other three fields.  A reader therefore
detects three distinct failure modes without any out-of-band metadata:

* a **torn tail** — the final line of a segment is not valid JSON
  (the process died mid-write);
* a **corrupt record** — valid JSON whose checksum does not match
  (bit rot, concurrent writers, manual editing);
* a **sequence gap** — a record whose ``lsn`` is not the predecessor's
  plus one (a lost or reordered write).

Claims are encoded with :func:`encode_claim` / :func:`decode_claim`,
which round-trip every value type the data model admits (strings,
numbers, booleans, ``None`` and arbitrarily nested tuples) so a
replayed claim compares ``==`` to the ingested one — the property the
recovery bit-identity guarantee rests on.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass
from typing import Any

from repro.data.types import Claim, Value

#: Version tag of the WAL record format, embedded in segment headers is
#: unnecessary — the envelope itself is the contract.
WAL_SCHEMA = "tdac-wal/v1"

#: Record types the WAL reader understands.
RECORD_TYPES = ("admit", "commit", "abort")


class StoreError(RuntimeError):
    """A durable-store invariant was violated."""


class RecordCorruptError(StoreError):
    """A WAL line failed parsing, checksum or sequence validation."""


@dataclass(frozen=True)
class Record:
    """One decoded WAL record."""

    lsn: int
    type: str
    body: dict[str, Any]


def _canonical(lsn: int, type_: str, body: dict[str, Any]) -> bytes:
    return json.dumps(
        {"lsn": lsn, "type": type_, "body": body},
        sort_keys=True,
        separators=(",", ":"),
    ).encode("utf-8")


def record_checksum(lsn: int, type_: str, body: dict[str, Any]) -> str:
    """CRC-32 (zero-padded hex) over the record's canonical form."""
    return format(zlib.crc32(_canonical(lsn, type_, body)) & 0xFFFFFFFF, "08x")


def encode_record(lsn: int, type_: str, body: dict[str, Any]) -> str:
    """Render one WAL line (newline included)."""
    if type_ not in RECORD_TYPES:
        raise StoreError(f"unknown WAL record type {type_!r}")
    payload = {
        "lsn": lsn,
        "type": type_,
        "body": body,
        "crc": record_checksum(lsn, type_, body),
    }
    return json.dumps(payload, sort_keys=True, separators=(",", ":")) + "\n"


def decode_record(line: str) -> Record:
    """Parse and validate one WAL line; raises :class:`RecordCorruptError`."""
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as exc:
        raise RecordCorruptError(f"unparseable WAL line: {exc}") from exc
    if not isinstance(payload, dict):
        raise RecordCorruptError("WAL line is not a JSON object")
    try:
        lsn = payload["lsn"]
        type_ = payload["type"]
        body = payload["body"]
        crc = payload["crc"]
    except KeyError as exc:
        raise RecordCorruptError(f"WAL record missing field {exc}") from exc
    if not isinstance(lsn, int) or not isinstance(body, dict):
        raise RecordCorruptError("malformed WAL record envelope")
    if type_ not in RECORD_TYPES:
        raise RecordCorruptError(f"unknown WAL record type {type_!r}")
    if record_checksum(lsn, type_, body) != crc:
        raise RecordCorruptError(f"checksum mismatch on lsn {lsn}")
    return Record(lsn=lsn, type=type_, body=body)


# ----------------------------------------------------------------------
# Claim <-> JSON encoding
# ----------------------------------------------------------------------


def encode_value(value: Value) -> Any:
    """JSON-encode a claim value, tagging tuples so they round-trip."""
    if isinstance(value, tuple):
        return {"__tuple__": [encode_value(v) for v in value]}
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    raise StoreError(
        f"claim value of type {type(value).__name__} is not WAL-serialisable"
    )


def decode_value(payload: Any) -> Value:
    """Invert :func:`encode_value`."""
    if isinstance(payload, dict):
        if set(payload) == {"__tuple__"}:
            return tuple(decode_value(v) for v in payload["__tuple__"])
        raise RecordCorruptError(f"unknown tagged value {payload!r}")
    if isinstance(payload, list):
        raise RecordCorruptError("bare list is not a valid claim value")
    return payload


def encode_claim(claim: Claim) -> dict[str, Any]:
    """Compact JSON record of one claim."""
    return {
        "s": claim.source,
        "o": claim.object,
        "a": claim.attribute,
        "v": encode_value(claim.value),
    }


def decode_claim(payload: dict[str, Any]) -> Claim:
    """Invert :func:`encode_claim`."""
    try:
        return Claim(
            source=payload["s"],
            object=payload["o"],
            attribute=payload["a"],
            value=decode_value(payload["v"]),
        )
    except (TypeError, KeyError) as exc:
        raise RecordCorruptError(f"malformed claim record: {exc}") from exc
