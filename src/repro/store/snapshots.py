"""Versioned, content-addressed on-disk snapshot store.

Each persisted snapshot is one self-contained JSON file,
``snapshot-<version>-<address>.json``, where the address is a digest of
``(Dataset.fingerprint, TDACConfig.fingerprint, watermark)`` — the
triple that fully determines an exact snapshot's content.  The payload
carries:

* the served state in the shared ``tdac-result/v1`` schema (the
  ``result`` key, exactly ``TruthSnapshot.to_dict()``);
* the **accumulated dataset** at the snapshot's watermark
  (:func:`repro.data.io.dataset_to_dict`), which is what makes a
  snapshot a true checkpoint: recovery rebuilds the dataset from here
  and only replays the WAL tail above the watermark, so WAL segments
  below it can be compacted away;
* store metadata (``wal_lsn``, ``min_live_lsn``, ``next_sequence``,
  the base/reference algorithm names and the full config) plus a
  SHA-256 checksum over the rest of the payload.

Snapshots double as an on-disk warm start for
:class:`~repro.core.cache.PartitionCache`:
:meth:`SnapshotStore.seed_partition_cache` replays every valid
snapshot's selected partition into a cache under the exact key
``TDAC.run`` consults, so a recovered service (or a fresh one on the
same corpus) skips the partition sweep entirely.
"""

from __future__ import annotations

import hashlib
import json
import warnings
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.store.records import StoreError
from repro.store.wal import WALCorruptionWarning

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.cache import PartitionCache
    from repro.core.config import TDACConfig
    from repro.data.dataset import Dataset
    from repro.serving.snapshot import TruthSnapshot

#: Version tag of the persisted snapshot payload.
SNAPSHOT_SCHEMA = "tdac-snapshot/v1"

SNAPSHOT_PREFIX = "snapshot-"
SNAPSHOT_SUFFIX = ".json"


def snapshot_address(
    dataset_fingerprint: str, config_fingerprint: str, watermark: int
) -> str:
    """Content address of a snapshot: what it serves, not when it ran."""
    blob = f"{dataset_fingerprint}:{config_fingerprint}:{watermark}"
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


def _payload_checksum(payload: dict[str, Any]) -> str:
    """SHA-256 over the canonical payload with the checksum field blanked."""
    scrubbed = dict(payload)
    store_meta = dict(scrubbed.get("store", {}))
    store_meta.pop("checksum", None)
    scrubbed["store"] = store_meta
    blob = json.dumps(scrubbed, sort_keys=True, separators=(",", ":"), default=str)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class SnapshotEntry:
    """One snapshot file, identified without opening it."""

    path: Path
    version: int
    address: str


class SnapshotStore:
    """Directory of checksummed, versioned snapshot checkpoints."""

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------

    def entries(self) -> list[SnapshotEntry]:
        """All snapshot files, newest version first."""
        found = []
        for path in self.directory.glob(
            f"{SNAPSHOT_PREFIX}*{SNAPSHOT_SUFFIX}"
        ):
            stem = path.name[len(SNAPSHOT_PREFIX):-len(SNAPSHOT_SUFFIX)]
            version_part, _, address = stem.partition("-")
            try:
                version = int(version_part)
            except ValueError:
                continue
            found.append(SnapshotEntry(path, version, address))
        found.sort(key=lambda e: (e.version, e.path.name), reverse=True)
        return found

    def is_empty(self) -> bool:
        return not self.entries()

    # ------------------------------------------------------------------

    def record(
        self,
        snapshot: "TruthSnapshot",
        dataset: "Dataset",
        *,
        wal_lsn: int,
        min_live_lsn: int,
        next_sequence: int,
        base_algorithm: str,
        reference_algorithm: str,
        config: "TDACConfig",
    ) -> Path:
        """Persist ``snapshot`` (plus its dataset) as a checkpoint file.

        The write is atomic (temp file + rename) so a crash mid-write
        leaves at worst an ignorable ``.tmp`` file, never a half
        snapshot that shadows an older valid one.
        """
        from repro.data.io import dataset_to_dict

        address = snapshot_address(
            snapshot.dataset_fingerprint,
            snapshot.config_fingerprint,
            snapshot.watermark,
        )
        payload: dict[str, Any] = {
            "schema": SNAPSHOT_SCHEMA,
            "result": snapshot.to_dict(),
            "dataset": dataset_to_dict(dataset),
            "store": {
                "address": address,
                "wal_lsn": wal_lsn,
                "min_live_lsn": min_live_lsn,
                "next_sequence": next_sequence,
                "base_algorithm": base_algorithm,
                "reference_algorithm": reference_algorithm,
                "config": config.to_dict(),
            },
        }
        payload["store"]["checksum"] = _payload_checksum(payload)
        name = f"{SNAPSHOT_PREFIX}{snapshot.version:010d}-{address}{SNAPSHOT_SUFFIX}"
        path = self.directory / name
        tmp = path.with_suffix(".tmp")
        tmp.write_text(
            json.dumps(payload, sort_keys=True, default=str) + "\n"
        )
        tmp.replace(path)
        return path

    def load(self, path: Path) -> dict[str, Any]:
        """Read and validate one snapshot file."""
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise StoreError(f"unreadable snapshot {path.name}: {exc}") from exc
        if not isinstance(payload, dict) or payload.get("schema") != SNAPSHOT_SCHEMA:
            raise StoreError(
                f"snapshot {path.name} does not carry the "
                f"{SNAPSHOT_SCHEMA} schema"
            )
        recorded = payload.get("store", {}).get("checksum")
        if recorded != _payload_checksum(payload):
            raise StoreError(f"snapshot {path.name} failed its checksum")
        return payload

    def latest_valid(self) -> tuple[dict[str, Any], Path] | None:
        """Newest snapshot that validates, falling back over corrupt ones.

        A corrupt newer snapshot produces a loud warning (the state it
        held is lost; recovery falls back to the previous checkpoint
        plus a longer WAL replay) — never a silent skip.
        """
        for entry in self.entries():
            try:
                return self.load(entry.path), entry.path
            except StoreError as exc:
                warnings.warn(
                    f"snapshot {entry.path.name} is invalid ({exc}); "
                    "falling back to an older checkpoint",
                    WALCorruptionWarning,
                    stacklevel=2,
                )
        return None

    # ------------------------------------------------------------------

    def seed_partition_cache(self, cache: "PartitionCache") -> int:
        """Warm ``cache`` with every valid snapshot's selected partition.

        Keys match :meth:`TDAC._select_with_cache` exactly — (dataset
        fingerprint, reference algorithm name, config fingerprint) — so
        a subsequent ``TDAC.run`` over the same corpus replays the
        partition instead of re-running the sweep.  Returns the number
        of entries inserted.
        """
        from repro.core.partition import Partition

        seeded = 0
        seen: set[tuple[str, str, str]] = set()
        for entry in self.entries():
            try:
                payload = self.load(entry.path)
            except StoreError:
                continue
            result = payload.get("result", {})
            serving = result.get("serving", {})
            blocks = result.get("partition")
            reference = payload.get("store", {}).get("reference_algorithm")
            if not blocks or not reference:
                continue
            key = (
                serving.get("dataset_fingerprint", ""),
                reference,
                serving.get("config_fingerprint", ""),
            )
            if not all(key) or key in seen:
                continue
            seen.add(key)
            silhouettes = {
                int(k): float(v)
                for k, v in (result.get("silhouette_by_k") or {}).items()
            }
            cache.put(key, Partition.from_blocks(blocks), silhouettes)
            seeded += 1
        return seeded
