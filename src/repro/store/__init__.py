"""Durable persistence for the serving layer: claim WAL + snapshots.

``repro.store`` gives :class:`~repro.serving.TruthService` a crash-safe
backing directory:

* :class:`ClaimWAL` — append-only, checksummed JSON-lines log of every
  admitted claim batch, rotated into sealed segments;
* :class:`SnapshotStore` — versioned, content-addressed checkpoints of
  the served :class:`~repro.serving.TruthSnapshot` (persisted in the
  shared ``tdac-result/v1`` schema) plus the accumulated dataset;
* :class:`TruthStore` — the facade combining both, with
  :meth:`~TruthStore.recover` (rebuild the applied history from disk)
  and :meth:`~TruthStore.compact` (fold sealed WAL segments below the
  latest checkpoint's live frontier).

The subsystem is opt-in: a service without a ``store=`` stays purely
in-memory and pays nothing.
"""

from repro.store.records import (
    RECORD_TYPES,
    Record,
    RecordCorruptError,
    StoreError,
    WAL_SCHEMA,
    decode_claim,
    decode_record,
    encode_claim,
    encode_record,
)
from repro.store.snapshots import (
    SNAPSHOT_SCHEMA,
    SnapshotEntry,
    SnapshotStore,
    snapshot_address,
)
from repro.store.store import ReplayBatch, StoreRecovery, TruthStore, open_store
from repro.store.wal import ClaimWAL, WALCorruptionWarning, WALScan

__all__ = [
    "ClaimWAL",
    "RECORD_TYPES",
    "Record",
    "RecordCorruptError",
    "ReplayBatch",
    "SNAPSHOT_SCHEMA",
    "SnapshotEntry",
    "SnapshotStore",
    "StoreError",
    "StoreRecovery",
    "TruthStore",
    "WALCorruptionWarning",
    "WALScan",
    "WAL_SCHEMA",
    "decode_claim",
    "decode_record",
    "encode_claim",
    "encode_record",
    "open_store",
    "snapshot_address",
]
