"""Append-only, segment-rotated claim WAL with truncation detection.

The WAL is a directory of JSON-lines segment files named by the LSN of
their first record (``wal-00000000000000000042.jsonl``), so segments
sort lexicographically into log order and a record's home segment is
found without an index.  The highest-numbered segment is *active* (open
for append); every other segment is *sealed* and immutable, which is
what makes compaction a pure file deletion.

Three durability levels (``sync=``):

* ``"always"`` — ``fsync`` after every record;
* ``"commit"`` (default) — ``flush`` every record, ``fsync`` only on
  ``commit``/``abort`` records (the ones that change what recovery
  replays);
* ``"never"`` — OS-buffered writes only (tests, benchmarks).

Reading is offset-based: :meth:`ClaimWAL.scan` walks the segments,
validating each line's checksum and LSN continuity while tracking the
byte offset of the last valid record.  A torn tail or a corrupt record
stops the scan at that offset with a **loud**
:class:`WALCorruptionWarning` — interior records after a corruption are
never silently skipped, because replaying a log with a hole would
produce a state no uninterrupted run could have reached.  Opening the
WAL for append after such damage physically truncates the offending
segment back to the last valid offset so subsequent appends never bury
garbage inside an otherwise-valid file.
"""

from __future__ import annotations

import os
import threading
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO

from repro.store.records import (
    Record,
    RecordCorruptError,
    StoreError,
    decode_record,
    encode_record,
)

#: Segment file name prefix/suffix; the 20-digit zero-padded first LSN
#: in between keeps lexicographic order equal to log order.
SEGMENT_PREFIX = "wal-"
SEGMENT_SUFFIX = ".jsonl"

#: Durability levels accepted by ``sync=``.
SYNC_MODES = ("always", "commit", "never")


class WALCorruptionWarning(UserWarning):
    """Loud signal that the WAL lost records to truncation or corruption."""


def segment_name(first_lsn: int) -> str:
    """File name of the segment whose first record is ``first_lsn``."""
    return f"{SEGMENT_PREFIX}{first_lsn:020d}{SEGMENT_SUFFIX}"


def segment_first_lsn(path: Path) -> int:
    """Invert :func:`segment_name`."""
    stem = path.name[len(SEGMENT_PREFIX):-len(SEGMENT_SUFFIX)]
    try:
        return int(stem)
    except ValueError as exc:
        raise StoreError(f"not a WAL segment file: {path.name}") from exc


@dataclass
class WALScan:
    """Everything one pass over the log learned.

    ``records`` is the longest valid prefix of the log; ``warnings``
    describes anything dropped to reach it.  ``damaged_segment`` /
    ``valid_bytes`` locate the first invalid byte so the writer can
    physically truncate before appending.
    """

    records: list[Record] = field(default_factory=list)
    warnings: list[str] = field(default_factory=list)
    damaged_segment: Path | None = None
    valid_bytes: int = 0
    next_lsn: int = 0


class ClaimWAL:
    """Append-only log of checksummed records across rotating segments."""

    def __init__(
        self,
        directory: str | Path,
        *,
        segment_max_records: int = 1024,
        segment_max_bytes: int = 1 << 20,
        sync: str = "commit",
    ) -> None:
        if segment_max_records < 1:
            raise ValueError("segment_max_records must be at least 1")
        if segment_max_bytes < 1:
            raise ValueError("segment_max_bytes must be at least 1")
        if sync not in SYNC_MODES:
            raise ValueError(f"sync must be one of {SYNC_MODES}, got {sync!r}")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.segment_max_records = segment_max_records
        self.segment_max_bytes = segment_max_bytes
        self.sync = sync
        self._handle: IO[bytes] | None = None
        self._active_path: Path | None = None
        self._active_records = 0
        self._active_bytes = 0
        self.bytes_appended = 0
        # Serialises LSN assignment with the write that carries it.
        # Admits arrive from ingest threads while the batcher appends
        # commits/aborts; interleaving those would write out-of-order
        # LSNs, which the next recovery scan reads as corruption and
        # truncates — losing acknowledged records.
        self._write_lock = threading.RLock()
        scan = self.scan(repair=True)
        self._next_lsn = scan.next_lsn

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def next_lsn(self) -> int:
        """LSN the next appended record will carry."""
        return self._next_lsn

    def segments(self) -> list[Path]:
        """Segment files in log order."""
        return sorted(
            p
            for p in self.directory.glob(f"{SEGMENT_PREFIX}*{SEGMENT_SUFFIX}")
            if p.is_file()
        )

    def is_empty(self) -> bool:
        """Whether the log holds no records at all."""
        return self._next_lsn == 0

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------

    def scan(self, repair: bool = False) -> WALScan:
        """Validate the whole log, returning its longest valid prefix.

        With ``repair=True`` a damaged segment is physically truncated
        to its last valid byte (and any segments after it deleted), so
        the log on disk afterwards equals the returned prefix.  Every
        dropped record is reported through a
        :class:`WALCorruptionWarning` — corruption is never silent.
        """
        scan = WALScan()
        expected_first = None
        stop = False
        segments = self.segments()
        for seg_index, path in enumerate(segments):
            if stop:
                scan.warnings.append(
                    f"segment {path.name} follows a corrupt segment and "
                    "was not replayed"
                )
                continue
            first_lsn = segment_first_lsn(path)
            if expected_first is not None and first_lsn != expected_first:
                scan.warnings.append(
                    f"segment {path.name} starts at lsn {first_lsn}, "
                    f"expected {expected_first}; stopping replay"
                )
                scan.damaged_segment = path
                scan.valid_bytes = 0
                stop = True
                continue
            raw = path.read_bytes()
            offset = 0
            expected_lsn = first_lsn
            last_segment = seg_index == len(segments) - 1
            while offset < len(raw):
                newline = raw.find(b"\n", offset)
                torn = newline < 0
                end = len(raw) if torn else newline + 1
                line = raw[offset:end]
                try:
                    if torn:
                        raise RecordCorruptError(
                            "record has no trailing newline (torn write)"
                        )
                    record = decode_record(line.decode("utf-8"))
                    if record.lsn != expected_lsn:
                        raise RecordCorruptError(
                            f"lsn {record.lsn} where {expected_lsn} was "
                            "expected (sequence gap)"
                        )
                except (RecordCorruptError, UnicodeDecodeError) as exc:
                    tail = torn and last_segment
                    kind = "torn tail" if tail else "corrupt record"
                    scan.warnings.append(
                        f"{kind} in {path.name} at byte {offset}: {exc}; "
                        f"recovering to last valid record (lsn "
                        f"{expected_lsn - 1 if expected_lsn else 'none'}); "
                        f"{len(raw) - offset} trailing byte(s) dropped"
                    )
                    scan.damaged_segment = path
                    scan.valid_bytes = offset
                    stop = True
                    break
                scan.records.append(record)
                expected_lsn = record.lsn + 1
                offset = end
            expected_first = expected_lsn
        scan.next_lsn = (
            scan.records[-1].lsn + 1 if scan.records else 0
        )
        for message in scan.warnings:
            warnings.warn(message, WALCorruptionWarning, stacklevel=2)
        if repair and scan.damaged_segment is not None:
            self._repair(scan)
        return scan

    def _repair(self, scan: WALScan) -> None:
        """Truncate the damaged segment and drop everything after it."""
        assert scan.damaged_segment is not None
        damaged = scan.damaged_segment
        drop = [p for p in self.segments() if p.name > damaged.name]
        if scan.valid_bytes == 0:
            damaged.unlink(missing_ok=True)
        else:
            with open(damaged, "r+b") as handle:
                handle.truncate(scan.valid_bytes)
        for path in drop:
            path.unlink(missing_ok=True)

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------

    def append(self, type_: str, body: dict) -> int:
        """Append one record; returns its LSN.

        The record is on disk (to the level the ``sync`` mode promises)
        when this returns, which is what lets the serving layer
        acknowledge admissions before applying them.
        """
        with self._write_lock:
            line = encode_record(self._next_lsn, type_, body).encode("utf-8")
            overflows = (
                self._active_records >= self.segment_max_records
                or (
                    self._active_records > 0
                    and self._active_bytes + len(line) > self.segment_max_bytes
                )
            )
            if self._handle is None or overflows:
                self._rotate()
            assert self._handle is not None
            self._handle.write(line)
            self._handle.flush()
            if self.sync == "always" or (
                self.sync == "commit" and type_ in ("commit", "abort")
            ):
                os.fsync(self._handle.fileno())
            lsn = self._next_lsn
            self._next_lsn += 1
            self._active_records += 1
            self._active_bytes += len(line)
            self.bytes_appended += len(line)
            return lsn

    def _rotate(self) -> None:
        """Seal the active segment and open a fresh one."""
        if self._handle is not None:
            self._handle.flush()
            os.fsync(self._handle.fileno())
            self._handle.close()
        self._active_path = self.directory / segment_name(self._next_lsn)
        if self._active_path.exists():
            raise StoreError(
                f"segment {self._active_path.name} already exists; "
                "is another writer attached to this store?"
            )
        self._handle = open(self._active_path, "ab")
        self._active_records = 0
        self._active_bytes = 0

    def flush(self) -> None:
        """Force everything appended so far to disk (fsync)."""
        with self._write_lock:
            if self._handle is not None:
                self._handle.flush()
                os.fsync(self._handle.fileno())

    def close(self) -> None:
        """Flush and release the active segment handle."""
        with self._write_lock:
            if self._handle is not None:
                self.flush()
                self._handle.close()
                self._handle = None

    # ------------------------------------------------------------------
    # Compaction
    # ------------------------------------------------------------------

    def compact(self, keep_from_lsn: int) -> list[Path]:
        """Delete sealed segments wholly below ``keep_from_lsn``.

        A sealed segment spans ``[first_lsn, next segment's first_lsn)``;
        it can be folded once every record in it is at or below the
        snapshot watermark's live frontier.  The active segment is never
        touched.  Returns the deleted paths.
        """
        segments = self.segments()
        removed: list[Path] = []
        for path, successor in zip(segments, segments[1:]):
            if path == self._active_path:
                break
            if segment_first_lsn(successor) <= keep_from_lsn:
                path.unlink()
                removed.append(path)
            else:
                break
        return removed
