"""Deterministic, fault-tolerant fan-out primitives shared across the library.

Both parallel surfaces of TD-AC — the per-block solves of Algorithm 1's
step 4 and the ``(k, init)`` restart grid of the partition-selection
sweep — reduce to the same shape: a list of independent tasks whose
results must be consumed **in task order** so that parallel runs stay
bit-identical to sequential ones.  This module depends only on the
stdlib and :mod:`repro.observability` (itself pure stdlib), so every
layer can import it without cycles.

Backends
--------
``"threads"``
    Default.  The numpy kernels doing the heavy lifting release the
    GIL, and threads share memory, so no dataset or matrix is pickled.
``"processes"``
    Sidesteps the GIL for Python-bound workloads at a per-task pickling
    cost; only worth it for coarse work units.  Pools are created from
    an explicit **spawn** multiprocessing context: the platform-default
    ``fork`` on Linux can deadlock when the parent already holds BLAS /
    thread-pool state from a prior threads-backend sweep.

Fault tolerance
---------------
:func:`ordered_map` accepts an :class:`ExecutionPolicy` governing what
happens when a worker misbehaves:

* a failing or timed-out task is retried with bounded exponential
  backoff (``max_retries`` / ``backoff_seconds``);
* when retries are exhausted — or the pool itself is broken (e.g. a
  worker process died) — the unresolved tasks are recomputed inline by
  a **deterministic sequential fallback**, so the final result list is
  bit-identical to a clean sequential run;
* with the fallback disabled, the failure surfaces as a
  :class:`TaskError` carrying the stage label, task index and attempt
  count, so a crash anywhere in a pipeline is attributable.

Deterministic fault-injection hooks (:class:`FailNth`,
:class:`StallNth`, :class:`KillWorker`) let tests crash the Nth task of
a stage and assert that recovery reproduces the sequential results
exactly.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import (
    BrokenExecutor,
    Executor,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from dataclasses import dataclass
from multiprocessing import get_context
from typing import Callable, Sequence, TypeVar

from repro.observability.tracer import current_tracer

T = TypeVar("T")

BACKENDS = ("threads", "processes")

#: Start method for process pools.  ``spawn`` gives workers a fresh
#: interpreter, immune to the fork-after-threads deadlocks that the
#: Linux default (``fork``) invites once a threads-backend sweep has
#: populated the parent's BLAS thread pools.
DEFAULT_MP_START_METHOD = "spawn"


def validate_backend(backend: str) -> str:
    """Check ``backend`` is a known executor kind; returns it unchanged."""
    if backend not in BACKENDS:
        known = ", ".join(BACKENDS)
        raise ValueError(f"unknown backend {backend!r}; known: {known}")
    return backend


def make_executor(
    n_jobs: int,
    backend: str = "threads",
    mp_start_method: str | None = None,
) -> Executor:
    """An executor with ``n_jobs`` workers of the requested kind.

    Process pools are pinned to an explicit multiprocessing start
    method (:data:`DEFAULT_MP_START_METHOD` unless overridden) instead
    of the platform default.
    """
    validate_backend(backend)
    if n_jobs < 1:
        raise ValueError("n_jobs must be at least 1")
    if backend == "processes":
        method = mp_start_method or DEFAULT_MP_START_METHOD
        return ProcessPoolExecutor(
            max_workers=n_jobs, mp_context=get_context(method)
        )
    return ThreadPoolExecutor(max_workers=n_jobs)


# ----------------------------------------------------------------------
# Failure model
# ----------------------------------------------------------------------


class TaskError(RuntimeError):
    """A task failed after exhausting its retry budget (no fallback).

    Carries the stage label, the task index within the stage and the
    attempt count, so a worker exception deep inside a pipeline is
    attributable to the stage that scheduled it.
    """

    def __init__(self, label: str, index: int, attempts: int) -> None:
        super().__init__(
            f"task {index} of stage {label!r} failed after "
            f"{attempts} attempt(s)"
        )
        self.label = label
        self.index = index
        self.attempts = attempts


class TransientTaskError(RuntimeError):
    """The error the built-in fault injectors raise (retryable)."""


class _PoolUnhealthy(Exception):
    """Internal: the executor can no longer be trusted with work."""

    def __init__(self, cause: BaseException) -> None:
        super().__init__(str(cause))
        self.cause = cause


@dataclass(frozen=True)
class ExecutionPolicy:
    """How :func:`ordered_map` reacts to failing workers.

    Parameters
    ----------
    max_retries:
        Resubmissions per task after its first failure (0 disables
        retry; the fallback, if enabled, still applies).
    backoff_seconds / backoff_cap_seconds:
        Base delay before a retry, doubled per attempt and capped.
    timeout_seconds:
        Per-task deadline for gathering a result; a timeout counts as a
        task failure (``None`` waits indefinitely).
    sequential_fallback:
        When True (default), tasks whose retries are exhausted — or all
        unresolved tasks once the pool breaks — are recomputed inline,
        keeping results bit-identical to a sequential run.  When False
        the failure surfaces as :class:`TaskError`.
    fault_injector:
        Test hook called as ``injector(index, attempt)`` inside the
        worker before the real function; raise to simulate a fault.
        Must be picklable for the process backend (the built-in
        injectors are).  Never invoked on the sequential fast path or
        during fallback recomputation.
    """

    max_retries: int = 1
    backoff_seconds: float = 0.0
    backoff_cap_seconds: float = 1.0
    timeout_seconds: float | None = None
    sequential_fallback: bool = True
    fault_injector: Callable[[int, int], None] | None = None

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.backoff_seconds < 0 or self.backoff_cap_seconds < 0:
            raise ValueError("backoff must be non-negative")
        if self.timeout_seconds is not None and self.timeout_seconds <= 0:
            raise ValueError("timeout_seconds must be positive")

    def backoff_for(self, attempt: int) -> float:
        """Delay before retry ``attempt`` (1-based), doubled and capped."""
        if self.backoff_seconds <= 0:
            return 0.0
        return min(
            self.backoff_seconds * (2 ** (attempt - 1)),
            self.backoff_cap_seconds,
        )


#: Policy used when callers pass ``policy=None``: one retry, no backoff,
#: sequential fallback on persistent failure.
DEFAULT_POLICY = ExecutionPolicy()


# Built-in deterministic fault injectors.  All are frozen dataclasses so
# the process backend can pickle them, and all key off the (index,
# attempt) pair so behaviour is reproducible under retry.


@dataclass(frozen=True)
class FailNth:
    """Raise on task ``index`` for its first ``fail_attempts`` attempts.

    ``broken=True`` raises :class:`concurrent.futures.BrokenExecutor`
    instead of :class:`TransientTaskError`, which the gather loop treats
    as a dead pool — exercising the whole-stage sequential fallback.
    """

    index: int
    fail_attempts: int = 1
    broken: bool = False

    def __call__(self, index: int, attempt: int) -> None:
        if index == self.index and attempt < self.fail_attempts:
            if self.broken:
                raise BrokenExecutor(
                    f"injected pool failure on task {index}"
                )
            raise TransientTaskError(
                f"injected fault on task {index}, attempt {attempt}"
            )


@dataclass(frozen=True)
class StallNth:
    """Sleep inside task ``index`` for its first ``stall_attempts`` attempts.

    Paired with ``timeout_seconds`` this simulates a hung worker: the
    first attempt times out, the retry proceeds promptly.
    """

    index: int
    seconds: float
    stall_attempts: int = 1

    def __call__(self, index: int, attempt: int) -> None:
        if index == self.index and attempt < self.stall_attempts:
            time.sleep(self.seconds)


@dataclass(frozen=True)
class KillWorker:
    """Hard-kill the worker process running task ``index`` (first attempt).

    Only meaningful on the process backend, where it produces a genuine
    ``BrokenProcessPool``; on threads it would kill the interpreter, so
    it refuses to run outside a child process.
    """

    index: int

    def __call__(self, index: int, attempt: int) -> None:
        if index == self.index and attempt == 0:
            import multiprocessing

            if multiprocessing.parent_process() is None:
                raise RuntimeError(
                    "KillWorker fired in the parent process; "
                    "use backend='processes'"
                )
            os._exit(17)


# ----------------------------------------------------------------------
# Ordered fan-out
# ----------------------------------------------------------------------


def _call_task(
    fn: Callable[..., T],
    args: tuple,
    index: int,
    attempt: int,
    injector: Callable[[int, int], None] | None,
) -> T:
    """Worker-side trampoline: run the injector hook, then the task."""
    if injector is not None:
        injector(index, attempt)
    return fn(*args)


def ordered_map(
    fn: Callable[..., T],
    tasks: Sequence[tuple],
    n_jobs: int = 1,
    backend: str = "threads",
    policy: ExecutionPolicy | None = None,
    label: str | None = None,
) -> list[T]:
    """``[fn(*task) for task in tasks]``, optionally fanned out.

    Results come back in task order regardless of completion order, so
    the reduction downstream sees the same sequence a sequential run
    produces.  Worker failures are handled per ``policy`` (retry with
    backoff, then deterministic sequential fallback by default); the
    ambient tracer's counters record submissions, failures, retries and
    fallbacks under ``label`` (defaults to ``fn``'s name).
    """
    validate_backend(backend)
    policy = DEFAULT_POLICY if policy is None else policy
    if n_jobs == 1 or len(tasks) <= 1:
        return [fn(*task) for task in tasks]

    tracer = current_tracer()
    name = label if label is not None else getattr(fn, "__name__", "task")
    tracer.count(f"{name}.tasks", len(tasks))
    workers = min(n_jobs, len(tasks))
    unresolved = object()
    results: list = [unresolved] * len(tasks)
    try:
        with make_executor(workers, backend) as pool:
            futures = [
                pool.submit(
                    _call_task, fn, task, i, 0, policy.fault_injector
                )
                for i, task in enumerate(tasks)
            ]
            for index, future in enumerate(futures):
                results[index] = _gather(
                    pool, fn, tasks[index], index, future, policy, tracer, name
                )
    except _PoolUnhealthy as fault:
        if not policy.sequential_fallback:
            raise TaskError(
                name, _first_unresolved(results, unresolved), 1
            ) from fault.cause
        # The pool is gone; recompute every task that has no result yet,
        # in task order — bit-identical to a clean sequential run.
        tracer.count(f"{name}.pool_fallbacks")
        for i, value in enumerate(results):
            if value is unresolved:
                results[i] = fn(*tasks[i])
    return results


def _first_unresolved(results: list, sentinel: object) -> int:
    for i, value in enumerate(results):
        if value is sentinel:
            return i
    return len(results)


def _gather(
    pool: Executor,
    fn: Callable[..., T],
    task: tuple,
    index: int,
    future: Future,
    policy: ExecutionPolicy,
    tracer,
    name: str,
) -> T:
    """Resolve one task's result, retrying / falling back per policy."""
    attempt = 0
    while True:
        try:
            return future.result(timeout=policy.timeout_seconds)
        except BrokenExecutor as exc:
            raise _PoolUnhealthy(exc) from exc
        except Exception as exc:
            attempt += 1
            tracer.count(f"{name}.task_failures")
            if attempt > policy.max_retries:
                if policy.sequential_fallback:
                    # Deterministic inline recomputation of just this
                    # task; no injection, no pool.
                    tracer.count(f"{name}.task_fallbacks")
                    return fn(*task)
                raise TaskError(name, index, attempt) from exc
            tracer.count(f"{name}.task_retries")
            delay = policy.backoff_for(attempt)
            if delay > 0:
                time.sleep(delay)
            try:
                future = pool.submit(
                    _call_task, fn, task, index, attempt, policy.fault_injector
                )
            except RuntimeError as submit_exc:
                # Pool shut down or broke between gather and resubmit.
                raise _PoolUnhealthy(submit_exc) from submit_exc
