"""Deterministic fan-out primitives shared across the library.

Both parallel surfaces of TD-AC — the per-block solves of Algorithm 1's
step 4 and the ``(k, init)`` restart grid of the partition-selection
sweep — reduce to the same shape: a list of independent tasks whose
results must be consumed **in task order** so that parallel runs stay
bit-identical to sequential ones.  This module is dependency-free (pure
stdlib) so every layer can import it without cycles.

Backends
--------
``"threads"``
    Default.  The numpy kernels doing the heavy lifting release the
    GIL, and threads share memory, so no dataset or matrix is pickled.
``"processes"``
    Sidesteps the GIL for Python-bound workloads at a per-task pickling
    cost; only worth it for coarse work units.
"""

from __future__ import annotations

from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, Sequence, TypeVar

T = TypeVar("T")

BACKENDS = ("threads", "processes")


def validate_backend(backend: str) -> str:
    """Check ``backend`` is a known executor kind; returns it unchanged."""
    if backend not in BACKENDS:
        known = ", ".join(BACKENDS)
        raise ValueError(f"unknown backend {backend!r}; known: {known}")
    return backend


def make_executor(n_jobs: int, backend: str = "threads") -> Executor:
    """An executor with ``n_jobs`` workers of the requested kind."""
    validate_backend(backend)
    if n_jobs < 1:
        raise ValueError("n_jobs must be at least 1")
    if backend == "processes":
        return ProcessPoolExecutor(max_workers=n_jobs)
    return ThreadPoolExecutor(max_workers=n_jobs)


def ordered_map(
    fn: Callable[..., T],
    tasks: Sequence[tuple],
    n_jobs: int = 1,
    backend: str = "threads",
) -> list[T]:
    """``[fn(*task) for task in tasks]``, optionally fanned out.

    Results come back in task order regardless of completion order, so
    the reduction downstream sees the same sequence a sequential run
    produces.
    """
    validate_backend(backend)
    if n_jobs == 1 or len(tasks) <= 1:
        return [fn(*task) for task in tasks]
    workers = min(n_jobs, len(tasks))
    with make_executor(workers, backend) as pool:
        futures = [pool.submit(fn, *task) for task in tasks]
        return [future.result() for future in futures]
