"""AccuGenPartition — the brute-force baseline (Ba et al., WebDB 2015).

The approach the paper compares TD-AC against: enumerate *every*
partition of the attribute set (Bell-number many), run the base truth
discovery algorithm on each block of each candidate, and score the
candidate with a weighting function over the estimated per-block source
reliabilities.  Three weighting functions are implemented:

* ``max`` — a partition is good if every source gets to shine somewhere:
  score is the mean over sources of their *maximum* per-block estimated
  accuracy.  A partition that isolates each source's strong attribute
  group pushes every source's best-block accuracy up.
* ``avg`` — score is the mean over blocks and sources of the estimated
  accuracy: rewards partitions under which the base algorithm is
  globally confident about its sources.
* ``oracle`` — uses the ground truth: score is the actual claim-level
  accuracy of the merged predictions.  This is the upper bound the
  paper's Oracle rows report; it is not available in practice.

The running time is dominated by ``B(|A|)`` full base-algorithm sweeps —
the blow-up TD-AC removes (Tables 4a–4c report ≈200× slowdowns).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Mapping

from repro.algorithms.base import TruthDiscoveryAlgorithm, TruthDiscoveryResult
from repro.baselines.partitions import all_partitions
from repro.core.parallel import run_blocks
from repro.core.partition import Partition
from repro.data.dataset import Dataset
from repro.data.types import Fact, GroundTruthError, SourceId, Value
from repro.metrics.classification import evaluate_predictions

WeightingFunction = Callable[
    [Dataset, Partition, list[TruthDiscoveryResult]], float
]


def max_weighting(
    dataset: Dataset,
    partition: Partition,
    block_results: list[TruthDiscoveryResult],
) -> float:
    """Mean over sources of their best per-block estimated accuracy."""
    best: dict[SourceId, float] = {}
    for block_result in block_results:
        for source, trust in block_result.source_trust.items():
            if trust > best.get(source, float("-inf")):
                best[source] = trust
    if not best:
        return 0.0
    return sum(best.values()) / len(best)


def avg_weighting(
    dataset: Dataset,
    partition: Partition,
    block_results: list[TruthDiscoveryResult],
) -> float:
    """Mean estimated accuracy over every (block, source) pair."""
    total = 0.0
    count = 0
    for block_result in block_results:
        for trust in block_result.source_trust.values():
            total += trust
            count += 1
    return total / count if count else 0.0


def oracle_weighting(
    dataset: Dataset,
    partition: Partition,
    block_results: list[TruthDiscoveryResult],
) -> float:
    """True accuracy of the merged predictions (requires ground truth)."""
    if not dataset.has_truth:
        raise GroundTruthError(
            "oracle weighting requires a dataset with ground truth"
        )
    merged: dict[Fact, Value] = {}
    for block_result in block_results:
        merged.update(block_result.predictions)
    return evaluate_predictions(dataset, merged).accuracy


WEIGHTING_FUNCTIONS: Mapping[str, WeightingFunction] = {
    "max": max_weighting,
    "avg": avg_weighting,
    "oracle": oracle_weighting,
}


@dataclass(frozen=True)
class GenPartitionResult:
    """Outcome of one brute-force partition search."""

    result: TruthDiscoveryResult
    partition: Partition
    score: float
    weighting: str
    n_partitions_explored: int

    @property
    def predictions(self) -> Mapping[Fact, Value]:
        """Merged fact → value predictions of the winning partition."""
        return self.result.predictions


class AccuGenPartition:
    """Brute-force attribute-partition search with a weighting function.

    Parameters
    ----------
    base:
        Base truth discovery algorithm run on every block of every
        candidate partition (the paper uses Accu).
    weighting:
        ``"max"``, ``"avg"`` or ``"oracle"``.
    include_trivial:
        Whether the one-block and all-singleton partitions participate
        (they do in the original exploration).
    n_jobs:
        Thread-level parallelism for the per-block runs of each
        candidate.
    """

    def __init__(
        self,
        base: TruthDiscoveryAlgorithm,
        weighting: str = "avg",
        include_trivial: bool = True,
        n_jobs: int = 1,
    ) -> None:
        key = weighting.lower()
        if key not in WEIGHTING_FUNCTIONS:
            known = ", ".join(sorted(WEIGHTING_FUNCTIONS))
            raise ValueError(f"unknown weighting {weighting!r}; known: {known}")
        self.base = base
        self.weighting = key
        self.include_trivial = include_trivial
        self.n_jobs = n_jobs

    @property
    def name(self) -> str:
        return f"AccuGenPartition ({self.weighting.capitalize()})"

    def run(self, dataset: Dataset) -> GenPartitionResult:
        """Explore all partitions; return the best-scoring one's result."""
        start = time.perf_counter()
        weight_fn = WEIGHTING_FUNCTIONS[self.weighting]
        best_score = float("-inf")
        best_partition: Partition | None = None
        best_blocks: list[TruthDiscoveryResult] | None = None
        explored = 0
        for partition in all_partitions(dataset.attributes):
            if not self.include_trivial and partition.n_blocks in (
                1,
                len(dataset.attributes),
            ):
                continue
            block_results = run_blocks(
                self.base, dataset, partition, n_jobs=self.n_jobs
            )
            score = weight_fn(dataset, partition, block_results)
            explored += 1
            if score > best_score:
                best_score = score
                best_partition = partition
                best_blocks = block_results
        if best_partition is None or best_blocks is None:
            raise ValueError("no partition explored; empty attribute set?")
        merged = self._merge(dataset, best_blocks, start)
        return GenPartitionResult(
            result=merged,
            partition=best_partition,
            score=best_score,
            weighting=self.weighting,
            n_partitions_explored=explored,
        )

    def _merge(
        self,
        dataset: Dataset,
        block_results: list[TruthDiscoveryResult],
        start: float,
    ) -> TruthDiscoveryResult:
        predictions: dict[Fact, Value] = {}
        confidence: dict[Fact, float] = {}
        trust_sums: dict[SourceId, float] = {s: 0.0 for s in dataset.sources}
        for block_result in block_results:
            predictions.update(block_result.predictions)
            confidence.update(block_result.confidence)
            for source, trust in block_result.source_trust.items():
                trust_sums[source] += trust
        n_blocks = max(len(block_results), 1)
        return TruthDiscoveryResult(
            algorithm=self.name,
            predictions=predictions,
            confidence=confidence,
            source_trust={s: t / n_blocks for s, t in trust_sums.items()},
            iterations=1,
            elapsed_seconds=time.perf_counter() - start,
        )
