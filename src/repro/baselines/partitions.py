"""Enumeration of set partitions (the brute-force search space).

AccuGenPartition explores *every* partition of the attribute set.  The
number of partitions of an ``n``-set is the Bell number ``B(n)`` (203 for
the paper's 6 synthetic attributes), and the standard enumeration is by
*restricted growth strings*: arrays ``a`` with ``a[0] = 0`` and
``a[i] <= max(a[:i]) + 1``, each encoding the block id of element ``i``.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Iterator, Sequence

from repro.core.partition import Partition
from repro.data.types import AttributeId


@lru_cache(maxsize=None)
def bell_number(n: int) -> int:
    """The number of partitions of an ``n``-element set.

    Computed with the Bell triangle; ``B(0) = 1``.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    row = [1]
    for _ in range(n - 1):
        next_row = [row[-1]]
        for value in row:
            next_row.append(next_row[-1] + value)
        row = next_row
    # After n-1 expansions ``row`` is the (n-1)-th Bell-triangle row,
    # whose last entry is B(n).
    return row[-1] if n else 1


def restricted_growth_strings(n: int) -> Iterator[tuple[int, ...]]:
    """Yield every restricted growth string of length ``n``.

    Each string encodes one set partition; strings are produced in
    lexicographic order, starting with the all-zeros string (one block)
    and ending with ``(0, 1, ..., n-1)`` (all singletons).
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    if n == 0:
        yield ()
        return
    a = [0] * n
    b = [1] * n  # b[i] = max(a[:i]) + 1, maintained incrementally
    while True:
        yield tuple(a)
        # Find the rightmost position that can be incremented.
        i = n - 1
        while i > 0 and a[i] == b[i]:
            i -= 1
        if i == 0:
            return
        a[i] += 1
        for j in range(i + 1, n):
            a[j] = 0
            b[j] = max(b[j - 1], a[j - 1] + 1)


def all_partitions(attributes: Sequence[AttributeId]) -> Iterator[Partition]:
    """Yield every partition of ``attributes`` (Bell-number many)."""
    attributes = tuple(attributes)
    for rgs in restricted_growth_strings(len(attributes)):
        yield Partition.from_labels(attributes, rgs)


def partitions_with_block_count(
    attributes: Sequence[AttributeId], k: int
) -> Iterator[Partition]:
    """Yield the partitions of ``attributes`` with exactly ``k`` blocks.

    There are Stirling-number-of-the-second-kind many of them.
    """
    for partition in all_partitions(attributes):
        if partition.n_blocks == k:
            yield partition


@lru_cache(maxsize=None)
def stirling2(n: int, k: int) -> int:
    """Stirling number of the second kind: k-block partitions of an n-set."""
    if n < 0 or k < 0:
        raise ValueError("n and k must be non-negative")
    if n == 0 and k == 0:
        return 1
    if n == 0 or k == 0 or k > n:
        return 0
    return k * stirling2(n - 1, k) + stirling2(n - 1, k - 1)
