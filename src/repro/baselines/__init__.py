"""Brute-force baselines: set-partition enumeration and AccuGenPartition."""

from repro.baselines.gen_partition import (
    AccuGenPartition,
    GenPartitionResult,
    WEIGHTING_FUNCTIONS,
    avg_weighting,
    max_weighting,
    oracle_weighting,
)
from repro.baselines.partitions import (
    all_partitions,
    bell_number,
    partitions_with_block_count,
    restricted_growth_strings,
    stirling2,
)

__all__ = [
    "AccuGenPartition",
    "GenPartitionResult",
    "WEIGHTING_FUNCTIONS",
    "all_partitions",
    "avg_weighting",
    "bell_number",
    "max_weighting",
    "oracle_weighting",
    "partitions_with_block_count",
    "restricted_growth_strings",
    "stirling2",
]
