"""Seeded adversarial workload generators (copying, drift, late arrival).

Truth discovery algorithms are compared on *clean* group-structured
corpora; real corpora misbehave.  This module turns any dataset into an
adversarial variant along one severity axis, deterministically per seed:

* :func:`copying_cliques` — a clique of sources re-publishes a leader's
  claims verbatim (``copy_rate`` of their claims), inflating whatever the
  leader says.  The Accu family's copy detector exists for exactly this.
* :func:`reliability_drift` — sources degrade over their claim stream:
  the probability that a claim is flipped to a wrong value grows linearly
  with its position, reaching ``drift_rate`` at the end.  Algorithms that
  model one static reliability per source average over the drift.
* :func:`late_arrival_stream` — the claim stream arrives in batches with
  a ``reorder_fraction`` of claims delayed by whole batches, exercising
  the serving delta path's tolerance to out-of-order ingestion.

Every generator is an *identity* at severity 0 — it returns the input
dataset object itself — so a severity sweep's first point reproduces the
clean-corpus result bit for bit.  :class:`ScenarioConfig` names one
(scenario, severity, seed, params) cell and fingerprints it, so recorded
leaderboards can be reproduced exactly.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

import numpy as np

from repro.data.builder import DatasetBuilder
from repro.data.dataset import Dataset
from repro.data.types import CATEGORICAL, Claim

#: The registered scenario names, in presentation order.
SCENARIOS = ("copying", "drift", "reorder")


@dataclass(frozen=True)
class ScenarioConfig:
    """One (scenario, severity, seed, params) cell of a sweep, fingerprinted.

    ``params`` holds the scenario's non-severity knobs as a sorted tuple
    of ``(name, value)`` pairs so the config hashes and reproduces
    stably.
    """

    scenario: str
    severity: float
    seed: int = 0
    params: tuple[tuple[str, float], ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.scenario not in SCENARIOS:
            known = ", ".join(SCENARIOS)
            raise ValueError(
                f"unknown scenario {self.scenario!r}; known: {known}"
            )
        if not 0.0 <= self.severity <= 1.0:
            raise ValueError("severity must be in [0, 1]")
        object.__setattr__(self, "params", tuple(sorted(self.params)))

    def param(self, name: str, default: float) -> float:
        """The value of knob ``name``, or ``default``."""
        return dict(self.params).get(name, default)

    @property
    def fingerprint(self) -> str:
        """Stable digest of the scenario cell (for recorded leaderboards)."""
        payload = repr(
            (self.scenario, float(self.severity), int(self.seed), self.params)
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _ordered_claims(dataset: Dataset) -> list[Claim]:
    """The canonical claim stream: builder insertion order."""
    return list(dataset.iter_claims())


def copying_cliques(
    dataset: Dataset,
    copy_rate: float,
    n_copiers: int = 3,
    seed: int = 0,
) -> Dataset:
    """Make ``n_copiers`` sources copy a leader's claims at ``copy_rate``.

    The leader and the copier clique are drawn deterministically from
    ``seed``; each copier claim whose fact the leader also covers is
    replaced by the leader's value with probability ``copy_rate``.  At
    rate 0 the input dataset is returned unchanged (the same object).
    """
    if not 0.0 <= copy_rate <= 1.0:
        raise ValueError("copy_rate must be in [0, 1]")
    if n_copiers < 1:
        raise ValueError("need at least one copier")
    if copy_rate == 0.0 or len(dataset.sources) < 2:
        return dataset
    rng = np.random.default_rng(seed)
    sources = list(dataset.sources)
    leader = sources[int(rng.integers(len(sources)))]
    others = [s for s in sources if s != leader]
    picked = rng.choice(
        len(others), size=min(n_copiers, len(others)), replace=False
    )
    copiers = {others[i] for i in sorted(int(i) for i in picked)}
    leader_claims = {
        (o, a): v for (s, o, a), v in dataset.claims.items() if s == leader
    }
    claims = {}
    for claim in _ordered_claims(dataset):
        value = claim.value
        if claim.source in copiers:
            copied = leader_claims.get((claim.object, claim.attribute))
            if copied is not None and rng.random() < copy_rate:
                value = copied
        claims[(claim.source, claim.object, claim.attribute)] = value
    return Dataset(
        dataset.sources,
        dataset.objects,
        dataset.attributes,
        claims,
        dataset.truth,
        name=dataset.name,
        attribute_types=dataset.attribute_types,
    )


def reliability_drift(
    dataset: Dataset,
    drift_rate: float,
    seed: int = 0,
) -> Dataset:
    """Degrade every source linearly over its own claim stream.

    A claim at relative position ``p`` (0 = a source's first claim,
    1 = its last) is flipped to a wrong value with probability
    ``drift_rate * p``; the replacement is one of the *other* values
    claimed for the fact (so the corruption stays in the fact's
    candidate universe), drawn deterministically.  Claims on facts with
    no alternative value are left alone.  At rate 0 the input dataset is
    returned unchanged (the same object).
    """
    if not 0.0 <= drift_rate <= 1.0:
        raise ValueError("drift_rate must be in [0, 1]")
    if drift_rate == 0.0:
        return dataset
    rng = np.random.default_rng(seed)
    position: dict = {}
    totals: dict = {}
    for claim in _ordered_claims(dataset):
        totals[claim.source] = totals.get(claim.source, 0) + 1
    claims = {}
    for claim in _ordered_claims(dataset):
        seen = position.get(claim.source, 0)
        position[claim.source] = seen + 1
        denominator = max(totals[claim.source] - 1, 1)
        p = seen / denominator
        value = claim.value
        if rng.random() < drift_rate * p:
            alternatives = [
                v for v in dataset.values_for(claim.fact) if v != value
            ]
            if alternatives:
                value = alternatives[int(rng.integers(len(alternatives)))]
        claims[(claim.source, claim.object, claim.attribute)] = value
    return Dataset(
        dataset.sources,
        dataset.objects,
        dataset.attributes,
        claims,
        dataset.truth,
        name=dataset.name,
        attribute_types=dataset.attribute_types,
    )


def late_arrival_stream(
    dataset: Dataset,
    reorder_fraction: float,
    batch_size: int = 250,
    max_delay: int = 3,
    seed: int = 0,
) -> list[list[Claim]]:
    """Split the claim stream into batches with late, out-of-order claims.

    The canonical stream (builder insertion order) is chunked into
    batches of ``batch_size``; a ``reorder_fraction`` of claims are each
    delayed by 1..``max_delay`` whole batches (clamped to the last
    batch).  At fraction 0 the batches are the canonical in-order
    chunking.  Feed the batches to a serving engine (``ingest`` /
    ``IncrementalTDAC.update``) to exercise the delta path under
    out-of-order ingestion.
    """
    if not 0.0 <= reorder_fraction <= 1.0:
        raise ValueError("reorder_fraction must be in [0, 1]")
    if batch_size < 1:
        raise ValueError("batch_size must be at least 1")
    if max_delay < 1:
        raise ValueError("max_delay must be at least 1")
    stream = _ordered_claims(dataset)
    n_batches = max((len(stream) + batch_size - 1) // batch_size, 1)
    batches: list[list[Claim]] = [[] for _ in range(n_batches)]
    rng = np.random.default_rng(seed)
    for i, claim in enumerate(stream):
        batch = i // batch_size
        if reorder_fraction > 0.0 and rng.random() < reorder_fraction:
            batch += int(rng.integers(1, max_delay + 1))
        batches[min(batch, n_batches - 1)].append(claim)
    return batches


def replayed_dataset(dataset: Dataset, batches: list[list[Claim]]) -> Dataset:
    """Rebuild ``dataset`` from an arrival stream, universes in seen order.

    Claim *content* is order-insensitive (claims form a set), but the
    source / object / attribute universes of a served corpus grow in
    arrival order — which is exactly what deterministic tie-breaking
    ranks hang off.  Replaying the batches reproduces the dataset a
    streaming engine would end up holding.
    """
    builder = DatasetBuilder(name=dataset.name)
    for batch in batches:
        builder.add_claims(batch)
    builder.set_truths(dataset.truth)
    builder.declare_attribute_types(
        {
            a: kind
            for a, kind in dataset.attribute_types.items()
            if kind != CATEGORICAL
        }
    )
    return builder.build()


def apply_scenario(dataset: Dataset, config: ScenarioConfig) -> Dataset:
    """Materialise the dataset a scenario cell subjects algorithms to.

    ``reorder`` cells return the replayed (arrival-ordered) corpus; the
    batch stream itself is available via :func:`late_arrival_stream` for
    serving-path replays.  Severity 0 always returns ``dataset`` itself.
    """
    if config.severity == 0.0:
        return dataset
    if config.scenario == "copying":
        return copying_cliques(
            dataset,
            copy_rate=config.severity,
            n_copiers=int(config.param("n_copiers", 3)),
            seed=config.seed,
        )
    if config.scenario == "drift":
        return reliability_drift(
            dataset, drift_rate=config.severity, seed=config.seed
        )
    batches = late_arrival_stream(
        dataset,
        reorder_fraction=config.severity,
        batch_size=int(config.param("batch_size", 250)),
        max_delay=int(config.param("max_delay", 3)),
        seed=config.seed,
    )
    return replayed_dataset(dataset, batches)
