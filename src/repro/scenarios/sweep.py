"""Degradation sweeps: accuracy-vs-severity curves and their leaderboard.

:func:`degradation_sweep` runs a roster of algorithms over every
(scenario, severity) cell of a grid and records the paper's headline
metrics per cell; :func:`degradation_leaderboard` condenses the curves
into one ranked robustness table (clean accuracy, worst-case accuracy,
drop), which answers the practitioner question the clean-corpus
leaderboard cannot: *which algorithm degrades least when the corpus
misbehaves?*

Severity 0 cells run on the untouched input dataset (the generators are
identities there), so each curve's first point doubles as the clean
baseline — ``benchmarks/bench_scenarios.py`` asserts that parity before
reporting anything.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.algorithms.registry import capability_gap, create
from repro.algorithms.routing import TypeRouted
from repro.core.config import TDACConfig
from repro.core.tdac import TDAC
from repro.data.dataset import Dataset
from repro.evaluation.leaderboard import SkippedAlgorithm
from repro.evaluation.runner import run_algorithm
from repro.scenarios.generators import SCENARIOS, ScenarioConfig, apply_scenario

#: Default severity grid of a sweep.
DEFAULT_SEVERITIES = (0.0, 0.25, 0.5, 0.75, 1.0)

#: Default algorithm roster: TD-AC plus three unpartitioned baselines.
DEFAULT_ALGORITHMS = ("TDAC+MajorityVote", "MajorityVote", "TruthFinder", "CRH")


@dataclass(frozen=True)
class DegradationRecord:
    """One algorithm's metrics on one (scenario, severity) cell."""

    scenario: str
    severity: float
    algorithm: str
    accuracy: float
    f1: float
    fact_accuracy: float
    elapsed_seconds: float
    fingerprint: str

    def as_row(self) -> tuple:
        return (
            self.scenario,
            round(self.severity, 3),
            self.algorithm,
            round(self.accuracy, 3),
            round(self.f1, 3),
            round(self.fact_accuracy, 3),
        )


@dataclass(frozen=True)
class DegradationSweep:
    """A full sweep: per-cell records, skips, and the cell configs."""

    dataset: str
    records: tuple[DegradationRecord, ...]
    skipped: tuple[SkippedAlgorithm, ...]
    configs: tuple[ScenarioConfig, ...]


def resolve_algorithm(name: str, config: TDACConfig):
    """Build an algorithm from a sweep roster name.

    Accepts registry names, the ``TDAC+<base>`` spelling, and
    ``Routed[<categorical>]`` / plain ``Routed`` for the type router
    (``TDAC+Routed`` composes both).
    """
    if name.upper().startswith("TDAC+"):
        return TDAC(resolve_algorithm(name[5:], config), config=config)
    if name == "Routed":
        return TypeRouted()
    if name.startswith("Routed[") and name.endswith("]"):
        return TypeRouted(categorical=create(name[len("Routed["):-1]))
    return create(name)


def degradation_sweep(
    dataset: Dataset,
    scenarios: Sequence[str] = SCENARIOS,
    severities: Sequence[float] = DEFAULT_SEVERITIES,
    algorithms: Sequence[str] = DEFAULT_ALGORITHMS,
    seed: int = 0,
    config: TDACConfig | None = None,
) -> DegradationSweep:
    """Run ``algorithms`` over the (scenario, severity) grid.

    Algorithms whose declared value types do not cover the dataset are
    skipped once per scenario grid with the reason recorded, mirroring
    the clean leaderboard's capability gate.  Record order is scenario-
    major, then severity, then roster order.
    """
    tdac_config = config if config is not None else TDACConfig(seed=seed)
    records: list[DegradationRecord] = []
    skipped: list[SkippedAlgorithm] = []
    configs: list[ScenarioConfig] = []
    skipped_names: set[str] = set()
    for scenario in scenarios:
        for severity in severities:
            cell = ScenarioConfig(
                scenario=scenario, severity=float(severity), seed=seed
            )
            configs.append(cell)
            adversarial = apply_scenario(dataset, cell)
            for name in algorithms:
                algorithm = resolve_algorithm(name, tdac_config)
                base = getattr(algorithm, "base", algorithm)
                gap = capability_gap(base, adversarial)
                if gap is not None:
                    if name not in skipped_names:
                        skipped_names.add(name)
                        skipped.append(
                            SkippedAlgorithm(algorithm=name, reason=gap)
                        )
                    continue
                record = run_algorithm(algorithm, adversarial)
                records.append(
                    DegradationRecord(
                        scenario=scenario,
                        severity=float(severity),
                        algorithm=name,
                        accuracy=record.accuracy,
                        f1=record.f1,
                        fact_accuracy=record.fact_accuracy,
                        elapsed_seconds=record.elapsed_seconds,
                        fingerprint=cell.fingerprint,
                    )
                )
    return DegradationSweep(
        dataset=dataset.name,
        records=tuple(records),
        skipped=tuple(skipped),
        configs=tuple(configs),
    )


@dataclass(frozen=True)
class LeaderboardRow:
    """One algorithm's robustness summary on one scenario."""

    rank: int
    scenario: str
    algorithm: str
    clean_accuracy: float
    worst_accuracy: float
    drop: float
    clean_f1: float
    worst_f1: float

    def as_row(self) -> tuple:
        return (
            self.rank,
            self.scenario,
            self.algorithm,
            round(self.clean_accuracy, 3),
            round(self.worst_accuracy, 3),
            round(self.drop, 3),
            round(self.clean_f1, 3),
            round(self.worst_f1, 3),
        )


#: Column header of :func:`degradation_leaderboard` rows.
LEADERBOARD_HEADER = (
    "Rank",
    "Scenario",
    "Algorithm",
    "A(clean)",
    "A(worst)",
    "Drop",
    "F1(clean)",
    "F1(worst)",
)


def degradation_leaderboard(
    sweep: DegradationSweep,
) -> list[LeaderboardRow]:
    """Rank (scenario, algorithm) pairs by smallest accuracy drop.

    ``clean`` is the severity-0 cell, ``worst`` the minimum over the
    swept severities; ties rank by higher worst-case accuracy, then by
    algorithm name for determinism.  Ranking restarts per scenario.
    """
    by_cell: dict[tuple[str, str], list[DegradationRecord]] = {}
    for record in sweep.records:
        by_cell.setdefault((record.scenario, record.algorithm), []).append(
            record
        )
    rows: list[LeaderboardRow] = []
    scenarios = sorted({s for s, _ in by_cell})
    for scenario in scenarios:
        summaries = []
        for (cell_scenario, algorithm), cell in sorted(by_cell.items()):
            if cell_scenario != scenario:
                continue
            clean = min(cell, key=lambda r: r.severity)
            worst = min(cell, key=lambda r: r.accuracy)
            summaries.append(
                (
                    clean.accuracy - worst.accuracy,
                    -worst.accuracy,
                    algorithm,
                    clean,
                    worst,
                )
            )
        summaries.sort(key=lambda row: row[:3])
        for rank, (drop, _, algorithm, clean, worst) in enumerate(
            summaries, start=1
        ):
            rows.append(
                LeaderboardRow(
                    rank=rank,
                    scenario=scenario,
                    algorithm=algorithm,
                    clean_accuracy=clean.accuracy,
                    worst_accuracy=worst.accuracy,
                    drop=drop,
                    clean_f1=clean.f1,
                    worst_f1=worst.f1,
                )
            )
    return rows
