"""Adversarial scenario generators and the degradation leaderboard.

See :mod:`repro.scenarios.generators` for the seeded workload
transformations (copying cliques, reliability drift, late arrival) and
:mod:`repro.scenarios.sweep` for the severity sweep that turns them into
accuracy/F1-vs-severity curves and a robustness ranking.
"""

from repro.scenarios.generators import (
    SCENARIOS,
    ScenarioConfig,
    apply_scenario,
    copying_cliques,
    late_arrival_stream,
    reliability_drift,
    replayed_dataset,
)
from repro.scenarios.sweep import (
    DEFAULT_ALGORITHMS,
    DEFAULT_SEVERITIES,
    LEADERBOARD_HEADER,
    DegradationRecord,
    DegradationSweep,
    LeaderboardRow,
    degradation_leaderboard,
    degradation_sweep,
    resolve_algorithm,
)

__all__ = [
    "DEFAULT_ALGORITHMS",
    "DEFAULT_SEVERITIES",
    "LEADERBOARD_HEADER",
    "DegradationRecord",
    "DegradationSweep",
    "LeaderboardRow",
    "SCENARIOS",
    "ScenarioConfig",
    "apply_scenario",
    "copying_cliques",
    "degradation_leaderboard",
    "degradation_sweep",
    "late_arrival_stream",
    "reliability_drift",
    "replayed_dataset",
    "resolve_algorithm",
]
