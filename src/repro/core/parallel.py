"""Parallel execution of the per-block truth discovery passes.

The paper's second research perspective is to "propose an optimization of
the running time ... by using parallel computation".  Blocks of a
partition are independent sub-problems, so step 4 of Algorithm 1 is
embarrassingly parallel.  The generic fan-out machinery (thread / process
executors, order-preserving gather) lives in :mod:`repro.execution` and
is shared with the k-sweep of :mod:`repro.clustering.sweep`; this module
applies it to block datasets.

Threads are the default backend: the heavy lifting inside the algorithms
happens in numpy / scipy kernels that release the GIL, and threads avoid
re-pickling the dataset per block.  ``backend="processes"`` is available
for Python-bound base algorithms.
"""

from __future__ import annotations

from repro.algorithms import kernels
from repro.algorithms.base import TruthDiscoveryAlgorithm, TruthDiscoveryResult
from repro.core.partition import Partition
from repro.data.claim_engine import ClaimIndexEngine
from repro.data.dataset import Dataset
from repro.data.index import DatasetIndex
from repro.execution import (  # noqa: F401  (re-exported for callers)
    BACKENDS,
    ExecutionPolicy,
    make_executor,
    ordered_map,
    validate_backend,
)
from repro.observability import current_tracer


def _discover(
    algorithm: TruthDiscoveryAlgorithm, data: Dataset | DatasetIndex
) -> TruthDiscoveryResult:
    """Module-level trampoline so the process backend can pickle it."""
    return algorithm.discover(data)


def run_blocks(
    algorithm: TruthDiscoveryAlgorithm,
    dataset: Dataset,
    partition: Partition,
    n_jobs: int = 1,
    backend: str = "threads",
    policy: ExecutionPolicy | None = None,
    engine: ClaimIndexEngine | None = None,
) -> list[TruthDiscoveryResult]:
    """Run ``algorithm`` on every block of ``partition``.

    Returns one result per block, in block order.  ``n_jobs=1`` runs
    sequentially; larger values fan the blocks out over the requested
    executor backend.  Results are gathered in block order, so the
    merged output is identical whatever ``n_jobs`` and ``backend``.
    ``policy`` governs retry / fallback on worker failure; the stage is
    traced as ``block_runs`` by the ambient tracer.

    Block inputs come from a shared :class:`ClaimIndexEngine`: each block
    is a sliced view of the dataset's one compiled index (bit-identical
    to compiling ``dataset.restrict_attributes(block)``, see the engine's
    docs), so no per-block dataset rebuild happens.  ``engine`` lets
    callers that already hold one (TDAC, the serving layer) pass it in;
    ``None`` uses the dataset's shared engine.  The reference-kernel mode
    restores the historical restrict-then-recompile path.
    """
    with current_tracer().span("block_runs", n_blocks=partition.n_blocks):
        if kernels.reference_enabled() or not algorithm.supports_index:
            tasks: list[Dataset | DatasetIndex] = [
                dataset.restrict_attributes(block) for block in partition.blocks
            ]
        else:
            if engine is None:
                engine = ClaimIndexEngine.shared(dataset)
            tasks = [engine.block_index(block) for block in partition.blocks]
        return ordered_map(
            _discover,
            [(algorithm, task) for task in tasks],
            n_jobs=n_jobs,
            backend=backend,
            policy=policy,
            label="block_runs",
        )
