"""Parallel execution of the per-block truth discovery passes.

The paper's second research perspective is to "propose an optimization of
the running time ... by using parallel computation".  Blocks of a
partition are independent sub-problems, so step 4 of Algorithm 1 is
embarrassingly parallel.  A thread pool is used rather than processes:
the heavy lifting inside the algorithms happens in numpy / scipy kernels
that release the GIL, and threads avoid re-pickling the dataset per
block.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

from repro.algorithms.base import TruthDiscoveryAlgorithm, TruthDiscoveryResult
from repro.core.partition import Partition
from repro.data.dataset import Dataset


def run_blocks(
    algorithm: TruthDiscoveryAlgorithm,
    dataset: Dataset,
    partition: Partition,
    n_jobs: int = 1,
) -> list[TruthDiscoveryResult]:
    """Run ``algorithm`` on every block of ``partition``.

    Returns one result per block, in block order.  ``n_jobs=1`` runs
    sequentially; larger values fan the blocks out over a thread pool.
    """
    block_datasets = [
        dataset.restrict_attributes(block) for block in partition.blocks
    ]
    if n_jobs == 1 or len(block_datasets) == 1:
        return [algorithm.discover(block) for block in block_datasets]
    workers = min(n_jobs, len(block_datasets))
    with ThreadPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(algorithm.discover, block_datasets))
