"""Incremental TD-AC: absorb new claims with *exact* delta refits.

A deployed fusion pipeline sees claims arrive continuously.  Re-running
all of Algorithm 1 per batch wastes the structure TD-AC just found, but
a shortcut is only admissible when its output is bit-identical to the
offline run — the serving layer publishes every refresh as a snapshot
and promises ``exact=True`` refits.

:class:`IncrementalTDAC` therefore re-derives each stage of Algorithm 1
at delta cost while keeping a proof that the published result equals
``TDAC.run`` over the accumulated dataset:

* the dataset grows through :meth:`Dataset.extended` (append-only,
  fingerprint-identical to a full rebuild) and the claim-index engine
  delta-compiles via :meth:`ClaimIndexEngine.extended` (spliced arrays,
  byte-identical to a cold compile);
* the reference pass is recomputed over the extended corpus (global
  source trust couples every claim; there is no sound per-fact patch),
  but it runs on the delta-compiled index, not a recompile;
* the Eq. 1 truth-vector matrix is patched in place by a
  :class:`~repro.core.truth_vectors.TruthVectorStore`, which reports
  exact change flags.  When nothing selection-relevant changed (appended
  all-zero columns provably leave every pairwise attribute distance,
  k-means labelling and silhouette untouched), the previous certified
  partition and silhouettes are reused; otherwise a cold sweep re-
  certifies.  A warm-started probe (k-means seeded with the previous
  sweep's centroids over a bounded ``k`` window) predicts the outcome
  first — if the certified partition disagrees with the warm
  prediction, partition structure drifted and *every* block is
  refreshed;
* blocks are recomputed only when their result could differ: their
  membership changed, a batch claim touched one of their attributes, or
  the source universe grew (per-block trust vectors span all sources).
  Untouched blocks with identical membership provably solve to the
  identical result and are reused;
* the merge reuses :meth:`TDAC._merge` verbatim, so the claim-count
  weighting — and therefore the merged trust arithmetic — matches the
  offline pipeline bit for bit.

Once the claims added since the last full fit exceed
``repartition_fraction`` of the dataset size *at that fit*, the next
:meth:`update` runs a full re-fit (reliability structure may have
drifted far enough that delta refits stop paying off).
"""

from __future__ import annotations

import dataclasses
import time
from typing import Iterable

import numpy as np

from repro.algorithms import kernels
from repro.algorithms.base import TruthDiscoveryAlgorithm, TruthDiscoveryResult
from repro.clustering.kmeans import lloyd
from repro.clustering.kselect import score_silhouette_sweep
from repro.core.cache import PartitionCache
from repro.core.config import TDACConfig
from repro.core.parallel import run_blocks
from repro.core.partition import Partition
from repro.core.tdac import TDAC, TDACResult
from repro.core.truth_vectors import TruthVectorStore, VectorDelta
from repro.data.claim_engine import ClaimIndexEngine
from repro.data.dataset import Dataset
from repro.data.types import Claim


class IncrementalTDAC:
    """Streaming wrapper around :class:`~repro.core.tdac.TDAC`.

    Parameters
    ----------
    base:
        Base algorithm for both the initial fit and block refreshes.
    repartition_fraction:
        When the claims added since the last full fit exceed this
        fraction of the dataset size *at that fit*, the partition is
        deemed stale and the next update runs a full re-fit.
    warm_window:
        Half-width of the ``k`` window around the previously chosen
        ``k`` in which the warm-started stability probe re-fits k-means
        from the previous centroids.  The probe never decides the
        published partition (the cold sweep does); it only detects
        partition drift, which forces an all-block refresh.  ``0``
        probes only the previous ``k`` itself.
    config:
        :class:`~repro.core.config.TDACConfig` for the underlying
        :class:`TDAC` (``None`` means all defaults).
    partition_cache:
        Optional :class:`~repro.core.cache.PartitionCache` shared with
        the underlying :class:`TDAC`, so repeated full fits over the
        same accumulated dataset replay their partition.
    tdac_kwargs:
        Legacy per-knob spelling (``seed=``, ``distance=``, ...); folded
        into a :class:`TDACConfig`.  Mutually exclusive with ``config``.
    """

    def __init__(
        self,
        base: TruthDiscoveryAlgorithm,
        repartition_fraction: float = 0.2,
        warm_window: int = 1,
        config: TDACConfig | None = None,
        partition_cache: PartitionCache | None = None,
        **tdac_kwargs,
    ) -> None:
        if not 0.0 < repartition_fraction <= 1.0:
            raise ValueError("repartition_fraction must be in (0, 1]")
        if warm_window < 0:
            raise ValueError("warm_window must be >= 0")
        if tdac_kwargs and config is not None:
            raise TypeError(
                "pass knobs through config=TDACConfig(...) or as legacy "
                "keywords, not both"
            )
        if tdac_kwargs:
            config = TDACConfig(**tdac_kwargs)
        self.base = base
        self.repartition_fraction = repartition_fraction
        self.warm_window = warm_window
        self._tdac = TDAC(base, config=config, partition_cache=partition_cache)
        self._dataset: Dataset | None = None
        self._partition: Partition | None = None
        self._block_results: dict[tuple, TruthDiscoveryResult] = {}
        self._engine: ClaimIndexEngine | None = None
        self._last_outcome: TDACResult | None = None
        self._vector_store: TruthVectorStore | None = None
        self._prev_fits: dict | None = None
        self._prev_silhouettes: dict[int, float] | None = None
        self._n_claims_at_fit = 0
        self._claims_since_fit = 0
        self._n_full_fits = 0
        self._n_block_refreshes = 0
        self._n_blocks_reused = 0
        self._n_delta_updates = 0
        self._n_selection_reuses = 0
        self._n_warm_hits = 0
        self._n_warm_misses = 0

    # ------------------------------------------------------------------

    @property
    def config(self) -> TDACConfig:
        """The config of the underlying :class:`TDAC`."""
        return self._tdac.config

    @property
    def dataset(self) -> Dataset:
        """The current accumulated dataset."""
        self._require_fitted()
        return self._dataset

    @property
    def partition(self) -> Partition:
        """The partition currently in force."""
        self._require_fitted()
        return self._partition

    @property
    def last_outcome(self) -> TDACResult:
        """The full provenance-carrying result of the latest refit."""
        self._require_fitted()
        return self._last_outcome

    @property
    def stats(self) -> dict[str, int]:
        """Bookkeeping: fits, refreshes and delta-path reuse counters."""
        store = self._vector_store
        return {
            "full_fits": self._n_full_fits,
            "block_refreshes": self._n_block_refreshes,
            "claims_since_fit": self._claims_since_fit,
            "delta_updates": self._n_delta_updates,
            "blocks_reused": self._n_blocks_reused,
            "selection_reuses": self._n_selection_reuses,
            "warm_hits": self._n_warm_hits,
            "warm_misses": self._n_warm_misses,
            "vector_rebuilds": store.rebuilds if store is not None else 0,
            "vector_patches": store.patches if store is not None else 0,
        }

    # ------------------------------------------------------------------

    def fit(self, dataset: Dataset) -> TDACResult:
        """Initial (or staleness-triggered) full TD-AC fit."""
        outcome = self._tdac.run(dataset)
        self._dataset = dataset
        self._partition = outcome.partition
        self._block_results = dict(
            zip(outcome.partition.blocks, outcome.block_results)
        )
        self._last_outcome = outcome
        # TDAC.run does not expose its k-means fits and the batch-built
        # matrix is not patchable in place, so the first delta update
        # after a full fit seeds the store and cold-sweeps; later deltas
        # then reuse or warm-probe.
        self._vector_store = None
        self._prev_fits = None
        self._prev_silhouettes = None
        self._n_claims_at_fit = dataset.n_claims
        self._claims_since_fit = 0
        self._n_full_fits += 1
        self._pin_engine()
        return outcome

    def update(self, claims: Iterable[Claim]) -> TDACResult:
        """Absorb a batch of claims; recompute only what could change.

        Returns the same provenance-carrying :class:`TDACResult` a full
        :meth:`TDAC.run` over the accumulated dataset would return —
        bit-identical predictions, source trust, partition and
        silhouettes (``tests/test_incremental_exact.py`` pins this at
        every watermark).  A conflicting claim raises
        :class:`~repro.data.types.DataError` and leaves every piece of
        state untouched.
        """
        self._require_fitted()
        started = time.perf_counter()
        batch = list(claims)
        if not batch:
            return self._last_outcome
        # Validates the batch (conflicts raise before any state change)
        # and returns ``self._dataset`` itself when every claim is a
        # duplicate — nothing to recompute then.
        new_dataset = self._dataset.extended(batch)
        if new_dataset is self._dataset:
            return self._last_outcome
        fresh = self._fresh_claims(batch)
        self._claims_since_fit += len(fresh)

        stale = self._claims_since_fit > (
            self.repartition_fraction * self._n_claims_at_fit
        )
        if stale:
            return self.fit(new_dataset)
        return self._delta_update(new_dataset, fresh, started)

    # ------------------------------------------------------------------
    # The exact delta path
    # ------------------------------------------------------------------

    def _delta_update(
        self, new_dataset: Dataset, fresh: list[Claim], started: float
    ) -> TDACResult:
        tdac = self._tdac
        new_source = len(new_dataset.sources) != len(self._dataset.sources)
        engine = self._extend_engine(new_dataset, fresh)

        # Stage 1 — reference pass.  Source trust is globally coupled
        # (and the discovery tie-breaker is seeded by the view's slot
        # count), so the reference is recomputed over the extended
        # corpus; the delta-compiled index keeps that pass cheap.
        if engine is not None and tdac.reference_algorithm.supports_index:
            reference = tdac.reference_algorithm.discover(engine.full_index)
        else:
            reference = tdac.reference_algorithm.discover(new_dataset)

        # Stage 2 — Eq. 1 matrix, patched in place.
        store = self._vector_store
        if store is None:
            store = TruthVectorStore(
                new_dataset,
                reference,
                memmap_threshold=self.config.memmap_threshold,
            )
            self._vector_store = store
            delta = VectorDelta(
                vectors=store.vectors,
                rebuilt=True,
                rows_changed=True,
                entries_changed=True,
                mask_changed=True,
            )
        else:
            delta = store.advance(new_dataset, engine, reference, fresh)
        vectors = delta.vectors

        # Stage 3 — partition selection.  Reuse is admissible only when
        # every selection input is provably unchanged; otherwise a cold
        # sweep certifies, with the warm probe watching for drift.
        force_all = new_source
        dirty = delta.selection_dirty or (
            tdac.distance == "masked" and delta.mask_changed
        )
        if not dirty and self._prev_silhouettes is not None:
            partition = self._partition
            silhouettes = dict(self._prev_silhouettes)
            fits = self._prev_fits
            self._n_selection_reuses += 1
        else:
            distances = tdac.pairwise_distances(vectors)
            warm = self._warm_probe(vectors, distances)
            partition, silhouettes, fits = tdac.sweep_partition(
                vectors, distances=distances
            )
            if warm is not None:
                if warm == partition:
                    self._n_warm_hits += 1
                else:
                    # Partition structure drifted: the warm probe and
                    # the certified sweep disagree, so no previous block
                    # result is trusted (ISSUE's fallback-to-full).
                    self._n_warm_misses += 1
                    force_all = True

        # Stage 4 — per-block runs, reusing every block whose result
        # provably cannot have changed: same membership, no batch claim
        # on its attributes, same source universe.
        touched = {claim.attribute for claim in fresh}
        prev_results = self._block_results
        results: list[TruthDiscoveryResult | None] = []
        refresh_idx: list[int] = []
        for i, block in enumerate(partition.blocks):
            reusable = (
                not force_all
                and block in prev_results
                and not (touched & set(block))
            )
            if reusable:
                results.append(prev_results[block])
                self._n_blocks_reused += 1
            else:
                results.append(None)
                refresh_idx.append(i)
        if len(refresh_idx) == len(partition.blocks):
            results = list(
                run_blocks(
                    self.base,
                    new_dataset,
                    partition,
                    n_jobs=tdac.n_jobs,
                    backend=tdac.backend,
                    policy=tdac.execution_policy,
                    engine=engine,
                )
            )
        else:
            for i in refresh_idx:
                block = partition.blocks[i]
                if engine is None:
                    block_data = new_dataset.restrict_attributes(block)
                else:
                    block_data = engine.block_index(block)
                results[i] = self.base.discover(block_data)
        self._n_block_refreshes += len(refresh_idx)

        # Stage 5 — TDAC's own merge (claim-count-weighted trust), then
        # honest metadata: max iterations across refreshed blocks and
        # the actual wall-clock of this update.
        merged = tdac._merge(new_dataset, partition, results, started)
        merged = dataclasses.replace(
            merged,
            iterations=max(
                (results[i].iterations for i in refresh_idx), default=1
            ),
        )

        outcome = TDACResult(
            result=merged,
            partition=partition,
            silhouette_by_k=silhouettes,
            reference=reference,
            block_results=tuple(results),
            truth_vectors=vectors,
        )
        self._dataset = new_dataset
        self._engine = engine
        self._partition = partition
        self._block_results = dict(zip(partition.blocks, results))
        self._prev_fits = fits
        self._prev_silhouettes = dict(silhouettes)
        self._last_outcome = outcome
        self._n_delta_updates += 1
        return outcome

    def _fresh_claims(self, batch: list[Claim]) -> list[Claim]:
        """The batch minus duplicates (within itself and vs the corpus)."""
        seen: set[tuple] = set()
        fresh: list[Claim] = []
        for claim in batch:
            key = (claim.source, claim.object, claim.attribute)
            if key in seen:
                continue
            seen.add(key)
            if self._dataset.value(*key) is None:
                fresh.append(claim)
        return fresh

    def _extend_engine(
        self, new_dataset: Dataset, fresh: list[Claim]
    ) -> ClaimIndexEngine | None:
        """Delta-compile the claim engine for the extended dataset.

        Registers the child in the shared registry, so a later full fit
        over the same dataset object also rides the spliced compile.
        Falls back to a cold shared compile when the previous engine
        cannot splice (and to ``None`` in reference-kernel mode).
        """
        if kernels.reference_enabled() or not self.base.supports_index:
            return None
        if self._engine is not None:
            try:
                return self._engine.extended(new_dataset, fresh)
            except ValueError:
                pass
        return ClaimIndexEngine.shared(new_dataset, dtype=self.config.dtype_np)

    def _warm_probe(self, vectors, distances: np.ndarray) -> Partition | None:
        """Partition predicted by warm-starting from the previous sweep.

        Re-runs Lloyd iterations seeded with the previous winning
        centroids (zero-padded to any appended columns) for every ``k``
        within ``warm_window`` of the previously chosen ``k``, scores
        the probe fits with the same silhouette reduction, and applies
        TDAC's tie-break.  Returns ``None`` when no previous sweep fits
        exist (right after a full fit, or a degenerate sweep range).
        """
        prev_fits = self._prev_fits
        if not prev_fits or self._partition is None:
            return None
        data = vectors.matrix.astype(float)
        k_prev = self._partition.n_blocks
        window = range(k_prev - self.warm_window, k_prev + self.warm_window + 1)
        warm_fits = {}
        for k in window:
            prev = prev_fits.get(k)
            if prev is None:
                continue
            centroids = prev.centroids.astype(float)
            if centroids.shape[1] < data.shape[1]:
                pad = np.zeros(
                    (centroids.shape[0], data.shape[1] - centroids.shape[1])
                )
                centroids = np.hstack([centroids, pad])
            warm_fits[k] = lloyd(data, centroids)
        if not warm_fits:
            return None
        warm_sils = score_silhouette_sweep(
            distances, warm_fits, average="macro"
        )
        return TDAC.pick_partition(vectors.attributes, warm_fits, warm_sils)

    # ------------------------------------------------------------------

    def _pin_engine(self) -> None:
        """Hold a strong reference to the current dataset's claim engine.

        The shared-engine registry is weak-keyed on the dataset, so
        without a pin the compiled incidence structure would be garbage
        collected between batches; pinning keeps it warm across
        snapshots for as long as the dataset stays current.  The serving
        layer's refits (both full and incremental mode) run through this
        object, so they inherit the warm state automatically.
        """
        if kernels.reference_enabled() or not self.base.supports_index:
            self._engine = None
        else:
            self._engine = ClaimIndexEngine.shared(
                self._dataset, dtype=self.config.dtype_np
            )

    def _require_fitted(self) -> None:
        if self._dataset is None:
            raise RuntimeError("call fit() before update()")


def extend_dataset(dataset: Dataset, claims: Iterable[Claim]) -> Dataset:
    """Return ``dataset`` plus ``claims`` (one-truth conflicts raise).

    The single claim-accumulation routine shared by the incremental
    engine and the serving layer: identifier declaration order is
    preserved and new identifiers append in claim order, so replaying
    the same claim sequence always rebuilds a fingerprint-identical
    dataset (the property the serving bit-identity guarantee rests on).
    Delegates to :meth:`Dataset.extended`, which validates only the new
    claims — O(batch), not O(corpus).
    """
    return dataset.extended(list(claims))
