"""Incremental TD-AC: absorb new claims without full recomputation.

A deployed fusion pipeline sees claims arrive continuously.  Re-running
all of Algorithm 1 per batch wastes the structure TD-AC just found:
new claims about attributes in block ``g`` cannot change the result of
any *other* block, so only the touched blocks need a fresh base run.

:class:`IncrementalTDAC` keeps the current dataset, partition and
per-block results;

* :meth:`update` appends a batch of claims, re-solves only the touched
  blocks, and returns the refreshed merged result;
* attributes never seen before are parked in a dedicated new block
  (clustering evidence for them does not exist yet);
* once the claims added since the last full fit exceed
  ``repartition_fraction`` of the dataset, the next :meth:`update`
  triggers a full re-fit — reliability structure may have drifted.
"""

from __future__ import annotations

from typing import Iterable

from repro.algorithms import kernels
from repro.algorithms.base import TruthDiscoveryAlgorithm, TruthDiscoveryResult
from repro.core.cache import PartitionCache
from repro.data.claim_engine import ClaimIndexEngine
from repro.core.config import TDACConfig
from repro.core.partition import Partition
from repro.core.tdac import TDAC, TDACResult
from repro.data.builder import DatasetBuilder
from repro.data.dataset import Dataset
from repro.data.types import Claim, Fact, SourceId, Value


class IncrementalTDAC:
    """Streaming wrapper around :class:`~repro.core.tdac.TDAC`.

    Parameters
    ----------
    base:
        Base algorithm for both the initial fit and block refreshes.
    repartition_fraction:
        When the claims added since the last full fit exceed this
        fraction of the current dataset size, the partition is deemed
        stale and the next update runs a full re-fit.
    config:
        :class:`~repro.core.config.TDACConfig` for the underlying
        :class:`TDAC` (``None`` means all defaults).
    partition_cache:
        Optional :class:`~repro.core.cache.PartitionCache` shared with
        the underlying :class:`TDAC`, so repeated full fits over the
        same accumulated dataset replay their partition.
    tdac_kwargs:
        Legacy per-knob spelling (``seed=``, ``distance=``, ...); folded
        into a :class:`TDACConfig`.  Mutually exclusive with ``config``.
    """

    def __init__(
        self,
        base: TruthDiscoveryAlgorithm,
        repartition_fraction: float = 0.2,
        config: TDACConfig | None = None,
        partition_cache: PartitionCache | None = None,
        **tdac_kwargs,
    ) -> None:
        if not 0.0 < repartition_fraction <= 1.0:
            raise ValueError("repartition_fraction must be in (0, 1]")
        if tdac_kwargs and config is not None:
            raise TypeError(
                "pass knobs through config=TDACConfig(...) or as legacy "
                "keywords, not both"
            )
        if tdac_kwargs:
            config = TDACConfig(**tdac_kwargs)
        self.base = base
        self.repartition_fraction = repartition_fraction
        self._tdac = TDAC(base, config=config, partition_cache=partition_cache)
        self._dataset: Dataset | None = None
        self._partition: Partition | None = None
        self._block_results: dict[tuple, TruthDiscoveryResult] = {}
        self._claims_since_fit = 0
        self._n_full_fits = 0
        self._n_block_refreshes = 0
        self._engine: ClaimIndexEngine | None = None

    # ------------------------------------------------------------------

    @property
    def config(self) -> TDACConfig:
        """The config of the underlying :class:`TDAC`."""
        return self._tdac.config

    @property
    def dataset(self) -> Dataset:
        """The current accumulated dataset."""
        self._require_fitted()
        return self._dataset

    @property
    def partition(self) -> Partition:
        """The partition currently in force."""
        self._require_fitted()
        return self._partition

    @property
    def stats(self) -> dict[str, int]:
        """Bookkeeping: full fits and per-block refreshes so far."""
        return {
            "full_fits": self._n_full_fits,
            "block_refreshes": self._n_block_refreshes,
            "claims_since_fit": self._claims_since_fit,
        }

    # ------------------------------------------------------------------

    def fit(self, dataset: Dataset) -> TDACResult:
        """Initial full TD-AC fit."""
        outcome = self._tdac.run(dataset)
        self._dataset = dataset
        self._partition = outcome.partition
        self._block_results = dict(
            zip(outcome.partition.blocks, outcome.block_results)
        )
        self._claims_since_fit = 0
        self._n_full_fits += 1
        self._pin_engine()
        return outcome

    def update(self, claims: Iterable[Claim]) -> TruthDiscoveryResult:
        """Absorb a batch of claims; refresh only what they touch."""
        self._require_fitted()
        batch = list(claims)
        if not batch:
            return self._merged()
        self._dataset = extend_dataset(self._dataset, batch)
        self._claims_since_fit += len(batch)

        stale = self._claims_since_fit > (
            self.repartition_fraction * self._dataset.n_claims
        )
        known = set(self._partition.attributes)
        new_attributes = sorted(
            {c.attribute for c in batch} - known, key=str
        )
        if stale:
            self.fit(self._dataset)
            return self._merged()
        if new_attributes:
            # Park unseen attributes in their own block until the next
            # full fit gathers clustering evidence for them.
            self._partition = Partition.from_blocks(
                list(self._partition.blocks) + [tuple(new_attributes)]
            )
        touched_attributes = {c.attribute for c in batch}
        self._pin_engine()
        engine = self._engine
        for block in self._partition.blocks:
            if touched_attributes & set(block) or block not in self._block_results:
                if engine is None:
                    block_data = self._dataset.restrict_attributes(block)
                else:
                    block_data = engine.block_index(block)
                self._block_results[block] = self.base.discover(block_data)
                self._n_block_refreshes += 1
        # Drop results of blocks that no longer exist (after parking).
        current = set(self._partition.blocks)
        self._block_results = {
            block: result
            for block, result in self._block_results.items()
            if block in current
        }
        return self._merged()

    # ------------------------------------------------------------------

    def _pin_engine(self) -> None:
        """Hold a strong reference to the current dataset's claim engine.

        The shared-engine registry is weak-keyed on the dataset, so
        without a pin the compiled incidence structure would be garbage
        collected between batches; pinning keeps it warm across
        snapshots for as long as the dataset stays current.  The serving
        layer's refits (both full and incremental mode) run through this
        object, so they inherit the warm state automatically.
        """
        if kernels.reference_enabled() or not self.base.supports_index:
            self._engine = None
        else:
            self._engine = ClaimIndexEngine.shared(
                self._dataset, dtype=self.config.dtype_np
            )

    def _merged(self) -> TruthDiscoveryResult:
        predictions: dict[Fact, Value] = {}
        confidence: dict[Fact, float] = {}
        trust_sums: dict[SourceId, float] = {
            s: 0.0 for s in self._dataset.sources
        }
        weights: dict[SourceId, float] = {
            s: 0.0 for s in self._dataset.sources
        }
        for block, result in self._block_results.items():
            predictions.update(result.predictions)
            confidence.update(result.confidence)
            weight = float(max(len(result.predictions), 1))
            for source, trust in result.source_trust.items():
                if source in trust_sums:
                    trust_sums[source] += weight * trust
                    weights[source] += weight
        return TruthDiscoveryResult(
            algorithm=f"Incremental TD-AC (F={self.base.name})",
            predictions=predictions,
            confidence=confidence,
            source_trust={
                s: (trust_sums[s] / weights[s]) if weights[s] else 0.0
                for s in self._dataset.sources
            },
            iterations=1,
            elapsed_seconds=0.0,
            extras={"partition": str(self._partition)},
        )

    def _require_fitted(self) -> None:
        if self._dataset is None:
            raise RuntimeError("call fit() before update()")


def extend_dataset(dataset: Dataset, claims: Iterable[Claim]) -> Dataset:
    """Return ``dataset`` plus ``claims`` (one-truth conflicts raise).

    The single claim-accumulation routine shared by the incremental
    engine and the serving layer: identifier declaration order is
    preserved and new identifiers append in claim order, so replaying
    the same claim sequence always rebuilds a fingerprint-identical
    dataset (the property the serving bit-identity guarantee rests on).
    """
    claims = list(claims)
    builder = DatasetBuilder(name=dataset.name)
    builder.declare_sources(dataset.sources)
    builder.declare_objects(dataset.objects)
    builder.declare_attributes(dataset.attributes)
    for claim in dataset.iter_claims():
        builder.add_claim(claim.source, claim.object, claim.attribute, claim.value)
    builder.set_truths(dataset.truth)
    builder.add_claims(claims)
    return builder.build()
