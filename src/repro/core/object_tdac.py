"""TD-OC — the object-partitioning counterpart of TD-AC.

The paper's related work ([13], Yang, Bai & Liu 2019) partitions
*objects* rather than attributes, and Section 6 lists a comparison as
future work.  This module supplies that comparator by transposing TD-AC:

1. run the base algorithm once for a reference truth;
2. build **object truth vectors** — one binary vector per object, with a
   rank per (attribute, source) pair: did the source get this object's
   attribute right?
3. cluster the object vectors with the silhouette-swept k-means;
4. run the base algorithm per object cluster and merge.

Object partitioning pays off when sources specialise by *entity* (a
sports site is good on sports facts of every kind); attribute
partitioning pays off when they specialise by *field*.  The ablation
bench A-7 puts both on each regime.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.algorithms.base import TruthDiscoveryAlgorithm, TruthDiscoveryResult
from repro.clustering.distance import pairwise_hamming
from repro.clustering.kmeans import KMeans
from repro.clustering.silhouette import silhouette_score
from repro.data.dataset import Dataset
from repro.data.types import Fact, ObjectId, SourceId, Value


@dataclass(frozen=True)
class ObjectTruthVectors:
    """Binary truth vectors with objects as rows."""

    matrix: np.ndarray
    mask: np.ndarray
    objects: tuple[ObjectId, ...]


@dataclass(frozen=True)
class ObjectTDACResult:
    """Result of one TD-OC run: merged result plus the object clusters."""

    result: TruthDiscoveryResult
    groups: tuple[tuple[ObjectId, ...], ...]
    silhouette_by_k: Mapping[int, float]

    @property
    def predictions(self) -> Mapping[Fact, Value]:
        """Merged fact → value predictions."""
        return self.result.predictions


def build_object_truth_vectors(
    dataset: Dataset,
    reference: TruthDiscoveryResult | TruthDiscoveryAlgorithm,
) -> ObjectTruthVectors:
    """Object-major variant of the paper's Eq. 1."""
    if isinstance(reference, TruthDiscoveryAlgorithm):
        reference = reference.discover(dataset)
    attributes = dataset.attributes
    sources = dataset.sources
    rank_of = {
        (a, s): i
        for i, (a, s) in enumerate(
            (a, s) for a in attributes for s in sources
        )
    }
    row_of = {o: i for i, o in enumerate(dataset.objects)}
    n_ranks = len(attributes) * len(sources)
    matrix = np.zeros((len(dataset.objects), n_ranks), dtype=np.int8)
    mask = np.zeros_like(matrix, dtype=bool)
    predictions = reference.predictions
    for claim in dataset.iter_claims():
        row = row_of[claim.object]
        column = rank_of[(claim.attribute, claim.source)]
        mask[row, column] = True
        truth = predictions.get(Fact(claim.object, claim.attribute))
        if truth is not None and claim.value == truth:
            matrix[row, column] = 1
    return ObjectTruthVectors(
        matrix=matrix, mask=mask, objects=dataset.objects
    )


class ObjectTDAC:
    """Truth discovery with *object* clustering (the [13] comparator).

    Parameters mirror :class:`~repro.core.tdac.TDAC` where applicable.
    """

    def __init__(
        self,
        base: TruthDiscoveryAlgorithm,
        k_min: int = 2,
        k_max: int | None = None,
        n_init: int = 10,
        seed: int = 0,
    ) -> None:
        if k_min < 2:
            raise ValueError("k_min must be at least 2")
        self.base = base
        self.k_min = k_min
        self.k_max = k_max
        self.n_init = n_init
        self.seed = seed

    @property
    def name(self) -> str:
        return f"TD-OC (F={self.base.name})"

    def run(self, dataset: Dataset) -> ObjectTDACResult:
        """Run the object-partitioned discovery."""
        start = time.perf_counter()
        reference = self.base.discover(dataset)
        vectors = build_object_truth_vectors(dataset, reference)
        groups, silhouettes = self._select_groups(vectors)
        predictions: dict[Fact, Value] = {}
        confidence: dict[Fact, float] = {}
        trust_sums: dict[SourceId, float] = {s: 0.0 for s in dataset.sources}
        for group in groups:
            block = _restrict_objects(dataset, set(group))
            result = self.base.discover(block)
            predictions.update(result.predictions)
            confidence.update(result.confidence)
            for source, trust in result.source_trust.items():
                trust_sums[source] += trust * len(group)
        n_objects = max(len(dataset.objects), 1)
        merged = TruthDiscoveryResult(
            algorithm=self.name,
            predictions=predictions,
            confidence=confidence,
            source_trust={
                s: total / n_objects for s, total in trust_sums.items()
            },
            iterations=1,
            elapsed_seconds=time.perf_counter() - start,
        )
        return ObjectTDACResult(
            result=merged, groups=groups, silhouette_by_k=silhouettes
        )

    def _select_groups(
        self, vectors: ObjectTruthVectors
    ) -> tuple[tuple[tuple[ObjectId, ...], ...], dict[int, float]]:
        n_objects = len(vectors.objects)
        upper = n_objects - 1 if self.k_max is None else min(
            self.k_max, n_objects - 1
        )
        if upper < self.k_min:
            return (tuple(vectors.objects),), {}
        data = vectors.matrix.astype(float)
        distances = pairwise_hamming(data)
        best_labels: np.ndarray | None = None
        best_score = -np.inf
        silhouettes: dict[int, float] = {}
        for k in range(self.k_min, upper + 1):
            fit = KMeans(n_clusters=k, n_init=self.n_init, seed=self.seed).fit(
                data
            )
            if len(np.unique(fit.labels)) < 2:
                silhouettes[k] = -1.0
                continue
            score = silhouette_score(distances, fit.labels, average="macro")
            silhouettes[k] = score
            if score > best_score:
                best_score = score
                best_labels = fit.labels
        if best_labels is None:
            return (tuple(vectors.objects),), silhouettes
        groups: dict[int, list[ObjectId]] = {}
        for obj, label in zip(vectors.objects, best_labels):
            groups.setdefault(int(label), []).append(obj)
        ordered = tuple(
            tuple(members) for _, members in sorted(groups.items())
        )
        return ordered, silhouettes


def _restrict_objects(dataset: Dataset, keep: set[ObjectId]) -> Dataset:
    """Project the dataset onto a subset of objects."""
    claims = {
        (c.source, c.object, c.attribute): c.value
        for c in dataset.iter_claims()
        if c.object in keep
    }
    truth = {
        (o, a): v for (o, a), v in dataset.truth.items() if o in keep
    }
    return Dataset(
        dataset.sources,
        tuple(o for o in dataset.objects if o in keep),
        dataset.attributes,
        claims,
        truth,
        name=f"{dataset.name}|{len(keep)}objects",
    )
