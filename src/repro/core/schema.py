"""The versioned ``tdac-result/v1`` result serialization schema.

Before this module existed every surface serialized results its own
way: :class:`~repro.core.tdac.TDACResult` exposed raw mappings, the
incremental engine returned a bare
:class:`~repro.algorithms.base.TruthDiscoveryResult`, and the CLI
printed ASCII tables only.  ``result_to_dict`` is now the single
JSON-ready rendering shared by all of them — ``TDACResult.to_dict()``,
``TruthDiscoveryResult.to_dict()``, the serving layer's
:class:`~repro.serving.snapshot.TruthSnapshot` and the CLI's
``run --json`` all emit this schema, so downstream consumers parse one
format regardless of which engine produced the result.

Schema contract (pinned by the API-stability tests):

* ``schema`` — the literal :data:`RESULT_SCHEMA` tag;
* ``predictions`` — a list sorted by (object, attribute), each entry a
  ``{"object", "attribute", "value", "confidence"}`` record;
* ``source_trust`` — source → trust, keys stringified and sorted;
* ``partition`` / ``silhouette_by_k`` — present but ``None`` / empty
  when the producing engine has no partition provenance.

Additive keys are allowed within v1; removing or renaming any of
:data:`RESULT_SCHEMA_KEYS` requires a version bump.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Mapping

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from repro.algorithms.base import TruthDiscoveryResult
    from repro.core.partition import Partition

#: Version tag embedded in every serialized result.
RESULT_SCHEMA = "tdac-result/v1"

#: Keys every serialized result carries, in emission order.
RESULT_SCHEMA_KEYS = (
    "schema",
    "algorithm",
    "iterations",
    "elapsed_seconds",
    "predictions",
    "source_trust",
    "partition",
    "silhouette_by_k",
    "extras",
)


def _freeze_value(value: Any) -> Any:
    """Turn JSON lists back into the tuples the data model uses."""
    if isinstance(value, list):
        return tuple(_freeze_value(v) for v in value)
    return value


def result_from_dict(payload: Mapping[str, Any]) -> "TruthDiscoveryResult":
    """Rebuild a :class:`TruthDiscoveryResult` from its v1 rendering.

    The inverse of :func:`result_to_dict` up to JSON's type erasure:
    tuple-valued predictions come back as tuples (JSON arrays are
    frozen), object/attribute identifiers come back as the strings the
    serializer emitted, and facts whose serialized confidence was
    ``None`` are omitted from the ``confidence`` mapping.  Partition
    provenance (``partition`` / ``silhouette_by_k``) is not part of the
    result object itself; callers that need it read those keys
    directly.
    """
    from repro.algorithms.base import TruthDiscoveryResult
    from repro.data.types import Fact

    if payload.get("schema") != RESULT_SCHEMA:
        raise ValueError(
            f"payload does not carry the {RESULT_SCHEMA} schema "
            f"(got {payload.get('schema')!r})"
        )
    predictions: dict[Any, Any] = {}
    confidence: dict[Any, float] = {}
    for entry in payload.get("predictions", ()):
        fact = Fact(entry["object"], entry["attribute"])
        predictions[fact] = _freeze_value(entry["value"])
        if entry.get("confidence") is not None:
            confidence[fact] = float(entry["confidence"])
    return TruthDiscoveryResult(
        algorithm=str(payload.get("algorithm", "")),
        predictions=predictions,
        confidence=confidence,
        source_trust={
            str(source): float(trust)
            for source, trust in (payload.get("source_trust") or {}).items()
        },
        iterations=int(payload.get("iterations", 0)),
        elapsed_seconds=float(payload.get("elapsed_seconds", 0.0)),
        extras=dict(payload.get("extras") or {}),
    )


def result_to_dict(
    result: "TruthDiscoveryResult",
    partition: "Partition | None" = None,
    silhouette_by_k: Mapping[int, float] | None = None,
) -> dict[str, Any]:
    """Render ``result`` (plus optional partition provenance) as v1.

    Predictions are sorted by (object, attribute) and trust by source, so
    serializing the same result twice yields byte-identical JSON.
    """
    ordered = sorted(
        result.predictions.items(),
        key=lambda kv: (str(kv[0].object), str(kv[0].attribute)),
    )
    return {
        "schema": RESULT_SCHEMA,
        "algorithm": result.algorithm,
        "iterations": result.iterations,
        "elapsed_seconds": result.elapsed_seconds,
        "predictions": [
            {
                "object": str(fact.object),
                "attribute": str(fact.attribute),
                "value": value,
                "confidence": (
                    None
                    if result.confidence.get(fact) is None
                    else float(result.confidence[fact])
                ),
            }
            for fact, value in ordered
        ],
        "source_trust": {
            str(source): float(trust)
            for source, trust in sorted(
                result.source_trust.items(), key=lambda kv: str(kv[0])
            )
        },
        "partition": (
            None
            if partition is None
            else [[str(a) for a in block] for block in partition.blocks]
        ),
        "silhouette_by_k": {
            str(k): float(v)
            for k, v in sorted((silhouette_by_k or {}).items())
        },
        "extras": {str(k): str(v) for k, v in result.extras.items()},
    }
