"""TD-AC core: truth vectors, attribute partitions, and Algorithm 1.

* :func:`~repro.core.truth_vectors.build_truth_vectors` — Eq. 1;
* :class:`~repro.core.partition.Partition` — canonical attribute
  partitions with Rand / adjusted-Rand comparison (Table 5);
* :class:`~repro.core.tdac.TDAC` — the paper's algorithm;
* :func:`~repro.core.parallel.run_blocks` — per-block execution,
  optionally parallel.
"""

from repro.core.cache import PartitionCache
from repro.core.config import (
    DEFAULT_SPARSE_THRESHOLD,
    RESULT_AFFECTING_FIELDS,
    TDACConfig,
    config_from_dict,
)
from repro.core.explain import (
    CandidateSupport,
    FactExplanation,
    PartitionExplanation,
    explain_fact,
    explain_partition,
)
from repro.core.incremental import IncrementalTDAC, extend_dataset
from repro.core.object_tdac import (
    ObjectTDAC,
    ObjectTDACResult,
    build_object_truth_vectors,
)
from repro.core.parallel import (
    ExecutionPolicy,
    make_executor,
    ordered_map,
    run_blocks,
)
from repro.core.partition import (
    Partition,
    adjusted_rand_index,
    rand_index,
)
from repro.core.schema import (
    RESULT_SCHEMA,
    RESULT_SCHEMA_KEYS,
    result_from_dict,
    result_to_dict,
)
from repro.core.tdac import TDAC, TDACResult
from repro.core.truth_vectors import TruthVectorMatrix, build_truth_vectors

__all__ = [
    "CandidateSupport",
    "DEFAULT_SPARSE_THRESHOLD",
    "ExecutionPolicy",
    "FactExplanation",
    "IncrementalTDAC",
    "ObjectTDAC",
    "ObjectTDACResult",
    "Partition",
    "PartitionCache",
    "PartitionExplanation",
    "RESULT_AFFECTING_FIELDS",
    "RESULT_SCHEMA",
    "RESULT_SCHEMA_KEYS",
    "TDAC",
    "TDACConfig",
    "TDACResult",
    "TruthVectorMatrix",
    "adjusted_rand_index",
    "build_object_truth_vectors",
    "build_truth_vectors",
    "config_from_dict",
    "explain_fact",
    "explain_partition",
    "extend_dataset",
    "make_executor",
    "ordered_map",
    "rand_index",
    "result_from_dict",
    "result_to_dict",
    "run_blocks",
]
