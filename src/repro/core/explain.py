"""Explanations: why did a run resolve a fact the way it did?

A production data-fusion system has to answer "why did you pick 10.02?"
— :func:`explain_fact` reconstructs the per-value support of one fact
(which sources claimed each candidate, with what trust), and
:func:`explain_partition` summarises why TD-AC grouped the attributes it
did (pairwise truth-vector distances within and across blocks).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.algorithms.base import TruthDiscoveryResult
from repro.clustering.distance import pairwise_hamming
from repro.core.partition import Partition
from repro.core.truth_vectors import TruthVectorMatrix
from repro.data.dataset import Dataset
from repro.data.types import Fact, SourceId, Value


@dataclass(frozen=True)
class CandidateSupport:
    """One candidate value of a fact and the support behind it."""

    value: Value
    sources: tuple[SourceId, ...]
    total_trust: float
    elected: bool

    @property
    def n_votes(self) -> int:
        """Number of sources claiming this value."""
        return len(self.sources)


@dataclass(frozen=True)
class FactExplanation:
    """Full vote breakdown of one fact under a result's trust."""

    fact: Fact
    candidates: tuple[CandidateSupport, ...]
    elected: Value

    def margin(self) -> float:
        """Trust gap between the elected value and the runner-up."""
        elected_trust = next(
            c.total_trust for c in self.candidates if c.elected
        )
        others = [c.total_trust for c in self.candidates if not c.elected]
        return elected_trust - (max(others) if others else 0.0)

    def render(self) -> str:
        """Human-readable multi-line explanation."""
        lines = [f"{self.fact}:"]
        for candidate in sorted(
            self.candidates, key=lambda c: -c.total_trust
        ):
            marker = "*" if candidate.elected else " "
            supporters = ", ".join(candidate.sources)
            lines.append(
                f" {marker} {candidate.value!r}: trust {candidate.total_trust:.3f} "
                f"({candidate.n_votes} votes: {supporters})"
            )
        return "\n".join(lines)


def explain_fact(
    dataset: Dataset, result: TruthDiscoveryResult, fact: Fact
) -> FactExplanation:
    """Reconstruct the per-candidate support of ``fact``."""
    claims = dataset.claims_by_fact.get(fact)
    if not claims:
        raise KeyError(f"no claims for fact {fact}")
    elected = result.predictions.get(fact)
    by_value: dict[Value, list[SourceId]] = {}
    for claim in claims:
        by_value.setdefault(claim.value, []).append(claim.source)
    candidates = tuple(
        CandidateSupport(
            value=value,
            sources=tuple(sources),
            total_trust=float(
                sum(result.source_trust.get(s, 0.0) for s in sources)
            ),
            elected=value == elected,
        )
        for value, sources in by_value.items()
    )
    return FactExplanation(fact=fact, candidates=candidates, elected=elected)


@dataclass(frozen=True)
class PartitionExplanation:
    """Cohesion/separation evidence behind a chosen attribute partition."""

    partition: Partition
    mean_within_distance: float
    mean_across_distance: float

    @property
    def separation_ratio(self) -> float:
        """Across-block over within-block mean distance (>1 is good)."""
        if self.mean_within_distance == 0:
            return float("inf") if self.mean_across_distance > 0 else 1.0
        return self.mean_across_distance / self.mean_within_distance

    def render(self) -> str:
        """One-paragraph human-readable summary."""
        return (
            f"partition {self.partition}: attributes in the same block "
            f"disagree on {self.mean_within_distance:.1f} ranks on average, "
            f"attributes in different blocks on "
            f"{self.mean_across_distance:.1f} "
            f"(separation ratio {self.separation_ratio:.2f})"
        )


def explain_partition(
    vectors: TruthVectorMatrix, partition: Partition
) -> PartitionExplanation:
    """Quantify why ``partition`` groups the attributes it does."""
    distances = pairwise_hamming(vectors.matrix.astype(float))
    labels = partition.labels(vectors.attributes)
    within: list[float] = []
    across: list[float] = []
    n = len(labels)
    for i in range(n):
        for j in range(i + 1, n):
            (within if labels[i] == labels[j] else across).append(
                float(distances[i, j])
            )
    return PartitionExplanation(
        partition=partition,
        mean_within_distance=float(np.mean(within)) if within else 0.0,
        mean_across_distance=float(np.mean(across)) if across else 0.0,
    )
