"""Thread-safe LRU cache for selected partitions.

Partition selection — distance matrix, ``(k, init)`` restart grid,
silhouette scoring — dominates a TD-AC run, yet its output is a pure
function of the truth-vector input and the result-affecting config
knobs.  :class:`PartitionCache` memoizes that function across runs:
keys are ``(dataset fingerprint, reference algorithm name, config
fingerprint)`` triples, values are the selected
:class:`~repro.core.partition.Partition` plus its silhouette sweep.

The cache is deliberately *correctness-neutral*: a hit replays a
partition that the very same (dataset, reference, config) triple is
guaranteed to re-derive, so cached and uncached runs are bit-identical.
The serving layer shares one cache across service restarts so repeated
cold starts on the same corpus skip straight to the per-block solves.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Mapping

from repro.core.partition import Partition

#: Cache keys: (dataset fingerprint, reference algorithm name, config
#: fingerprint).
CacheKey = tuple[str, str, str]

#: Cache values: the selected partition and its silhouette-by-k sweep.
CacheEntry = tuple[Partition, Mapping[int, float]]


class PartitionCache:
    """A bounded, thread-safe LRU of partition-selection outcomes."""

    def __init__(self, max_entries: int = 32) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be at least 1")
        self.max_entries = max_entries
        self._lock = threading.Lock()
        self._entries: OrderedDict[CacheKey, CacheEntry] = OrderedDict()
        self._hits = 0
        self._misses = 0

    def get(self, key: CacheKey) -> CacheEntry | None:
        """The cached entry for ``key`` (refreshing recency), or None."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return entry

    def put(self, key: CacheKey, partition: Partition,
            silhouette_by_k: Mapping[int, float]) -> None:
        """Insert / refresh ``key``, evicting the least recent on overflow."""
        with self._lock:
            self._entries[key] = (partition, dict(silhouette_by_k))
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def stats(self) -> dict[str, int]:
        """Hit / miss / size counters (monotone except ``size``)."""
        with self._lock:
            return {
                "hits": self._hits,
                "misses": self._misses,
                "size": len(self._entries),
            }
