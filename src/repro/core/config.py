"""Frozen configuration object for TD-AC.

:class:`TDACConfig` consolidates every tuning knob of
:class:`~repro.core.tdac.TDAC` — the distance mode, the sweep bounds,
the k-means restart budget and seed, the parallelism and sparsity
switches, and the worker-failure policy — into one immutable, hashable
value.  ``TDAC(base, config=...)`` is the primary constructor; the old
per-knob keyword arguments keep working through a deprecation shim that
builds the equivalent config, so both spellings are bit-identical.

A config also knows its :meth:`~TDACConfig.fingerprint`: a short stable
digest over the *result-affecting* knobs only.  Parallelism
(``n_jobs``/``backend``), the sparse kernels and the execution policy
are excluded by design — every one of them is guaranteed bit-identical
to the sequential dense path — so two configs that can only differ in
wall time share a fingerprint.  The serving layer keys its partition
cache on (dataset fingerprint, config fingerprint), which is exactly the
pair that determines the selected partition.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass

import numpy as np

from repro.execution import ExecutionPolicy, validate_backend

#: In ``sparse="auto"`` mode the sparse distance kernels take over once
#: the dense truth-vector matrix would hold this many cells.  Below it
#: the dense BLAS path is faster; either path returns bit-identical
#: distances (binary operands make every Gram count exact), so the
#: threshold is purely a performance knob.
DEFAULT_SPARSE_THRESHOLD = 500_000

#: Config fields that change *what* TD-AC computes, not merely how fast.
#: Only these feed :meth:`TDACConfig.fingerprint`.
RESULT_AFFECTING_FIELDS = ("distance", "k_min", "k_max", "n_init", "seed")


@dataclass(frozen=True)
class TDACConfig:
    """Every knob of a TD-AC run, validated and frozen.

    Parameters
    ----------
    distance:
        ``"hamming"`` (Eq. 2, the paper's choice) or ``"masked"`` — the
        missing-data-aware variant of the paper's perspective (i).
    k_min / k_max:
        Sweep bounds; defaults follow Algorithm 1's ``[2, |A| - 1]``.
    n_init / seed:
        k-means restart count and determinism seed.
    n_jobs:
        Worker count for both parallel surfaces: the ``(k, init)``
        restart grid of the selection sweep and the per-block passes of
        step 4.  1 runs sequentially; any value produces bit-identical
        results.
    backend:
        ``"threads"`` (default; numpy kernels release the GIL) or
        ``"processes"`` for Python-bound base algorithms.
    sparse:
        ``"auto"`` (default), ``True`` or ``False`` — whether the
        pairwise distances are computed on CSR truth vectors.  Auto
        switches to sparse once the dense matrix reaches
        ``sparse_threshold`` cells.  Dense and sparse kernels return
        bit-identical distances.
    sparse_threshold:
        Cell-count cutover for ``sparse="auto"``.
    execution_policy:
        Optional :class:`~repro.execution.ExecutionPolicy` governing
        worker-failure handling (retry with backoff, per-task timeout,
        deterministic sequential fallback) on both parallel surfaces.
        ``None`` uses :data:`~repro.execution.DEFAULT_POLICY`.  Every
        recovery path reproduces the sequential results bit for bit.
    dtype:
        Working precision of the claim-index engine: ``"float64"``
        (default, bit-identical to the historical loops) or
        ``"float32"`` — an opt-in reduced-precision path that halves
        per-iteration array memory and routes incidence reductions
        through CSR GEMV.  float32 *does* change results (documented
        tolerance in ``tests/test_vectorized_engine.py``), so a
        non-default value feeds the fingerprint.
    memmap_threshold:
        When set, truth-vector matrices whose dense cell count reaches
        the threshold are allocated as anonymous memory-mapped arrays
        instead of RAM, letting out-of-core datasets build Eq. 1 without
        holding ``|A| * |O| * |S|`` bytes resident.  ``None`` (default)
        disables mapping.  Purely a placement knob — the filled values
        are identical — so it never affects the fingerprint.
    """

    distance: str = "hamming"
    k_min: int = 2
    k_max: int | None = None
    n_init: int = 10
    seed: int = 0
    n_jobs: int = 1
    backend: str = "threads"
    sparse: bool | str = "auto"
    sparse_threshold: int = DEFAULT_SPARSE_THRESHOLD
    execution_policy: ExecutionPolicy | None = None
    dtype: str = "float64"
    memmap_threshold: int | None = None

    def __post_init__(self) -> None:
        if self.distance not in ("hamming", "masked"):
            raise ValueError(f"unknown distance mode {self.distance!r}")
        if self.k_min < 2:
            raise ValueError("k_min must be at least 2")
        if self.n_init < 1:
            raise ValueError("n_init must be at least 1")
        if self.n_jobs < 1:
            raise ValueError("n_jobs must be at least 1")
        validate_backend(self.backend)
        if self.sparse not in (True, False, "auto"):
            raise ValueError(
                f"sparse must be True, False or 'auto', got {self.sparse!r}"
            )
        if self.sparse_threshold < 0:
            raise ValueError("sparse_threshold must be non-negative")
        if self.dtype not in ("float64", "float32"):
            raise ValueError(
                f"dtype must be 'float64' or 'float32', got {self.dtype!r}"
            )
        if self.memmap_threshold is not None and self.memmap_threshold < 0:
            raise ValueError("memmap_threshold must be non-negative or None")

    # ------------------------------------------------------------------

    def replace(self, **changes) -> "TDACConfig":
        """A copy of this config with ``changes`` applied (re-validated)."""
        return dataclasses.replace(self, **changes)

    @property
    def dtype_np(self) -> np.dtype:
        """The working dtype as a numpy dtype object."""
        return np.dtype(self.dtype)

    def fingerprint(self) -> str:
        """Stable digest of the result-affecting knobs.

        Two configs with equal fingerprints are guaranteed to select the
        same partition and produce the same merged result on the same
        dataset; they may still differ in performance knobs.  ``dtype``
        enters the payload only when it deviates from the bit-identical
        float64 default, so fingerprints recorded by older checkpoints
        keep validating.
        """
        payload = {
            name: getattr(self, name) for name in RESULT_AFFECTING_FIELDS
        }
        if self.dtype != "float64":
            payload["dtype"] = self.dtype
        blob = json.dumps(payload, sort_keys=True, default=repr)
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]

    def to_dict(self) -> dict:
        """JSON-ready view of every knob (policy rendered structurally)."""
        policy = self.execution_policy
        return {
            "distance": self.distance,
            "k_min": self.k_min,
            "k_max": self.k_max,
            "n_init": self.n_init,
            "seed": self.seed,
            "n_jobs": self.n_jobs,
            "backend": self.backend,
            "sparse": self.sparse,
            "sparse_threshold": self.sparse_threshold,
            "dtype": self.dtype,
            "memmap_threshold": self.memmap_threshold,
            "execution_policy": (
                None
                if policy is None
                else {
                    "max_retries": policy.max_retries,
                    "backoff_seconds": policy.backoff_seconds,
                    "backoff_cap_seconds": policy.backoff_cap_seconds,
                    "timeout_seconds": policy.timeout_seconds,
                    "sequential_fallback": policy.sequential_fallback,
                }
            ),
            "fingerprint": self.fingerprint(),
        }


#: Names accepted by the deprecated per-knob ``TDAC(...)`` keyword shim.
CONFIG_FIELD_NAMES = tuple(f.name for f in dataclasses.fields(TDACConfig))


def config_from_dict(payload: dict) -> TDACConfig:
    """Rebuild a :class:`TDACConfig` from its :meth:`~TDACConfig.to_dict`.

    Used by the durable store to resume a service under the exact config
    it checkpointed with.  When the payload carries a ``fingerprint`` it
    is checked against the rebuilt config, so a hand-edited checkpoint
    cannot silently serve results under the wrong knobs.
    """
    data = dict(payload)
    recorded = data.pop("fingerprint", None)
    policy = data.pop("execution_policy", None)
    if policy is not None:
        policy = ExecutionPolicy(**policy)
    config = TDACConfig(execution_policy=policy, **data)
    if recorded is not None and config.fingerprint() != recorded:
        raise ValueError(
            f"stored config fingerprint {recorded} does not match its "
            f"knobs (recomputed {config.fingerprint()})"
        )
    return config
