"""Attribute partitions: the objects TD-AC searches for.

A :class:`Partition` is a set of disjoint, jointly exhaustive blocks over
a dataset's attributes.  Blocks are canonicalised (sorted members, blocks
ordered by their smallest member) so partitions compare by value, print
in the paper's ``[(1,2),(4,6),(3,5)]`` style (Table 5), and can be
measured against each other with Rand / adjusted-Rand indices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.data.types import AttributeId


@dataclass(frozen=True)
class Partition:
    """A canonical partition of a set of attributes."""

    blocks: tuple[tuple[AttributeId, ...], ...]

    @staticmethod
    def from_blocks(blocks: Iterable[Iterable[AttributeId]]) -> "Partition":
        """Build a partition from arbitrary block iterables, validating
        disjointness and non-emptiness."""
        cleaned = []
        seen: set[AttributeId] = set()
        for block in blocks:
            members = tuple(sorted(set(block), key=str))
            if not members:
                raise ValueError("partition blocks must be non-empty")
            overlap = seen.intersection(members)
            if overlap:
                raise ValueError(
                    f"attributes in multiple blocks: {sorted(map(str, overlap))}"
                )
            seen.update(members)
            cleaned.append(members)
        cleaned.sort(key=lambda b: str(b[0]))
        return Partition(tuple(cleaned))

    @staticmethod
    def from_labels(
        attributes: Sequence[AttributeId], labels: Sequence[int]
    ) -> "Partition":
        """Build a partition from a cluster-label array over ``attributes``."""
        if len(attributes) != len(labels):
            raise ValueError("attributes and labels differ in length")
        groups: dict[int, list[AttributeId]] = {}
        for attribute, label in zip(attributes, labels):
            groups.setdefault(int(label), []).append(attribute)
        return Partition.from_blocks(groups.values())

    @staticmethod
    def singletons(attributes: Iterable[AttributeId]) -> "Partition":
        """The finest partition: every attribute in its own block."""
        return Partition.from_blocks([a] for a in attributes)

    @staticmethod
    def whole(attributes: Iterable[AttributeId]) -> "Partition":
        """The coarsest partition: one block with every attribute."""
        return Partition.from_blocks([tuple(attributes)])

    # ------------------------------------------------------------------

    @property
    def attributes(self) -> tuple[AttributeId, ...]:
        """All attributes covered by the partition, sorted."""
        return tuple(sorted((a for b in self.blocks for a in b), key=str))

    @property
    def n_blocks(self) -> int:
        """Number of blocks."""
        return len(self.blocks)

    def __iter__(self) -> Iterator[tuple[AttributeId, ...]]:
        return iter(self.blocks)

    def __len__(self) -> int:
        return len(self.blocks)

    def block_of(self, attribute: AttributeId) -> tuple[AttributeId, ...]:
        """The block containing ``attribute``."""
        for block in self.blocks:
            if attribute in block:
                return block
        raise KeyError(f"attribute {attribute!r} not in partition")

    def labels(self, attributes: Sequence[AttributeId]) -> np.ndarray:
        """Cluster-label array of ``attributes`` under this partition."""
        block_id = {
            attribute: i
            for i, block in enumerate(self.blocks)
            for attribute in block
        }
        try:
            return np.asarray([block_id[a] for a in attributes], dtype=np.int64)
        except KeyError as exc:
            raise KeyError(f"attribute {exc.args[0]!r} not in partition") from None

    def __str__(self) -> str:
        inner = ",".join(
            "(" + ",".join(str(a) for a in block) + ")" for block in self.blocks
        )
        return f"[{inner}]"


# ----------------------------------------------------------------------
# Partition agreement measures (used to compare Table 5 rows)
# ----------------------------------------------------------------------


def _pair_counts(
    reference: Partition, candidate: Partition
) -> tuple[int, int, int, int]:
    """Confusion counts over attribute pairs (together/apart agreement)."""
    attributes = reference.attributes
    if candidate.attributes != attributes:
        raise ValueError("partitions cover different attribute sets")
    ref_labels = reference.labels(attributes)
    cand_labels = candidate.labels(attributes)
    n = len(attributes)
    both_together = both_apart = mixed_ref = mixed_cand = 0
    for i in range(n):
        for j in range(i + 1, n):
            same_ref = ref_labels[i] == ref_labels[j]
            same_cand = cand_labels[i] == cand_labels[j]
            if same_ref and same_cand:
                both_together += 1
            elif not same_ref and not same_cand:
                both_apart += 1
            elif same_ref:
                mixed_ref += 1
            else:
                mixed_cand += 1
    return both_together, both_apart, mixed_ref, mixed_cand


def rand_index(reference: Partition, candidate: Partition) -> float:
    """Fraction of attribute pairs on which the two partitions agree."""
    a, b, c, d = _pair_counts(reference, candidate)
    total = a + b + c + d
    return 1.0 if total == 0 else (a + b) / total


def adjusted_rand_index(reference: Partition, candidate: Partition) -> float:
    """Rand index corrected for chance (Hubert & Arabie)."""
    attributes = reference.attributes
    ref_labels = reference.labels(attributes)
    cand_labels = candidate.labels(attributes)
    n = len(attributes)
    contingency: dict[tuple[int, int], int] = {}
    for r, c in zip(ref_labels, cand_labels):
        contingency[(int(r), int(c))] = contingency.get((int(r), int(c)), 0) + 1
    def comb2(x: int) -> float:
        return x * (x - 1) / 2.0
    sum_cells = sum(comb2(v) for v in contingency.values())
    row_sums: dict[int, int] = {}
    col_sums: dict[int, int] = {}
    for (r, c), v in contingency.items():
        row_sums[r] = row_sums.get(r, 0) + v
        col_sums[c] = col_sums.get(c, 0) + v
    sum_rows = sum(comb2(v) for v in row_sums.values())
    sum_cols = sum(comb2(v) for v in col_sums.values())
    total_pairs = comb2(n)
    if total_pairs == 0:
        return 1.0
    expected = sum_rows * sum_cols / total_pairs
    maximum = (sum_rows + sum_cols) / 2.0
    if maximum == expected:
        return 1.0
    return (sum_cells - expected) / (maximum - expected)
