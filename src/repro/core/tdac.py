"""TD-AC — Truth Discovery with Attribute Clustering (Algorithm 1).

The pipeline of Section 3.4:

1. run a base truth discovery algorithm ``F`` over the full dataset to
   obtain a reference truth;
2. build the attribute truth vector matrix (Eq. 1);
3. for every ``k in [2, |A| - 1]`` cluster the attribute vectors with
   k-means and score the clustering with the silhouette index (Eqs. 5–7),
   keeping the best partition;
4. run ``F`` independently on each block of the winning partition and
   concatenate the partial truths.

The class exposes every knob the paper's ablations need: the base
algorithm used for the per-block passes may differ from the one that
built the reference truth, the pairwise distance may be the plain or the
masked (missing-data-aware) Hamming, and the per-block passes can run in
parallel (the paper's second research perspective).
"""

from __future__ import annotations

import time
import warnings
from collections import Counter
from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.algorithms.base import TruthDiscoveryAlgorithm, TruthDiscoveryResult
from repro.clustering.distance import (
    pairwise_hamming,
    pairwise_hamming_sparse,
    pairwise_masked_hamming,
    pairwise_masked_hamming_sparse,
)
from repro.clustering.kselect import score_silhouette_sweep
from repro.clustering.sweep import sweep_kmeans
from repro.core.cache import PartitionCache
from repro.core.config import (
    CONFIG_FIELD_NAMES,
    DEFAULT_SPARSE_THRESHOLD,
    TDACConfig,
)
from repro.core.parallel import run_blocks
from repro.core.partition import Partition
from repro.core.truth_vectors import TruthVectorMatrix, build_truth_vectors
from repro.algorithms import kernels
from repro.data.claim_engine import ClaimIndexEngine
from repro.data.dataset import Dataset
from repro.data.types import Fact, SourceId, Value
from repro.execution import ExecutionPolicy
from repro.observability import current_tracer


@dataclass(frozen=True)
class TDACResult:
    """The result of one TD-AC run, with full provenance.

    Wraps the merged :class:`TruthDiscoveryResult` and records the chosen
    partition, the silhouette value of every swept ``k``, the reference
    run that produced the truth vectors, and the per-block results.
    """

    result: TruthDiscoveryResult
    partition: Partition
    silhouette_by_k: Mapping[int, float]
    reference: TruthDiscoveryResult
    block_results: tuple[TruthDiscoveryResult, ...]
    truth_vectors: TruthVectorMatrix

    @property
    def predictions(self) -> Mapping[Fact, Value]:
        """Merged fact → value predictions."""
        return self.result.predictions

    @property
    def source_trust(self) -> Mapping[SourceId, float]:
        """Merged per-source trust (claim-weighted mean across blocks)."""
        return self.result.source_trust

    @property
    def best_k(self) -> int:
        """Number of blocks of the selected partition."""
        return self.partition.n_blocks

    def to_dict(self) -> dict:
        """``tdac-result/v1`` rendering with partition provenance."""
        from repro.core.schema import result_to_dict

        return result_to_dict(
            self.result,
            partition=self.partition,
            silhouette_by_k=self.silhouette_by_k,
        )


class TDAC(TruthDiscoveryAlgorithm):
    """Truth Discovery with Attribute Clustering.

    Parameters
    ----------
    base:
        The base algorithm ``F`` executed on every block (and, unless
        ``reference`` is given, used to build the reference truth).
    reference:
        Optional distinct algorithm for the reference truth pass
        (ablation A-3); defaults to ``base``.
    config:
        A :class:`~repro.core.config.TDACConfig` carrying every tuning
        knob (distance, sweep bounds, restarts/seed, parallelism,
        sparsity, execution policy).  ``None`` means all defaults.
    partition_cache:
        Optional :class:`~repro.core.cache.PartitionCache`.  When given,
        :meth:`run` keys the partition-selection stage on the dataset's
        content fingerprint, the reference algorithm's name and the
        config fingerprint; a hit skips the distance matrix, the
        ``(k, init)`` sweep and the silhouette scoring while staying
        bit-identical (selection is deterministic in that key).
    **legacy_knobs:
        The pre-1.1 per-knob keyword arguments (``distance=``,
        ``seed=``, ``n_jobs=``, ...).  Deprecated: they emit a single
        :class:`DeprecationWarning` and are folded into an equivalent
        :class:`TDACConfig`, so results are bit-identical to the
        ``config=`` spelling.  Mutually exclusive with ``config``.
    """

    def __init__(
        self,
        base: TruthDiscoveryAlgorithm,
        reference: TruthDiscoveryAlgorithm | None = None,
        config: TDACConfig | None = None,
        partition_cache: PartitionCache | None = None,
        **legacy_knobs,
    ) -> None:
        unknown = set(legacy_knobs) - set(CONFIG_FIELD_NAMES)
        if unknown:
            raise TypeError(
                f"TDAC() got unexpected keyword arguments {sorted(unknown)}"
            )
        if legacy_knobs:
            if config is not None:
                raise TypeError(
                    "pass knobs through config=TDACConfig(...) or as legacy "
                    "keywords, not both"
                )
            warnings.warn(
                "per-knob TDAC keyword arguments "
                f"({', '.join(sorted(legacy_knobs))}) are deprecated; pass "
                "config=TDACConfig(...) instead (results are identical)",
                DeprecationWarning,
                stacklevel=2,
            )
            config = TDACConfig(**legacy_knobs)
        self.config = config if config is not None else TDACConfig()
        self.base = base
        self.reference_algorithm = reference if reference is not None else base
        self.partition_cache = partition_cache

    # Read-only per-knob views, kept so call sites (and the method bodies
    # below) written against the pre-config API keep working unchanged.

    @property
    def distance(self) -> str:
        return self.config.distance

    @property
    def k_min(self) -> int:
        return self.config.k_min

    @property
    def k_max(self) -> int | None:
        return self.config.k_max

    @property
    def n_init(self) -> int:
        return self.config.n_init

    @property
    def seed(self) -> int:
        return self.config.seed

    @property
    def n_jobs(self) -> int:
        return self.config.n_jobs

    @property
    def backend(self) -> str:
        return self.config.backend

    @property
    def sparse(self) -> bool | str:
        return self.config.sparse

    @property
    def sparse_threshold(self) -> int:
        return self.config.sparse_threshold

    @property
    def execution_policy(self) -> ExecutionPolicy | None:
        return self.config.execution_policy

    #: TDAC's discover() runs the full pipeline over a raw Dataset; it
    #: cannot consume a pre-sliced DatasetIndex view.
    supports_index = False

    @property
    def name(self) -> str:  # type: ignore[override]
        return f"TD-AC (F={self.base.name})"

    # ------------------------------------------------------------------

    def discover(self, data: Dataset) -> TruthDiscoveryResult:  # type: ignore[override]
        """Run TD-AC and return the merged result only."""
        return self.run(data).result

    def run(self, dataset: Dataset) -> TDACResult:
        """Run TD-AC and return the full provenance-carrying result.

        Every stage is wrapped in a span of the ambient tracer
        (``reference`` → ``truth_vectors`` → ``distance_matrix`` →
        ``k_sweep`` → ``silhouette_scoring`` → ``block_runs`` →
        ``merge``), so a traced run yields a per-stage wall-time
        breakdown at no cost to untraced runs.
        """
        tracer = current_tracer()
        start = time.perf_counter()
        with tracer.span("reference"):
            engine = self._claim_engine(dataset)
            if engine is None or not self.reference_algorithm.supports_index:
                # TDAC-as-reference (ablation nesting) runs its own full
                # pipeline and needs the Dataset, not an index view.
                reference = self.reference_algorithm.discover(dataset)
            else:
                reference = self.reference_algorithm.discover(
                    engine.full_index
                )
        with tracer.span("truth_vectors"):
            vectors = build_truth_vectors(
                dataset,
                reference,
                memmap_threshold=self.config.memmap_threshold,
            )
        partition, silhouettes = self._select_with_cache(dataset, vectors)
        block_results = run_blocks(
            self.base,
            dataset,
            partition,
            n_jobs=self.n_jobs,
            backend=self.backend,
            policy=self.execution_policy,
            engine=engine,
        )
        with tracer.span("merge"):
            merged = self._merge(dataset, partition, block_results, start)
        return TDACResult(
            result=merged,
            partition=partition,
            silhouette_by_k=silhouettes,
            reference=reference,
            block_results=tuple(block_results),
            truth_vectors=vectors,
        )

    def run_partitioned(
        self, dataset: Dataset, partition: Partition
    ) -> tuple[TruthDiscoveryResult, tuple[TruthDiscoveryResult, ...]]:
        """Step 4 only: solve every block of a known ``partition`` and merge.

        Used by callers that already hold a partition (the serving layer
        on a warm cache, ablations with forced partitions).  Produces
        exactly the merged result :meth:`run` would emit for the same
        partition — :meth:`_merge` does not read the reference pass.
        """
        start = time.perf_counter()
        block_results = run_blocks(
            self.base,
            dataset,
            partition,
            n_jobs=self.n_jobs,
            backend=self.backend,
            policy=self.execution_policy,
            engine=self._claim_engine(dataset),
        )
        with current_tracer().span("merge"):
            merged = self._merge(dataset, partition, block_results, start)
        return merged, tuple(block_results)

    def _claim_engine(self, dataset: Dataset) -> ClaimIndexEngine | None:
        """The dataset's shared claim-index engine under this config.

        One engine per (dataset, working dtype) serves both the
        reference pass (its full index) and every per-block run (sliced
        views), so the incidence structure is compiled exactly once.
        ``None`` in reference-kernel mode, where every stage must take
        the historical per-block recompile path.
        """
        if kernels.reference_enabled():
            return None
        return ClaimIndexEngine.shared(dataset, dtype=self.config.dtype_np)

    # ------------------------------------------------------------------

    def _select_with_cache(
        self, dataset: Dataset, vectors: TruthVectorMatrix
    ) -> tuple[Partition, dict[int, float]]:
        """Partition selection, memoized through ``partition_cache``.

        The key pins everything the selection depends on: the dataset
        content, the reference algorithm that shaped the truth vectors,
        and the result-affecting config knobs.  Selection is
        deterministic in that key, so replaying a cached partition is
        bit-identical to recomputing it.
        """
        cache = self.partition_cache
        if cache is None:
            return self.select_partition(vectors)
        tracer = current_tracer()
        key = (
            dataset.fingerprint,
            self.reference_algorithm.name,
            self.config.fingerprint(),
        )
        hit = cache.get(key)
        if hit is not None:
            tracer.count("partition_cache.hits")
            partition, silhouettes = hit
            return partition, dict(silhouettes)
        tracer.count("partition_cache.misses")
        partition, silhouettes = self.select_partition(vectors)
        cache.put(key, partition, silhouettes)
        return partition, silhouettes

    def select_partition(
        self, vectors: TruthVectorMatrix
    ) -> tuple[Partition, dict[int, float]]:
        """Steps 2–3: sweep ``k`` with k-means, keep the best silhouette.

        The pairwise distance matrix is computed once (sparse or dense
        per the ``sparse`` knob) and shared across every candidate
        ``k``; the ``(k, init)`` restart grid runs on one executor
        (``n_jobs``/``backend``), and the silhouette aggregations reuse
        the matrix's row sums across candidates.  All of it is
        bit-identical to the sequential dense pass.

        Datasets with fewer than 4 attributes have an empty sweep range
        ``[2, |A| - 1]``; they fall back to the trivial one-block
        partition, which makes TD-AC degrade gracefully to plain ``F``.
        """
        partition, silhouettes, _ = self.sweep_partition(vectors)
        return partition, silhouettes

    def sweep_partition(
        self,
        vectors: TruthVectorMatrix,
        distances: np.ndarray | None = None,
    ) -> tuple[Partition, dict[int, float], dict]:
        """:meth:`select_partition` plus the per-``k`` k-means fits.

        The fits carry the winning centroids of every swept ``k``; the
        exact incremental engine keeps them so the next update can
        warm-start its stability probe from the previous sweep.
        ``distances`` optionally reuses an already-computed pairwise
        distance matrix (it depends only on ``vectors``).
        """
        n_attributes = vectors.n_attributes
        upper = n_attributes - 1 if self.k_max is None else min(
            self.k_max, n_attributes - 1
        )
        if upper < self.k_min:
            return Partition.whole(vectors.attributes), {}, {}
        data = vectors.matrix.astype(float)
        if distances is None:
            distances = self.pairwise_distances(vectors)
        fits = sweep_kmeans(
            data,
            range(self.k_min, upper + 1),
            n_init=self.n_init,
            seed=self.seed,
            n_jobs=self.n_jobs,
            backend=self.backend,
            policy=self.execution_policy,
        )
        silhouettes = score_silhouette_sweep(distances, fits, average="macro")
        partition = self.pick_partition(
            vectors.attributes, fits, silhouettes
        )
        return partition, silhouettes, fits

    @staticmethod
    def pick_partition(
        attributes: tuple,
        fits: Mapping[int, object],
        silhouettes: Mapping[int, float],
    ) -> Partition:
        """Algorithm 1's argmax over swept fits (first ``k`` wins ties).

        Shared by the cold sweep and the incremental engine's
        warm-started probe so both apply the identical tie-break:
        candidates are scanned in ascending ``k``, degenerate single-
        cluster labellings are skipped, and only a strict silhouette
        improvement replaces the incumbent.
        """
        best_partition: Partition | None = None
        best_score = -np.inf
        for k in sorted(fits):
            labels = fits[k].labels
            if len(np.unique(labels)) < 2:
                continue
            # Algorithm 1 keeps the first k on ties (strict improvement).
            if silhouettes[k] > best_score:
                best_score = silhouettes[k]
                best_partition = Partition.from_labels(attributes, labels)
        if best_partition is None:
            best_partition = Partition.whole(attributes)
        return best_partition

    def pairwise_distances(self, vectors: TruthVectorMatrix) -> np.ndarray:
        """The attribute distance matrix under the configured mode.

        Dispatches between the dense kernels and the CSR Gram kernels of
        :mod:`repro.clustering.distance`; both return the same matrix,
        so this only decides how the reduction is executed.
        """
        with current_tracer().span(
            "distance_matrix",
            mode=self.distance,
            sparse=self.use_sparse(vectors),
        ):
            if self.use_sparse(vectors):
                if self.distance == "masked":
                    return pairwise_masked_hamming_sparse(
                        vectors.matrix_csr(), vectors.mask_csr()
                    )
                return pairwise_hamming_sparse(vectors.matrix_csr())
            data = vectors.matrix.astype(float)
            if self.distance == "masked":
                return pairwise_masked_hamming(data, vectors.mask)
            return pairwise_hamming(data)

    def use_sparse(self, vectors: TruthVectorMatrix) -> bool:
        """Whether the sparse distance path applies to ``vectors``."""
        if self.sparse == "auto":
            return vectors.matrix.size >= self.sparse_threshold
        return bool(self.sparse)

    def _merge(
        self,
        dataset: Dataset,
        partition: Partition,
        block_results: list[TruthDiscoveryResult],
        start: float,
    ) -> TruthDiscoveryResult:
        """Step 4's aggregation: concatenate block predictions.

        Per-source trust is merged as the claim-count-weighted mean of the
        per-block trusts, so a block with 2 attributes does not dominate
        one with 20.
        """
        predictions: dict[Fact, Value] = {}
        confidence: dict[Fact, float] = {}
        for block_result in block_results:
            predictions.update(block_result.predictions)
            confidence.update(block_result.confidence)
        weights: dict[SourceId, float] = {s: 0.0 for s in dataset.sources}
        trust_sums: dict[SourceId, float] = {s: 0.0 for s in dataset.sources}
        # One pass over the claims builds the attribute -> claim-count
        # map; each block then sums its attributes' counts instead of
        # rescanning every claim per block.
        claims_per_attribute = Counter(a for (_, _, a) in dataset.claims)
        for block, block_result in zip(partition.blocks, block_results):
            block_claims = sum(claims_per_attribute[a] for a in block)
            weight = float(max(block_claims, 1))
            for source, trust in block_result.source_trust.items():
                trust_sums[source] += weight * trust
                weights[source] += weight
        source_trust = {
            s: (trust_sums[s] / weights[s]) if weights[s] > 0 else 0.0
            for s in dataset.sources
        }
        return TruthDiscoveryResult(
            algorithm=self.name,
            predictions=predictions,
            confidence=confidence,
            source_trust=source_trust,
            # The paper reports TD-AC as a single-iteration process
            # (Tables 4, 6, 7, 9): one partition-then-solve pass.
            iterations=1,
            elapsed_seconds=time.perf_counter() - start,
            extras={"partition": str(partition)},
        )

    def _solve(self, index):  # pragma: no cover - not used by TDAC
        raise NotImplementedError(
            "TDAC overrides discover(); _solve is never called"
        )
