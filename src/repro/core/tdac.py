"""TD-AC — Truth Discovery with Attribute Clustering (Algorithm 1).

The pipeline of Section 3.4:

1. run a base truth discovery algorithm ``F`` over the full dataset to
   obtain a reference truth;
2. build the attribute truth vector matrix (Eq. 1);
3. for every ``k in [2, |A| - 1]`` cluster the attribute vectors with
   k-means and score the clustering with the silhouette index (Eqs. 5–7),
   keeping the best partition;
4. run ``F`` independently on each block of the winning partition and
   concatenate the partial truths.

The class exposes every knob the paper's ablations need: the base
algorithm used for the per-block passes may differ from the one that
built the reference truth, the pairwise distance may be the plain or the
masked (missing-data-aware) Hamming, and the per-block passes can run in
parallel (the paper's second research perspective).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.algorithms.base import TruthDiscoveryAlgorithm, TruthDiscoveryResult
from repro.clustering.distance import pairwise_hamming, pairwise_masked_hamming
from repro.clustering.kmeans import KMeans
from repro.clustering.silhouette import silhouette_score
from repro.core.parallel import run_blocks
from repro.core.partition import Partition
from repro.core.truth_vectors import TruthVectorMatrix, build_truth_vectors
from repro.data.dataset import Dataset
from repro.data.types import Fact, SourceId, Value


@dataclass(frozen=True)
class TDACResult:
    """The result of one TD-AC run, with full provenance.

    Wraps the merged :class:`TruthDiscoveryResult` and records the chosen
    partition, the silhouette value of every swept ``k``, the reference
    run that produced the truth vectors, and the per-block results.
    """

    result: TruthDiscoveryResult
    partition: Partition
    silhouette_by_k: Mapping[int, float]
    reference: TruthDiscoveryResult
    block_results: tuple[TruthDiscoveryResult, ...]
    truth_vectors: TruthVectorMatrix

    @property
    def predictions(self) -> Mapping[Fact, Value]:
        """Merged fact → value predictions."""
        return self.result.predictions

    @property
    def source_trust(self) -> Mapping[SourceId, float]:
        """Merged per-source trust (claim-weighted mean across blocks)."""
        return self.result.source_trust

    @property
    def best_k(self) -> int:
        """Number of blocks of the selected partition."""
        return self.partition.n_blocks


class TDAC(TruthDiscoveryAlgorithm):
    """Truth Discovery with Attribute Clustering.

    Parameters
    ----------
    base:
        The base algorithm ``F`` executed on every block (and, unless
        ``reference`` is given, used to build the reference truth).
    reference:
        Optional distinct algorithm for the reference truth pass
        (ablation A-3); defaults to ``base``.
    distance:
        ``"hamming"`` (Eq. 2, the paper's choice) or ``"masked"`` — the
        missing-data-aware variant of the paper's perspective (i).
    k_min / k_max:
        Sweep bounds; defaults follow Algorithm 1's ``[2, |A| - 1]``.
    n_init / seed:
        k-means restart count and determinism seed.
    n_jobs:
        Per-block parallelism of step 4; 1 runs sequentially.
    """

    def __init__(
        self,
        base: TruthDiscoveryAlgorithm,
        reference: TruthDiscoveryAlgorithm | None = None,
        distance: str = "hamming",
        k_min: int = 2,
        k_max: int | None = None,
        n_init: int = 10,
        seed: int = 0,
        n_jobs: int = 1,
    ) -> None:
        if distance not in ("hamming", "masked"):
            raise ValueError(f"unknown distance mode {distance!r}")
        if k_min < 2:
            raise ValueError("k_min must be at least 2")
        if n_jobs < 1:
            raise ValueError("n_jobs must be at least 1")
        self.base = base
        self.reference_algorithm = reference if reference is not None else base
        self.distance = distance
        self.k_min = k_min
        self.k_max = k_max
        self.n_init = n_init
        self.seed = seed
        self.n_jobs = n_jobs

    @property
    def name(self) -> str:  # type: ignore[override]
        return f"TD-AC (F={self.base.name})"

    # ------------------------------------------------------------------

    def discover(self, data: Dataset) -> TruthDiscoveryResult:  # type: ignore[override]
        """Run TD-AC and return the merged result only."""
        return self.run(data).result

    def run(self, dataset: Dataset) -> TDACResult:
        """Run TD-AC and return the full provenance-carrying result."""
        start = time.perf_counter()
        reference = self.reference_algorithm.discover(dataset)
        vectors = build_truth_vectors(dataset, reference)
        partition, silhouettes = self.select_partition(vectors)
        block_results = run_blocks(
            self.base, dataset, partition, n_jobs=self.n_jobs
        )
        merged = self._merge(dataset, partition, block_results, start)
        return TDACResult(
            result=merged,
            partition=partition,
            silhouette_by_k=silhouettes,
            reference=reference,
            block_results=tuple(block_results),
            truth_vectors=vectors,
        )

    # ------------------------------------------------------------------

    def select_partition(
        self, vectors: TruthVectorMatrix
    ) -> tuple[Partition, dict[int, float]]:
        """Steps 2–3: sweep ``k`` with k-means, keep the best silhouette.

        Datasets with fewer than 4 attributes have an empty sweep range
        ``[2, |A| - 1]``; they fall back to the trivial one-block
        partition, which makes TD-AC degrade gracefully to plain ``F``.
        """
        n_attributes = vectors.n_attributes
        upper = n_attributes - 1 if self.k_max is None else min(
            self.k_max, n_attributes - 1
        )
        if upper < self.k_min:
            return Partition.whole(vectors.attributes), {}
        data = vectors.matrix.astype(float)
        if self.distance == "masked":
            distances = pairwise_masked_hamming(data, vectors.mask)
        else:
            distances = pairwise_hamming(data)
        best_partition: Partition | None = None
        best_score = -np.inf
        silhouettes: dict[int, float] = {}
        for k in range(self.k_min, upper + 1):
            fit = KMeans(n_clusters=k, n_init=self.n_init, seed=self.seed).fit(data)
            if len(np.unique(fit.labels)) < 2:
                silhouettes[k] = -1.0
                continue
            score = silhouette_score(distances, fit.labels, average="macro")
            silhouettes[k] = score
            # Algorithm 1 keeps the first k on ties (strict improvement).
            if score > best_score:
                best_score = score
                best_partition = Partition.from_labels(
                    vectors.attributes, fit.labels
                )
        if best_partition is None:
            best_partition = Partition.whole(vectors.attributes)
        return best_partition, silhouettes

    def _merge(
        self,
        dataset: Dataset,
        partition: Partition,
        block_results: list[TruthDiscoveryResult],
        start: float,
    ) -> TruthDiscoveryResult:
        """Step 4's aggregation: concatenate block predictions.

        Per-source trust is merged as the claim-count-weighted mean of the
        per-block trusts, so a block with 2 attributes does not dominate
        one with 20.
        """
        predictions: dict[Fact, Value] = {}
        confidence: dict[Fact, float] = {}
        for block_result in block_results:
            predictions.update(block_result.predictions)
            confidence.update(block_result.confidence)
        weights: dict[SourceId, float] = {s: 0.0 for s in dataset.sources}
        trust_sums: dict[SourceId, float] = {s: 0.0 for s in dataset.sources}
        for block, block_result in zip(partition.blocks, block_results):
            block_claims = sum(
                1 for c in dataset.iter_claims() if c.attribute in set(block)
            )
            weight = float(max(block_claims, 1))
            for source, trust in block_result.source_trust.items():
                trust_sums[source] += weight * trust
                weights[source] += weight
        source_trust = {
            s: (trust_sums[s] / weights[s]) if weights[s] > 0 else 0.0
            for s in dataset.sources
        }
        return TruthDiscoveryResult(
            algorithm=self.name,
            predictions=predictions,
            confidence=confidence,
            source_trust=source_trust,
            # The paper reports TD-AC as a single-iteration process
            # (Tables 4, 6, 7, 9): one partition-then-solve pass.
            iterations=1,
            elapsed_seconds=time.perf_counter() - start,
            extras={"partition": str(partition)},
        )

    def _solve(self, index):  # pragma: no cover - not used by TDAC
        raise NotImplementedError(
            "TDAC overrides discover(); _solve is never called"
        )
