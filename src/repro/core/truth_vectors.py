"""Attribute truth vectors (Section 3.1, Equation 1).

The attribute truth vector of attribute ``a`` is a binary vector with one
rank per (object, source) pair::

    x(a, o, s) = 1  iff  s claims a value for (o, a) and that value equals
                         the reference truth v_F(o, a)

where the reference truth is the prediction of a *base* truth discovery
algorithm run once over the whole dataset.  Attributes whose vectors are
close in Hamming distance are exactly the attributes on which sources
exhibit the same reliability profile — the paper's notion of structural
correlation — which is what TD-AC clusters.

:class:`TruthVectorMatrix` also carries the observation mask (which ranks
were actually covered by a claim), enabling the missing-data-aware
distance of the paper's first research perspective.

Claims are *sparse* in the ``|O| * |S|`` rank space (``density()``
reports how sparse), so the matrix and mask are additionally exposed as
scipy CSR operands (:meth:`TruthVectorMatrix.matrix_csr`,
:meth:`TruthVectorMatrix.mask_csr`); the pairwise-distance layer can
then work in ``O(nnz)`` instead of ``O(|A| * |O| * |S|)``.  Both views
are built from the same (row, column) index arrays in one pass over the
claims, so they are always consistent.
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import dataclass

import numpy as np

from repro.algorithms.base import TruthDiscoveryAlgorithm, TruthDiscoveryResult
from repro.data.dataset import Dataset
from repro.data.types import AttributeId, ObjectId, SourceId


def _anonymous_memmap(shape: tuple[int, int], dtype) -> np.memmap:
    """A zero-filled memory-mapped array backed by an unlinked temp file.

    The file is deleted immediately after mapping (POSIX keeps the
    mapping alive until the array is garbage collected), so out-of-core
    truth-vector matrices never leak files even on hard crashes.
    """
    fd, path = tempfile.mkstemp(prefix="repro-truthvec-", suffix=".bin")
    try:
        os.close(fd)
        array = np.memmap(path, dtype=dtype, mode="w+", shape=shape)
    finally:
        os.unlink(path)
    return array


@dataclass(frozen=True)
class TruthVectorMatrix:
    """The matrix of attribute truth vectors for one dataset.

    Attributes
    ----------
    matrix:
        ``(n_attributes, n_objects * n_sources)`` binary array; row ``i``
        is the truth vector of ``attributes[i]``.
    mask:
        Same shape; ``True`` where the (object, source) rank is actually
        covered by a claim.  ``matrix`` is 0 wherever ``mask`` is False
        (Eq. 1 treats missing claims as "not confirmed").
    attributes:
        Row labels.
    ranks:
        Column labels as (object, source) pairs, object-major.
    """

    matrix: np.ndarray
    mask: np.ndarray
    attributes: tuple[AttributeId, ...]
    ranks: tuple[tuple[ObjectId, SourceId], ...]

    @property
    def n_attributes(self) -> int:
        """Number of rows (attributes)."""
        return len(self.attributes)

    def vector(self, attribute: AttributeId) -> np.ndarray:
        """The truth vector of one attribute."""
        try:
            row = self.attributes.index(attribute)
        except ValueError:
            raise KeyError(f"unknown attribute {attribute!r}") from None
        return self.matrix[row]

    def density(self) -> float:
        """Fraction of observed ranks (1 means no missing data)."""
        return float(self.mask.mean()) if self.mask.size else 0.0

    # -- sparse views ---------------------------------------------------

    def matrix_csr(self):
        """The truth-vector matrix as a float64 scipy CSR matrix.

        Built lazily and cached; float64 so Gram products count exactly
        (int8 would overflow past 127 agreements).
        """
        cached = self.__dict__.get("_matrix_csr")
        if cached is None:
            from scipy import sparse as sp

            cached = sp.csr_matrix(self.matrix.astype(np.float64))
            object.__setattr__(self, "_matrix_csr", cached)
        return cached

    def mask_csr(self):
        """The observation mask as a float64 scipy CSR matrix."""
        cached = self.__dict__.get("_mask_csr")
        if cached is None:
            from scipy import sparse as sp

            cached = sp.csr_matrix(self.mask.astype(np.float64))
            object.__setattr__(self, "_mask_csr", cached)
        return cached


def build_truth_vectors(
    dataset: Dataset,
    reference: TruthDiscoveryResult | TruthDiscoveryAlgorithm,
    memmap_threshold: int | None = None,
) -> TruthVectorMatrix:
    """Compute the matrix of attribute truth vectors (Eq. 1).

    ``reference`` is either a base algorithm (run here on the full
    dataset) or an already-computed result, so TD-AC can reuse one base
    run for both the vectors and comparison reporting.

    One pass over the claims collects (row, column, confirmed) triplets;
    the dense matrix and mask are then filled with two fancy-indexed
    assignments instead of per-claim scalar writes, which is what keeps
    vector construction off the partition-selection critical path.

    ``memmap_threshold`` (see ``TDACConfig.memmap_threshold``) switches
    the matrix and mask to anonymous memory-mapped backing once the cell
    count ``|A| * |O| * |S|`` reaches the threshold; the filled contents
    are identical either way.
    """
    if isinstance(reference, TruthDiscoveryAlgorithm):
        reference = reference.discover(dataset)
    objects = dataset.objects
    sources = dataset.sources
    attributes = dataset.attributes
    n_sources = len(sources)
    n_ranks = len(objects) * n_sources
    row_of = {a: i for i, a in enumerate(attributes)}
    # Column of rank (o, s) is object-major: base(o) + index(s).
    column_base = {o: i * n_sources for i, o in enumerate(objects)}
    source_index = {s: i for i, s in enumerate(sources)}
    # Re-key the reference predictions by plain (object, attribute)
    # tuples once, instead of constructing a Fact per claim.
    truth_of = {
        (fact.object, fact.attribute): value
        for fact, value in reference.predictions.items()
    }

    rows: list[int] = []
    columns: list[int] = []
    confirmed: list[bool] = []
    for (s, o, a), value in dataset.claims.items():
        rows.append(row_of[a])
        columns.append(column_base[o] + source_index[s])
        truth = truth_of.get((o, a))
        confirmed.append(truth is not None and value == truth)

    row_idx = np.asarray(rows, dtype=np.intp)
    col_idx = np.asarray(columns, dtype=np.intp)
    hit = np.asarray(confirmed, dtype=bool)

    shape = (len(attributes), n_ranks)
    cells = shape[0] * shape[1]
    if memmap_threshold is not None and cells >= memmap_threshold:
        matrix = _anonymous_memmap(shape, np.int8)
        mask = _anonymous_memmap(shape, bool)
    else:
        matrix = np.zeros(shape, dtype=np.int8)
        mask = np.zeros(shape, dtype=bool)
    mask[row_idx, col_idx] = True
    matrix[row_idx[hit], col_idx[hit]] = 1
    ranks = tuple((o, s) for o in objects for s in sources)
    return TruthVectorMatrix(
        matrix=matrix, mask=mask, attributes=attributes, ranks=ranks
    )
