"""Attribute truth vectors (Section 3.1, Equation 1).

The attribute truth vector of attribute ``a`` is a binary vector with one
rank per (object, source) pair::

    x(a, o, s) = 1  iff  s claims a value for (o, a) and that value equals
                         the reference truth v_F(o, a)

where the reference truth is the prediction of a *base* truth discovery
algorithm run once over the whole dataset.  Attributes whose vectors are
close in Hamming distance are exactly the attributes on which sources
exhibit the same reliability profile — the paper's notion of structural
correlation — which is what TD-AC clusters.

:class:`TruthVectorMatrix` also carries the observation mask (which ranks
were actually covered by a claim), enabling the missing-data-aware
distance of the paper's first research perspective.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.algorithms.base import TruthDiscoveryAlgorithm, TruthDiscoveryResult
from repro.data.dataset import Dataset
from repro.data.types import AttributeId, Fact, ObjectId, SourceId


@dataclass(frozen=True)
class TruthVectorMatrix:
    """The matrix of attribute truth vectors for one dataset.

    Attributes
    ----------
    matrix:
        ``(n_attributes, n_objects * n_sources)`` binary array; row ``i``
        is the truth vector of ``attributes[i]``.
    mask:
        Same shape; ``True`` where the (object, source) rank is actually
        covered by a claim.  ``matrix`` is 0 wherever ``mask`` is False
        (Eq. 1 treats missing claims as "not confirmed").
    attributes:
        Row labels.
    ranks:
        Column labels as (object, source) pairs, object-major.
    """

    matrix: np.ndarray
    mask: np.ndarray
    attributes: tuple[AttributeId, ...]
    ranks: tuple[tuple[ObjectId, SourceId], ...]

    @property
    def n_attributes(self) -> int:
        """Number of rows (attributes)."""
        return len(self.attributes)

    def vector(self, attribute: AttributeId) -> np.ndarray:
        """The truth vector of one attribute."""
        try:
            row = self.attributes.index(attribute)
        except ValueError:
            raise KeyError(f"unknown attribute {attribute!r}") from None
        return self.matrix[row]

    def density(self) -> float:
        """Fraction of observed ranks (1 means no missing data)."""
        return float(self.mask.mean()) if self.mask.size else 0.0


def build_truth_vectors(
    dataset: Dataset,
    reference: TruthDiscoveryResult | TruthDiscoveryAlgorithm,
) -> TruthVectorMatrix:
    """Compute the matrix of attribute truth vectors (Eq. 1).

    ``reference`` is either a base algorithm (run here on the full
    dataset) or an already-computed result, so TD-AC can reuse one base
    run for both the vectors and comparison reporting.
    """
    if isinstance(reference, TruthDiscoveryAlgorithm):
        reference = reference.discover(dataset)
    objects = dataset.objects
    sources = dataset.sources
    attributes = dataset.attributes
    rank_of = {
        (o, s): i
        for i, (o, s) in enumerate(
            (o, s) for o in objects for s in sources
        )
    }
    n_ranks = len(objects) * len(sources)
    row_of = {a: i for i, a in enumerate(attributes)}
    matrix = np.zeros((len(attributes), n_ranks), dtype=np.int8)
    mask = np.zeros((len(attributes), n_ranks), dtype=bool)
    predictions = reference.predictions
    for claim in dataset.iter_claims():
        row = row_of[claim.attribute]
        column = rank_of[(claim.object, claim.source)]
        mask[row, column] = True
        truth = predictions.get(Fact(claim.object, claim.attribute))
        if truth is not None and claim.value == truth:
            matrix[row, column] = 1
    ranks = tuple((o, s) for o in objects for s in sources)
    return TruthVectorMatrix(
        matrix=matrix, mask=mask, attributes=attributes, ranks=ranks
    )
