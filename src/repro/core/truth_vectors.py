"""Attribute truth vectors (Section 3.1, Equation 1).

The attribute truth vector of attribute ``a`` is a binary vector with one
rank per (object, source) pair::

    x(a, o, s) = 1  iff  s claims a value for (o, a) and that value equals
                         the reference truth v_F(o, a)

where the reference truth is the prediction of a *base* truth discovery
algorithm run once over the whole dataset.  Attributes whose vectors are
close in Hamming distance are exactly the attributes on which sources
exhibit the same reliability profile — the paper's notion of structural
correlation — which is what TD-AC clusters.

:class:`TruthVectorMatrix` also carries the observation mask (which ranks
were actually covered by a claim), enabling the missing-data-aware
distance of the paper's first research perspective.

Claims are *sparse* in the ``|O| * |S|`` rank space (``density()``
reports how sparse), so the matrix and mask are additionally exposed as
scipy CSR operands (:meth:`TruthVectorMatrix.matrix_csr`,
:meth:`TruthVectorMatrix.mask_csr`); the pairwise-distance layer can
then work in ``O(nnz)`` instead of ``O(|A| * |O| * |S|)``.  Both views
are built from the same (row, column) index arrays in one pass over the
claims, so they are always consistent.
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import dataclass

import numpy as np

from repro.algorithms.base import TruthDiscoveryAlgorithm, TruthDiscoveryResult
from repro.data.dataset import Dataset
from repro.data.types import AttributeId, ObjectId, SourceId


def _anonymous_memmap(shape: tuple[int, int], dtype) -> np.memmap:
    """A zero-filled memory-mapped array backed by an unlinked temp file.

    The file is deleted immediately after mapping (POSIX keeps the
    mapping alive until the array is garbage collected), so out-of-core
    truth-vector matrices never leak files even on hard crashes.
    """
    fd, path = tempfile.mkstemp(prefix="repro-truthvec-", suffix=".bin")
    try:
        os.close(fd)
        array = np.memmap(path, dtype=dtype, mode="w+", shape=shape)
    finally:
        os.unlink(path)
    return array


@dataclass(frozen=True)
class TruthVectorMatrix:
    """The matrix of attribute truth vectors for one dataset.

    Attributes
    ----------
    matrix:
        ``(n_attributes, n_objects * n_sources)`` binary array; row ``i``
        is the truth vector of ``attributes[i]``.
    mask:
        Same shape; ``True`` where the (object, source) rank is actually
        covered by a claim.  ``matrix`` is 0 wherever ``mask`` is False
        (Eq. 1 treats missing claims as "not confirmed").
    attributes:
        Row labels.
    ranks:
        Column labels as (object, source) pairs, object-major.
    """

    matrix: np.ndarray
    mask: np.ndarray
    attributes: tuple[AttributeId, ...]
    ranks: tuple[tuple[ObjectId, SourceId], ...]

    @property
    def n_attributes(self) -> int:
        """Number of rows (attributes)."""
        return len(self.attributes)

    def vector(self, attribute: AttributeId) -> np.ndarray:
        """The truth vector of one attribute."""
        try:
            row = self.attributes.index(attribute)
        except ValueError:
            raise KeyError(f"unknown attribute {attribute!r}") from None
        return self.matrix[row]

    def density(self) -> float:
        """Fraction of observed ranks (1 means no missing data)."""
        return float(self.mask.mean()) if self.mask.size else 0.0

    # -- sparse views ---------------------------------------------------

    def matrix_csr(self):
        """The truth-vector matrix as a float64 scipy CSR matrix.

        Built lazily and cached; float64 so Gram products count exactly
        (int8 would overflow past 127 agreements).
        """
        cached = self.__dict__.get("_matrix_csr")
        if cached is None:
            from scipy import sparse as sp

            cached = sp.csr_matrix(self.matrix.astype(np.float64))
            object.__setattr__(self, "_matrix_csr", cached)
        return cached

    def mask_csr(self):
        """The observation mask as a float64 scipy CSR matrix."""
        cached = self.__dict__.get("_mask_csr")
        if cached is None:
            from scipy import sparse as sp

            cached = sp.csr_matrix(self.mask.astype(np.float64))
            object.__setattr__(self, "_mask_csr", cached)
        return cached


def build_truth_vectors(
    dataset: Dataset,
    reference: TruthDiscoveryResult | TruthDiscoveryAlgorithm,
    memmap_threshold: int | None = None,
) -> TruthVectorMatrix:
    """Compute the matrix of attribute truth vectors (Eq. 1).

    ``reference`` is either a base algorithm (run here on the full
    dataset) or an already-computed result, so TD-AC can reuse one base
    run for both the vectors and comparison reporting.

    One pass over the claims collects (row, column, confirmed) triplets;
    the dense matrix and mask are then filled with two fancy-indexed
    assignments instead of per-claim scalar writes, which is what keeps
    vector construction off the partition-selection critical path.

    ``memmap_threshold`` (see ``TDACConfig.memmap_threshold``) switches
    the matrix and mask to anonymous memory-mapped backing once the cell
    count ``|A| * |O| * |S|`` reaches the threshold; the filled contents
    are identical either way.
    """
    if isinstance(reference, TruthDiscoveryAlgorithm):
        reference = reference.discover(dataset)
    objects = dataset.objects
    sources = dataset.sources
    attributes = dataset.attributes
    n_sources = len(sources)
    n_ranks = len(objects) * n_sources
    row_of = {a: i for i, a in enumerate(attributes)}
    # Column of rank (o, s) is object-major: base(o) + index(s).
    column_base = {o: i * n_sources for i, o in enumerate(objects)}
    source_index = {s: i for i, s in enumerate(sources)}
    # Re-key the reference predictions by plain (object, attribute)
    # tuples once, instead of constructing a Fact per claim.
    truth_of = {
        (fact.object, fact.attribute): value
        for fact, value in reference.predictions.items()
    }

    rows: list[int] = []
    columns: list[int] = []
    confirmed: list[bool] = []
    for (s, o, a), value in dataset.claims.items():
        rows.append(row_of[a])
        columns.append(column_base[o] + source_index[s])
        truth = truth_of.get((o, a))
        confirmed.append(truth is not None and value == truth)

    row_idx = np.asarray(rows, dtype=np.intp)
    col_idx = np.asarray(columns, dtype=np.intp)
    hit = np.asarray(confirmed, dtype=bool)

    shape = (len(attributes), n_ranks)
    cells = shape[0] * shape[1]
    if memmap_threshold is not None and cells >= memmap_threshold:
        matrix = _anonymous_memmap(shape, np.int8)
        mask = _anonymous_memmap(shape, bool)
    else:
        matrix = np.zeros(shape, dtype=np.int8)
        mask = np.zeros(shape, dtype=bool)
    mask[row_idx, col_idx] = True
    matrix[row_idx[hit], col_idx[hit]] = 1
    ranks = tuple((o, s) for o in objects for s in sources)
    return TruthVectorMatrix(
        matrix=matrix, mask=mask, attributes=attributes, ranks=ranks
    )


@dataclass(frozen=True)
class VectorDelta:
    """Outcome of one :meth:`TruthVectorStore.advance`.

    ``vectors`` is a *live view* over the store's buffers: it reflects
    the state as of this advance and is mutated in place by later ones.
    The change flags drive the exact selection-reuse decision upstream:
    appended all-zero columns (new objects) provably leave every pairwise
    attribute distance — and hence the certified partition and its
    silhouettes — unchanged, so only ``rows_changed`` /
    ``entries_changed`` (and ``mask_changed`` under the masked distance)
    invalidate a previous selection.
    """

    vectors: TruthVectorMatrix
    rebuilt: bool
    rows_changed: bool
    entries_changed: bool
    mask_changed: bool

    @property
    def selection_dirty(self) -> bool:
        """Whether the plain-Hamming selection inputs changed at all."""
        return self.rebuilt or self.rows_changed or self.entries_changed


class TruthVectorStore:
    """Incrementally maintained attribute truth-vector matrix (Eq. 1).

    Holds the Eq. 1 matrix and mask in capacity-doubled buffers and
    patches them in place as claims arrive: new attributes append rows,
    new objects append (zero-filled) column groups, and only facts whose
    reference prediction changed — plus facts receiving new claims — have
    their cells rewritten.  The used region is cell-for-cell identical to
    :func:`build_truth_vectors` over the same dataset and reference
    (``tests/test_incremental_exact.py`` pins this); growth re-backs the
    buffers onto anonymous memmaps once the capacity crosses
    ``memmap_threshold``, mirroring the batch builder's behaviour.

    A batch that introduces a new *source* interleaves a column into
    every object's group (columns are object-major), so the store falls
    back to a full rebuild for it.
    """

    def __init__(
        self,
        dataset: Dataset,
        reference: TruthDiscoveryResult,
        memmap_threshold: int | None = None,
    ) -> None:
        self.memmap_threshold = memmap_threshold
        self.rebuilds = 0
        self.patches = 0
        self._rebuild(dataset, reference)

    # ------------------------------------------------------------------

    @property
    def vectors(self) -> TruthVectorMatrix:
        """A (live) :class:`TruthVectorMatrix` view of the current state."""
        return TruthVectorMatrix(
            matrix=self._matrix[: self._n_rows, : self._n_cols],
            mask=self._mask[: self._n_rows, : self._n_cols],
            attributes=self._attributes,
            ranks=self._ranks,
        )

    def _rebuild(
        self, dataset: Dataset, reference: TruthDiscoveryResult
    ) -> VectorDelta:
        built = build_truth_vectors(
            dataset, reference, memmap_threshold=self.memmap_threshold
        )
        self._matrix = built.matrix
        self._mask = built.mask
        self._n_rows, self._n_cols = built.matrix.shape
        self._attributes = built.attributes
        self._ranks = built.ranks
        self._n_sources = len(dataset.sources)
        self._n_objects = len(dataset.objects)
        self._truth_of = {
            (fact.object, fact.attribute): value
            for fact, value in reference.predictions.items()
        }
        self.rebuilds += 1
        return VectorDelta(
            vectors=self.vectors,
            rebuilt=True,
            rows_changed=True,
            entries_changed=True,
            mask_changed=True,
        )

    def _grow(self, n_rows: int, n_cols: int) -> None:
        cap_rows, cap_cols = self._matrix.shape
        if n_rows <= cap_rows and n_cols <= cap_cols:
            self._n_rows, self._n_cols = n_rows, n_cols
            return
        new_rows = max(n_rows, 2 * cap_rows) if n_rows > cap_rows else cap_rows
        new_cols = max(n_cols, 2 * cap_cols) if n_cols > cap_cols else cap_cols
        shape = (new_rows, new_cols)
        threshold = self.memmap_threshold
        if threshold is not None and new_rows * new_cols >= threshold:
            matrix = _anonymous_memmap(shape, np.int8)
            mask = _anonymous_memmap(shape, bool)
        else:
            matrix = np.zeros(shape, dtype=np.int8)
            mask = np.zeros(shape, dtype=bool)
        used_r, used_c = self._n_rows, self._n_cols
        matrix[:used_r, :used_c] = self._matrix[:used_r, :used_c]
        mask[:used_r, :used_c] = self._mask[:used_r, :used_c]
        self._matrix = matrix
        self._mask = mask
        self._n_rows, self._n_cols = n_rows, n_cols

    def advance(
        self,
        dataset: Dataset,
        engine,
        reference: TruthDiscoveryResult,
        fresh: list,
    ) -> VectorDelta:
        """Patch the matrix for ``dataset`` = previous dataset + ``fresh``.

        ``engine`` is the (delta-compiled) claim-index engine of
        ``dataset``; ``reference`` is the fresh reference pass over the
        full extended corpus.  Returns the new view plus precise change
        flags.  Falls back to :func:`build_truth_vectors` when no engine
        is available or the source universe grew.
        """
        if engine is None or len(dataset.sources) != self._n_sources:
            return self._rebuild(dataset, reference)
        new_truth = {
            (fact.object, fact.attribute): value
            for fact, value in reference.predictions.items()
        }
        old_truth = self._truth_of
        changed_facts = {
            key for key, value in new_truth.items()
            if old_truth.get(key) != value
        }
        changed_facts.update(
            (claim.object, claim.attribute) for claim in fresh
        )
        rows_changed = len(dataset.attributes) != self._n_rows
        grew_objects = len(dataset.objects) != self._n_objects
        self._grow(
            len(dataset.attributes),
            len(dataset.objects) * self._n_sources,
        )
        if rows_changed:
            self._attributes = dataset.attributes
        if grew_objects:
            sources = dataset.sources
            self._ranks = self._ranks + tuple(
                (o, s)
                for o in dataset.objects[self._n_objects:]
                for s in sources
            )
            self._n_objects = len(dataset.objects)
        attr_rank = engine._attr_rank
        obj_rank = engine._obj_rank
        n_sources = self._n_sources
        matrix, mask = self._matrix, self._mask
        entries_changed = False
        for obj, attribute in changed_facts:
            fact_id = engine.fact_id(obj, attribute)
            if fact_id < 0:  # pragma: no cover - defensive
                continue
            src_ids, values = engine.fact_claims(fact_id)
            row = attr_rank[attribute]
            cols = obj_rank[obj] * n_sources + src_ids
            pred = new_truth.get((obj, attribute))
            confirmed = np.fromiter(
                (pred is not None and v == pred for v in values),
                dtype=bool,
                count=len(values),
            ).astype(np.int8)
            if not entries_changed and not np.array_equal(
                matrix[row, cols], confirmed
            ):
                entries_changed = True
            matrix[row, cols] = confirmed
            mask[row, cols] = True
        self._truth_of = new_truth
        self.patches += 1
        return VectorDelta(
            vectors=self.vectors,
            rebuilt=False,
            rows_changed=rows_changed,
            entries_changed=entries_changed,
            mask_changed=bool(fresh),
        )
