"""Lightweight span tracing for the TD-AC pipeline.

Every stage of a TD-AC run — reference pass, truth-vector build,
distance matrix, k-sweep, silhouette scoring, per-block solves, merge —
is wrapped in a *span*: a named wall-clock interval with an optional
parent.  A :class:`SpanTracer` collects the spans of one run plus a set
of named counters (tasks submitted, retries, fallbacks), and can render
both as a structured report (see :mod:`repro.observability.report`) or
fold them into the evaluation harness's
:class:`~repro.metrics.timing.Stopwatch`.

The tracer is *ambient*: pipeline stages call :func:`current_tracer`
instead of threading a tracer argument through every signature.  When no
tracer has been activated the module-level :data:`NULL_TRACER` absorbs
all calls at near-zero cost, so instrumented code pays nothing in
untraced runs.  This module is pure stdlib so every layer (including
:mod:`repro.execution`) can import it without cycles.

>>> tracer = SpanTracer()
>>> with activate(tracer):
...     with current_tracer().span("reference"):
...         pass
>>> list(tracer.stage_seconds()) == ["reference"]
True
"""

from __future__ import annotations

import contextlib
import time
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Any, Iterator


@dataclass
class Span:
    """One closed wall-clock interval of a traced run."""

    name: str
    seconds: float
    parent: str | None = None
    depth: int = 0
    meta: dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready representation."""
        return {
            "name": self.name,
            "seconds": self.seconds,
            "parent": self.parent,
            "depth": self.depth,
            "meta": dict(self.meta),
        }


class SpanTracer:
    """Collects spans and counters for one pipeline run.

    Parameters
    ----------
    stopwatch:
        Optional :class:`~repro.metrics.timing.Stopwatch` (or anything
        with an ``add(phase, seconds)`` method); every closed top-level
        span is mirrored into it, integrating the tracer with the
        existing per-phase timing of the evaluation harness.
    """

    def __init__(self, stopwatch: Any | None = None) -> None:
        self.spans: list[Span] = []
        self.counters: dict[str, int] = {}
        self.gauges: dict[str, dict[str, float]] = {}
        self._stack: list[str] = []
        self._stopwatch = stopwatch

    @contextlib.contextmanager
    def span(self, name: str, **meta: Any) -> Iterator[None]:
        """Context manager recording one named interval.

        Spans nest: a span opened while another is running records the
        enclosing span's name as its parent and its nesting depth, so
        reports can distinguish top-level pipeline stages (depth 0) from
        their internals.
        """
        parent = self._stack[-1] if self._stack else None
        depth = len(self._stack)
        self._stack.append(name)
        start = time.perf_counter()
        try:
            yield
        finally:
            seconds = time.perf_counter() - start
            self._stack.pop()
            self.spans.append(Span(name, seconds, parent, depth, dict(meta)))
            if self._stopwatch is not None and depth == 0:
                self._stopwatch.add(name, seconds)

    def count(self, name: str, n: int = 1) -> None:
        """Add ``n`` to the named counter."""
        self.counters[name] = self.counters.get(name, 0) + n

    def gauge(self, name: str, value: float) -> None:
        """Record an instantaneous sample of the named gauge.

        Counters only accumulate; gauges capture level-style quantities
        (queue depth, batch occupancy).  The tracer keeps the last and
        maximum sample plus the sample count per gauge — enough for the
        report without storing every observation.
        """
        state = self.gauges.get(name)
        value = float(value)
        if state is None:
            self.gauges[name] = {"last": value, "max": value, "samples": 1}
        else:
            state["last"] = value
            state["max"] = max(state["max"], value)
            state["samples"] += 1

    # ------------------------------------------------------------------

    def stage_seconds(self) -> dict[str, float]:
        """Top-level span name → accumulated seconds, in first-seen order.

        Depth-0 spans tile the traced run, so their sum approximates the
        total wall time of the pipeline (the report asserts this).
        """
        out: dict[str, float] = {}
        for span in self.spans:
            if span.depth == 0:
                out[span.name] = out.get(span.name, 0.0) + span.seconds
        return out

    @property
    def total_seconds(self) -> float:
        """Sum of the top-level stage times."""
        return sum(self.stage_seconds().values())

    def to_stopwatch(self, stopwatch: Any | None = None):
        """Fold the top-level stages into a Stopwatch and return it."""
        if stopwatch is None:
            from repro.metrics.timing import Stopwatch

            stopwatch = Stopwatch()
        for name, seconds in self.stage_seconds().items():
            stopwatch.add(name, seconds)
        return stopwatch


class NullTracer(SpanTracer):
    """Absorbing tracer used when no tracer is active.

    Records nothing, so instrumented code can call ``span``/``count``
    unconditionally.
    """

    def __init__(self) -> None:
        super().__init__()

    @contextlib.contextmanager
    def span(self, name: str, **meta: Any) -> Iterator[None]:
        yield

    def count(self, name: str, n: int = 1) -> None:
        pass

    def gauge(self, name: str, value: float) -> None:
        pass


NULL_TRACER = NullTracer()

_CURRENT: ContextVar[SpanTracer] = ContextVar("repro_tracer", default=NULL_TRACER)


def current_tracer() -> SpanTracer:
    """The tracer active in this context (``NULL_TRACER`` when none)."""
    return _CURRENT.get()


@contextlib.contextmanager
def activate(tracer: SpanTracer | None) -> Iterator[SpanTracer]:
    """Make ``tracer`` the ambient tracer for the enclosed block.

    ``activate(None)`` is a no-op, which lets call sites thread an
    optional tracer without branching.
    """
    if tracer is None:
        yield current_tracer()
        return
    token = _CURRENT.set(tracer)
    try:
        yield tracer
    finally:
        _CURRENT.reset(token)
