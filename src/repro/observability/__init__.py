"""Observability layer: span tracing and structured run reports.

* :class:`~repro.observability.tracer.SpanTracer` — per-stage wall
  times and counters for one pipeline run, ambient via
  :func:`~repro.observability.tracer.activate` /
  :func:`~repro.observability.tracer.current_tracer`;
* :func:`~repro.observability.report.trace_report` /
  :func:`~repro.observability.report.write_trace` — the versioned JSON
  run report behind the CLI's ``--trace`` flag and the bench harness.
"""

from repro.observability.report import (
    TRACE_REPORT_KEYS,
    TRACE_SCHEMA,
    trace_report,
    write_trace,
)
from repro.observability.tracer import (
    NULL_TRACER,
    NullTracer,
    Span,
    SpanTracer,
    activate,
    current_tracer,
)

__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "SpanTracer",
    "TRACE_REPORT_KEYS",
    "TRACE_SCHEMA",
    "activate",
    "current_tracer",
    "trace_report",
    "write_trace",
]
