"""Structured JSON run reports built from a :class:`SpanTracer`.

The report is the artefact behind the CLI's ``--trace out.json`` flag
and the bench harness's per-stage records: a stable, versioned schema
(see :data:`TRACE_SCHEMA`) with the per-stage wall times, the full span
list, the execution counters (task retries, fallbacks) and a coverage
ratio stating how much of the measured wall time the stages account
for.  Schema stability is pinned by a golden test.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.observability.tracer import SpanTracer

#: Version tag embedded in every report; bump on breaking schema change.
TRACE_SCHEMA = "tdac-trace/v1"

#: Keys every trace report carries, in emission order.  ``gauges`` is a
#: v1-additive key (level-style samples: queue depth, batch occupancy);
#: consumers of older reports can treat it as absent-means-empty.
TRACE_REPORT_KEYS = (
    "schema",
    "total_seconds",
    "stage_seconds",
    "stage_fractions",
    "stage_coverage",
    "spans",
    "counters",
    "gauges",
    "context",
)


def trace_report(
    tracer: SpanTracer,
    total_seconds: float | None = None,
    context: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """Render ``tracer`` as a JSON-ready run report.

    ``total_seconds`` is the externally measured wall time of the traced
    region (defaults to the sum of top-level stages); ``stage_coverage``
    is the ratio of stage sum to that total, the quantity the acceptance
    check "stages sum to within 5% of wall time" reads.
    """
    stages = tracer.stage_seconds()
    stage_sum = sum(stages.values())
    total = stage_sum if total_seconds is None else float(total_seconds)
    fractions = (
        {name: seconds / total for name, seconds in stages.items()}
        if total > 0
        else {name: 0.0 for name in stages}
    )
    return {
        "schema": TRACE_SCHEMA,
        "total_seconds": total,
        "stage_seconds": stages,
        "stage_fractions": fractions,
        "stage_coverage": (stage_sum / total) if total > 0 else 1.0,
        "spans": [span.as_dict() for span in tracer.spans],
        "counters": dict(tracer.counters),
        "gauges": {name: dict(state) for name, state in tracer.gauges.items()},
        "context": dict(context or {}),
    }


def write_trace(
    path: str | Path,
    tracer: SpanTracer,
    total_seconds: float | None = None,
    context: dict[str, Any] | None = None,
) -> Path:
    """Write the report of ``tracer`` to ``path`` and return the path."""
    report = trace_report(tracer, total_seconds=total_seconds, context=context)
    destination = Path(path)
    destination.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return destination
