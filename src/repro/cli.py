"""Command-line interface: regenerate paper artefacts from the shell.

Examples
--------
::

    python -m repro table4 DS1 --scale 0.1
    python -m repro table5 DS2
    python -m repro table8
    python -m repro table9 "Exam 62"
    python -m repro run Accu DS1 --scale 0.05
    python -m repro run TDAC+Accu DS1 --scale 0.05 --trace trace.json
    python -m repro run TDAC+Accu DS1 --scale 0.05 --json
    python -m repro leaderboard DS1 --scale 0.05 --n-jobs 4
    python -m repro serve --smoke
    echo '{"op": "stats"}' | python -m repro serve MajorityVote DS1 --scale 0.05
    python -m repro serve MajorityVote DS1 --store-dir /tmp/truth-store
    python -m repro store inspect /tmp/truth-store
    python -m repro store compact /tmp/truth-store
    python -m repro store recover /tmp/truth-store
    python -m repro datasets
    python -m repro algorithms

Every table subcommand prints a paper-style ASCII table to stdout;
``run --json`` emits the versioned ``tdac-result/v1`` schema and
``serve`` speaks JSON lines on stdin/stdout.

The execution knobs shared by ``run``, ``leaderboard`` and ``serve``
(``--n-jobs``, ``--backend``, ``--trace``, ``--task-retries``,
``--task-timeout``) live on one parent parser, so the subcommands
cannot drift apart.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro import algorithms as algorithm_registry
from repro.algorithms import create
from repro.core import TDAC, TDACConfig
from repro.datasets import available as available_datasets
from repro.datasets import load
from repro.evaluation import (
    format_table,
    performance_table,
    run_algorithm,
    semi_synthetic_experiment,
    table4_experiment,
    table5_experiment,
    table8_experiment,
    table9_experiment,
)


def _execution_parent() -> argparse.ArgumentParser:
    """The shared execution/observability flags of run/leaderboard/serve."""
    parent = argparse.ArgumentParser(add_help=False)
    group = parent.add_argument_group("execution")
    group.add_argument(
        "--n-jobs",
        type=int,
        default=1,
        help="workers for TD-AC's k-sweep and per-block passes",
    )
    group.add_argument(
        "--backend",
        choices=["threads", "processes"],
        default="threads",
        help="executor kind behind --n-jobs",
    )
    group.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="write a per-stage span report (JSON) of the run to PATH",
    )
    group.add_argument(
        "--task-retries",
        type=int,
        default=1,
        help="retries per failed worker task before sequential fallback",
    )
    group.add_argument(
        "--task-timeout",
        type=float,
        default=None,
        help="per-task timeout in seconds; a timeout counts as a task "
        "failure",
    )
    return parent


def _config_from_args(args: argparse.Namespace) -> TDACConfig:
    """Fold the shared execution flags (+ seed/sparse) into a TDACConfig."""
    from repro.execution import ExecutionPolicy

    sparse_mode = {"auto": "auto", "always": True, "never": False}[
        getattr(args, "sparse", "auto")
    ]
    return TDACConfig(
        seed=getattr(args, "seed", 0),
        k_max=getattr(args, "k_max", None),
        n_init=getattr(args, "n_init", 10),
        n_jobs=args.n_jobs,
        backend=args.backend,
        sparse=sparse_mode,
        execution_policy=ExecutionPolicy(
            max_retries=args.task_retries,
            timeout_seconds=args.task_timeout,
        ),
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="TD-AC reproduction: regenerate the paper's tables.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    execution = _execution_parent()

    table4 = sub.add_parser("table4", help="Tables 4a-4c (synthetic)")
    table4.add_argument("dataset", choices=["DS1", "DS2", "DS3"])
    table4.add_argument("--scale", type=float, default=0.1)
    table4.add_argument(
        "--brute-scale",
        type=float,
        default=None,
        help="scale for the AccuGenPartition rows (omit to skip them)",
    )

    table5 = sub.add_parser("table5", help="Table 5 (chosen partitions)")
    table5.add_argument("dataset", choices=["DS1", "DS2", "DS3"])
    table5.add_argument("--scale", type=float, default=0.05)

    table67 = sub.add_parser("table6", help="Tables 6/7 (semi-synthetic)")
    table67.add_argument("attributes", type=int, choices=[62, 124])
    table67.add_argument("range_size", type=int)

    sub.add_parser("table8", help="Table 8 (real-data statistics)")

    table9 = sub.add_parser("table9", help="Table 9 (real data)")
    table9.add_argument("dataset")

    run = sub.add_parser(
        "run",
        parents=[execution],
        help="run one algorithm on one dataset",
    )
    run.add_argument("algorithm", help="algorithm name, or TDAC+<base>")
    run.add_argument("dataset")
    run.add_argument("--scale", type=float, default=1.0)
    run.add_argument("--seed", type=int, default=0)
    run.add_argument(
        "--sparse",
        choices=["auto", "always", "never"],
        default="auto",
        help="CSR vs dense distance kernels for TD-AC (TDAC+ only)",
    )
    run.add_argument(
        "--json",
        action="store_true",
        help="emit the tdac-result/v1 JSON schema instead of a table",
    )

    board = sub.add_parser(
        "leaderboard",
        parents=[execution],
        help="rank every algorithm on one dataset",
    )
    board.add_argument("dataset")
    board.add_argument("--scale", type=float, default=1.0)
    board.add_argument("--seed", type=int, default=0)
    board.add_argument(
        "--no-tdac", action="store_true", help="skip the TD-AC-wrapped rows"
    )

    serve = sub.add_parser(
        "serve",
        parents=[execution],
        help="long-lived micro-batching truth service (JSON lines on stdin)",
    )
    serve.add_argument(
        "algorithm", nargs="?", default="MajorityVote",
        help="base algorithm for every refit",
    )
    serve.add_argument(
        "dataset", nargs="?", default="DS1", help="initial corpus to serve"
    )
    serve.add_argument("--scale", type=float, default=0.05)
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument(
        "--refit",
        choices=["full", "incremental"],
        default="full",
        help="both modes publish snapshots bit-identical to offline "
        "TDAC.run; incremental absorbs each batch through the exact "
        "delta path instead of refitting from scratch",
    )
    serve.add_argument(
        "--max-batch-size",
        type=int,
        default=64,
        help="claim-count target per micro-batch",
    )
    serve.add_argument(
        "--max-wait-ms",
        type=float,
        default=10.0,
        help="linger for stragglers after a batch's first ticket",
    )
    serve.add_argument(
        "--queue-capacity",
        type=int,
        default=1024,
        help="pending-claim bound; admissions beyond it are rejected "
        "with a retry-after hint",
    )
    serve.add_argument(
        "--smoke",
        action="store_true",
        help="self-driving ingest/query round trip asserting snapshot "
        "bit-identity; exits non-zero on mismatch",
    )
    serve.add_argument(
        "--listen",
        metavar="HOST:PORT",
        default=None,
        help="serve the JSON-lines protocol over asyncio TCP instead of "
        "stdin/stdout (port 0 picks a free port, announced as a "
        '{"event": "listening"} line on stdout); SIGINT/SIGTERM drain '
        "gracefully",
    )
    serve.add_argument(
        "--drain-timeout",
        type=float,
        default=30.0,
        help="bound on flushing in-flight requests during graceful "
        "drain (with --listen)",
    )
    serve.add_argument(
        "--idle-timeout",
        type=float,
        default=300.0,
        help="close connections with no complete request for this many "
        "seconds (with --listen)",
    )
    serve.add_argument(
        "--max-inflight",
        type=int,
        default=32,
        help="per-connection concurrent request cap; excess requests "
        "get an overloaded response with a retry-after hint (with "
        "--listen)",
    )
    serve.add_argument(
        "--max-line-bytes",
        type=int,
        default=1 << 20,
        help="request-line framing bound; longer lines are rejected "
        "loudly and the connection dropped (with --listen)",
    )
    serve.add_argument(
        "--shards",
        type=int,
        default=1,
        help="partition the claim stream across this many in-process "
        "service workers (attribute-hash routing with a block exception "
        "list); snapshots serve the exact merged view",
    )
    serve.add_argument(
        "--tenants",
        metavar="NAME[,NAME...]",
        default=None,
        help="serve these named tenants multiplexed over a shared "
        "engine; requests route by their 'tenant' field (first name is "
        "the default tenant)",
    )
    serve.add_argument(
        "--tenant-quota",
        type=int,
        default=None,
        help="per-tenant pending-claims admission quota (with --tenants)",
    )
    serve.add_argument(
        "--k-max",
        type=int,
        default=None,
        help="cap the partition-selection sweep at this k (default: "
        "|A| - 1 per Algorithm 1); bounds per-refit cost when ingest "
        "streams keep growing the attribute set",
    )
    serve.add_argument(
        "--n-init",
        type=int,
        default=10,
        help="k-means restarts per swept k during refits",
    )
    serve.add_argument(
        "--store-dir",
        metavar="DIR",
        default=None,
        help="durable store directory: admissions are WAL-logged before "
        "they are acknowledged, and a non-empty directory is resumed "
        "via crash recovery",
    )
    serve.add_argument(
        "--snapshot-every",
        type=int,
        default=8,
        help="applied batches between periodic checkpoints (with "
        "--store-dir)",
    )

    store = sub.add_parser(
        "store",
        help="inspect or maintain a durable truth-service store directory",
    )
    store_sub = store.add_subparsers(dest="store_command", required=True)
    inspect = store_sub.add_parser(
        "inspect", help="print the store's WAL/snapshot structure as JSON"
    )
    inspect.add_argument("store_dir", help="store directory to inspect")
    compact = store_sub.add_parser(
        "compact",
        help="delete sealed WAL segments below the latest checkpoint's "
        "live frontier",
    )
    compact.add_argument("store_dir", help="store directory to compact")
    recover = store_sub.add_parser(
        "recover",
        help="restore the service state from the store, report what was "
        "replayed, and cut a fresh checkpoint",
    )
    recover.add_argument("store_dir", help="store directory to recover")
    recover.add_argument(
        "--algorithm",
        default=None,
        help="base algorithm override (defaults to the checkpoint's)",
    )

    scenarios = sub.add_parser(
        "scenarios",
        help="adversarial workload generators and degradation sweeps",
    )
    scenarios_sub = scenarios.add_subparsers(
        dest="scenarios_command", required=True
    )
    scenario_sweep = scenarios_sub.add_parser(
        "sweep",
        parents=[execution],
        help="accuracy/F1-vs-severity curves plus a robustness leaderboard",
    )
    scenario_sweep.add_argument(
        "dataset", nargs="?", default="DS1", help="clean corpus to degrade"
    )
    scenario_sweep.add_argument("--scale", type=float, default=0.05)
    scenario_sweep.add_argument("--seed", type=int, default=0)
    scenario_sweep.add_argument(
        "--scenarios",
        default="copying,drift,reorder",
        help="comma-separated scenario names",
    )
    scenario_sweep.add_argument(
        "--severities",
        default="0,0.25,0.5,0.75,1",
        help="comma-separated severity grid (0 reproduces the clean run)",
    )
    scenario_sweep.add_argument(
        "--algorithms",
        default="TDAC+MajorityVote,MajorityVote,TruthFinder,CRH",
        help="roster: registry names, TDAC+<base>, Routed[<categorical>]",
    )
    scenario_sweep.add_argument(
        "--json",
        action="store_true",
        help="emit records, skips and fingerprinted cell configs as JSON",
    )

    sub.add_parser("datasets", help="list available datasets")
    sub.add_parser("algorithms", help="list available algorithms")

    report = sub.add_parser(
        "report", help="assemble benchmarks/output into one markdown file"
    )
    report.add_argument("--output-dir", default="benchmarks/output")
    report.add_argument("--destination", default="EXPERIMENTS_MEASURED.md")
    return parser


def _make_algorithm(name: str, config: TDACConfig):
    if name.upper().startswith("TDAC+"):
        return TDAC(create(name[5:]), config=config)
    return create(name)


def main(argv: Sequence[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)

    if args.command == "table4":
        records = table4_experiment(
            args.dataset, scale=args.scale, gen_partition_scale=args.brute_scale
        )
        print(performance_table(records, title=f"Table 4 ({args.dataset})"))
    elif args.command == "table5":
        rows = table5_experiment(args.dataset, scale=args.scale)
        print(
            format_table(
                ["Approach", "Dataset", "Partition"],
                [r.as_row() for r in rows],
                title=f"Table 5 ({args.dataset})",
            )
        )
    elif args.command == "table6":
        records = semi_synthetic_experiment(args.attributes, args.range_size)
        title = "Table 6" if args.attributes == 62 else "Table 7"
        print(
            performance_table(
                records, title=f"{title} (Range {args.range_size})"
            )
        )
    elif args.command == "table8":
        stats = table8_experiment()
        print(
            format_table(
                [
                    "Dataset",
                    "Sources",
                    "Objects",
                    "Attributes",
                    "Observations",
                    "DCR (%)",
                ],
                [s.as_row() for s in stats],
                title="Table 8",
            )
        )
    elif args.command == "table9":
        records = table9_experiment(args.dataset)
        print(performance_table(records, title=f"Table 9 ({args.dataset})"))
    elif args.command == "run":
        dataset = load(args.dataset, seed=args.seed, scale=args.scale)
        algorithm = _make_algorithm(args.algorithm, _config_from_args(args))
        if args.json:
            import json

            if isinstance(algorithm, TDAC):
                payload = algorithm.run(dataset).to_dict()
            else:
                payload = algorithm.discover(dataset).to_dict()
            print(json.dumps(payload, sort_keys=True, default=str))
            return 0
        if args.trace is not None:
            from repro.metrics.timing import Timer
            from repro.observability import SpanTracer, write_trace

            tracer = SpanTracer()
            with Timer() as timer:
                record = run_algorithm(algorithm, dataset, tracer=tracer)
            path = write_trace(
                args.trace,
                tracer,
                total_seconds=timer.elapsed,
                context={
                    "algorithm": args.algorithm,
                    "dataset": args.dataset,
                    "scale": args.scale,
                    "seed": args.seed,
                    "n_jobs": args.n_jobs,
                    "backend": args.backend,
                },
            )
            print(f"trace: {path}")
        else:
            record = run_algorithm(algorithm, dataset)
        print(performance_table([record], title=str(dataset)))
        if record.partition is not None:
            print(f"partition: {record.partition}")
    elif args.command == "leaderboard":
        from repro.evaluation.leaderboard import leaderboard

        dataset = load(args.dataset, seed=args.seed, scale=args.scale)
        config = _config_from_args(args)
        if args.trace is not None:
            from repro.observability import SpanTracer, activate, write_trace

            tracer = SpanTracer()
            with activate(tracer):
                entries = leaderboard(
                    dataset, include_tdac=not args.no_tdac, config=config
                )
            path = write_trace(
                args.trace,
                tracer,
                context={"command": "leaderboard", "dataset": args.dataset},
            )
            print(f"trace: {path}")
        else:
            entries = leaderboard(
                dataset, include_tdac=not args.no_tdac, config=config
            )
        from repro.evaluation.tables import PERFORMANCE_HEADER

        print(
            format_table(
                ("Rank",) + PERFORMANCE_HEADER,
                [entry.as_row() for entry in entries],
                title=f"Leaderboard: {dataset}",
            )
        )
    elif args.command == "serve":
        from repro.serving import (
            PartitionCache,
            ServiceConfig,
            TruthService,
            run_smoke,
            serve_jsonl,
        )

        if args.smoke:
            return run_smoke(args.algorithm, seed=args.seed)
        tracer = None
        if args.trace is not None:
            from repro.observability import SpanTracer

            tracer = SpanTracer()
        service_config = ServiceConfig(
            refit=args.refit,
            max_batch_size=args.max_batch_size,
            max_wait_ms=args.max_wait_ms,
            queue_capacity=args.queue_capacity,
            snapshot_every=args.snapshot_every,
            drain_timeout=args.drain_timeout,
            idle_timeout=args.idle_timeout,
            max_inflight_per_connection=args.max_inflight,
            max_line_bytes=args.max_line_bytes,
        )
        tenants = (
            [name for name in args.tenants.split(",") if name]
            if args.tenants is not None
            else []
        )
        store = None
        if args.store_dir is not None and args.shards <= 1 and not tenants:
            from repro.store import TruthStore

            store = TruthStore(args.store_dir)
        if store is not None and not store.is_empty():
            # Non-empty store: the durable state wins over the dataset
            # flags; resume exactly where the previous process stopped.
            print(
                f"resuming from store {args.store_dir}", file=sys.stderr
            )
            service = TruthService.restore(
                store,
                partition_cache=PartitionCache(),
                tracer=tracer,
                service_config=service_config,
            )
        elif tenants:
            from repro.serving import TenantRegistry

            dataset = load(args.dataset, seed=args.seed, scale=args.scale)
            config = _config_from_args(args)
            registry = TenantRegistry(
                store_root=args.store_dir,
                tracer=tracer,
                n_shards=max(1, args.shards),
                service_config=service_config,
            )
            for name in tenants:
                registry.register(
                    name,
                    create(args.algorithm),
                    dataset,
                    config=config,
                    quota=args.tenant_quota,
                )
            service = registry
        elif args.shards > 1:
            from repro.serving import ShardRouter

            dataset = load(args.dataset, seed=args.seed, scale=args.scale)
            service = ShardRouter(
                create(args.algorithm),
                dataset,
                n_shards=args.shards,
                config=_config_from_args(args),
                service_config=service_config,
                partition_cache=PartitionCache(),
                tracer=tracer,
                store=args.store_dir,
            )
            service.start()
        else:
            dataset = load(args.dataset, seed=args.seed, scale=args.scale)
            service = TruthService(
                create(args.algorithm),
                dataset,
                config=_config_from_args(args),
                service_config=service_config,
                partition_cache=PartitionCache(),
                tracer=tracer,
                store=store,
            )
            service.start()
        try:
            if args.listen is not None:
                from repro.serving import serve_network

                code = serve_network(
                    service,
                    args.listen,
                    announce=sys.stdout,
                )
            else:
                code = serve_jsonl(service, sys.stdin, sys.stdout)
        finally:
            # Idempotent: serve_network's graceful drain already stopped
            # the service; this covers the stdin path and error exits.
            service.stop()
        if tracer is not None:
            from repro.observability import write_trace

            path = write_trace(
                args.trace,
                tracer,
                context={
                    "command": "serve",
                    "algorithm": args.algorithm,
                    "dataset": args.dataset,
                    "refit": args.refit,
                },
            )
            print(f"trace: {path}", file=sys.stderr)
        return code
    elif args.command == "store":
        import json

        from repro.store import TruthStore

        store = TruthStore(args.store_dir)
        if args.store_command == "inspect":
            print(json.dumps(store.inspect(), indent=2, sort_keys=True))
        elif args.store_command == "compact":
            outcome = store.compact()
            print(json.dumps(outcome, indent=2, sort_keys=True))
        elif args.store_command == "recover":
            from repro.serving import TruthService

            base = (
                None if args.algorithm is None else create(args.algorithm)
            )
            service = TruthService.restore(store, base)
            recovery_stats = service.stats
            service.stop()
            print(
                json.dumps(
                    {
                        "version": recovery_stats["version"],
                        "watermark": recovery_stats["watermark"],
                        "store": recovery_stats["store"],
                    },
                    indent=2,
                    sort_keys=True,
                )
            )
    elif args.command == "scenarios":
        from dataclasses import asdict

        from repro.scenarios import (
            LEADERBOARD_HEADER,
            degradation_leaderboard,
            degradation_sweep,
        )

        dataset = load(args.dataset, seed=args.seed, scale=args.scale)
        sweep_result = degradation_sweep(
            dataset,
            scenarios=tuple(s for s in args.scenarios.split(",") if s),
            severities=tuple(
                float(v) for v in args.severities.split(",") if v
            ),
            algorithms=tuple(a for a in args.algorithms.split(",") if a),
            seed=args.seed,
            config=_config_from_args(args),
        )
        if args.json:
            import json

            payload = {
                "schema": "tdac-degradation/v1",
                "dataset": sweep_result.dataset,
                "records": [asdict(r) for r in sweep_result.records],
                "skipped": [asdict(s) for s in sweep_result.skipped],
                "configs": [
                    dict(asdict(c), fingerprint=c.fingerprint)
                    for c in sweep_result.configs
                ],
                "leaderboard": [
                    asdict(row)
                    for row in degradation_leaderboard(sweep_result)
                ],
            }
            print(json.dumps(payload, sort_keys=True))
            return 0
        print(
            format_table(
                ("Scenario", "Severity", "Algorithm", "A", "F1", "FactA"),
                [r.as_row() for r in sweep_result.records],
                title=f"Degradation sweep: {dataset.name}",
            )
        )
        print(
            format_table(
                LEADERBOARD_HEADER,
                [row.as_row() for row in degradation_leaderboard(sweep_result)],
                title="Degradation leaderboard (smallest drop first)",
            )
        )
        for skip in sweep_result.skipped:
            print(f"skipped {skip.algorithm}: {skip.reason}")
    elif args.command == "report":
        from repro.evaluation.report import write_report

        path = write_report(args.output_dir, args.destination)
        print(f"wrote {path}")
    elif args.command == "datasets":
        for name in available_datasets():
            print(name)
    elif args.command == "algorithms":
        for name in algorithm_registry.available():
            print(name)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
