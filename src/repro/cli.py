"""Command-line interface: regenerate paper artefacts from the shell.

Examples
--------
::

    python -m repro table4 DS1 --scale 0.1
    python -m repro table5 DS2
    python -m repro table8
    python -m repro table9 "Exam 62"
    python -m repro run Accu DS1 --scale 0.05
    python -m repro run TDAC+Accu DS1 --scale 0.05 --trace trace.json
    python -m repro datasets
    python -m repro algorithms

Every subcommand prints a paper-style ASCII table to stdout.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro import algorithms as algorithm_registry
from repro.algorithms import create
from repro.core import TDAC
from repro.datasets import available as available_datasets
from repro.datasets import load
from repro.evaluation import (
    format_table,
    performance_table,
    run_algorithm,
    semi_synthetic_experiment,
    table4_experiment,
    table5_experiment,
    table8_experiment,
    table9_experiment,
)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="TD-AC reproduction: regenerate the paper's tables.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    table4 = sub.add_parser("table4", help="Tables 4a-4c (synthetic)")
    table4.add_argument("dataset", choices=["DS1", "DS2", "DS3"])
    table4.add_argument("--scale", type=float, default=0.1)
    table4.add_argument(
        "--brute-scale",
        type=float,
        default=None,
        help="scale for the AccuGenPartition rows (omit to skip them)",
    )

    table5 = sub.add_parser("table5", help="Table 5 (chosen partitions)")
    table5.add_argument("dataset", choices=["DS1", "DS2", "DS3"])
    table5.add_argument("--scale", type=float, default=0.05)

    table67 = sub.add_parser("table6", help="Tables 6/7 (semi-synthetic)")
    table67.add_argument("attributes", type=int, choices=[62, 124])
    table67.add_argument("range_size", type=int)

    sub.add_parser("table8", help="Table 8 (real-data statistics)")

    table9 = sub.add_parser("table9", help="Table 9 (real data)")
    table9.add_argument("dataset")

    run = sub.add_parser("run", help="run one algorithm on one dataset")
    run.add_argument("algorithm", help="algorithm name, or TDAC+<base>")
    run.add_argument("dataset")
    run.add_argument("--scale", type=float, default=1.0)
    run.add_argument("--seed", type=int, default=0)
    run.add_argument(
        "--n-jobs",
        type=int,
        default=1,
        help="workers for TD-AC's k-sweep and per-block passes (TDAC+ only)",
    )
    run.add_argument(
        "--backend",
        choices=["threads", "processes"],
        default="threads",
        help="executor kind behind --n-jobs (TDAC+ only)",
    )
    run.add_argument(
        "--sparse",
        choices=["auto", "always", "never"],
        default="auto",
        help="CSR vs dense distance kernels for TD-AC (TDAC+ only)",
    )
    run.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="write a per-stage span report (JSON) of the run to PATH",
    )
    run.add_argument(
        "--task-retries",
        type=int,
        default=1,
        help="retries per failed worker task before sequential fallback "
        "(TDAC+ only)",
    )
    run.add_argument(
        "--task-timeout",
        type=float,
        default=None,
        help="per-task timeout in seconds; a timeout counts as a task "
        "failure (TDAC+ only)",
    )

    board = sub.add_parser(
        "leaderboard", help="rank every algorithm on one dataset"
    )
    board.add_argument("dataset")
    board.add_argument("--scale", type=float, default=1.0)
    board.add_argument("--seed", type=int, default=0)
    board.add_argument(
        "--no-tdac", action="store_true", help="skip the TD-AC-wrapped rows"
    )

    sub.add_parser("datasets", help="list available datasets")
    sub.add_parser("algorithms", help="list available algorithms")

    report = sub.add_parser(
        "report", help="assemble benchmarks/output into one markdown file"
    )
    report.add_argument("--output-dir", default="benchmarks/output")
    report.add_argument("--destination", default="EXPERIMENTS_MEASURED.md")
    return parser


def _make_algorithm(
    name: str,
    seed: int,
    n_jobs: int = 1,
    backend: str = "threads",
    sparse: str = "auto",
    task_retries: int = 1,
    task_timeout: float | None = None,
):
    if name.upper().startswith("TDAC+"):
        from repro.execution import ExecutionPolicy

        base = create(name[5:])
        sparse_mode = {"auto": "auto", "always": True, "never": False}[sparse]
        policy = ExecutionPolicy(
            max_retries=task_retries, timeout_seconds=task_timeout
        )
        return TDAC(
            base,
            seed=seed,
            n_jobs=n_jobs,
            backend=backend,
            sparse=sparse_mode,
            execution_policy=policy,
        )
    return create(name)


def main(argv: Sequence[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)

    if args.command == "table4":
        records = table4_experiment(
            args.dataset, scale=args.scale, gen_partition_scale=args.brute_scale
        )
        print(performance_table(records, title=f"Table 4 ({args.dataset})"))
    elif args.command == "table5":
        rows = table5_experiment(args.dataset, scale=args.scale)
        print(
            format_table(
                ["Approach", "Dataset", "Partition"],
                [r.as_row() for r in rows],
                title=f"Table 5 ({args.dataset})",
            )
        )
    elif args.command == "table6":
        records = semi_synthetic_experiment(args.attributes, args.range_size)
        title = "Table 6" if args.attributes == 62 else "Table 7"
        print(
            performance_table(
                records, title=f"{title} (Range {args.range_size})"
            )
        )
    elif args.command == "table8":
        stats = table8_experiment()
        print(
            format_table(
                [
                    "Dataset",
                    "Sources",
                    "Objects",
                    "Attributes",
                    "Observations",
                    "DCR (%)",
                ],
                [s.as_row() for s in stats],
                title="Table 8",
            )
        )
    elif args.command == "table9":
        records = table9_experiment(args.dataset)
        print(performance_table(records, title=f"Table 9 ({args.dataset})"))
    elif args.command == "run":
        dataset = load(args.dataset, seed=args.seed, scale=args.scale)
        algorithm = _make_algorithm(
            args.algorithm,
            args.seed,
            n_jobs=args.n_jobs,
            backend=args.backend,
            sparse=args.sparse,
            task_retries=args.task_retries,
            task_timeout=args.task_timeout,
        )
        if args.trace is not None:
            from repro.metrics.timing import Timer
            from repro.observability import SpanTracer, write_trace

            tracer = SpanTracer()
            with Timer() as timer:
                record = run_algorithm(algorithm, dataset, tracer=tracer)
            path = write_trace(
                args.trace,
                tracer,
                total_seconds=timer.elapsed,
                context={
                    "algorithm": args.algorithm,
                    "dataset": args.dataset,
                    "scale": args.scale,
                    "seed": args.seed,
                    "n_jobs": args.n_jobs,
                    "backend": args.backend,
                },
            )
            print(f"trace: {path}")
        else:
            record = run_algorithm(algorithm, dataset)
        print(performance_table([record], title=str(dataset)))
        if record.partition is not None:
            print(f"partition: {record.partition}")
    elif args.command == "leaderboard":
        from repro.evaluation.leaderboard import leaderboard

        dataset = load(args.dataset, seed=args.seed, scale=args.scale)
        entries = leaderboard(
            dataset, include_tdac=not args.no_tdac, seed=args.seed
        )
        from repro.evaluation.tables import PERFORMANCE_HEADER

        print(
            format_table(
                ("Rank",) + PERFORMANCE_HEADER,
                [entry.as_row() for entry in entries],
                title=f"Leaderboard: {dataset}",
            )
        )
    elif args.command == "report":
        from repro.evaluation.report import write_report

        path = write_report(args.output_dir, args.destination)
        print(f"wrote {path}")
    elif args.command == "datasets":
        for name in available_datasets():
            print(name)
    elif args.command == "algorithms":
        for name in algorithm_registry.available():
            print(name)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
