"""The :class:`Dataset` container: sources, objects, attributes and claims.

A :class:`Dataset` is the immutable input of every truth discovery
algorithm in this library.  It stores the triplet ``(S, A, O)`` of the
paper together with the observed claims and, optionally, a (possibly
partial) ground truth used only for evaluation.

Construction normally goes through :class:`repro.data.builder.DatasetBuilder`
or one of the generators in :mod:`repro.datasets`; the constructor here
validates the raw dictionaries and freezes them.
"""

from __future__ import annotations

import hashlib
from functools import cached_property
from types import MappingProxyType
from typing import Iterable, Iterator, Mapping

from repro.data.types import (
    CATEGORICAL,
    AttributeId,
    Claim,
    DataError,
    Fact,
    ObjectId,
    SourceId,
    Value,
    validate_attribute_type,
)


class Dataset:
    """An immutable multi-source claim dataset in the one-truth setting.

    Parameters
    ----------
    sources:
        Identifiers of the data sources, in a stable order.
    objects:
        Identifiers of the real-world objects.
    attributes:
        Identifiers of the data attributes, in a stable order.  Attribute
        order matters: truth vectors and partitions index attributes by
        this order.
    claims:
        Mapping from ``(source, object, attribute)`` to the claimed value.
        A source claims at most one value per fact (one-truth setting);
        facts a source does not cover are simply absent.
    truth:
        Optional mapping from ``(object, attribute)`` to the true value,
        used for evaluation only.  May be partial.
    name:
        Optional human-readable dataset name used in reports.
    attribute_types:
        Optional mapping from attribute to one of
        :data:`repro.data.types.ATTRIBUTE_TYPES`.  Attributes absent from
        the mapping are ``"categorical"``; only non-default entries are
        stored (and hashed), so an all-categorical dataset keeps the
        fingerprint it had before type tags existed.
    """

    def __init__(
        self,
        sources: Iterable[SourceId],
        objects: Iterable[ObjectId],
        attributes: Iterable[AttributeId],
        claims: Mapping[tuple[SourceId, ObjectId, AttributeId], Value],
        truth: Mapping[tuple[ObjectId, AttributeId], Value] | None = None,
        name: str = "dataset",
        attribute_types: Mapping[AttributeId, str] | None = None,
    ) -> None:
        self._sources = tuple(sources)
        self._objects = tuple(objects)
        self._attributes = tuple(attributes)
        self._name = name
        _check_unique("source", self._sources)
        _check_unique("object", self._objects)
        _check_unique("attribute", self._attributes)
        source_set = set(self._sources)
        object_set = set(self._objects)
        attribute_set = set(self._attributes)
        for (s, o, a) in claims:
            if s not in source_set:
                raise DataError(f"claim references unknown source {s!r}")
            if o not in object_set:
                raise DataError(f"claim references unknown object {o!r}")
            if a not in attribute_set:
                raise DataError(f"claim references unknown attribute {a!r}")
        self._claims = dict(claims)
        truth = dict(truth or {})
        for (o, a) in truth:
            if o not in object_set or a not in attribute_set:
                raise DataError(
                    f"ground truth references unknown fact ({o!r}, {a!r})"
                )
        self._truth = truth
        types: dict[AttributeId, str] = {}
        for a, kind in (attribute_types or {}).items():
            if a not in attribute_set:
                raise DataError(f"attribute type for unknown attribute {a!r}")
            if validate_attribute_type(kind) != CATEGORICAL:
                types[a] = kind
        self._attribute_types = types

    # ------------------------------------------------------------------
    # Identity and size
    # ------------------------------------------------------------------

    @property
    def name(self) -> str:
        """Human-readable dataset name."""
        return self._name

    @property
    def sources(self) -> tuple[SourceId, ...]:
        """All source identifiers, in construction order."""
        return self._sources

    @property
    def objects(self) -> tuple[ObjectId, ...]:
        """All object identifiers, in construction order."""
        return self._objects

    @property
    def attributes(self) -> tuple[AttributeId, ...]:
        """All attribute identifiers, in construction order."""
        return self._attributes

    @property
    def n_claims(self) -> int:
        """Total number of observations (claims)."""
        return len(self._claims)

    def __len__(self) -> int:
        return len(self._claims)

    # ------------------------------------------------------------------
    # Attribute types
    # ------------------------------------------------------------------

    def attribute_type(self, attribute: AttributeId) -> str:
        """Value family of ``attribute`` (``"categorical"`` by default)."""
        return self._attribute_types.get(attribute, CATEGORICAL)

    @property
    def attribute_types(self) -> Mapping[AttributeId, str]:
        """Type of every attribute, defaults included."""
        return {
            a: self._attribute_types.get(a, CATEGORICAL)
            for a in self._attributes
        }

    @property
    def has_typed_attributes(self) -> bool:
        """Whether any attribute is non-categorical."""
        return bool(self._attribute_types)

    def attributes_of_type(self, kind: str) -> tuple[AttributeId, ...]:
        """Attributes whose value family is ``kind``, in attribute order."""
        validate_attribute_type(kind)
        return tuple(
            a
            for a in self._attributes
            if self._attribute_types.get(a, CATEGORICAL) == kind
        )

    @cached_property
    def fingerprint(self) -> str:
        """Stable content digest of the dataset's discovery-relevant state.

        Covers the source / object / attribute identifier tuples (order
        included — attribute order shapes truth vectors) and every claim;
        the display name and the evaluation-only ground truth are
        excluded, so renaming or re-annotating a dataset does not change
        its identity.  Used as the dataset half of partition-cache and
        serving-snapshot keys.
        """
        hasher = hashlib.sha256()
        for part in (self._sources, self._objects, self._attributes):
            hasher.update(repr(part).encode("utf-8"))
            hasher.update(b"\x1e")
        for key in sorted(self._claims, key=repr):
            hasher.update(repr((key, self._claims[key])).encode("utf-8"))
            hasher.update(b"\x1f")
        if self._attribute_types:
            # Hashed only when some attribute is non-categorical, so every
            # dataset that predates type tags keeps its fingerprint.
            hasher.update(b"\x1dtypes")
            hasher.update(
                repr(sorted(self._attribute_types.items())).encode("utf-8")
            )
        return hasher.hexdigest()

    def __repr__(self) -> str:
        return (
            f"Dataset({self._name!r}, sources={len(self._sources)}, "
            f"objects={len(self._objects)}, "
            f"attributes={len(self._attributes)}, claims={len(self._claims)})"
        )

    # ------------------------------------------------------------------
    # Claim access
    # ------------------------------------------------------------------

    def value(
        self, source: SourceId, obj: ObjectId, attribute: AttributeId
    ) -> Value | None:
        """The value ``source`` claims for ``(obj, attribute)``, or None."""
        return self._claims.get((source, obj, attribute))

    def iter_claims(self) -> Iterator[Claim]:
        """Iterate over every claim in the dataset."""
        for (s, o, a), v in self._claims.items():
            yield Claim(s, o, a, v)

    @property
    def claims(self) -> Mapping[tuple[SourceId, ObjectId, AttributeId], Value]:
        """Read-only view of the raw claim mapping.

        Hot paths (truth-vector construction, claim counting) iterate
        this directly: one dict traversal, no per-claim :class:`Claim`
        allocation.
        """
        return MappingProxyType(self._claims)

    @cached_property
    def facts(self) -> tuple[Fact, ...]:
        """All facts covered by at least one claim, in a stable order.

        Order is object-major then attribute order, which keeps derived
        matrices reproducible.
        """
        covered = {(o, a) for (_, o, a) in self._claims}
        attr_rank = {a: i for i, a in enumerate(self._attributes)}
        obj_rank = {o: i for i, o in enumerate(self._objects)}
        ordered = sorted(covered, key=lambda f: (obj_rank[f[0]], attr_rank[f[1]]))
        return tuple(Fact(o, a) for o, a in ordered)

    @cached_property
    def claims_by_fact(self) -> Mapping[Fact, tuple[Claim, ...]]:
        """Claims grouped by fact, each group in source order."""
        groups: dict[Fact, list[Claim]] = {}
        for (s, o, a), v in self._claims.items():
            groups.setdefault(Fact(o, a), []).append(Claim(s, o, a, v))
        source_rank = {s: i for i, s in enumerate(self._sources)}
        return {
            fact: tuple(sorted(cs, key=lambda c: source_rank[c.source]))
            for fact, cs in groups.items()
        }

    @cached_property
    def claims_by_source(self) -> Mapping[SourceId, tuple[Claim, ...]]:
        """Claims grouped by source."""
        groups: dict[SourceId, list[Claim]] = {s: [] for s in self._sources}
        for (s, o, a), v in self._claims.items():
            groups[s].append(Claim(s, o, a, v))
        return {s: tuple(cs) for s, cs in groups.items()}

    def sources_for(self, fact: Fact) -> tuple[SourceId, ...]:
        """Sources claiming a value for ``fact`` (the paper's ``S_o``)."""
        return tuple(c.source for c in self.claims_by_fact.get(fact, ()))

    def values_for(self, fact: Fact) -> tuple[Value, ...]:
        """Distinct claimed values for ``fact`` (the paper's ``V_{o-a}``).

        Order of first appearance in source order, so it is deterministic.
        """
        seen: dict[Value, None] = {}
        for claim in self.claims_by_fact.get(fact, ()):
            seen.setdefault(claim.value)
        return tuple(seen)

    # ------------------------------------------------------------------
    # Ground truth
    # ------------------------------------------------------------------

    @property
    def truth(self) -> Mapping[tuple[ObjectId, AttributeId], Value]:
        """The (possibly partial) ground truth mapping."""
        return dict(self._truth)

    @property
    def has_truth(self) -> bool:
        """Whether any ground truth is attached."""
        return bool(self._truth)

    def true_value(self, fact: Fact) -> Value | None:
        """Ground-truth value of ``fact`` if known, else None."""
        return self._truth.get((fact.object, fact.attribute))

    # ------------------------------------------------------------------
    # Restriction (Algorithm 1's ``getData(g)``)
    # ------------------------------------------------------------------

    def restrict_attributes(self, attributes: Iterable[AttributeId]) -> "Dataset":
        """Project the dataset onto a subset of attributes.

        This is ``getData(g)`` in Algorithm 1 of the paper: the block
        dataset on which the base algorithm runs.  Sources and objects are
        kept (sources with no remaining claim still participate so that
        source indices stay aligned across blocks).
        """
        keep = set(attributes)
        unknown = keep - set(self._attributes)
        if unknown:
            raise DataError(f"unknown attributes in restriction: {sorted(map(str, unknown))}")
        ordered = tuple(a for a in self._attributes if a in keep)
        claims = {
            key: v for key, v in self._claims.items() if key[2] in keep
        }
        truth = {
            key: v for key, v in self._truth.items() if key[1] in keep
        }
        return Dataset(
            self._sources,
            self._objects,
            ordered,
            claims,
            truth,
            name=f"{self._name}|{len(ordered)}attrs",
            attribute_types={
                a: t for a, t in self._attribute_types.items() if a in keep
            },
        )

    def extended(self, claims: Iterable[Claim]) -> "Dataset":
        """Return this dataset plus ``claims``, without replaying history.

        The append-only growth path of the streaming engines: only the
        new claims are validated (a source contradicting its own earlier
        value raises :class:`DataError`; re-asserting the same value is a
        no-op), and new identifiers append to the source / object /
        attribute tuples in claim order — exactly the order a
        :class:`~repro.data.builder.DatasetBuilder` replay of
        ``old claims + new claims`` would produce.  The result is
        therefore fingerprint-identical to the historical full rebuild
        (``tests/test_incremental_exact.py`` pins this) at O(batch)
        instead of O(corpus) cost.

        Returns ``self`` unchanged when every claim is a duplicate.
        """
        batch = list(claims)
        if not batch:
            return self
        merged = dict(self._claims)
        sources = dict.fromkeys(self._sources)
        objects = dict.fromkeys(self._objects)
        attributes = dict.fromkeys(self._attributes)
        changed = False
        for claim in batch:
            key = (claim.source, claim.object, claim.attribute)
            existing = merged.get(key)
            if existing is not None:
                if existing != claim.value:
                    raise DataError(
                        f"source {claim.source!r} claims two values for "
                        f"({claim.object!r}, {claim.attribute!r}): "
                        f"{existing!r} and {claim.value!r}"
                    )
                continue
            sources.setdefault(claim.source)
            objects.setdefault(claim.object)
            attributes.setdefault(claim.attribute)
            merged[key] = claim.value
            changed = True
        if not changed:
            return self
        extended = object.__new__(Dataset)
        extended._sources = tuple(sources)
        extended._objects = tuple(objects)
        extended._attributes = tuple(attributes)
        extended._name = self._name
        extended._claims = merged
        extended._truth = dict(self._truth)
        extended._attribute_types = dict(self._attribute_types)
        return extended

    def restrict_sources(self, sources: Iterable[SourceId]) -> "Dataset":
        """Project the dataset onto a subset of sources."""
        keep = set(sources)
        unknown = keep - set(self._sources)
        if unknown:
            raise DataError(f"unknown sources in restriction: {sorted(map(str, unknown))}")
        ordered = tuple(s for s in self._sources if s in keep)
        claims = {
            key: v for key, v in self._claims.items() if key[0] in keep
        }
        return Dataset(
            ordered,
            self._objects,
            self._attributes,
            claims,
            self._truth,
            name=f"{self._name}|{len(ordered)}sources",
            attribute_types=self._attribute_types,
        )

    def with_truth(
        self, truth: Mapping[tuple[ObjectId, AttributeId], Value]
    ) -> "Dataset":
        """Return a copy of the dataset with ``truth`` attached."""
        return Dataset(
            self._sources,
            self._objects,
            self._attributes,
            self._claims,
            truth,
            name=self._name,
            attribute_types=self._attribute_types,
        )

    def renamed(self, name: str) -> "Dataset":
        """Return a copy of the dataset with a new display name."""
        return Dataset(
            self._sources,
            self._objects,
            self._attributes,
            self._claims,
            self._truth,
            name=name,
            attribute_types=self._attribute_types,
        )


def _check_unique(kind: str, items: tuple) -> None:
    if len(set(items)) != len(items):
        raise DataError(f"duplicate {kind} identifiers in dataset")
