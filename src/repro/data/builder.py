"""Incremental construction of :class:`~repro.data.dataset.Dataset` objects.

The builder collects claims one at a time (or in bulk), infers the source /
object / attribute universes from what it sees unless they are declared
up front, and validates the one-truth constraint (a source cannot claim
two different values for the same fact).
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.data.dataset import Dataset
from repro.data.types import (
    AttributeId,
    Claim,
    DataError,
    ObjectId,
    SourceId,
    Value,
    validate_attribute_type,
)


class DatasetBuilder:
    """Mutable accumulator that produces an immutable :class:`Dataset`.

    Example
    -------
    >>> builder = DatasetBuilder(name="demo")
    >>> builder.add_claim("s1", "o1", "a1", 42)
    >>> builder.set_truth("o1", "a1", 42)
    >>> dataset = builder.build()
    >>> dataset.n_claims
    1
    """

    def __init__(self, name: str = "dataset") -> None:
        self._name = name
        self._sources: dict[SourceId, None] = {}
        self._objects: dict[ObjectId, None] = {}
        self._attributes: dict[AttributeId, None] = {}
        self._claims: dict[tuple[SourceId, ObjectId, AttributeId], Value] = {}
        self._truth: dict[tuple[ObjectId, AttributeId], Value] = {}
        self._attribute_types: dict[AttributeId, str] = {}

    # ------------------------------------------------------------------
    # Universe declaration (optional; fixes ordering)
    # ------------------------------------------------------------------

    def declare_sources(self, sources: Iterable[SourceId]) -> "DatasetBuilder":
        """Pre-declare sources to fix their order in the built dataset."""
        for s in sources:
            self._sources.setdefault(s)
        return self

    def declare_objects(self, objects: Iterable[ObjectId]) -> "DatasetBuilder":
        """Pre-declare objects to fix their order in the built dataset."""
        for o in objects:
            self._objects.setdefault(o)
        return self

    def declare_attributes(
        self, attributes: Iterable[AttributeId]
    ) -> "DatasetBuilder":
        """Pre-declare attributes to fix their order in the built dataset."""
        for a in attributes:
            self._attributes.setdefault(a)
        return self

    def set_attribute_type(
        self, attribute: AttributeId, kind: str
    ) -> "DatasetBuilder":
        """Tag ``attribute`` with a value family (categorical by default)."""
        validate_attribute_type(kind)
        self._attributes.setdefault(attribute)
        self._attribute_types[attribute] = kind
        return self

    def declare_attribute_types(
        self, types: Mapping[AttributeId, str]
    ) -> "DatasetBuilder":
        """Bulk :meth:`set_attribute_type`."""
        for a, kind in types.items():
            self.set_attribute_type(a, kind)
        return self

    # ------------------------------------------------------------------
    # Claims and truth
    # ------------------------------------------------------------------

    def add_claim(
        self,
        source: SourceId,
        obj: ObjectId,
        attribute: AttributeId,
        value: Value,
    ) -> "DatasetBuilder":
        """Record that ``source`` claims ``value`` for ``(obj, attribute)``.

        Raises :class:`DataError` if the source already claimed a
        *different* value for the same fact; re-adding the same value is a
        harmless no-op.
        """
        key = (source, obj, attribute)
        existing = self._claims.get(key)
        if existing is not None and existing != value:
            raise DataError(
                f"source {source!r} claims two values for "
                f"({obj!r}, {attribute!r}): {existing!r} and {value!r}"
            )
        self._sources.setdefault(source)
        self._objects.setdefault(obj)
        self._attributes.setdefault(attribute)
        self._claims[key] = value
        return self

    def add_claims(self, claims: Iterable[Claim]) -> "DatasetBuilder":
        """Bulk :meth:`add_claim` from :class:`Claim` records."""
        for claim in claims:
            self.add_claim(claim.source, claim.object, claim.attribute, claim.value)
        return self

    def set_truth(
        self, obj: ObjectId, attribute: AttributeId, value: Value
    ) -> "DatasetBuilder":
        """Record the ground-truth value of ``(obj, attribute)``."""
        self._objects.setdefault(obj)
        self._attributes.setdefault(attribute)
        self._truth[(obj, attribute)] = value
        return self

    def set_truths(
        self, truth: Mapping[tuple[ObjectId, AttributeId], Value]
    ) -> "DatasetBuilder":
        """Bulk :meth:`set_truth`."""
        for (o, a), v in truth.items():
            self.set_truth(o, a, v)
        return self

    # ------------------------------------------------------------------
    # Build
    # ------------------------------------------------------------------

    @property
    def n_claims(self) -> int:
        """Number of claims recorded so far."""
        return len(self._claims)

    def build(self) -> Dataset:
        """Freeze the accumulated data into an immutable :class:`Dataset`."""
        if not self._claims:
            raise DataError("cannot build a dataset with no claims")
        return Dataset(
            tuple(self._sources),
            tuple(self._objects),
            tuple(self._attributes),
            self._claims,
            self._truth,
            name=self._name,
            attribute_types=self._attribute_types,
        )
