"""Data model for multi-source claim datasets (the paper's (S, A, O) triplet).

Public surface:

* :class:`~repro.data.types.Claim`, :class:`~repro.data.types.Fact` — value
  types;
* :class:`~repro.data.dataset.Dataset` — immutable claim container;
* :class:`~repro.data.builder.DatasetBuilder` — incremental construction;
* :class:`~repro.data.index.DatasetIndex` — compiled numeric view used by
  the algorithm engine;
* :func:`~repro.data.stats.data_coverage_rate` and
  :func:`~repro.data.stats.dataset_stats` — Table 8 statistics;
* :mod:`~repro.data.io` — JSON / CSV serialisation;
* :func:`~repro.data.validation.validate_dataset` — integrity checks.
"""

from repro.data.builder import DatasetBuilder
from repro.data.claim_engine import ClaimIndexEngine
from repro.data.dataset import Dataset
from repro.data.index import DatasetIndex
from repro.data.io import (
    dataset_from_dict,
    dataset_to_dict,
    load_claims_jsonl,
    load_csv,
    load_json,
    save_claims_csv,
    save_claims_jsonl,
    save_json,
    save_truth_csv,
)
from repro.data.normalize import (
    NormalizationReport,
    UnionFind,
    canonicalize_fact_values,
    normalize_dataset,
)
from repro.data.sampling import sample_objects, sample_sources, thin_coverage
from repro.data.stats import DatasetStats, data_coverage_rate, dataset_stats
from repro.data.types import (
    ATTRIBUTE_TYPES,
    CATEGORICAL,
    CONTINUOUS,
    MULTI,
    AttributeId,
    Claim,
    DataError,
    Fact,
    GroundTruthError,
    ObjectId,
    SourceId,
    Value,
    validate_attribute_type,
)
from repro.data.validation import Finding, check_dataset, validate_dataset

__all__ = [
    "ATTRIBUTE_TYPES",
    "CATEGORICAL",
    "CONTINUOUS",
    "MULTI",
    "AttributeId",
    "Claim",
    "ClaimIndexEngine",
    "DataError",
    "Dataset",
    "DatasetBuilder",
    "DatasetIndex",
    "DatasetStats",
    "Fact",
    "Finding",
    "GroundTruthError",
    "NormalizationReport",
    "ObjectId",
    "SourceId",
    "Value",
    "UnionFind",
    "canonicalize_fact_values",
    "check_dataset",
    "data_coverage_rate",
    "dataset_from_dict",
    "dataset_stats",
    "dataset_to_dict",
    "load_claims_jsonl",
    "load_csv",
    "load_json",
    "normalize_dataset",
    "sample_objects",
    "sample_sources",
    "save_claims_csv",
    "save_claims_jsonl",
    "save_json",
    "save_truth_csv",
    "thin_coverage",
    "validate_attribute_type",
    "validate_dataset",
]
