"""Integrity checks over datasets.

:func:`validate_dataset` returns a list of human-readable findings (empty
when the dataset is clean) instead of raising, so callers can decide which
findings are fatal in their context.  :func:`check_dataset` is the raising
variant used by pipelines that require a clean input.
"""

from __future__ import annotations

from dataclasses import dataclass

from numbers import Real

from repro.data.dataset import Dataset
from repro.data.types import CONTINUOUS, MULTI, DataError


@dataclass(frozen=True, slots=True)
class Finding:
    """One validation finding with a severity and a message."""

    severity: str  # "error" or "warning"
    message: str

    def __str__(self) -> str:
        return f"[{self.severity}] {self.message}"


def validate_dataset(dataset: Dataset) -> list[Finding]:
    """Check structural invariants of ``dataset``; return findings."""
    findings: list[Finding] = []

    claimed_sources = {c.source for c in dataset.iter_claims()}
    idle = [s for s in dataset.sources if s not in claimed_sources]
    if idle:
        findings.append(
            Finding("warning", f"{len(idle)} source(s) provide no claims")
        )

    covered_attrs = {c.attribute for c in dataset.iter_claims()}
    dark = [a for a in dataset.attributes if a not in covered_attrs]
    if dark:
        findings.append(
            Finding("error", f"{len(dark)} attribute(s) receive no claims")
        )

    covered_objects = {c.object for c in dataset.iter_claims()}
    ghost = [o for o in dataset.objects if o not in covered_objects]
    if ghost:
        findings.append(
            Finding("warning", f"{len(ghost)} object(s) receive no claims")
        )

    single_voice = sum(
        1 for claims in dataset.claims_by_fact.values() if len(claims) < 2
    )
    if single_voice:
        findings.append(
            Finding(
                "warning",
                f"{single_voice} fact(s) have a single claim "
                "(no conflict to resolve)",
            )
        )

    for kind, ok, label in (
        (CONTINUOUS, _is_numeric, "non-numeric"),
        (MULTI, _is_value_tuple, "non-tuple"),
    ):
        attrs = set(dataset.attributes_of_type(kind))
        if not attrs:
            continue
        bad_claims = sum(
            1
            for (_, _, a), v in dataset.claims.items()
            if a in attrs and not ok(v)
        )
        if bad_claims:
            findings.append(
                Finding(
                    "error",
                    f"{bad_claims} claim(s) on {kind} attribute(s) hold "
                    f"{label} values",
                )
            )
        bad_truths = sum(
            1
            for (_, a), v in dataset.truth.items()
            if a in attrs and not ok(v)
        )
        if bad_truths:
            findings.append(
                Finding(
                    "error",
                    f"{bad_truths} ground-truth value(s) on {kind} "
                    f"attribute(s) are {label}",
                )
            )

    if dataset.has_truth:
        truth_keys = set(dataset.truth)
        fact_keys = {(f.object, f.attribute) for f in dataset.facts}
        orphans = truth_keys - fact_keys
        if orphans:
            findings.append(
                Finding(
                    "warning",
                    f"{len(orphans)} ground-truth fact(s) have no claims",
                )
            )
        unclaimed_truths = sum(
            1
            for fact in dataset.facts
            if (truth := dataset.true_value(fact)) is not None
            and truth not in dataset.values_for(fact)
        )
        if unclaimed_truths:
            findings.append(
                Finding(
                    "warning",
                    f"{unclaimed_truths} fact(s) whose true value no source "
                    "claims (unreachable truths)",
                )
            )
    return findings


def _is_numeric(value: object) -> bool:
    return isinstance(value, Real) and not isinstance(value, bool)


def _is_value_tuple(value: object) -> bool:
    # Multi-valued claims/truths must be tuples: frozensets have
    # hash-randomized repr order (breaks fingerprints) and no WAL encoding.
    return isinstance(value, tuple)


def check_dataset(dataset: Dataset) -> None:
    """Raise :class:`DataError` if ``dataset`` has any error-level finding."""
    errors = [f for f in validate_dataset(dataset) if f.severity == "error"]
    if errors:
        raise DataError("; ".join(f.message for f in errors))
