"""Claim normalisation: canonicalise near-identical values per fact.

Real multi-source corpora rarely disagree cleanly: two stock sites
report 10.00 and 10.001, two book sellers list "J. K. Rowling" and
"Rowling, J.K.".  Treating those as distinct candidate values splits
their votes and biases every algorithm toward exact-string cliques, so
deep-web evaluations (Li et al. 2012) normalise values first.

:func:`normalize_dataset` merges, within each fact, every group of
values whose pairwise similarity reaches ``threshold`` (single-linkage,
via union-find) and rewrites the claims with one canonical
representative per group — the value claimed most often, ties broken by
first appearance.  Ground truth is remapped through the same
canonicalisation so evaluation stays consistent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.algorithms.similarity import value_similarity
from repro.data.builder import DatasetBuilder
from repro.data.dataset import Dataset
from repro.data.types import Fact, Value


class UnionFind:
    """Minimal union-find over integer ids with path compression."""

    def __init__(self, size: int) -> None:
        if size < 0:
            raise ValueError("size must be non-negative")
        self._parent = list(range(size))

    def find(self, item: int) -> int:
        """Root of ``item``'s set."""
        root = item
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[item] != root:  # path compression
            self._parent[item], item = root, self._parent[item]
        return root

    def union(self, a: int, b: int) -> None:
        """Merge the sets containing ``a`` and ``b``."""
        root_a, root_b = self.find(a), self.find(b)
        if root_a != root_b:
            # Deterministic: lower root wins.
            low, high = sorted((root_a, root_b))
            self._parent[high] = low

    def groups(self) -> list[list[int]]:
        """All sets, each sorted, ordered by their smallest member."""
        by_root: dict[int, list[int]] = {}
        for item in range(len(self._parent)):
            by_root.setdefault(self.find(item), []).append(item)
        return [by_root[root] for root in sorted(by_root)]


@dataclass(frozen=True)
class NormalizationReport:
    """What :func:`normalize_dataset` changed."""

    n_facts_touched: int
    n_values_merged: int
    canonical_of: Mapping[tuple[Fact, Value], Value] = field(default_factory=dict)


def canonicalize_fact_values(
    values: tuple[Value, ...],
    counts: Mapping[Value, int],
    threshold: float,
) -> dict[Value, Value]:
    """Map each distinct value of one fact to its canonical form."""
    n = len(values)
    uf = UnionFind(n)
    for i in range(n):
        for j in range(i + 1, n):
            if value_similarity(values[i], values[j]) >= threshold:
                uf.union(i, j)
    mapping: dict[Value, Value] = {}
    for group in uf.groups():
        members = [values[i] for i in group]
        canonical = max(members, key=lambda v: (counts.get(v, 0), -members.index(v)))
        for value in members:
            mapping[value] = canonical
    return mapping


def normalize_dataset(
    dataset: Dataset, threshold: float = 0.9
) -> tuple[Dataset, NormalizationReport]:
    """Merge near-identical values per fact; return the new dataset.

    ``threshold`` is the minimum pairwise similarity for two values to be
    considered the same real-world value.  1.0 leaves the dataset
    untouched; lower values merge more aggressively (single linkage, so
    chains of borderline-similar values can coalesce).
    """
    if not 0.0 < threshold <= 1.0:
        raise ValueError("threshold must be in (0, 1]")
    builder = DatasetBuilder(name=f"{dataset.name} (normalised)")
    builder.declare_sources(dataset.sources)
    builder.declare_objects(dataset.objects)
    builder.declare_attributes(dataset.attributes)

    canonical_of: dict[tuple[Fact, Value], Value] = {}
    facts_touched = 0
    values_merged = 0
    for fact, claims in dataset.claims_by_fact.items():
        values = dataset.values_for(fact)
        counts: dict[Value, int] = {}
        for claim in claims:
            counts[claim.value] = counts.get(claim.value, 0) + 1
        mapping = canonicalize_fact_values(values, counts, threshold)
        changed = sum(1 for v, c in mapping.items() if v != c)
        if changed:
            facts_touched += 1
            values_merged += changed
        for value, canonical in mapping.items():
            canonical_of[(fact, value)] = canonical
        for claim in claims:
            canonical = mapping[claim.value]
            existing = builder._claims.get(  # noqa: SLF001 - same package
                (claim.source, claim.object, claim.attribute)
            )
            if existing is None:
                builder.add_claim(
                    claim.source, claim.object, claim.attribute, canonical
                )
    # Remap ground truth through the same canonicalisation.  A truth
    # that was claimed verbatim maps directly; a truth nobody asserted
    # exactly (numeric jitter!) joins the equivalence class of its most
    # similar claimed value, provided it clears the threshold.
    for (obj, attribute), value in dataset.truth.items():
        fact = Fact(obj, attribute)
        canonical = canonical_of.get((fact, value))
        if canonical is None:
            best_value, best_similarity = None, threshold
            for claimed in dataset.values_for(fact):
                similarity = value_similarity(value, claimed)
                if similarity >= best_similarity:
                    best_value, best_similarity = claimed, similarity
            if best_value is not None:
                canonical = canonical_of[(fact, best_value)]
        builder.set_truth(obj, attribute, canonical if canonical is not None else value)
    return builder.build(), NormalizationReport(
        n_facts_touched=facts_touched,
        n_values_merged=values_merged,
        canonical_of=canonical_of,
    )
