"""Compiled numeric view of a :class:`~repro.data.dataset.Dataset`.

Iterative truth discovery algorithms run tens of passes over every claim,
so they operate on flat integer arrays rather than on dictionaries.  A
:class:`DatasetIndex` compiles a dataset once into:

* ``claim_source`` / ``claim_fact`` / ``claim_slot`` — one entry per claim,
  holding the integer id of the claiming source, the claimed fact, and the
  *value slot* (the pair (fact, distinct value)) the claim votes for;
* ``slot_fact`` — the fact id of every value slot, with slots of the same
  fact contiguous, so per-fact reductions are ``np.*.reduceat`` calls over
  ``fact_slot_start`` offsets;
* ``true_slot`` — for every fact, the slot of the ground-truth value if
  some source actually claimed it, else ``-1``.

The segment helpers (:func:`segment_sum`, :func:`segment_max`,
:func:`segment_argmax`, :func:`segment_mean`) implement the per-fact
reductions every algorithm needs (vote totals, soft-max normalisation,
winner selection).
"""

from __future__ import annotations

from functools import cached_property

import numpy as np

from repro.data.dataset import Dataset
from repro.data.types import Fact, Value


def segment_sum(values: np.ndarray, starts: np.ndarray) -> np.ndarray:
    """Sum of ``values`` within each contiguous segment.

    ``starts`` holds the begin offset of every segment plus a final
    sentinel equal to ``len(values)``.
    """
    if len(values) == 0:
        return np.zeros(len(starts) - 1, dtype=float)
    return np.add.reduceat(values, starts[:-1])


def segment_max(values: np.ndarray, starts: np.ndarray) -> np.ndarray:
    """Maximum of ``values`` within each contiguous segment."""
    if len(values) == 0:
        return np.zeros(len(starts) - 1, dtype=float)
    return np.maximum.reduceat(values, starts[:-1])


def segment_argmax(values: np.ndarray, starts: np.ndarray) -> np.ndarray:
    """Index (into ``values``) of the per-segment maximum.

    Ties break toward the lowest index, i.e. the earliest-seen value slot,
    which makes winner selection deterministic.
    """
    n_segments = len(starts) - 1
    out = np.empty(n_segments, dtype=np.int64)
    maxima = segment_max(values, starts)
    is_max = values == np.repeat(maxima, np.diff(starts))
    positions = np.arange(len(values))
    # First position achieving the max in each segment.
    candidates = np.where(is_max, positions, len(values))
    out = np.minimum.reduceat(candidates, starts[:-1]) if len(values) else out
    return out


def segment_mean(values: np.ndarray, starts: np.ndarray) -> np.ndarray:
    """Mean of ``values`` within each contiguous segment."""
    sizes = np.diff(starts)
    sums = segment_sum(values, starts)
    with np.errstate(invalid="ignore", divide="ignore"):
        means = np.where(sizes > 0, sums / np.maximum(sizes, 1), 0.0)
    return means


class DatasetIndex:
    """Flat integer-array view of a dataset for vectorised algorithms."""

    def __init__(self, dataset: Dataset) -> None:
        self._dataset = dataset
        facts = dataset.facts
        self.facts: tuple[Fact, ...] = facts
        self.n_sources = len(dataset.sources)
        self.n_facts = len(facts)
        self._source_id = {s: i for i, s in enumerate(dataset.sources)}

        slot_values: list[Value] = []
        slot_fact: list[int] = []
        fact_slot_start = [0]
        claim_source: list[int] = []
        claim_fact: list[int] = []
        claim_slot: list[int] = []
        true_slot = np.full(self.n_facts, -1, dtype=np.int64)

        by_fact = dataset.claims_by_fact
        for f_id, fact in enumerate(facts):
            claims = by_fact[fact]
            local: dict[Value, int] = {}
            for claim in claims:
                slot = local.get(claim.value)
                if slot is None:
                    slot = len(slot_values)
                    local[claim.value] = slot
                    slot_values.append(claim.value)
                    slot_fact.append(f_id)
                claim_source.append(self._source_id[claim.source])
                claim_fact.append(f_id)
                claim_slot.append(slot)
            fact_slot_start.append(len(slot_values))
            truth = dataset.true_value(fact)
            if truth is not None and truth in local:
                true_slot[f_id] = local[truth]

        self.slot_values: tuple[Value, ...] = tuple(slot_values)
        self.slot_fact = np.asarray(slot_fact, dtype=np.int64)
        self.fact_slot_start = np.asarray(fact_slot_start, dtype=np.int64)
        self.claim_source = np.asarray(claim_source, dtype=np.int64)
        self.claim_fact = np.asarray(claim_fact, dtype=np.int64)
        self.claim_slot = np.asarray(claim_slot, dtype=np.int64)
        self.true_slot = true_slot
        self.n_slots = len(slot_values)
        self.n_claims = len(claim_source)

    @property
    def dataset(self) -> Dataset:
        """The dataset this index was compiled from."""
        return self._dataset

    @cached_property
    def claims_per_source(self) -> np.ndarray:
        """Number of claims made by every source (may contain zeros)."""
        return np.bincount(self.claim_source, minlength=self.n_sources).astype(float)

    @cached_property
    def claims_per_fact(self) -> np.ndarray:
        """Number of claims received by every fact."""
        return np.bincount(self.claim_fact, minlength=self.n_facts).astype(float)

    @cached_property
    def slots_per_fact(self) -> np.ndarray:
        """Number of distinct claimed values per fact."""
        return np.diff(self.fact_slot_start).astype(float)

    @cached_property
    def votes_per_slot(self) -> np.ndarray:
        """Number of sources voting for every value slot."""
        return np.bincount(self.claim_slot, minlength=self.n_slots).astype(float)

    @cached_property
    def _tie_breaker(self) -> np.ndarray:
        """Deterministic pseudo-random slot ranks for breaking exact ties.

        Breaking ties by first-seen slot correlates with source order,
        which silently hands every tied fact to whichever source happens
        to be enumerated first; a fixed random permutation decorrelates
        the choice while keeping runs reproducible.
        """
        rng = np.random.default_rng(0x7B5 + self.n_slots)
        return rng.permutation(self.n_slots).astype(float)

    # ------------------------------------------------------------------
    # Core reductions used by the algorithm engine
    # ------------------------------------------------------------------

    def slot_scores(self, source_weight: np.ndarray) -> np.ndarray:
        """Weighted vote total of every slot given per-source weights."""
        return np.bincount(
            self.claim_slot,
            weights=source_weight[self.claim_source],
            minlength=self.n_slots,
        )

    def normalize_per_fact(self, slot_score: np.ndarray) -> np.ndarray:
        """Scale slot scores so they sum to one within every fact."""
        totals = segment_sum(slot_score, self.fact_slot_start)
        safe = np.where(totals > 0, totals, 1.0)
        return slot_score / safe[self.slot_fact]

    def softmax_per_fact(self, slot_score: np.ndarray) -> np.ndarray:
        """Numerically-stable soft-max of slot scores within every fact."""
        maxima = segment_max(slot_score, self.fact_slot_start)
        shifted = np.exp(slot_score - maxima[self.slot_fact])
        totals = segment_sum(shifted, self.fact_slot_start)
        return shifted / totals[self.slot_fact]

    def winning_slots(self, slot_score: np.ndarray) -> np.ndarray:
        """Per-fact slot id with the highest score.

        Exact ties break by a fixed pseudo-random slot rank (see
        ``_tie_breaker``), not by claim order.
        """
        maxima = segment_max(slot_score, self.fact_slot_start)
        is_max = slot_score == maxima[self.slot_fact]
        candidates = np.where(is_max, self._tie_breaker, -1.0)
        return segment_argmax(candidates, self.fact_slot_start)

    def source_mean_of_slots(self, slot_value: np.ndarray) -> np.ndarray:
        """Per-source mean of a per-slot quantity over the slots it voted for.

        This is the generic "trustworthiness = average confidence of
        provided values" update.  Sources with no claims get 0.
        """
        sums = np.bincount(
            self.claim_source,
            weights=slot_value[self.claim_slot],
            minlength=self.n_sources,
        )
        counts = self.claims_per_source
        return np.where(counts > 0, sums / np.maximum(counts, 1.0), 0.0)

    def predictions_from_slots(self, winners: np.ndarray) -> dict[Fact, Value]:
        """Materialise per-fact winning slots into a fact → value mapping."""
        return {
            fact: self.slot_values[winners[f_id]]
            for f_id, fact in enumerate(self.facts)
        }
