"""Compiled numeric view of a :class:`~repro.data.dataset.Dataset`.

Iterative truth discovery algorithms run tens of passes over every claim,
so they operate on flat integer arrays rather than on dictionaries.  A
:class:`DatasetIndex` compiles a dataset once into:

* ``claim_source`` / ``claim_fact`` / ``claim_slot`` — one entry per claim,
  holding the integer id of the claiming source, the claimed fact, and the
  *value slot* (the pair (fact, distinct value)) the claim votes for;
* ``slot_fact`` — the fact id of every value slot, with slots of the same
  fact contiguous, so per-fact reductions are ``np.*.reduceat`` calls over
  ``fact_slot_start`` offsets;
* ``true_slot`` — for every fact, the slot of the ground-truth value if
  some source actually claimed it, else ``-1``.

The segment helpers (:func:`segment_sum`, :func:`segment_max`,
:func:`segment_argmax`, :func:`segment_mean`) implement the per-fact
reductions every algorithm needs (vote totals, soft-max normalisation,
winner selection).
"""

from __future__ import annotations

from functools import cached_property

import numpy as np

from repro.data.dataset import Dataset
from repro.data.types import Fact, Value


def segment_sum(values: np.ndarray, starts: np.ndarray) -> np.ndarray:
    """Sum of ``values`` within each contiguous segment.

    ``starts`` holds the begin offset of every segment plus a final
    sentinel equal to ``len(values)``.
    """
    if len(values) == 0:
        return np.zeros(len(starts) - 1, dtype=float)
    return np.add.reduceat(values, starts[:-1])


def segment_max(values: np.ndarray, starts: np.ndarray) -> np.ndarray:
    """Maximum of ``values`` within each contiguous segment."""
    if len(values) == 0:
        return np.zeros(len(starts) - 1, dtype=float)
    return np.maximum.reduceat(values, starts[:-1])


def segment_argmax(values: np.ndarray, starts: np.ndarray) -> np.ndarray:
    """Index (into ``values``) of the per-segment maximum.

    Ties break toward the lowest index, i.e. the earliest-seen value slot,
    which makes winner selection deterministic.
    """
    n_segments = len(starts) - 1
    out = np.empty(n_segments, dtype=np.int64)
    maxima = segment_max(values, starts)
    is_max = values == np.repeat(maxima, np.diff(starts))
    positions = np.arange(len(values))
    # First position achieving the max in each segment.
    candidates = np.where(is_max, positions, len(values))
    out = np.minimum.reduceat(candidates, starts[:-1]) if len(values) else out
    return out


def segment_mean(values: np.ndarray, starts: np.ndarray) -> np.ndarray:
    """Mean of ``values`` within each contiguous segment."""
    sizes = np.diff(starts)
    sums = segment_sum(values, starts)
    with np.errstate(invalid="ignore", divide="ignore"):
        means = np.where(sizes > 0, sums / np.maximum(sizes, 1), 0.0)
    return means


#: Working dtypes an index may carry.  float64 is the bit-identical
#: default; float32 halves the memory of every per-iteration array and
#: routes the incidence reductions through CSR GEMV (see ``slot_scores``).
SUPPORTED_DTYPES = (np.dtype(np.float64), np.dtype(np.float32))


def _validate_dtype(dtype) -> np.dtype:
    resolved = np.dtype(dtype)
    if resolved not in SUPPORTED_DTYPES:
        supported = ", ".join(d.name for d in SUPPORTED_DTYPES)
        raise ValueError(
            f"unsupported index dtype {resolved.name!r}; supported: {supported}"
        )
    return resolved


class DatasetIndex:
    """Flat integer-array view of a dataset for vectorised algorithms.

    ``dtype`` selects the working precision of the reductions: the
    default ``float64`` keeps every output bit-identical to the original
    per-claim loops, while ``float32`` is an opt-in reduced-precision
    path for large datasets (see ``TDACConfig.dtype``).
    """

    def __init__(self, dataset: Dataset, dtype=np.float64) -> None:
        self._dataset = dataset
        self.dtype = _validate_dtype(dtype)
        facts = dataset.facts
        self.facts: tuple[Fact, ...] = facts
        self.n_sources = len(dataset.sources)
        self.n_facts = len(facts)
        self._source_id = {s: i for i, s in enumerate(dataset.sources)}

        slot_values: list[Value] = []
        slot_fact: list[int] = []
        fact_slot_start = [0]
        claim_source: list[int] = []
        claim_fact: list[int] = []
        claim_slot: list[int] = []
        true_slot = np.full(self.n_facts, -1, dtype=np.int64)

        by_fact = dataset.claims_by_fact
        for f_id, fact in enumerate(facts):
            claims = by_fact[fact]
            local: dict[Value, int] = {}
            for claim in claims:
                slot = local.get(claim.value)
                if slot is None:
                    slot = len(slot_values)
                    local[claim.value] = slot
                    slot_values.append(claim.value)
                    slot_fact.append(f_id)
                claim_source.append(self._source_id[claim.source])
                claim_fact.append(f_id)
                claim_slot.append(slot)
            fact_slot_start.append(len(slot_values))
            truth = dataset.true_value(fact)
            if truth is not None and truth in local:
                true_slot[f_id] = local[truth]

        self.slot_values: tuple[Value, ...] = tuple(slot_values)
        self.slot_fact = np.asarray(slot_fact, dtype=np.int64)
        self.fact_slot_start = np.asarray(fact_slot_start, dtype=np.int64)
        self.claim_source = np.asarray(claim_source, dtype=np.int64)
        self.claim_fact = np.asarray(claim_fact, dtype=np.int64)
        self.claim_slot = np.asarray(claim_slot, dtype=np.int64)
        self.true_slot = true_slot
        self.n_slots = len(slot_values)
        self.n_claims = len(claim_source)

    @classmethod
    def _from_parts(
        cls,
        dataset: Dataset,
        facts: tuple[Fact, ...],
        slot_values: tuple[Value, ...],
        slot_fact: np.ndarray,
        fact_slot_start: np.ndarray,
        claim_source: np.ndarray,
        claim_fact: np.ndarray,
        claim_slot: np.ndarray,
        true_slot: np.ndarray,
        dtype=np.float64,
    ) -> "DatasetIndex":
        """Assemble an index directly from compiled arrays.

        Used by :class:`~repro.data.claim_engine.ClaimIndexEngine` to
        slice per-block views out of the full index without re-walking
        the claim dictionaries.  The arrays must satisfy the same layout
        invariants ``__init__`` produces (facts object-major, slots in
        first-appearance order, claims fact-major and source-ordered).
        """
        index = object.__new__(cls)
        index._dataset = dataset
        index.dtype = _validate_dtype(dtype)
        index.facts = facts
        index.n_sources = len(dataset.sources)
        index.n_facts = len(facts)
        index._source_id = {s: i for i, s in enumerate(dataset.sources)}
        index.slot_values = slot_values
        index.slot_fact = slot_fact
        index.fact_slot_start = fact_slot_start
        index.claim_source = claim_source
        index.claim_fact = claim_fact
        index.claim_slot = claim_slot
        index.true_slot = true_slot
        index.n_slots = len(slot_values)
        index.n_claims = len(claim_source)
        return index

    @property
    def dataset(self) -> Dataset:
        """The dataset this index was compiled from."""
        return self._dataset

    @cached_property
    def claims_per_source(self) -> np.ndarray:
        """Number of claims made by every source (may contain zeros)."""
        counts = np.bincount(self.claim_source, minlength=self.n_sources)
        return counts.astype(self.dtype)

    @cached_property
    def claims_per_fact(self) -> np.ndarray:
        """Number of claims received by every fact."""
        counts = np.bincount(self.claim_fact, minlength=self.n_facts)
        return counts.astype(self.dtype)

    @cached_property
    def slots_per_fact(self) -> np.ndarray:
        """Number of distinct claimed values per fact."""
        return np.diff(self.fact_slot_start).astype(self.dtype)

    @cached_property
    def votes_per_slot(self) -> np.ndarray:
        """Number of sources voting for every value slot."""
        counts = np.bincount(self.claim_slot, minlength=self.n_slots)
        return counts.astype(self.dtype)

    # ------------------------------------------------------------------
    # Shared incidence structure (CSR views + slot segmentation)
    # ------------------------------------------------------------------

    @cached_property
    def incidence_slot_source(self):
        """CSR ``(n_slots, n_sources)`` claim incidence in ``dtype``.

        ``incidence_slot_source @ w`` is the weighted vote total of every
        slot — the GEMV form of :meth:`slot_scores`, used on the float32
        path (``np.bincount`` always accumulates in float64).
        """
        from scipy import sparse

        data = np.ones(self.n_claims, dtype=self.dtype)
        return sparse.csr_matrix(
            (data, (self.claim_slot, self.claim_source)),
            shape=(self.n_slots, self.n_sources),
        )

    @cached_property
    def incidence_source_slot(self):
        """CSR ``(n_sources, n_slots)`` claim incidence in ``dtype``."""
        from scipy import sparse

        data = np.ones(self.n_claims, dtype=self.dtype)
        return sparse.csr_matrix(
            (data, (self.claim_source, self.claim_slot)),
            shape=(self.n_sources, self.n_slots),
        )

    @cached_property
    def incidence_source_fact(self):
        """CSR ``(n_sources, n_facts)`` fact-coverage incidence."""
        from scipy import sparse

        data = np.ones(self.n_claims, dtype=self.dtype)
        return sparse.csr_matrix(
            (data, (self.claim_source, self.claim_fact)),
            shape=(self.n_sources, self.n_facts),
        )

    @cached_property
    def claims_slot_sorted(self) -> np.ndarray:
        """Claim positions stably sorted by slot id.

        Claims of the same slot keep their original (source) order, so
        ``claims_slot_sorted`` groups every slot's providers into one
        contiguous run — the segmentation the vectorized discounted-vote
        kernel reduces over.
        """
        return np.argsort(self.claim_slot, kind="stable")

    @cached_property
    def slot_claim_starts(self) -> np.ndarray:
        """Start offset of every slot's run in slot-sorted claim order.

        Length ``n_slots + 1`` (the last entry is ``n_claims``), so slot
        ``v``'s providers occupy ``claims_slot_sorted[starts[v]:starts[v+1]]``.
        """
        sorted_slots = self.claim_slot[self.claims_slot_sorted]
        return np.searchsorted(
            sorted_slots, np.arange(self.n_slots + 1)
        ).astype(np.int64)

    @cached_property
    def _tie_breaker(self) -> np.ndarray:
        """Deterministic pseudo-random slot ranks for breaking exact ties.

        Breaking ties by first-seen slot correlates with source order,
        which silently hands every tied fact to whichever source happens
        to be enumerated first; a fixed random permutation decorrelates
        the choice while keeping runs reproducible.
        """
        rng = np.random.default_rng(0x7B5 + self.n_slots)
        return rng.permutation(self.n_slots).astype(float)

    # ------------------------------------------------------------------
    # Core reductions used by the algorithm engine
    # ------------------------------------------------------------------

    def slot_scores(self, source_weight: np.ndarray) -> np.ndarray:
        """Weighted vote total of every slot given per-source weights.

        float64 accumulates through ``np.bincount`` (bit-identical to the
        historical path); float32 routes through the CSR incidence GEMV,
        which stays in single precision end to end.
        """
        if self.dtype == np.float64:
            return np.bincount(
                self.claim_slot,
                weights=source_weight[self.claim_source],
                minlength=self.n_slots,
            )
        weights = np.asarray(source_weight, dtype=self.dtype)
        return self.incidence_slot_source @ weights

    def sum_per_slot(self, per_claim: np.ndarray) -> np.ndarray:
        """Sum an arbitrary per-claim quantity into its value slot."""
        out = np.bincount(
            self.claim_slot, weights=per_claim, minlength=self.n_slots
        )
        return out.astype(self.dtype, copy=False)

    def sum_per_fact(self, per_claim: np.ndarray) -> np.ndarray:
        """Sum an arbitrary per-claim quantity into its fact."""
        out = np.bincount(
            self.claim_fact, weights=per_claim, minlength=self.n_facts
        )
        return out.astype(self.dtype, copy=False)

    def sum_per_source(self, per_claim: np.ndarray) -> np.ndarray:
        """Sum an arbitrary per-claim quantity into its claiming source."""
        out = np.bincount(
            self.claim_source, weights=per_claim, minlength=self.n_sources
        )
        return out.astype(self.dtype, copy=False)

    def normalize_per_fact(self, slot_score: np.ndarray) -> np.ndarray:
        """Scale slot scores so they sum to one within every fact."""
        totals = segment_sum(slot_score, self.fact_slot_start)
        safe = np.where(totals > 0, totals, 1.0)
        return slot_score / safe[self.slot_fact]

    def softmax_per_fact(self, slot_score: np.ndarray) -> np.ndarray:
        """Numerically-stable soft-max of slot scores within every fact."""
        maxima = segment_max(slot_score, self.fact_slot_start)
        shifted = np.exp(slot_score - maxima[self.slot_fact])
        totals = segment_sum(shifted, self.fact_slot_start)
        return shifted / totals[self.slot_fact]

    def winning_slots(self, slot_score: np.ndarray) -> np.ndarray:
        """Per-fact slot id with the highest score.

        Exact ties break by a fixed pseudo-random slot rank (see
        ``_tie_breaker``), not by claim order.
        """
        maxima = segment_max(slot_score, self.fact_slot_start)
        is_max = slot_score == maxima[self.slot_fact]
        candidates = np.where(is_max, self._tie_breaker, -1.0)
        return segment_argmax(candidates, self.fact_slot_start)

    def source_mean_of_slots(self, slot_value: np.ndarray) -> np.ndarray:
        """Per-source mean of a per-slot quantity over the slots it voted for.

        This is the generic "trustworthiness = average confidence of
        provided values" update.  Sources with no claims get 0.
        """
        if self.dtype == np.float64:
            sums = np.bincount(
                self.claim_source,
                weights=slot_value[self.claim_slot],
                minlength=self.n_sources,
            )
        else:
            values = np.asarray(slot_value, dtype=self.dtype)
            sums = self.incidence_source_slot @ values
        counts = self.claims_per_source
        return np.where(counts > 0, sums / np.maximum(counts, 1.0), 0.0)

    def predictions_from_slots(self, winners: np.ndarray) -> dict[Fact, Value]:
        """Materialise per-fact winning slots into a fact → value mapping."""
        return {
            fact: self.slot_values[winners[f_id]]
            for f_id, fact in enumerate(self.facts)
        }
