"""Serialisation of datasets to and from JSON and CSV.

The JSON format is self-contained (universes, claims, ground truth, name)
and round-trips exactly.  The CSV format is the common interchange layout
for truth discovery corpora: one claim per row with columns
``source,object,attribute,value`` plus an optional separate truth file
with columns ``object,attribute,value``.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Mapping

from repro.data.builder import DatasetBuilder
from repro.data.dataset import Dataset
from repro.data.types import DataError, Value

_FORMAT_VERSION = 1


def dataset_to_dict(dataset: Dataset) -> dict:
    """Encode ``dataset`` as a JSON-serialisable dictionary."""
    payload = {
        "format_version": _FORMAT_VERSION,
        "name": dataset.name,
        "sources": list(dataset.sources),
        "objects": list(dataset.objects),
        "attributes": list(dataset.attributes),
        "claims": [
            [c.source, c.object, c.attribute, c.value]
            for c in dataset.iter_claims()
        ],
        "truth": [
            [o, a, v] for (o, a), v in sorted(dataset.truth.items())
        ],
    }
    if dataset.has_typed_attributes:
        # Emitted only for typed datasets so pre-existing files and
        # fixtures keep byte-identical output.
        payload["attribute_types"] = {
            a: kind
            for a, kind in dataset.attribute_types.items()
            if kind != "categorical"
        }
    return payload


def dataset_from_dict(payload: Mapping) -> Dataset:
    """Decode a dataset from :func:`dataset_to_dict` output."""
    version = payload.get("format_version")
    if version != _FORMAT_VERSION:
        raise DataError(f"unsupported dataset format version: {version!r}")
    builder = DatasetBuilder(name=payload.get("name", "dataset"))
    builder.declare_sources(payload.get("sources", []))
    builder.declare_objects(payload.get("objects", []))
    builder.declare_attributes(payload.get("attributes", []))
    builder.declare_attribute_types(payload.get("attribute_types", {}))
    for source, obj, attribute, value in payload.get("claims", []):
        builder.add_claim(source, obj, attribute, _freeze(value))
    for obj, attribute, value in payload.get("truth", []):
        builder.set_truth(obj, attribute, _freeze(value))
    return builder.build()


def save_json(dataset: Dataset, path: str | Path) -> None:
    """Write ``dataset`` to ``path`` as JSON."""
    Path(path).write_text(
        json.dumps(dataset_to_dict(dataset), indent=2, sort_keys=False)
    )


def load_json(path: str | Path) -> Dataset:
    """Read a dataset previously written by :func:`save_json`."""
    return dataset_from_dict(json.loads(Path(path).read_text()))


def save_claims_jsonl(dataset: Dataset, path: str | Path) -> None:
    """Write one claim per line as JSON (streaming-friendly interchange)."""
    with open(path, "w") as handle:
        for claim in dataset.iter_claims():
            handle.write(
                json.dumps(
                    {
                        "source": claim.source,
                        "object": claim.object,
                        "attribute": claim.attribute,
                        "value": claim.value,
                    }
                )
            )
            handle.write("\n")


def load_claims_jsonl(
    path: str | Path, name: str = "dataset"
) -> Dataset:
    """Read a dataset from a JSON-lines claim stream.

    Each line holds one object with ``source`` / ``object`` /
    ``attribute`` / ``value`` keys; malformed lines raise
    :class:`DataError` with the offending line number.
    """
    builder = DatasetBuilder(name=name)
    with open(path) as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
                builder.add_claim(
                    payload["source"],
                    payload["object"],
                    payload["attribute"],
                    _freeze(payload["value"]),
                )
            except (KeyError, ValueError) as exc:
                if isinstance(exc, DataError):
                    raise
                raise DataError(
                    f"{path}:{line_number}: malformed claim line ({exc})"
                ) from exc
    return builder.build()


def save_claims_csv(dataset: Dataset, path: str | Path) -> None:
    """Write one claim per row: ``source,object,attribute,value``."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["source", "object", "attribute", "value"])
        for claim in dataset.iter_claims():
            writer.writerow([claim.source, claim.object, claim.attribute, claim.value])


def save_truth_csv(dataset: Dataset, path: str | Path) -> None:
    """Write the ground truth: ``object,attribute,value`` per row."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["object", "attribute", "value"])
        for (obj, attribute), value in sorted(dataset.truth.items()):
            writer.writerow([obj, attribute, value])


def load_csv(
    claims_path: str | Path,
    truth_path: str | Path | None = None,
    name: str = "dataset",
) -> Dataset:
    """Read a dataset from claim (and optional truth) CSV files.

    Values are kept as strings — CSV has no type information; callers who
    need typed values should post-process or use the JSON format.
    """
    builder = DatasetBuilder(name=name)
    with open(claims_path, newline="") as handle:
        reader = csv.DictReader(handle)
        _require_columns(reader, {"source", "object", "attribute", "value"}, claims_path)
        for row in reader:
            builder.add_claim(row["source"], row["object"], row["attribute"], row["value"])
    if truth_path is not None:
        with open(truth_path, newline="") as handle:
            reader = csv.DictReader(handle)
            _require_columns(reader, {"object", "attribute", "value"}, truth_path)
            for row in reader:
                builder.set_truth(row["object"], row["attribute"], row["value"])
    return builder.build()


def _require_columns(reader: csv.DictReader, required: set, path) -> None:
    headers = set(reader.fieldnames or [])
    missing = required - headers
    if missing:
        raise DataError(f"{path}: missing CSV columns {sorted(missing)}")


def _freeze(value: Value) -> Value:
    """Make JSON-decoded values hashable (lists become tuples)."""
    if isinstance(value, list):
        return tuple(_freeze(v) for v in value)
    return value
