"""Shared claim-index engine: one incidence structure per dataset.

TD-AC compiles the same dataset into flat claim arrays repeatedly: once
for the reference pass, once per block of the winning partition, and
again for every serving-layer block refresh.  Worse, each per-block pass
first rebuilds a whole restricted :class:`~repro.data.dataset.Dataset`
(dict filtering, claim re-validation) only to immediately recompile it
into arrays.

:class:`ClaimIndexEngine` compiles the dataset **once** into a full
:class:`~repro.data.index.DatasetIndex` and derives every per-block view
by *slicing* the compiled arrays:

* facts are ordered object-major then attribute order, and attribute
  subsetting preserves relative attribute order, so the facts of a block
  are a subsequence of the full fact sequence;
* slots are numbered per fact in first-appearance (source) order — a
  property of the fact's claims alone — so a block's slots are the same
  subsequence of the full slot sequence;
* claims are fact-major and source-ordered within each fact, so a block's
  claims are the corresponding subsequence of the full claim arrays.

A sliced view is therefore **byte-identical** to compiling
``dataset.restrict_attributes(block)`` from scratch (including the
winner tie-breaker, which is seeded by the block's slot count), while
costing a few fancy-indexing passes instead of a dict rebuild plus a
Python compile loop.  ``tests/test_vectorized_engine.py`` pins this
equivalence.

:meth:`ClaimIndexEngine.shared` memoises engines per dataset in a weak
dictionary, so the reference pass, the block runs, repeated partition
sweeps and the serving refit path all reuse one structure for as long as
the dataset object is alive.
"""

from __future__ import annotations

import threading
from functools import cached_property
from itertools import compress
from typing import Hashable, Iterable
from weakref import WeakKeyDictionary

import numpy as np

from repro.data.dataset import Dataset
from repro.data.index import DatasetIndex, _validate_dtype
from repro.data.types import DataError

_SHARED_LOCK = threading.Lock()
_SHARED: "WeakKeyDictionary[Dataset, dict]" = WeakKeyDictionary()

#: Per-engine cap on memoised block views.  Partition sweeps can probe
#: many candidate blocks; the cap bounds memory while keeping every block
#: of a selected partition (typically < 20) resident.
_BLOCK_CACHE_SIZE = 128


class ClaimIndexEngine:
    """Per-dataset factory of shared full and per-block claim indexes."""

    def __init__(self, dataset: Dataset, dtype=np.float64) -> None:
        self._dataset = dataset
        self._dtype = _validate_dtype(dtype)
        self._lock = threading.Lock()
        self._blocks: dict[tuple, DatasetIndex] = {}

    # ------------------------------------------------------------------

    @classmethod
    def shared(cls, dataset: Dataset, dtype=np.float64) -> "ClaimIndexEngine":
        """The process-wide engine of ``dataset`` (created on first use).

        Engines are keyed weakly by dataset object and by dtype, so a
        dataset's compiled structure is shared across the reference pass,
        block runs and serving refreshes without pinning the dataset in
        memory after its last strong reference drops.
        """
        resolved = _validate_dtype(dtype)
        with _SHARED_LOCK:
            per_dataset = _SHARED.get(dataset)
            if per_dataset is None:
                per_dataset = {}
                _SHARED[dataset] = per_dataset
            engine = per_dataset.get(resolved.name)
            if engine is None:
                engine = cls(dataset, dtype=resolved)
                per_dataset[resolved.name] = engine
        return engine

    @property
    def dataset(self) -> Dataset:
        """The dataset this engine compiles."""
        return self._dataset

    @property
    def dtype(self) -> np.dtype:
        """Working dtype of every index the engine hands out."""
        return self._dtype

    @cached_property
    def full_index(self) -> DatasetIndex:
        """The compiled index of the whole dataset."""
        return DatasetIndex(self._dataset, dtype=self._dtype)

    @cached_property
    def _fact_attribute(self) -> np.ndarray:
        """Attribute rank (dataset attribute order) of every fact."""
        rank = {a: i for i, a in enumerate(self._dataset.attributes)}
        full = self.full_index
        return np.fromiter(
            (rank[fact.attribute] for fact in full.facts),
            dtype=np.int64,
            count=full.n_facts,
        )

    # ------------------------------------------------------------------

    def block_index(self, block: Iterable[Hashable]) -> DatasetIndex:
        """The sliced index of one attribute block (memoised).

        ``block`` is a collection of attribute ids; the view is identical
        to ``DatasetIndex(dataset.restrict_attributes(block))`` but built
        by slicing the full index's arrays.
        """
        key = tuple(block)
        with self._lock:
            cached = self._blocks.get(key)
        if cached is not None:
            return cached
        view = self._slice_block(key)
        with self._lock:
            if len(self._blocks) >= _BLOCK_CACHE_SIZE:
                # Drop the oldest half; plain dicts preserve insertion
                # order, so this evicts the least recently inserted views.
                for stale in list(self._blocks)[: _BLOCK_CACHE_SIZE // 2]:
                    del self._blocks[stale]
            self._blocks[key] = view
        return view

    def _slice_block(self, block: tuple) -> DatasetIndex:
        rank = {a: i for i, a in enumerate(self._dataset.attributes)}
        unknown = [a for a in block if a not in rank]
        if unknown:
            raise DataError(
                f"unknown attributes in block: {sorted(map(str, unknown))}"
            )
        full = self.full_index
        keep_attribute = np.zeros(len(self._dataset.attributes), dtype=bool)
        keep_attribute[[rank[a] for a in block]] = True

        fact_keep = keep_attribute[self._fact_attribute]
        slot_keep = fact_keep[full.slot_fact]
        claim_keep = fact_keep[full.claim_fact]

        # Old id -> new id maps (only valid where the element is kept).
        new_fact_id = np.cumsum(fact_keep, dtype=np.int64) - 1
        new_slot_id = np.cumsum(slot_keep, dtype=np.int64) - 1

        facts = tuple(compress(full.facts, fact_keep))
        slot_values = tuple(compress(full.slot_values, slot_keep))
        slot_fact = new_fact_id[full.slot_fact[slot_keep]]
        slots_of_kept = np.diff(full.fact_slot_start)[fact_keep]
        fact_slot_start = np.concatenate(
            ([0], np.cumsum(slots_of_kept))
        ).astype(np.int64)
        claim_source = full.claim_source[claim_keep]
        claim_fact = new_fact_id[full.claim_fact[claim_keep]]
        claim_slot = new_slot_id[full.claim_slot[claim_keep]]
        kept_true = full.true_slot[fact_keep]
        true_slot = np.where(
            kept_true >= 0, new_slot_id[np.maximum(kept_true, 0)], -1
        ).astype(np.int64)

        return DatasetIndex._from_parts(
            dataset=self._dataset,
            facts=facts,
            slot_values=slot_values,
            slot_fact=slot_fact,
            fact_slot_start=fact_slot_start,
            claim_source=claim_source,
            claim_fact=claim_fact,
            claim_slot=claim_slot,
            true_slot=true_slot,
            dtype=self._dtype,
        )
