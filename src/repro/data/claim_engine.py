"""Shared claim-index engine: one incidence structure per dataset.

TD-AC compiles the same dataset into flat claim arrays repeatedly: once
for the reference pass, once per block of the winning partition, and
again for every serving-layer block refresh.  Worse, each per-block pass
first rebuilds a whole restricted :class:`~repro.data.dataset.Dataset`
(dict filtering, claim re-validation) only to immediately recompile it
into arrays.

:class:`ClaimIndexEngine` compiles the dataset **once** into a full
:class:`~repro.data.index.DatasetIndex` and derives every per-block view
by *slicing* the compiled arrays:

* facts are ordered object-major then attribute order, and attribute
  subsetting preserves relative attribute order, so the facts of a block
  are a subsequence of the full fact sequence;
* slots are numbered per fact in first-appearance (source) order — a
  property of the fact's claims alone — so a block's slots are the same
  subsequence of the full slot sequence;
* claims are fact-major and source-ordered within each fact, so a block's
  claims are the corresponding subsequence of the full claim arrays.

A sliced view is therefore **byte-identical** to compiling
``dataset.restrict_attributes(block)`` from scratch (including the
winner tie-breaker, which is seeded by the block's slot count), while
costing a few fancy-indexing passes instead of a dict rebuild plus a
Python compile loop.  ``tests/test_vectorized_engine.py`` pins this
equivalence.

:meth:`ClaimIndexEngine.shared` memoises engines per dataset in a weak
dictionary, so the reference pass, the block runs, repeated partition
sweeps and the serving refit path all reuse one structure for as long as
the dataset object is alive.
"""

from __future__ import annotations

import threading
from functools import cached_property
from itertools import compress
from typing import Hashable, Iterable, Sequence
from weakref import WeakKeyDictionary

import numpy as np

from repro.data.dataset import Dataset
from repro.data.index import DatasetIndex, _validate_dtype
from repro.data.types import ATTRIBUTE_TYPES, Claim, DataError, Fact

#: Fact keys pack (object rank, attribute rank) into one int64 as
#: ``obj_rank << _KEY_SHIFT | attr_rank``.  Ranks only ever append, so a
#: fact's key is stable across dataset extensions, and keys sort in the
#: canonical fact order (object-major, then attribute order).
_KEY_SHIFT = 32

_SHARED_LOCK = threading.Lock()
_SHARED: "WeakKeyDictionary[Dataset, dict]" = WeakKeyDictionary()

#: Per-engine cap on memoised block views.  Partition sweeps can probe
#: many candidate blocks; the cap bounds memory while keeping every block
#: of a selected partition (typically < 20) resident.
_BLOCK_CACHE_SIZE = 128


class ClaimIndexEngine:
    """Per-dataset factory of shared full and per-block claim indexes."""

    def __init__(self, dataset: Dataset, dtype=np.float64) -> None:
        self._dataset = dataset
        self._dtype = _validate_dtype(dtype)
        self._lock = threading.Lock()
        self._blocks: dict[tuple, DatasetIndex] = {}

    # ------------------------------------------------------------------

    @classmethod
    def shared(cls, dataset: Dataset, dtype=np.float64) -> "ClaimIndexEngine":
        """The process-wide engine of ``dataset`` (created on first use).

        Engines are keyed weakly by dataset object and by dtype, so a
        dataset's compiled structure is shared across the reference pass,
        block runs and serving refreshes without pinning the dataset in
        memory after its last strong reference drops.
        """
        resolved = _validate_dtype(dtype)
        with _SHARED_LOCK:
            per_dataset = _SHARED.get(dataset)
            if per_dataset is None:
                per_dataset = {}
                _SHARED[dataset] = per_dataset
            engine = per_dataset.get(resolved.name)
            if engine is None:
                engine = cls(dataset, dtype=resolved)
                per_dataset[resolved.name] = engine
        return engine

    @property
    def dataset(self) -> Dataset:
        """The dataset this engine compiles."""
        return self._dataset

    @property
    def dtype(self) -> np.dtype:
        """Working dtype of every index the engine hands out."""
        return self._dtype

    @cached_property
    def full_index(self) -> DatasetIndex:
        """The compiled index of the whole dataset."""
        return DatasetIndex(self._dataset, dtype=self._dtype)

    @cached_property
    def _fact_attribute(self) -> np.ndarray:
        """Attribute rank (dataset attribute order) of every fact."""
        return (self._fact_keys & ((1 << _KEY_SHIFT) - 1)).astype(np.int64)

    @cached_property
    def attribute_type_masks(self) -> dict:
        """Boolean mask over attribute ranks for every value family.

        ``masks["continuous"][rank]`` is True when the attribute at
        ``rank`` is tagged continuous; an untyped dataset yields an
        all-True categorical mask.  The estimator router and typed
        metrics use these to split compiled structures without touching
        identifier dicts.
        """
        attrs = self._dataset.attributes
        masks = {
            kind: np.zeros(len(attrs), dtype=bool) for kind in ATTRIBUTE_TYPES
        }
        for rank, attribute in enumerate(attrs):
            masks[self._dataset.attribute_type(attribute)][rank] = True
        return masks

    def fact_type_mask(self, kind: str) -> np.ndarray:
        """Boolean mask over full-index facts whose attribute is ``kind``."""
        return self.attribute_type_masks[kind][self._fact_attribute]

    # -- delta-compile support structures ------------------------------
    #
    # Everything below is computed lazily from the full index on a cold
    # engine and *spliced* (not recomputed) when an engine is derived via
    # :meth:`extended`, so per-batch compile cost stays proportional to
    # the batch, not the corpus.

    @cached_property
    def _src_rank(self) -> dict:
        return {s: i for i, s in enumerate(self._dataset.sources)}

    @cached_property
    def _obj_rank(self) -> dict:
        return {o: i for i, o in enumerate(self._dataset.objects)}

    @cached_property
    def _attr_rank(self) -> dict:
        return {a: i for i, a in enumerate(self._dataset.attributes)}

    @cached_property
    def _fact_keys(self) -> np.ndarray:
        """Packed (object, attribute) rank key of every fact, ascending."""
        full = self.full_index
        obj_rank = self._obj_rank
        attr_rank = self._attr_rank
        return np.fromiter(
            (
                (obj_rank[fact.object] << _KEY_SHIFT)
                | attr_rank[fact.attribute]
                for fact in full.facts
            ),
            dtype=np.int64,
            count=full.n_facts,
        )

    @cached_property
    def _fact_claim_start(self) -> np.ndarray:
        """Start offset of every fact's claim segment (plus sentinel)."""
        full = self.full_index
        return np.searchsorted(
            full.claim_fact, np.arange(full.n_facts + 1)
        ).astype(np.int64)

    @cached_property
    def _facts_obj(self) -> np.ndarray:
        """The fact tuple as an object ndarray (for vectorised splicing)."""
        full = self.full_index
        out = np.empty(full.n_facts, dtype=object)
        out[:] = list(full.facts)
        return out

    @cached_property
    def _slot_values_obj(self) -> np.ndarray:
        """The slot-value tuple as an object ndarray (for splicing)."""
        full = self.full_index
        out = np.empty(full.n_slots, dtype=object)
        out[:] = list(full.slot_values)
        return out

    def fact_id(self, obj, attribute) -> int:
        """Full-index fact id of ``(obj, attribute)``, or -1 if unclaimed."""
        obj_rank = self._obj_rank.get(obj)
        attr_rank = self._attr_rank.get(attribute)
        if obj_rank is None or attr_rank is None:
            return -1
        key = (obj_rank << _KEY_SHIFT) | attr_rank
        keys = self._fact_keys
        pos = int(np.searchsorted(keys, key))
        if pos < len(keys) and keys[pos] == key:
            return pos
        return -1

    def fact_claims(self, fact_id: int) -> tuple[np.ndarray, list]:
        """Source ids and claimed values of one full-index fact."""
        full = self.full_index
        starts = self._fact_claim_start
        lo, hi = int(starts[fact_id]), int(starts[fact_id + 1])
        slots = full.claim_slot[lo:hi]
        values = [full.slot_values[int(slot)] for slot in slots]
        return full.claim_source[lo:hi], values

    # ------------------------------------------------------------------

    def extended(
        self, dataset: Dataset, fresh: Sequence[Claim]
    ) -> "ClaimIndexEngine":
        """Delta-compile an engine for ``dataset`` = this dataset + ``fresh``.

        ``dataset`` must be the append-only extension of this engine's
        dataset by exactly the (deduplicated) claims in ``fresh``.  The
        compiled arrays of the child's full index are *spliced*: facts a
        new claim touches (plus brand-new facts) are recompiled from
        their merged claim lists, every other fact's slot and claim
        segments are bulk-copied — so the result is byte-identical to
        ``DatasetIndex(dataset)`` (``tests/test_incremental_exact.py``
        pins this) at O(batch + corpus memcpy) instead of a full Python
        compile loop.  The child engine is registered in the shared
        per-dataset registry, so any later ``ClaimIndexEngine.shared(
        dataset)`` — e.g. a full refit over the extended corpus — reuses
        the spliced compile.

        Raises :class:`ValueError` when ``dataset`` is not an append-only
        extension (callers fall back to a cold compile).
        """
        old_ds = self._dataset
        if (
            dataset.sources[: len(old_ds.sources)] != old_ds.sources
            or dataset.objects[: len(old_ds.objects)] != old_ds.objects
            or dataset.attributes[: len(old_ds.attributes)]
            != old_ds.attributes
        ):
            raise ValueError(
                "dataset is not an append-only extension of this engine's"
            )
        if dataset.n_claims != old_ds.n_claims + len(fresh):
            raise ValueError(
                f"expected {old_ds.n_claims} + {len(fresh)} claims, "
                f"dataset holds {dataset.n_claims}"
            )
        old = self.full_index

        # Extended rank maps: new identifiers append at the tail.
        src_rank = dict(self._src_rank)
        for s in dataset.sources[len(src_rank):]:
            src_rank[s] = len(src_rank)
        obj_rank = dict(self._obj_rank)
        for o in dataset.objects[len(obj_rank):]:
            obj_rank[o] = len(obj_rank)
        attr_rank = dict(self._attr_rank)
        for a in dataset.attributes[len(attr_rank):]:
            attr_rank[a] = len(attr_rank)

        # Group the fresh claims by fact key.
        new_by_key: dict[int, list[Claim]] = {}
        for claim in fresh:
            key = (obj_rank[claim.object] << _KEY_SHIFT) | attr_rank[
                claim.attribute
            ]
            new_by_key.setdefault(key, []).append(claim)

        old_keys = self._fact_keys
        changed_keys = np.sort(
            np.fromiter(new_by_key, dtype=np.int64, count=len(new_by_key))
        )
        pos = np.searchsorted(old_keys, changed_keys)
        exists = (pos < old.n_facts) & (
            old_keys[np.minimum(pos, max(old.n_facts - 1, 0))] == changed_keys
        )
        created_keys = changed_keys[~exists]
        n_created = len(created_keys)
        n_facts = old.n_facts + n_created
        # New id of every old fact: shifted by the created facts that
        # sort before it; created facts slot into the gaps in key order.
        old_to_new = np.arange(old.n_facts) + np.searchsorted(
            created_keys, old_keys
        )
        created_new_ids = pos[~exists] + np.arange(n_created)
        touched_old_ids = pos[exists]
        changed_new_ids = np.concatenate(
            [old_to_new[touched_old_ids], created_new_ids]
        ).astype(np.int64)
        changed_order = np.concatenate(
            [changed_keys[exists], created_keys]
        )

        # Recompile each changed fact from its merged, source-ranked
        # claim list — the same per-fact walk the cold compiler does.
        old_starts = self._fact_claim_start
        compiled: dict[int, tuple] = {}
        for key, new_id, is_old in zip(
            changed_order.tolist(),
            changed_new_ids.tolist(),
            np.concatenate(
                [np.ones(len(touched_old_ids), bool), np.zeros(n_created, bool)]
            ).tolist(),
        ):
            batch_claims = new_by_key[key]
            merged: list[tuple[int, object]] = [
                (src_rank[c.source], c.value) for c in batch_claims
            ]
            if is_old:
                old_id = int(np.searchsorted(old_keys, key))
                src_ids, values = self.fact_claims(old_id)
                merged.extend(zip(src_ids.tolist(), values))
                fact = old.facts[old_id]
            else:
                first = batch_claims[0]
                fact = Fact(first.object, first.attribute)
            merged.sort(key=lambda item: item[0])
            local: dict = {}
            slot_vals: list = []
            claim_srcs: list[int] = []
            claim_slots: list[int] = []
            for rank_id, value in merged:
                slot = local.get(value)
                if slot is None:
                    slot = len(slot_vals)
                    local[value] = slot
                    slot_vals.append(value)
                claim_srcs.append(rank_id)
                claim_slots.append(slot)
            truth = dataset.true_value(fact)
            true_local = local.get(truth, -1) if truth is not None else -1
            compiled[new_id] = (fact, slot_vals, claim_srcs, claim_slots, true_local)

        # Per-fact slot/claim counts: bulk-place the old counts, then
        # overwrite the changed facts'.
        slot_counts = np.zeros(n_facts, dtype=np.int64)
        claim_counts = np.zeros(n_facts, dtype=np.int64)
        slot_counts[old_to_new] = np.diff(old.fact_slot_start)
        claim_counts[old_to_new] = np.diff(old_starts)
        for new_id, (_, slot_vals, claim_srcs, _, _) in compiled.items():
            slot_counts[new_id] = len(slot_vals)
            claim_counts[new_id] = len(claim_srcs)
        fact_slot_start = np.zeros(n_facts + 1, dtype=np.int64)
        np.cumsum(slot_counts, out=fact_slot_start[1:])
        fact_claim_start = np.zeros(n_facts + 1, dtype=np.int64)
        np.cumsum(claim_counts, out=fact_claim_start[1:])
        n_slots = int(fact_slot_start[-1])
        n_claims = int(fact_claim_start[-1])
        slot_fact = np.repeat(np.arange(n_facts, dtype=np.int64), slot_counts)
        claim_fact = np.repeat(np.arange(n_facts, dtype=np.int64), claim_counts)

        # Bulk-copy the unchanged facts' claim and slot segments into
        # their new positions (vectorised scatter; changed facts' slots
        # are filled from the recompiles below).
        touched_mask = np.zeros(old.n_facts, dtype=bool)
        touched_mask[touched_old_ids] = True
        claim_source = np.empty(n_claims, dtype=np.int64)
        claim_slot_local = np.empty(n_claims, dtype=np.int64)
        if old.n_claims:
            keep = ~touched_mask[old.claim_fact]
            old_local = np.arange(old.n_claims) - old_starts[old.claim_fact]
            new_pos = (
                fact_claim_start[old_to_new[old.claim_fact]] + old_local
            )
            claim_source[new_pos[keep]] = old.claim_source[keep]
            old_slot_local = old.claim_slot - old.fact_slot_start[
                old.claim_fact
            ]
            claim_slot_local[new_pos[keep]] = old_slot_local[keep]
        slot_values_obj = np.empty(n_slots, dtype=object)
        if old.n_slots:
            slot_keep = ~touched_mask[old.slot_fact]
            old_slot_off = np.arange(old.n_slots) - old.fact_slot_start[
                old.slot_fact
            ]
            new_slot_pos = (
                fact_slot_start[old_to_new[old.slot_fact]] + old_slot_off
            )
            slot_values_obj[new_slot_pos[slot_keep]] = self._slot_values_obj[
                slot_keep
            ]
        true_local_all = np.full(n_facts, -1, dtype=np.int64)
        if old.n_facts:
            old_true_local = np.where(
                old.true_slot >= 0,
                old.true_slot - old.fact_slot_start[:-1],
                -1,
            )
            true_local_all[old_to_new] = old_true_local
        facts_obj = np.empty(n_facts, dtype=object)
        facts_obj[old_to_new] = self._facts_obj

        for new_id, (fact, slot_vals, claim_srcs, claim_slots, t_local) in (
            compiled.items()
        ):
            s0 = int(fact_slot_start[new_id])
            slot_values_obj[s0:s0 + len(slot_vals)] = slot_vals
            c0 = int(fact_claim_start[new_id])
            claim_source[c0:c0 + len(claim_srcs)] = claim_srcs
            claim_slot_local[c0:c0 + len(claim_slots)] = claim_slots
            true_local_all[new_id] = t_local
            facts_obj[new_id] = fact

        claim_slot = claim_slot_local + fact_slot_start[claim_fact]
        true_slot = np.where(
            true_local_all >= 0,
            true_local_all + fact_slot_start[:-1],
            -1,
        ).astype(np.int64)
        fact_keys = np.empty(n_facts, dtype=np.int64)
        fact_keys[old_to_new] = old_keys
        fact_keys[created_new_ids] = created_keys

        index = DatasetIndex._from_parts(
            dataset=dataset,
            facts=tuple(facts_obj),
            slot_values=tuple(slot_values_obj),
            slot_fact=slot_fact,
            fact_slot_start=fact_slot_start,
            claim_source=claim_source,
            claim_fact=claim_fact,
            claim_slot=claim_slot,
            true_slot=true_slot,
            dtype=self._dtype,
        )
        child = ClaimIndexEngine(dataset, dtype=self._dtype)
        child.full_index = index
        child._src_rank = src_rank
        child._obj_rank = obj_rank
        child._attr_rank = attr_rank
        child._fact_keys = fact_keys
        child._fact_claim_start = fact_claim_start
        child._facts_obj = facts_obj
        child._slot_values_obj = slot_values_obj
        with _SHARED_LOCK:
            per_dataset = _SHARED.get(dataset)
            if per_dataset is None:
                per_dataset = {}
                _SHARED[dataset] = per_dataset
            per_dataset.setdefault(self._dtype.name, child)
        return child

    # ------------------------------------------------------------------

    def block_index(self, block: Iterable[Hashable]) -> DatasetIndex:
        """The sliced index of one attribute block (memoised).

        ``block`` is a collection of attribute ids; the view is identical
        to ``DatasetIndex(dataset.restrict_attributes(block))`` but built
        by slicing the full index's arrays.
        """
        key = tuple(block)
        with self._lock:
            cached = self._blocks.get(key)
        if cached is not None:
            return cached
        view = self._slice_block(key)
        with self._lock:
            if len(self._blocks) >= _BLOCK_CACHE_SIZE:
                # Drop the oldest half; plain dicts preserve insertion
                # order, so this evicts the least recently inserted views.
                for stale in list(self._blocks)[: _BLOCK_CACHE_SIZE // 2]:
                    del self._blocks[stale]
            self._blocks[key] = view
        return view

    def _slice_block(self, block: tuple) -> DatasetIndex:
        rank = {a: i for i, a in enumerate(self._dataset.attributes)}
        unknown = [a for a in block if a not in rank]
        if unknown:
            raise DataError(
                f"unknown attributes in block: {sorted(map(str, unknown))}"
            )
        full = self.full_index
        keep_attribute = np.zeros(len(self._dataset.attributes), dtype=bool)
        keep_attribute[[rank[a] for a in block]] = True

        fact_keep = keep_attribute[self._fact_attribute]
        slot_keep = fact_keep[full.slot_fact]
        claim_keep = fact_keep[full.claim_fact]

        # Old id -> new id maps (only valid where the element is kept).
        new_fact_id = np.cumsum(fact_keep, dtype=np.int64) - 1
        new_slot_id = np.cumsum(slot_keep, dtype=np.int64) - 1

        facts = tuple(compress(full.facts, fact_keep))
        slot_values = tuple(compress(full.slot_values, slot_keep))
        slot_fact = new_fact_id[full.slot_fact[slot_keep]]
        slots_of_kept = np.diff(full.fact_slot_start)[fact_keep]
        fact_slot_start = np.concatenate(
            ([0], np.cumsum(slots_of_kept))
        ).astype(np.int64)
        claim_source = full.claim_source[claim_keep]
        claim_fact = new_fact_id[full.claim_fact[claim_keep]]
        claim_slot = new_slot_id[full.claim_slot[claim_keep]]
        kept_true = full.true_slot[fact_keep]
        true_slot = np.where(
            kept_true >= 0, new_slot_id[np.maximum(kept_true, 0)], -1
        ).astype(np.int64)

        return DatasetIndex._from_parts(
            dataset=self._dataset,
            facts=facts,
            slot_values=slot_values,
            slot_fact=slot_fact,
            fact_slot_start=fact_slot_start,
            claim_source=claim_source,
            claim_fact=claim_fact,
            claim_slot=claim_slot,
            true_slot=true_slot,
            dtype=self._dtype,
        )
