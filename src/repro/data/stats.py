"""Dataset statistics, including the paper's Data Coverage Rate (Table 8).

The Data Coverage Rate (DCR, Equation 7 of Section 4.4) measures how
densely the sources that touch an object cover that object's attributes::

    DCR = (1 - sum_o(|S_o|*|A_o| - sum_{s in S_o} |A_{o,s}|)
               / sum_o(|S_o|*|A_o|)) * 100

where ``S_o`` is the set of sources claiming anything about object ``o``,
``A_o`` the set of attributes of ``o`` covered by at least one source, and
``A_{o,s}`` the attributes of ``o`` covered by source ``s``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.dataset import Dataset


@dataclass(frozen=True, slots=True)
class DatasetStats:
    """The per-dataset summary row of the paper's Table 8."""

    name: str
    n_sources: int
    n_objects: int
    n_attributes: int
    n_observations: int
    coverage_rate: float

    def as_row(self) -> tuple:
        """The Table 8 row (counts then DCR as a percentage)."""
        return (
            self.name,
            self.n_sources,
            self.n_objects,
            self.n_attributes,
            self.n_observations,
            round(self.coverage_rate),
        )


def data_coverage_rate(dataset: Dataset) -> float:
    """The paper's Data Coverage Rate, as a percentage in [0, 100]."""
    per_object_sources: dict[str, set[str]] = {}
    per_object_attrs: dict[str, set[str]] = {}
    per_object_source_attrs: dict[tuple[str, str], int] = {}
    for claim in dataset.iter_claims():
        per_object_sources.setdefault(claim.object, set()).add(claim.source)
        per_object_attrs.setdefault(claim.object, set()).add(claim.attribute)
        key = (claim.object, claim.source)
        per_object_source_attrs[key] = per_object_source_attrs.get(key, 0) + 1

    total_cells = 0
    filled_cells = 0
    for obj, sources in per_object_sources.items():
        n_attrs = len(per_object_attrs[obj])
        total_cells += len(sources) * n_attrs
        for source in sources:
            filled_cells += per_object_source_attrs[(obj, source)]
    if total_cells == 0:
        return 0.0
    return 100.0 * filled_cells / total_cells


def dataset_stats(dataset: Dataset) -> DatasetStats:
    """Compute the Table 8 statistics row for ``dataset``."""
    return DatasetStats(
        name=dataset.name,
        n_sources=len(dataset.sources),
        n_objects=len(dataset.objects),
        n_attributes=len(dataset.attributes),
        n_observations=dataset.n_claims,
        coverage_rate=data_coverage_rate(dataset),
    )
