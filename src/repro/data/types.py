"""Fundamental value types of the truth discovery data model.

The model follows Section 2.1 of the paper: a structured world with a set
``O`` of objects, each described by a set ``A`` of attributes, whose values
are claimed by a collection ``S`` of sources.  A *fact* is a single
(object, attribute) slot that has exactly one true value in the one-truth
setting; a *claim* is one source's asserted value for one fact.

All identifiers are plain strings so datasets can be serialised without a
schema, and values are arbitrary hashable Python objects (strings, ints,
floats) compared with ``==``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

SourceId = str
ObjectId = str
AttributeId = str
Value = Hashable

#: Attribute value families the estimator router dispatches on.
#:
#: * ``"categorical"`` — one discrete truth per fact, claims compared by
#:   equality.  The default; every dataset before the scenario subsystem
#:   is implicitly all-categorical.
#: * ``"continuous"`` — numeric truths where the right aggregate is a
#:   weighted estimate (mean / median), not a vote among claimed values,
#:   and "correct" is similarity within a tolerance (CRH / CATD family).
#: * ``"multi"`` — set-valued truths (SmartMTD's multi-truth setting).
#:   Claims and truths are tuples of values; evaluation is set-based
#:   precision / recall / F1 instead of exact match.
CATEGORICAL = "categorical"
CONTINUOUS = "continuous"
MULTI = "multi"
ATTRIBUTE_TYPES = (CATEGORICAL, CONTINUOUS, MULTI)

#: Alias used in signatures; values must be one of :data:`ATTRIBUTE_TYPES`.
AttributeType = str


def validate_attribute_type(kind: str) -> str:
    """Return ``kind`` if it is a known attribute type, else raise."""
    if kind not in ATTRIBUTE_TYPES:
        known = ", ".join(ATTRIBUTE_TYPES)
        raise DataError(f"unknown attribute type {kind!r}; known: {known}")
    return kind


@dataclass(frozen=True, slots=True)
class Fact:
    """A single (object, attribute) slot holding one unknown true value."""

    object: ObjectId
    attribute: AttributeId

    def __str__(self) -> str:
        return f"{self.object}.{self.attribute}"


@dataclass(frozen=True, slots=True)
class Claim:
    """One source's asserted value for one fact."""

    source: SourceId
    object: ObjectId
    attribute: AttributeId
    value: Value

    @property
    def fact(self) -> Fact:
        """The (object, attribute) slot this claim is about."""
        return Fact(self.object, self.attribute)

    def __str__(self) -> str:
        return f"{self.source}: {self.object}.{self.attribute} = {self.value!r}"


class DataError(ValueError):
    """Raised when input data violates the truth discovery data model."""


class GroundTruthError(DataError):
    """Raised when an operation needs ground truth that is not available."""
