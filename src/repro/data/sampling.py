"""Dataset subsampling utilities (coverage sweeps, quick replicas).

The paper's main qualitative finding is that TD-AC's advantage grows
with the Data Coverage Rate.  To turn that observation into a proper
curve (ablation A-5) we need the *same* dataset at several coverage
levels: :func:`thin_coverage` removes a random fraction of the claims
while guaranteeing every fact keeps at least one claim, so the fact set
(and hence the evaluation denominator) is stable across the sweep.
"""

from __future__ import annotations

import numpy as np

from repro.data.builder import DatasetBuilder
from repro.data.dataset import Dataset


def thin_coverage(
    dataset: Dataset, keep_fraction: float, seed: int = 0
) -> Dataset:
    """Randomly drop claims down to ``keep_fraction`` of the original.

    Every fact keeps at least one claim so the fact universe (and the
    evaluation denominators) stay comparable across coverage levels.
    """
    if not 0.0 < keep_fraction <= 1.0:
        raise ValueError("keep_fraction must be in (0, 1]")
    rng = np.random.default_rng(seed)
    builder = DatasetBuilder(
        name=f"{dataset.name} (coverage x{keep_fraction:.2f})"
    )
    builder.declare_sources(dataset.sources)
    builder.declare_objects(dataset.objects)
    builder.declare_attributes(dataset.attributes)
    builder.set_truths(dataset.truth)
    for fact, claims in dataset.claims_by_fact.items():
        keep = rng.random(len(claims)) < keep_fraction
        if not keep.any():
            keep[int(rng.integers(len(claims)))] = True
        for claim, kept in zip(claims, keep):
            if kept:
                builder.add_claim(
                    claim.source, claim.object, claim.attribute, claim.value
                )
    return builder.build()


def sample_objects(dataset: Dataset, n_objects: int, seed: int = 0) -> Dataset:
    """Restrict the dataset to a random subset of its objects."""
    if n_objects < 1:
        raise ValueError("n_objects must be at least 1")
    if n_objects >= len(dataset.objects):
        return dataset
    rng = np.random.default_rng(seed)
    chosen = set(
        rng.choice(len(dataset.objects), size=n_objects, replace=False).tolist()
    )
    keep = {o for i, o in enumerate(dataset.objects) if i in chosen}
    builder = DatasetBuilder(name=f"{dataset.name}|{n_objects}objects")
    builder.declare_sources(dataset.sources)
    builder.declare_objects([o for o in dataset.objects if o in keep])
    builder.declare_attributes(dataset.attributes)
    for claim in dataset.iter_claims():
        if claim.object in keep:
            builder.add_claim(
                claim.source, claim.object, claim.attribute, claim.value
            )
    builder.set_truths(
        {(o, a): v for (o, a), v in dataset.truth.items() if o in keep}
    )
    return builder.build()


def sample_sources(dataset: Dataset, n_sources: int, seed: int = 0) -> Dataset:
    """Restrict the dataset to a random subset of its sources."""
    if n_sources < 1:
        raise ValueError("n_sources must be at least 1")
    if n_sources >= len(dataset.sources):
        return dataset
    rng = np.random.default_rng(seed)
    chosen = set(
        rng.choice(len(dataset.sources), size=n_sources, replace=False).tolist()
    )
    keep = [s for i, s in enumerate(dataset.sources) if i in chosen]
    return dataset.restrict_sources(keep)
