"""Asyncio TCP front-end: the network face of :class:`TruthService`.

``repro serve --listen host:port`` binds a :class:`TruthServer` that
speaks the same JSON-lines protocol as the stdin/stdout front-end
(``ingest`` / ``query`` / ``snapshot`` / ``stats`` — see
:mod:`repro.serving.frontend`) over persistent TCP connections, with two
additions that only matter on a real network:

* requests may carry an ``"id"`` field, echoed verbatim in the matching
  response.  Requests on one connection are served concurrently (up to
  ``max_inflight_per_connection``), so a client that tags its requests
  can pipeline them and match responses out of order;
* overload — a full service admission queue *or* a connection at its
  in-flight cap — answers ``{"ok": false, "error": "overloaded",
  "retry_after_seconds": ...}`` instead of queueing unboundedly.  The
  bundled :class:`~repro.serving.client.AsyncTruthClient` honours the
  hint.

The design is robustness-first:

* **Framing limits.**  Lines longer than ``max_line_bytes`` are
  rejected loudly (one error response, then the connection is dropped);
  a connection that vanishes mid-line is counted as a torn frame and
  closed without disturbing anyone else.
* **Event-loop isolation.**  Ingest admissions run on a small
  executor (the admit path can touch the WAL), and ticket completion is
  bridged back via :meth:`IngestTicket.add_done_callback
  <repro.serving.service.IngestTicket.add_done_callback>` +
  ``call_soon_threadsafe`` — a deep queue parks zero threads, so
  hundreds of in-flight ingests cannot starve the loop.
* **Bounded writes.**  Each connection's transport gets a small write
  buffer and every response waits for ``drain()`` under
  ``write_timeout``; a slow-loris consumer is dropped (counted in
  ``net.conn.dropped``) instead of buffering the server into the
  ground.
* **Idle timeouts.**  A connection with no complete request for
  ``idle_timeout`` seconds is closed.
* **Graceful drain.**  :meth:`TruthServer.drain` (wired to SIGINT /
  SIGTERM by :func:`serve_network`) stops accepting, answers new
  requests with ``"draining"``, flushes every in-flight request, stops
  the service — which applies the remaining queue, commits the WAL and
  cuts a final checkpoint — and only then closes the sockets.  A
  drained server's last snapshot is therefore bit-identical to an
  offline ``TDAC.run`` over the acked claim log, exactly like the
  in-process service.

Everything observable lands on the service's tracer as ``net.*``
counters and gauges (``net.conn.{opened,closed,dropped}``,
``net.requests``, ``net.malformed``, ``net.conn.active``, ...) and in
the ``stats`` op response under ``stats["net"]``.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import signal
import time
from concurrent.futures import ThreadPoolExecutor
from typing import IO, Any

from repro.observability import SpanTracer
from repro.serving.config import (
    DEFAULT_MAX_LINE_BYTES,
    ServiceConfig,
    fold_legacy_kwargs,
)
from repro.serving.frontend import handle_request, parse_claims
from repro.serving.schema import envelope_error, envelope_tag
from repro.serving.service import (
    IngestTicket,
    ServiceOverloadedError,
    TruthService,
)

#: The per-knob keywords :class:`TruthServer` historically accepted;
#: still honoured through the :class:`ServiceConfig` deprecation shim.
SERVER_LEGACY_KWARGS = (
    "max_line_bytes",
    "max_inflight_per_connection",
    "idle_timeout",
    "write_timeout",
    "write_buffer_bytes",
    "drain_timeout",
)

#: Counter names the server maintains (and mirrors onto the tracer).
_COUNTERS = (
    "net.conn.opened",
    "net.conn.closed",
    "net.conn.dropped",
    "net.conn.idle_closed",
    "net.requests",
    "net.responses",
    "net.overloaded",
    "net.malformed",
    "net.torn_frames",
    "net.request_errors",
    "net.draining_rejected",
)


def parse_listen(listen: str) -> tuple[str, int]:
    """Split ``"host:port"`` (host may be empty ⇒ localhost)."""
    host, sep, port = listen.rpartition(":")
    if not sep or not port.isdigit():
        raise ValueError(
            f"--listen expects HOST:PORT (e.g. 127.0.0.1:7411), got {listen!r}"
        )
    return host or "127.0.0.1", int(port)


def _encode(response: dict) -> bytes:
    return (json.dumps(response, sort_keys=True, default=str) + "\n").encode(
        "utf-8"
    )


class _Connection:
    """One accepted socket: bounded reads, serialized bounded writes."""

    def __init__(
        self,
        server: "TruthServer",
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        self.server = server
        self.reader = reader
        self.writer = writer
        self.tasks: set[asyncio.Task] = set()
        self.write_lock = asyncio.Lock()
        self.dropped = False
        transport = writer.transport
        with contextlib.suppress(AttributeError, RuntimeError):
            transport.set_write_buffer_limits(
                high=server.write_buffer_bytes
            )

    async def run(self) -> None:
        server = self.server
        while not self.dropped:
            try:
                line = await asyncio.wait_for(
                    self.reader.readline(), server.idle_timeout
                )
            except asyncio.TimeoutError:
                server._count("net.conn.idle_closed")
                break
            except ValueError:
                # readline() overran the streams limit: the frame exceeds
                # max_line_bytes.  Reject loudly, then drop the peer.
                server._count("net.malformed")
                await self.send(
                    envelope_error(
                        "request line exceeds "
                        f"max_line_bytes={server.max_line_bytes}"
                    )
                )
                break
            except (ConnectionError, OSError):
                break
            if not line:
                break  # clean EOF
            if not line.endswith(b"\n"):
                # EOF mid-frame: the peer vanished between bytes.
                server._count("net.torn_frames")
                break
            raw = line.strip()
            if not raw:
                continue
            try:
                request = json.loads(raw)
                if not isinstance(request, dict):
                    raise ValueError("request must be a JSON object")
            except ValueError as exc:
                server._count("net.malformed")
                if not await self.send(
                    envelope_error(f"malformed request: {exc}")
                ):
                    break
                continue
            if server._draining:
                server._count("net.draining_rejected")
                await self.send(
                    self._tag(
                        request,
                        envelope_error(
                            "draining",
                            retry_after_seconds=server.drain_timeout,
                        ),
                    )
                )
                break
            if len(self.tasks) >= server.max_inflight_per_connection:
                # Connection-level backpressure: same contract as the
                # service's queue, so clients need one retry path only.
                server._count("net.overloaded")
                if not await self.send(
                    self._tag(request, server._overloaded_response())
                ):
                    break
                continue
            task = asyncio.create_task(self._process(request))
            self.tasks.add(task)
            task.add_done_callback(self.tasks.discard)
        if self.tasks:
            # Let in-flight requests finish and flush (bounded).
            await asyncio.wait(self.tasks, timeout=self.server.drain_timeout)

    async def _process(self, request: dict) -> None:
        server = self.server
        server._count("net.requests")
        server._gauge_inflight(+1)
        try:
            response = await server._handle_async(request)
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # a bad request must not stop serving
            server._count("net.request_errors")
            response = envelope_error(str(exc))
        finally:
            server._gauge_inflight(-1)
        await self.send(self._tag(request, response))

    @staticmethod
    def _tag(request: dict, response: dict) -> dict:
        if "id" in request:
            response = dict(response)
            response["id"] = request["id"]
        return response

    async def send(self, response: dict) -> bool:
        """Write one response line; False once the peer is unusable."""
        if self.dropped:
            return False
        data = _encode(response)
        async with self.write_lock:
            if self.dropped:
                return False
            try:
                self.writer.write(data)
                await asyncio.wait_for(
                    self.writer.drain(), self.server.write_timeout
                )
            except asyncio.TimeoutError:
                # Slow-loris consumer: the bounded write buffer never
                # drained.  Cut it off rather than buffer unboundedly.
                self.drop()
                return False
            except (ConnectionError, OSError):
                self.drop(count=False)
                return False
        self.server._count("net.responses")
        return True

    def drop(self, count: bool = True) -> None:
        """Abort the transport (server-initiated when ``count``)."""
        if self.dropped:
            return
        self.dropped = True
        if count:
            self.server._count("net.conn.dropped")
        with contextlib.suppress(Exception):
            self.writer.transport.abort()

    async def close(self) -> None:
        for task in list(self.tasks):
            task.cancel()
        if self.tasks:
            await asyncio.gather(*self.tasks, return_exceptions=True)
        if not self.dropped:
            with contextlib.suppress(ConnectionError, OSError):
                self.writer.close()
                await self.writer.wait_closed()


class TruthServer:
    """Asyncio TCP server bridging JSON-lines clients into a service.

    Parameters
    ----------
    service:
        A **started** :class:`TruthService` (the server never starts
        it), or any object with the same duck type — e.g. a started
        :class:`~repro.serving.sharding.ShardRouter`, or a
        :class:`~repro.serving.tenancy.TenantRegistry` whose
        ``resolve_tenant`` the request paths consult to route requests
        carrying a ``tenant`` field.
    host, port:
        Bind address; port 0 picks a free port (reported by
        :meth:`start`).
    service_config:
        :class:`~repro.serving.config.ServiceConfig` providing the
        network knobs — ``max_line_bytes``,
        ``max_inflight_per_connection``, ``idle_timeout``,
        ``write_timeout``, ``write_buffer_bytes``, ``drain_timeout``
        (``None`` means the service's own config, falling back to
        defaults).  The old per-knob keywords still work through a
        :class:`DeprecationWarning` shim; see CHANGELOG 1.5.0.
    stop_service_on_drain:
        Whether :meth:`drain` calls ``service.stop()`` (commit WAL, cut
        the final checkpoint) before closing sockets.  The CLI leaves
        this on; embedders managing the service themselves can turn it
        off.
    tracer:
        Where ``net.*`` counters/gauges land; defaults to the service's.
    """

    def __init__(
        self,
        service: TruthService,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        service_config: ServiceConfig | None = None,
        stop_service_on_drain: bool = True,
        tracer: SpanTracer | None = None,
        **legacy,
    ) -> None:
        if service_config is None and not legacy:
            # Inherit the service's own config so one ServiceConfig
            # passed to TruthService flows through to the network knobs.
            service_config = getattr(service, "service_config", None)
        service_config = fold_legacy_kwargs(
            "TruthServer", service_config, legacy, SERVER_LEGACY_KWARGS
        )
        self.service_config = service_config
        self.service = service
        self.host = host
        self.port = port
        self.max_line_bytes = service_config.max_line_bytes
        self.max_inflight_per_connection = (
            service_config.max_inflight_per_connection
        )
        self.idle_timeout = service_config.idle_timeout
        self.write_timeout = service_config.write_timeout
        self.write_buffer_bytes = service_config.write_buffer_bytes
        self.drain_timeout = service_config.drain_timeout
        self.stop_service_on_drain = stop_service_on_drain
        self._tracer = (
            tracer if tracer is not None
            else getattr(service, "_tracer", None)
        )
        self._counters = dict.fromkeys(_COUNTERS, 0)
        self._inflight = 0
        self._conns: set[_Connection] = set()
        self._server: asyncio.AbstractServer | None = None
        self._executor: ThreadPoolExecutor | None = None
        self._drain_requested: asyncio.Event | None = None
        self._draining = False
        self._drained = False

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------

    def _count(self, name: str, n: int = 1) -> None:
        self._counters[name] = self._counters.get(name, 0) + n
        if self._tracer is not None:
            self._tracer.count(name, n)

    def _gauge(self, name: str, value: float) -> None:
        if self._tracer is not None:
            self._tracer.gauge(name, value)

    def _gauge_inflight(self, delta: int) -> None:
        self._inflight += delta
        self._gauge("net.requests.inflight", self._inflight)

    @property
    def stats(self) -> dict:
        """Connection/backpressure counters plus live gauges."""
        out = dict(self._counters)
        out["connections_active"] = len(self._conns)
        out["requests_inflight"] = self._inflight
        out["listen"] = f"{self.host}:{self.port}"
        out["draining"] = self._draining
        return out

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> tuple[str, int]:
        """Bind and start accepting; returns the bound (host, port)."""
        if self._server is not None:
            raise RuntimeError("server already started")
        self._drain_requested = asyncio.Event()
        self._executor = ThreadPoolExecutor(
            max_workers=4, thread_name_prefix="tdac-net"
        )
        self._server = await asyncio.start_server(
            self._on_connection,
            self.host,
            self.port,
            limit=self.max_line_bytes,
        )
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]
        return self.host, self.port

    def request_drain(self) -> None:
        """Ask the server to drain; callable from loop signal handlers."""
        if self._drain_requested is not None:
            self._drain_requested.set()

    async def serve_until_drained(self) -> None:
        """Accept and serve until :meth:`request_drain`, then drain."""
        if self._server is None:
            await self.start()
        assert self._drain_requested is not None
        try:
            await self._drain_requested.wait()
        finally:
            await self.drain()

    async def drain(self) -> None:
        """Graceful shutdown: accept → flush → stop service → close.

        1. stop accepting new connections and answer further requests on
           live ones with ``"draining"``;
        2. wait (bounded by ``drain_timeout``) for every in-flight
           request to finish and flush its response;
        3. stop the service — applies everything admitted, commits the
           WAL and cuts the final checkpoint;
        4. close the remaining sockets.
        """
        if self._drained:
            return
        self._drained = True
        self._draining = True
        if self._drain_requested is not None:
            self._drain_requested.set()
        if self._server is not None:
            self._server.close()
            # Python <3.12 wait_closed() may return before handlers
            # finish; connection shutdown is tracked explicitly below.
            with contextlib.suppress(Exception):
                await self._server.wait_closed()
        deadline = time.monotonic() + self.drain_timeout
        tasks = {task for conn in self._conns for task in conn.tasks}
        if tasks:
            await asyncio.wait(
                tasks, timeout=max(0.0, deadline - time.monotonic())
            )
        if self.stop_service_on_drain:
            loop = asyncio.get_running_loop()
            assert self._executor is not None
            await loop.run_in_executor(self._executor, self.service.stop)
        for conn in list(self._conns):
            await conn.close()
        while self._conns and time.monotonic() < deadline:
            await asyncio.sleep(0.02)
        if self._executor is not None:
            self._executor.shutdown(wait=False)

    # ------------------------------------------------------------------
    # Request handling
    # ------------------------------------------------------------------

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        if self._draining:
            writer.close()
            return
        conn = _Connection(self, reader, writer)
        self._conns.add(conn)
        self._count("net.conn.opened")
        self._gauge("net.conn.active", len(self._conns))
        try:
            await conn.run()
        finally:
            await conn.close()
            self._conns.discard(conn)
            self._count("net.conn.closed")
            self._gauge("net.conn.active", len(self._conns))

    def _overloaded_response(self) -> dict:
        # Mirror ServiceOverloadedError's hint: roughly how long until
        # the batcher works off what is currently ahead of the caller.
        retry_after = max(
            getattr(self.service, "_last_batch_seconds", 0.05), 1e-3
        )
        return envelope_error(
            "overloaded", retry_after_seconds=retry_after
        )

    async def _handle_async(self, request: dict) -> dict:
        op = request.get("op")
        if op == "ingest":
            return await self._handle_ingest(request)
        response = handle_request(self.service, request)
        if op == "stats" and response.get("ok"):
            response["stats"]["net"] = self.stats
        return response

    async def _handle_ingest(self, request: dict) -> dict:
        # Multi-tenant dispatch mirrors frontend.handle_request: resolve
        # the request's tenant to its handle (quota enforcement and
        # per-tenant counters live there), or serve the bare service.
        target = self.service
        resolver = getattr(target, "resolve_tenant", None)
        if resolver is not None:
            try:
                target = resolver(request.get("tenant"))
            except KeyError as exc:
                return envelope_error(str(exc.args[0] if exc.args else exc))
        claims = parse_claims(request.get("claims"))
        loop = asyncio.get_running_loop()
        assert self._executor is not None
        try:
            # Admission can touch the WAL (fsync), so it runs off-loop;
            # waiting for application costs no thread at all.
            ticket = await loop.run_in_executor(
                self._executor, target.ingest, claims
            )
        except ServiceOverloadedError as exc:
            self._count("net.overloaded")
            return envelope_error(
                "overloaded",
                op="ingest",
                retry_after_seconds=exc.retry_after_seconds,
                **self._wire_context(target),
            )
        snapshot = await self._await_ticket(ticket)
        return envelope_tag(
            {
                "ok": True,
                "op": "ingest",
                "applied": len(ticket.claims),
                "offset": ticket.offset,
                "version": snapshot.version,
                "watermark": snapshot.watermark,
            },
            **self._wire_context(target),
        )

    def _wire_context(self, target=None) -> dict:
        context = getattr(
            self.service if target is None else target, "wire_context", None
        ) or {}
        return {
            "tenant": context.get("tenant"),
            "shard": context.get("shard"),
        }

    @staticmethod
    async def _await_ticket(ticket: IngestTicket):
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()

        def settle() -> None:
            if future.cancelled():
                return
            try:
                future.set_result(ticket.wait(0))
            except BaseException as exc:  # ticket failure -> caller
                future.set_exception(exc)

        ticket.add_done_callback(
            lambda: loop.call_soon_threadsafe(settle)
        )
        return await future


def serve_network(
    service: TruthService,
    listen: str | tuple[str, int],
    *,
    announce: IO[str] | None = None,
    install_signal_handlers: bool = True,
    **server_kwargs: Any,
) -> int:
    """Run a :class:`TruthServer` until SIGINT/SIGTERM drains it.

    The blocking entry point behind ``repro serve --listen``.  Emits a
    ``{"event": "listening", "host": ..., "port": ...}`` JSON line on
    ``announce`` once bound (harnesses launching the server as a
    subprocess parse it to learn the bound port) and an
    ``{"event": "drained", ...}`` line with the final counters on exit.
    """
    if isinstance(listen, str):
        host, port = parse_listen(listen)
    else:
        host, port = listen

    def _announce(payload: dict) -> None:
        if announce is None:
            return
        try:
            announce.write(
                json.dumps(payload, sort_keys=True, default=str) + "\n"
            )
            announce.flush()
        except (BrokenPipeError, ValueError):
            pass  # the launcher is gone; keep serving/draining anyway

    async def _main() -> int:
        server = TruthServer(service, host=host, port=port, **server_kwargs)
        bound_host, bound_port = await server.start()
        loop = asyncio.get_running_loop()
        if install_signal_handlers:
            for signum in (signal.SIGINT, signal.SIGTERM):
                with contextlib.suppress(NotImplementedError, RuntimeError):
                    loop.add_signal_handler(signum, server.request_drain)
        _announce(
            {"event": "listening", "host": bound_host, "port": bound_port}
        )
        await server.serve_until_drained()
        _announce({"event": "drained", "net": server.stats})
        return 0

    try:
        return asyncio.run(_main())
    except KeyboardInterrupt:
        # Loops without signal-handler support (e.g. non-main threads on
        # some platforms) land here; the service still stops cleanly.
        service.stop()
        return 0
