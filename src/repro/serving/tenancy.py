"""Multi-tenant serving: many tenants, shared engines, isolated accounting.

A :class:`TenantRegistry` multiplexes named tenants over shared serving
engines.  The unit of sharing is the **engine key**
``(dataset fingerprint, config fingerprint)`` — the same pair that
content-addresses checkpoints and partition-cache entries — so two
tenants registered over the same corpus and config get handles onto the
*same* :class:`~repro.serving.sharding.ShardRouter` (same workers, same
WAL, same merged view), while tenants with different keys get disjoint
engines under disjoint store namespaces.

What is shared and what is isolated:

* **Shared across every engine**: one
  :class:`~repro.core.cache.PartitionCache` (a sweep certified for one
  tenant warm-starts any other tenant on the same key) and one
  :class:`~repro.observability.SpanTracer`.
* **Shared within an engine**: the per-shard
  :class:`~repro.store.snapshots.SnapshotStore` instances, handed to
  the router through its ``snapshot_store_factory`` hook and memoized
  here, so every tenant on the key (and every shard restore) sees the
  same checkpoint pool.  Content addressing keeps entries from distinct
  keys collision-free by construction.
* **Isolated per engine**: the WAL namespace.  Each engine's durable
  state lives under ``<store_root>/tenants/<owner>/`` (the first
  registered tenant on the key names the namespace), so one tenant's
  recovery never scans another key's log.
* **Isolated per tenant**: admission quotas and counters.  A
  :class:`TenantHandle` enforces a pending-claims quota *before*
  delegating to the shared engine — a noisy tenant exhausts its quota,
  not the neighbours' queue — and stamps ``tenant.<name>.*`` counters
  plus the ``tenant`` field of the ``tdac-serve/v1`` envelope.

Handles duck-type :class:`~repro.serving.service.TruthService`, and the
registry itself duck-types one too (delegating to a default tenant and
resolving the rest via :meth:`TenantRegistry.resolve_tenant`), so the
existing front-ends serve a whole registry unchanged.
"""

from __future__ import annotations

import threading
from pathlib import Path
from typing import Iterable, Mapping

from repro.core.cache import PartitionCache
from repro.core.config import TDACConfig
from repro.data.dataset import Dataset
from repro.data.types import AttributeId, Claim, ObjectId
from repro.observability import SpanTracer
from repro.serving.config import ServiceConfig
from repro.serving.service import (
    QueryAnswer,
    ServiceOverloadedError,
    ServiceStoppedError,
)
from repro.serving.sharding import MergedSnapshot, ShardRouter


class UnknownTenantError(KeyError):
    """The request named a tenant this registry never registered."""


class TenantQuotaError(ServiceOverloadedError):
    """The tenant's own admission quota is exhausted (not the engine's).

    Subclasses :class:`ServiceOverloadedError` so every existing
    overload path (front-end rejections, client retry loops) handles it
    unchanged; ``tenant`` says whose quota tripped.
    """

    def __init__(
        self,
        tenant: str,
        pending_claims: int,
        quota: int,
        retry_after_seconds: float,
    ) -> None:
        super().__init__(pending_claims, quota, retry_after_seconds)
        self.tenant = tenant


class TenantHandle:
    """One tenant's view of a (possibly shared) serving engine.

    Same read/write surface as :class:`TruthService`; writes are
    metered against the tenant's quota and counted under the tenant's
    name before delegating to the engine.  Engine lifecycle belongs to
    the registry — handles have no ``start``/``stop``.
    """

    def __init__(
        self,
        name: str,
        engine: ShardRouter,
        registry: "TenantRegistry",
        quota: int | None,
    ) -> None:
        self.name = name
        self.engine = engine
        self.quota = quota
        self._registry = registry
        self._lock = threading.Lock()
        self._pending_claims = 0
        self._counters = {
            "ingested_tickets": 0,
            "ingested_claims": 0,
            "applied_claims": 0,
            "quota_rejections": 0,
            "overloaded_tickets": 0,
            "queries": 0,
        }

    # -- serving surface -------------------------------------------------

    @property
    def wire_context(self) -> dict:
        """Routing context the front-ends stamp onto every response."""
        return {"tenant": self.name}

    @property
    def service_config(self) -> ServiceConfig:
        return self.engine.service_config

    @property
    def config(self) -> TDACConfig:
        return self.engine.config

    @property
    def _tracer(self) -> SpanTracer | None:
        return self.engine._tracer

    @property
    def _last_batch_seconds(self) -> float:
        return self.engine._last_batch_seconds

    def ingest(
        self,
        claims: Iterable[Claim],
        wait: bool = False,
        timeout: float | None = None,
    ):
        """Quota-check, count, then delegate to the shared engine.

        The quota bounds this tenant's *pending* (admitted, unapplied)
        claims; at the limit the batch is rejected with
        :class:`TenantQuotaError` without ever touching the engine
        queue, so one tenant cannot starve the others' admissions.
        """
        batch = tuple(claims)
        if not batch:
            raise ValueError("ingest requires at least one claim")
        with self._lock:
            if self.quota is not None and (
                self._pending_claims + len(batch) > self.quota
            ):
                self._counters["quota_rejections"] += 1
                self._count("quota_rejections")
                raise TenantQuotaError(
                    self.name,
                    self._pending_claims,
                    self.quota,
                    self.engine._last_batch_seconds,
                )
            self._pending_claims += len(batch)
        try:
            ticket = self.engine.ingest(batch)
        except ServiceOverloadedError:
            with self._lock:
                self._pending_claims -= len(batch)
                self._counters["overloaded_tickets"] += 1
            self._count("overloaded")
            raise
        with self._lock:
            self._counters["ingested_tickets"] += 1
            self._counters["ingested_claims"] += len(batch)
        self._count("ingest")
        self._count("ingest.claims", len(batch))

        def settled() -> None:
            with self._lock:
                self._pending_claims -= len(batch)
                self._counters["applied_claims"] += len(batch)
            self._count("applied.claims", len(batch))

        ticket.add_done_callback(settled)
        if wait:
            ticket.wait(timeout)
        return ticket

    def query(self, obj: ObjectId, attribute: AttributeId) -> QueryAnswer:
        with self._lock:
            self._counters["queries"] += 1
        self._count("query")
        return self.engine.query(obj, attribute)

    def snapshot(self) -> MergedSnapshot:
        return self.engine.snapshot()

    def replay_dataset(self, watermark: int | None = None) -> Dataset:
        return self.engine.replay_dataset(watermark)

    def drain(self, timeout: float | None = None) -> bool:
        return self.engine.drain(timeout)

    @property
    def claim_log(self) -> tuple[Claim, ...]:
        return self.engine.claim_log

    @property
    def stats(self) -> dict:
        """Tenant accounting first, shared-engine stats nested under it."""
        with self._lock:
            out = dict(self._counters)
            out["pending_claims"] = self._pending_claims
        out["tenant"] = self.name
        out["quota"] = self.quota
        out["engine"] = self.engine.stats
        return out

    # -- internals -------------------------------------------------------

    def _count(self, suffix: str, n: int = 1) -> None:
        tracer = self.engine._tracer
        if tracer is not None:
            tracer.count(f"tenant.{self.name}.{suffix}", n)


class TenantRegistry:
    """Named tenants multiplexed over fingerprint-keyed shared engines.

    Parameters
    ----------
    store_root:
        Optional durability root; engine ``E`` owned by tenant ``t``
        stores under ``<store_root>/tenants/<t>/``.  ``None`` keeps
        every engine in memory.
    partition_cache:
        Shared across all engines (defaults to a fresh cache).
    tracer:
        Shared :class:`SpanTracer`; per-tenant counters land here under
        ``tenant.<name>.*``.
    n_shards / service_config:
        Defaults for engines whose :meth:`register` call does not
        override them.

    The registry also duck-types the single-service surface (delegating
    to the default tenant — the first one registered) so ``repro serve``
    and :class:`~repro.serving.net.TruthServer` can serve it directly;
    requests carrying a ``tenant`` field are routed through
    :meth:`resolve_tenant` by the front-ends.
    """

    def __init__(
        self,
        *,
        store_root: str | Path | None = None,
        partition_cache: PartitionCache | None = None,
        tracer: SpanTracer | None = None,
        n_shards: int = 1,
        service_config: ServiceConfig | None = None,
    ) -> None:
        self.store_root = None if store_root is None else Path(store_root)
        self.partition_cache = (
            partition_cache if partition_cache is not None else PartitionCache()
        )
        self.tracer = tracer
        self.default_n_shards = n_shards
        self.default_service_config = (
            service_config if service_config is not None else ServiceConfig()
        )
        self._lock = threading.Lock()
        self._tenants: dict[str, TenantHandle] = {}
        self._engines: dict[tuple[str, str], ShardRouter] = {}
        self._engine_owner: dict[tuple[str, str], str] = {}
        self._snapshot_pools: dict[tuple, object] = {}
        self._default: str | None = None
        self._closed = False

    # -- registration ----------------------------------------------------

    def register(
        self,
        name: str,
        base,
        dataset: Dataset,
        *,
        config: TDACConfig | None = None,
        service_config: ServiceConfig | None = None,
        n_shards: int | None = None,
        quota: int | None = None,
    ) -> TenantHandle:
        """Admit a tenant; reuse the engine when its key already runs.

        The engine key is ``(dataset.fingerprint, config.fingerprint())``
        — registering a second tenant over an already-served corpus and
        config returns a fresh handle onto the *same* running router
        (its claims and the first tenant's interleave into one exact
        merged view).  A genuinely new key builds and starts a new
        engine under the registering tenant's store namespace.
        """
        config = config if config is not None else TDACConfig()
        key = (dataset.fingerprint, config.fingerprint())
        with self._lock:
            if self._closed:
                raise ServiceStoppedError("registry was stopped")
            if name in self._tenants:
                raise ValueError(f"tenant {name!r} is already registered")
            engine = self._engines.get(key)
        if engine is None:
            engine = ShardRouter(
                base,
                dataset,
                n_shards=(
                    n_shards if n_shards is not None else self.default_n_shards
                ),
                config=config,
                service_config=(
                    service_config
                    if service_config is not None
                    else self.default_service_config
                ),
                partition_cache=self.partition_cache,
                tracer=self.tracer,
                store=self._engine_store_root(name),
                snapshot_store_factory=self._snapshot_factory(key, name),
            )
            engine.start()
            with self._lock:
                self._engines[key] = engine
                self._engine_owner[key] = name
        handle = TenantHandle(name, engine, self, quota)
        with self._lock:
            self._tenants[name] = handle
            if self._default is None:
                self._default = name
        if self.tracer is not None:
            self.tracer.count("tenant.registered")
        return handle

    def _engine_store_root(self, owner: str) -> Path | None:
        if self.store_root is None:
            return None
        return self.store_root / "tenants" / owner

    def _snapshot_factory(self, key: tuple[str, str], owner: str):
        """Shared-per-engine SnapshotStore instances for the router hook.

        Memoized by (engine key, epoch, shard): a shard restore — or a
        second tenant on the key — receives the *same* store object, so
        all checkpoints of one engine slot live in one pool.
        """
        if self.store_root is None:
            return None
        from repro.store.snapshots import SnapshotStore

        root = self._engine_store_root(owner)

        def factory(epoch: int, shard: int) -> SnapshotStore:
            pool_key = (key, epoch, shard)
            with self._lock:
                store = self._snapshot_pools.get(pool_key)
                if store is None:
                    store = SnapshotStore(
                        root
                        / "snapshots"
                        / f"epoch-{epoch:03d}-shard-{shard:02d}"
                    )
                    self._snapshot_pools[pool_key] = store
            return store

        return factory

    # -- lookup ----------------------------------------------------------

    def resolve_tenant(self, name: str | None) -> TenantHandle:
        """Front-end dispatch: a request's ``tenant`` field to its handle.

        ``None`` (an untagged request) resolves to the default tenant;
        an unregistered name raises :class:`UnknownTenantError`.
        """
        with self._lock:
            if name is None:
                name = self._default
            if name is None:
                raise UnknownTenantError("registry has no tenants")
            handle = self._tenants.get(name)
        if handle is None:
            raise UnknownTenantError(
                f"unknown tenant {name!r}; registered: "
                f"{sorted(self._tenants)}"
            )
        return handle

    @property
    def tenants(self) -> tuple[str, ...]:
        with self._lock:
            return tuple(sorted(self._tenants))

    @property
    def engines(self) -> Mapping[tuple[str, str], ShardRouter]:
        with self._lock:
            return dict(self._engines)

    # -- single-service duck-type (delegates to the default tenant) -----

    def _default_handle(self) -> TenantHandle:
        return self.resolve_tenant(None)

    @property
    def wire_context(self) -> dict:
        return self._default_handle().wire_context

    def ingest(self, claims, wait: bool = False, timeout: float | None = None):
        return self._default_handle().ingest(claims, wait=wait, timeout=timeout)

    def query(self, obj, attribute):
        return self._default_handle().query(obj, attribute)

    def snapshot(self):
        return self._default_handle().snapshot()

    @property
    def service_config(self) -> ServiceConfig:
        return self._default_handle().service_config

    @property
    def _tracer(self) -> SpanTracer | None:
        return self.tracer

    @property
    def _last_batch_seconds(self) -> float:
        worst = 0.05
        with self._lock:
            engines = list(self._engines.values())
        for engine in engines:
            worst = max(worst, engine._last_batch_seconds)
        return worst

    @property
    def stats(self) -> dict:
        """Per-tenant accounting plus one entry per distinct engine."""
        with self._lock:
            tenants = dict(self._tenants)
            engines = dict(self._engines)
            owners = dict(self._engine_owner)
        return {
            "tenants": {name: h.stats for name, h in sorted(tenants.items())},
            "engines": {
                f"{owners[key]}:{key[0][:8]}:{key[1][:8]}": engine.stats
                for key, engine in engines.items()
            },
            "n_tenants": len(tenants),
            "n_engines": len(engines),
        }

    def drain(self, timeout: float | None = None) -> bool:
        with self._lock:
            engines = list(self._engines.values())
        for engine in engines:
            if not engine.drain(timeout):
                return False
        return True

    def stop(
        self, timeout: float | None = None, checkpoint: bool = True
    ) -> None:
        """Stop every engine (idempotent); the registry stops admitting."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            engines = list(self._engines.values())
        for engine in engines:
            engine.stop(timeout, checkpoint=checkpoint)

    def __enter__(self) -> "TenantRegistry":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
