"""Line-oriented front-end for :class:`~repro.serving.service.TruthService`.

The ``repro serve`` subcommand drives a service over JSON lines: one
request object per stdin line, one response object per stdout line —
trivially scriptable (``echo '{"op": ...}' | python -m repro serve``)
and enough to smoke-test the serving stack end to end without a network
dependency.

Requests
--------
``{"op": "ingest", "claims": [{"source", "object", "attribute", "value"}, ...]}``
    Admit the claims and wait for them to apply; responds with the
    covering snapshot's version/watermark.  Overload responds with
    ``{"ok": false, "error": "overloaded", "retry_after_seconds": ...}``.
``{"op": "query", "object": ..., "attribute": ...}``
    Point read against the current snapshot.
``{"op": "snapshot"}``
    The full current snapshot in the ``tdac-result/v1`` schema.
``{"op": "stats"}``
    Serving / engine / cache counters.

:func:`run_smoke` is the self-driving round trip behind
``repro serve --smoke`` and ``make test-serving``: it ingests against a
live service and asserts the published snapshot is bit-identical to an
offline :meth:`TDAC.run <repro.core.tdac.TDAC.run>` replay.
"""

from __future__ import annotations

import json
from typing import IO, Any, Iterable

from repro.data.types import Claim
from repro.serving.service import ServiceOverloadedError, TruthService


def _parse_claims(raw: Any) -> list[Claim]:
    if not isinstance(raw, list) or not raw:
        raise ValueError("'claims' must be a non-empty list")
    claims = []
    for entry in raw:
        try:
            claims.append(
                Claim(
                    source=entry["source"],
                    object=entry["object"],
                    attribute=entry["attribute"],
                    value=entry["value"],
                )
            )
        except (TypeError, KeyError) as exc:
            raise ValueError(
                "each claim needs source/object/attribute/value"
            ) from exc
    return claims


def _handle(service: TruthService, request: dict) -> dict:
    op = request.get("op")
    if op == "ingest":
        try:
            ticket = service.ingest(_parse_claims(request.get("claims")))
            snapshot = ticket.wait()
        except ServiceOverloadedError as exc:
            return {
                "ok": False,
                "error": "overloaded",
                "retry_after_seconds": exc.retry_after_seconds,
            }
        return {
            "ok": True,
            "op": "ingest",
            "applied": len(ticket.claims),
            "offset": ticket.offset,
            "version": snapshot.version,
            "watermark": snapshot.watermark,
        }
    if op == "query":
        answer = service.query(request.get("object"), request.get("attribute"))
        return {
            "ok": True,
            "op": "query",
            "object": answer.object,
            "attribute": answer.attribute,
            "value": answer.value,
            "found": answer.found,
            "version": answer.version,
            "watermark": answer.watermark,
            "exact": answer.exact,
        }
    if op == "snapshot":
        return {"ok": True, "op": "snapshot", "snapshot": service.snapshot().to_dict()}
    if op == "stats":
        return {"ok": True, "op": "stats", "stats": service.stats}
    return {"ok": False, "error": f"unknown op {op!r}"}


def serve_jsonl(
    service: TruthService, lines: Iterable[str], out: IO[str]
) -> int:
    """Drive ``service`` from JSON-lines requests; returns an exit code.

    Malformed lines produce an ``{"ok": false}`` response instead of
    stopping the loop, so one bad client request cannot kill the server.
    """
    for line in lines:
        line = line.strip()
        if not line:
            continue
        try:
            request = json.loads(line)
            if not isinstance(request, dict):
                raise ValueError("request must be a JSON object")
            response = _handle(service, request)
        except Exception as exc:  # a bad request must not stop serving
            response = {"ok": False, "error": str(exc)}
        out.write(json.dumps(response, sort_keys=True, default=str) + "\n")
        out.flush()
    return 0


def run_smoke(
    algorithm: str = "MajorityVote",
    out: IO[str] | None = None,
    seed: int = 0,
) -> int:
    """Self-driving serve round trip; 0 iff the bit-identity check holds.

    Starts a service on a small synthetic corpus, ingests two claim
    batches (one touching a brand-new object), queries, then replays the
    accumulated claims offline through ``TDAC.run`` and asserts the
    served snapshot matches field for field.
    """
    import sys

    from repro.algorithms import create
    from repro.core import TDAC, PartitionCache, TDACConfig
    from repro.datasets import make_synthetic
    from repro.observability import SpanTracer

    out = sys.stdout if out is None else out
    dataset = make_synthetic("DS1", n_objects=20, seed=seed).dataset
    config = TDACConfig(seed=seed)
    tracer = SpanTracer()
    service = TruthService(
        create(algorithm),
        dataset,
        config=config,
        partition_cache=PartitionCache(),
        tracer=tracer,
        max_wait_ms=1.0,
    )
    with service:
        source = dataset.sources[0]
        attribute = dataset.attributes[0]
        service.ingest(
            [Claim(source, "smoke-object", attribute, "smoke-value")],
            wait=True,
        )
        service.ingest(
            [
                Claim(s, "smoke-object", dataset.attributes[1], 7)
                for s in dataset.sources[:2]
            ],
            wait=True,
        )
        answer = service.query("smoke-object", attribute)
        snapshot = service.snapshot()
        replayed = service.replay_dataset(snapshot.watermark)
        offline = TDAC(create(algorithm), config=config).run(replayed)
    checks = {
        "query_found": answer.found and answer.value == "smoke-value",
        "versions_monotone": snapshot.version == 3,  # start + 2 batches
        "watermark": snapshot.watermark == 3,
        "predictions_identical": (
            dict(snapshot.predictions) == dict(offline.result.predictions)
        ),
        "trust_identical": (
            dict(snapshot.source_trust) == dict(offline.result.source_trust)
        ),
        "partition_identical": snapshot.partition == offline.partition,
        "serve_spans_traced": any(
            span.name.startswith("serve.") for span in tracer.spans
        ),
        "batch_counters": tracer.counters.get("serve.batch", 0) >= 2,
    }
    ok = all(checks.values())
    out.write(
        json.dumps(
            {"ok": ok, "op": "smoke", "checks": checks, "stats": service.stats},
            sort_keys=True,
            default=str,
        )
        + "\n"
    )
    return 0 if ok else 1
