"""Line-oriented front-end for :class:`~repro.serving.service.TruthService`.

The ``repro serve`` subcommand drives a service over JSON lines: one
request object per stdin line, one response object per stdout line —
trivially scriptable (``echo '{"op": ...}' | python -m repro serve``)
and enough to smoke-test the serving stack end to end without a network
dependency.

Requests
--------
``{"op": "ingest", "claims": [{"source", "object", "attribute", "value"}, ...]}``
    Admit the claims and wait for them to apply; responds with the
    covering snapshot's version/watermark.  Overload responds with
    ``{"ok": false, "error": "overloaded", "retry_after_seconds": ...}``.
``{"op": "query", "object": ..., "attribute": ...}``
    Point read against the current snapshot.
``{"op": "snapshot"}``
    The full current snapshot in the ``tdac-result/v1`` schema.
``{"op": "stats"}``
    Serving / engine / cache counters.

:func:`run_smoke` is the self-driving round trip behind
``repro serve --smoke`` and ``make test-serving``: it ingests against a
live service and asserts the published snapshot is bit-identical to an
offline :meth:`TDAC.run <repro.core.tdac.TDAC.run>` replay.
"""

from __future__ import annotations

import json
from typing import IO, Any, Iterable

from repro.data.types import Claim
from repro.serving.schema import envelope_error, envelope_tag
from repro.serving.service import ServiceOverloadedError, TruthService


def parse_claims(raw: Any) -> list[Claim]:
    """Coerce the wire-format ``claims`` payload into :class:`Claim` rows.

    Shared by this stdin/stdout front-end and the asyncio network
    front-end (:mod:`repro.serving.net`), so both reject malformed
    batches with the same message.
    """
    if not isinstance(raw, list) or not raw:
        raise ValueError("'claims' must be a non-empty list")
    claims = []
    for entry in raw:
        try:
            claims.append(
                Claim(
                    source=entry["source"],
                    object=entry["object"],
                    attribute=entry["attribute"],
                    value=entry["value"],
                )
            )
        except (TypeError, KeyError) as exc:
            raise ValueError(
                "each claim needs source/object/attribute/value"
            ) from exc
    return claims


def handle_request(service: TruthService, request: dict) -> dict:
    """Serve one already-parsed request object; never raises for bad input.

    ``ingest`` blocks until the batch is applied; the other ops are
    wait-free reads.  The network front-end reuses this for everything
    except ``ingest`` (which it bridges asynchronously so a deep queue
    does not pin one thread per in-flight request).
    """
    op = request.get("op")
    # Multi-tenant dispatch: a registry resolves the request's (possibly
    # absent) ``tenant`` field to the handle actually served; a bare
    # service ignores the field entirely.
    resolver = getattr(service, "resolve_tenant", None)
    if resolver is not None:
        try:
            service = resolver(request.get("tenant"))
        except KeyError as exc:
            return envelope_error(str(exc.args[0] if exc.args else exc))
    # Multi-tenant / sharded wrappers advertise routing context for the
    # tdac-serve/v1 envelope; a bare TruthService has none.
    context = getattr(service, "wire_context", None) or {}
    tenant = context.get("tenant")
    shard = context.get("shard")

    def _tag(response: dict) -> dict:
        return envelope_tag(response, tenant=tenant, shard=shard)

    if op == "ingest":
        try:
            ticket = service.ingest(parse_claims(request.get("claims")))
            snapshot = ticket.wait()
        except ServiceOverloadedError as exc:
            return envelope_error(
                "overloaded",
                op="ingest",
                retry_after_seconds=exc.retry_after_seconds,
                tenant=tenant,
                shard=shard,
            )
        return _tag(
            {
                "ok": True,
                "op": "ingest",
                "applied": len(ticket.claims),
                "offset": ticket.offset,
                "version": snapshot.version,
                "watermark": snapshot.watermark,
            }
        )
    if op == "query":
        answer = service.query(request.get("object"), request.get("attribute"))
        return _tag(
            {
                "ok": True,
                "op": "query",
                "object": answer.object,
                "attribute": answer.attribute,
                "value": answer.value,
                "found": answer.found,
                "version": answer.version,
                "watermark": answer.watermark,
                "exact": answer.exact,
            }
        )
    if op == "snapshot":
        return _tag(
            {"ok": True, "op": "snapshot", "snapshot": service.snapshot().to_dict()}
        )
    if op == "stats":
        return _tag({"ok": True, "op": "stats", "stats": service.stats})
    return envelope_error(
        f"unknown op {op!r}", tenant=tenant, shard=shard
    )


def serve_jsonl(
    service: TruthService, lines: Iterable[str], out: IO[str]
) -> int:
    """Drive ``service`` from JSON-lines requests; returns an exit code.

    Malformed lines produce an ``{"ok": false}`` response instead of
    stopping the loop, so one bad client request cannot kill the server.
    A consumer that vanishes mid-stream (``BrokenPipeError``, or the
    ``ValueError`` a closed text stream raises) ends the loop cleanly
    instead of escaping as an unhandled traceback — the caller's
    ``service.stop()`` then drains and checkpoints as usual.
    """
    for line in lines:
        line = line.strip()
        if not line:
            continue
        try:
            request = json.loads(line)
            if not isinstance(request, dict):
                raise ValueError("request must be a JSON object")
            response = handle_request(service, request)
        except Exception as exc:  # a bad request must not stop serving
            response = envelope_error(str(exc))
        try:
            out.write(json.dumps(response, sort_keys=True, default=str) + "\n")
            out.flush()
        except (BrokenPipeError, ValueError):
            # The consumer is gone; there is nobody left to respond to.
            break
    return 0


def run_smoke(
    algorithm: str = "MajorityVote",
    out: IO[str] | None = None,
    seed: int = 0,
) -> int:
    """Self-driving serve round trip; 0 iff the bit-identity check holds.

    Starts a service on a small synthetic corpus, ingests two claim
    batches (one touching a brand-new object), queries, then replays the
    accumulated claims offline through ``TDAC.run`` and asserts the
    served snapshot matches field for field.
    """
    import sys

    from repro.algorithms import create
    from repro.core import TDAC, PartitionCache, TDACConfig
    from repro.datasets import make_synthetic
    from repro.observability import SpanTracer
    from repro.serving.config import ServiceConfig

    out = sys.stdout if out is None else out
    dataset = make_synthetic("DS1", n_objects=20, seed=seed).dataset
    config = TDACConfig(seed=seed)
    tracer = SpanTracer()
    service = TruthService(
        create(algorithm),
        dataset,
        config=config,
        service_config=ServiceConfig(max_wait_ms=1.0),
        partition_cache=PartitionCache(),
        tracer=tracer,
    )
    with service:
        source = dataset.sources[0]
        attribute = dataset.attributes[0]
        first = service.ingest(
            [Claim(source, "smoke-object", attribute, "smoke-value")],
            wait=True,
        ).wait()
        second = service.ingest(
            [
                Claim(s, "smoke-object", dataset.attributes[1], 7)
                for s in dataset.sources[:2]
            ],
            wait=True,
        ).wait()
        answer = service.query("smoke-object", attribute)
        snapshot = service.snapshot()
        replayed = service.replay_dataset(snapshot.watermark)
        offline = TDAC(create(algorithm), config=config).run(replayed)
    checks = {
        "query_found": answer.found and answer.value == "smoke-value",
        # Micro-batching may coalesce the two ingests into one refit, so
        # the final version is 2 or 3 depending on load; what the service
        # guarantees is strict monotonicity past the start snapshot and
        # that every admitted claim is covered by the final watermark.
        "versions_monotone": (
            1 < first.version <= second.version <= snapshot.version
        ),
        "watermark": snapshot.watermark == 3,
        "predictions_identical": (
            dict(snapshot.predictions) == dict(offline.result.predictions)
        ),
        "trust_identical": (
            dict(snapshot.source_trust) == dict(offline.result.source_trust)
        ),
        "partition_identical": snapshot.partition == offline.partition,
        "serve_spans_traced": any(
            span.name.startswith("serve.") for span in tracer.spans
        ),
        "batch_counters": tracer.counters.get("serve.batch", 0) >= 2,
    }
    ok = all(checks.values())
    out.write(
        json.dumps(
            envelope_tag(
                {"ok": ok, "op": "smoke", "checks": checks,
                 "stats": service.stats}
            ),
            sort_keys=True,
            default=str,
        )
        + "\n"
    )
    return 0 if ok else 1
