"""Immutable, versioned truth snapshots served to readers.

A :class:`TruthSnapshot` is the unit of consistency of the serving
layer: every query reads one snapshot, and a snapshot never mutates, so
readers are wait-free and always see an internally consistent
(predictions, trust, partition) triple.  Snapshots carry:

* a strictly monotone ``version`` (one publish per applied micro-batch);
* a ``watermark`` — the number of ingested claims the snapshot covers,
  in admission order, which pins the exact offline dataset it must
  match;
* staleness metadata: how many claims were still queued when the
  snapshot was published, whether the refit carried ``exact``
  (:meth:`TDAC.run <repro.core.tdac.TDAC.run>`-bit-identical) semantics
  — true for both the full and the delta refit path since 1.4.0; the
  flag is kept for historical snapshots — and the fingerprints
  identifying the accumulated dataset and config.

``to_dict`` emits the shared ``tdac-result/v1`` schema with a
``serving`` sub-object, so snapshot serialization is a superset of every
other engine's.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.algorithms.base import TruthDiscoveryResult
from repro.core.partition import Partition
from repro.core.schema import result_from_dict, result_to_dict
from repro.data.types import AttributeId, Fact, ObjectId, SourceId, Value


@dataclass(frozen=True)
class TruthSnapshot:
    """One immutable published state of a :class:`TruthService`."""

    version: int
    watermark: int
    result: TruthDiscoveryResult
    partition: Partition
    silhouette_by_k: Mapping[int, float] = field(default_factory=dict)
    exact: bool = True
    pending_claims: int = 0
    dataset_fingerprint: str = ""
    config_fingerprint: str = ""

    @property
    def predictions(self) -> Mapping[Fact, Value]:
        """Fact → resolved value at this snapshot's watermark."""
        return self.result.predictions

    @property
    def source_trust(self) -> Mapping[SourceId, float]:
        """Per-source trust at this snapshot's watermark."""
        return self.result.source_trust

    def value(self, obj: ObjectId, attribute: AttributeId) -> Value | None:
        """Resolved value of ``(obj, attribute)``, or None if uncovered."""
        return self.result.predictions.get(Fact(obj, attribute))

    def to_dict(self) -> dict[str, Any]:
        """``tdac-result/v1`` rendering plus the ``serving`` metadata."""
        payload = result_to_dict(
            self.result,
            partition=self.partition,
            silhouette_by_k=self.silhouette_by_k,
        )
        payload["serving"] = {
            "version": self.version,
            "watermark": self.watermark,
            "exact": self.exact,
            "pending_claims": self.pending_claims,
            "dataset_fingerprint": self.dataset_fingerprint,
            "config_fingerprint": self.config_fingerprint,
        }
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "TruthSnapshot":
        """Rebuild a snapshot from its :meth:`to_dict` rendering.

        The inverse up to JSON's type erasure (identifiers come back as
        the strings the serializer emitted); used by the durable store
        to resurrect the served state from a checkpoint file.
        """
        serving = payload.get("serving") or {}
        blocks = payload.get("partition") or []
        return cls(
            version=int(serving.get("version", 0)),
            watermark=int(serving.get("watermark", 0)),
            result=result_from_dict(payload),
            partition=Partition.from_blocks(blocks),
            silhouette_by_k={
                int(k): float(v)
                for k, v in (payload.get("silhouette_by_k") or {}).items()
            },
            exact=bool(serving.get("exact", True)),
            pending_claims=int(serving.get("pending_claims", 0)),
            dataset_fingerprint=str(serving.get("dataset_fingerprint", "")),
            config_fingerprint=str(serving.get("config_fingerprint", "")),
        )
