"""Retrying asyncio client for the :mod:`repro.serving.net` protocol.

:class:`AsyncTruthClient` is the client half of the network serving
contract, and the one the load/soak harness
(``benchmarks/bench_serving.py``) drives by the hundred:

* **Reconnect with capped exponential backoff.**  Connection refusals,
  resets, timeouts and torn responses tear the socket down and retry
  after ``base_backoff_seconds * multiplier**attempt`` (capped), so a
  server restart mid-soak costs clients a burst of reconnects, not
  their workload.
* **Overload honoured.**  An ``{"ok": false, "error": "overloaded"}``
  response makes the client sleep the server's ``retry_after_seconds``
  hint (capped by the policy) before retrying; ``"draining"`` responses
  additionally reconnect, because the serving process is going away.
* **Request/response matching.**  Every request is tagged with a
  monotonically increasing ``id``; responses with a stale ``id`` (from
  an attempt that timed out client-side but was still answered) are
  skipped instead of being mis-delivered.

Retried ingests are safe by construction: re-admitting a claim batch
whose ack was lost re-asserts identical (source, object, attribute,
value) rows, which the dataset builder treats as no-ops, so the
accumulated corpus — and therefore every snapshot — is unaffected.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass
from typing import Any, Iterable, Sequence

from repro.data.types import Claim

from repro.serving.net import DEFAULT_MAX_LINE_BYTES


class TruthClientError(RuntimeError):
    """The request could not be completed within the retry policy."""


@dataclass(frozen=True)
class RetryPolicy:
    """Capped-exponential-backoff retry knobs for the client."""

    #: Total attempts per request (first try included).
    max_attempts: int = 8
    #: Backoff before retry ``n`` is ``base * multiplier**(n-1)`` ...
    base_backoff_seconds: float = 0.05
    backoff_multiplier: float = 2.0
    #: ... capped here, so long outages poll steadily instead of never.
    max_backoff_seconds: float = 2.0
    #: Cap on honoured server ``retry_after_seconds`` hints.
    max_retry_after_seconds: float = 5.0

    def backoff(self, attempt: int) -> float:
        """Sleep before retry ``attempt`` (0-based over *re*-tries)."""
        return min(
            self.max_backoff_seconds,
            self.base_backoff_seconds * self.backoff_multiplier**attempt,
        )


def claim_payload(claims: Iterable[Claim | dict]) -> list[dict]:
    """Coerce :class:`Claim` rows (or ready dicts) to wire format."""
    out = []
    for claim in claims:
        if isinstance(claim, Claim):
            out.append(
                {
                    "source": claim.source,
                    "object": claim.object,
                    "attribute": claim.attribute,
                    "value": claim.value,
                }
            )
        else:
            out.append(dict(claim))
    return out


class AsyncTruthClient:
    """One persistent connection with reconnect/backoff/retry-after.

    Requests are serialized per client instance (one in flight at a
    time); concurrency comes from running many clients, as the soak
    harness does.  Safe to use as an async context manager.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        connect_timeout: float = 5.0,
        request_timeout: float = 60.0,
        retry: RetryPolicy | None = None,
        max_line_bytes: int = DEFAULT_MAX_LINE_BYTES,
        tenant: str | None = None,
    ) -> None:
        self.host = host
        self.port = port
        self.connect_timeout = connect_timeout
        self.request_timeout = request_timeout
        self.retry = retry if retry is not None else RetryPolicy()
        self.max_line_bytes = max_line_bytes
        #: When set, stamped as the ``tenant`` field on every request
        #: (unless the payload already carries one), so a multi-tenant
        #: server routes this client's traffic to that tenant's handle.
        self.tenant = tenant
        self.stats = {
            "requests": 0,
            "responses": 0,
            "retries": 0,
            "reconnects": 0,
            "overloaded": 0,
            "failures": 0,
        }
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._lock = asyncio.Lock()
        self._next_id = 0

    async def __aenter__(self) -> "AsyncTruthClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    @property
    def connected(self) -> bool:
        return self._writer is not None

    async def close(self) -> None:
        writer, self._reader, self._writer = self._writer, None, None
        if writer is not None:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _teardown(self) -> None:
        await self.close()

    async def _connect(self) -> None:
        self._reader, self._writer = await asyncio.wait_for(
            asyncio.open_connection(
                self.host, self.port, limit=self.max_line_bytes
            ),
            self.connect_timeout,
        )
        self.stats["reconnects"] += 1

    async def request(self, payload: dict) -> dict:
        """Send one request, retrying per the policy; returns the response.

        Raises :class:`TruthClientError` once the policy is exhausted.
        Non-retryable error responses (malformed request, unknown op,
        refit rejection, ...) are returned as-is — only transport
        failures, ``overloaded`` and ``draining`` are retried.
        """
        async with self._lock:
            self.stats["requests"] += 1
            last_error: object = None
            for attempt in range(self.retry.max_attempts):
                if attempt:
                    self.stats["retries"] += 1
                    await asyncio.sleep(self.retry.backoff(attempt - 1))
                try:
                    if self._writer is None:
                        await self._connect()
                    response = await self._roundtrip(payload)
                except (
                    ConnectionError,
                    OSError,
                    EOFError,
                    asyncio.TimeoutError,
                    asyncio.IncompleteReadError,
                ) as exc:
                    last_error = exc
                    await self._teardown()
                    continue
                error = response.get("error")
                if error in ("overloaded", "draining"):
                    self.stats["overloaded"] += 1
                    last_error = error
                    hint = response.get("retry_after_seconds")
                    try:
                        hint = float(hint)
                    except (TypeError, ValueError):
                        hint = self.retry.backoff(attempt)
                    if error == "draining":
                        # The serving process is going away; reconnect
                        # (likely to its successor) rather than re-ask.
                        await self._teardown()
                    await asyncio.sleep(
                        min(
                            max(hint, 0.0),
                            self.retry.max_retry_after_seconds,
                        )
                    )
                    continue
                self.stats["responses"] += 1
                return response
            self.stats["failures"] += 1
            raise TruthClientError(
                f"request failed after {self.retry.max_attempts} attempts; "
                f"last error: {last_error!r}"
            )

    async def _roundtrip(self, payload: dict) -> dict:
        assert self._reader is not None and self._writer is not None
        request_id = self._next_id
        self._next_id += 1
        message = dict(payload)
        if self.tenant is not None:
            message.setdefault("tenant", self.tenant)
        message["id"] = request_id
        self._writer.write(
            (json.dumps(message, sort_keys=True, default=str) + "\n").encode(
                "utf-8"
            )
        )
        await asyncio.wait_for(self._writer.drain(), self.request_timeout)
        while True:
            line = await asyncio.wait_for(
                self._reader.readline(), self.request_timeout
            )
            if not line or not line.endswith(b"\n"):
                raise ConnectionResetError("server closed mid-response")
            response = json.loads(line)
            if not isinstance(response, dict):
                raise ConnectionResetError("non-object response frame")
            if response.get("id") == request_id:
                return response
            # A response to an attempt we already gave up on: skip it.

    # ------------------------------------------------------------------
    # Op helpers
    # ------------------------------------------------------------------

    async def ingest(self, claims: Sequence[Claim | dict]) -> dict:
        return await self.request(
            {"op": "ingest", "claims": claim_payload(claims)}
        )

    async def query(self, obj: Any, attribute: Any) -> dict:
        return await self.request(
            {"op": "query", "object": obj, "attribute": attribute}
        )

    async def snapshot(self) -> dict:
        return await self.request({"op": "snapshot"})

    async def server_stats(self) -> dict:
        return await self.request({"op": "stats"})
