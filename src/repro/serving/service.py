"""The long-lived, micro-batching truth-discovery service.

:class:`TruthService` turns the one-shot :class:`~repro.core.tdac.TDAC`
pipeline into a serving engine:

* **Admission / backpressure** — :meth:`TruthService.ingest` appends a
  batch of claims to a bounded queue and returns an
  :class:`IngestTicket`.  When the queue is full the claim batch is
  rejected with :class:`ServiceOverloadedError` carrying a
  ``retry_after_seconds`` hint, so overload degrades to explicit
  client-side retry instead of unbounded memory growth.
* **Micro-batching** — a single worker thread coalesces queued tickets
  (up to ``max_batch_size`` claims, waiting at most ``max_wait_ms`` for
  stragglers once the first ticket arrives) into one refit, amortising
  the per-refit cost across concurrent writers.
* **Versioned snapshots** — every applied batch publishes a fresh
  immutable :class:`~repro.serving.snapshot.TruthSnapshot` with a
  strictly monotone version and a claims-seen watermark; reads are a
  single reference load, wait-free and never blocked by writers.
* **Bit-identical refits** — every published snapshot is bit-identical
  to an offline :meth:`TDAC.run <repro.core.tdac.TDAC.run>` over the
  claims at its watermark, in *both* refit modes.  ``refit="full"``
  (default) re-runs the whole pipeline per batch;
  ``refit="incremental"`` reaches the same result at delta cost through
  :meth:`IncrementalTDAC.update` — spliced index compile, patched
  truth-vector matrix, certified partition reuse and touched-block-only
  base runs — so its snapshots are also ``exact=True`` with a populated
  ``silhouette_by_k``.  Restores replay the WAL tail through the same
  delta path by default (``replay_refit``), cutting restart downtime.
* **Partition reuse** — an optional shared
  :class:`~repro.core.cache.PartitionCache` lets repeated cold starts
  (and full refits over an unchanged corpus) replay the selected
  partition instead of re-running the sweep.
* **Observability** — refits and batches run under the service's
  :class:`~repro.observability.SpanTracer` (``serve.start``,
  ``serve.batch``, ``serve.refit`` spans; ingest/batch/refit counters;
  queue-depth and batch-occupancy gauges), and worker failures inside a
  refit propagate to the affected tickets without taking the service
  down.
"""

from __future__ import annotations

import threading
import time
import warnings
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

from repro.algorithms.base import TruthDiscoveryAlgorithm
from repro.core.cache import PartitionCache
from repro.core.config import TDACConfig, config_from_dict
from repro.core.incremental import IncrementalTDAC, extend_dataset
from repro.data.dataset import Dataset
from repro.data.types import AttributeId, Claim, ObjectId, Value
from repro.observability import SpanTracer, activate, current_tracer
from repro.serving.config import (
    REFIT_MODES,
    ServiceConfig,
    fold_legacy_kwargs,
)
from repro.serving.snapshot import TruthSnapshot
from repro.store import StoreError, TruthStore, WALCorruptionWarning, open_store

#: The per-knob keywords :class:`TruthService` historically accepted;
#: still honoured through the :class:`ServiceConfig` deprecation shim.
SERVICE_LEGACY_KWARGS = (
    "refit",
    "replay_refit",
    "repartition_fraction",
    "warm_window",
    "max_batch_size",
    "max_wait_ms",
    "queue_capacity",
    "snapshot_every",
)


class ServiceOverloadedError(RuntimeError):
    """The admission queue is full; retry after ``retry_after_seconds``."""

    def __init__(
        self, pending_claims: int, capacity: int, retry_after_seconds: float
    ) -> None:
        super().__init__(
            f"admission queue full ({pending_claims}/{capacity} claims "
            f"pending); retry in {retry_after_seconds:.3f}s"
        )
        self.pending_claims = pending_claims
        self.capacity = capacity
        self.retry_after_seconds = retry_after_seconds


class ServiceStoppedError(RuntimeError):
    """The service is not accepting work (stopped, or never started)."""


class IngestTicket:
    """Handle for one admitted claim batch.

    ``offset`` is the admission sequence of the batch's first claim;
    the batch covers sequences ``[offset, offset + len(claims))``.  The
    snapshot that applied the batch therefore has
    ``watermark >= offset + len(claims)``.
    """

    __slots__ = (
        "claims",
        "offset",
        "_event",
        "_snapshot",
        "_error",
        "_callbacks",
        "_cb_lock",
    )

    def __init__(self, claims: Sequence[Claim], offset: int) -> None:
        self.claims: tuple[Claim, ...] = tuple(claims)
        self.offset = offset
        self._event = threading.Event()
        self._snapshot: TruthSnapshot | None = None
        self._error: BaseException | None = None
        self._callbacks: list = []
        self._cb_lock = threading.Lock()

    @property
    def done(self) -> bool:
        """Whether the batch has been applied (or failed)."""
        return self._event.is_set()

    def add_done_callback(self, fn) -> None:
        """Run ``fn()`` once the ticket settles (immediately if it has).

        Callbacks fire on whichever thread settles the ticket (the
        batcher thread, usually), so they must be cheap and must not
        block — the network front-end uses this to bridge tickets onto
        an event loop via ``call_soon_threadsafe`` instead of parking
        one executor thread per in-flight ingest.
        """
        with self._cb_lock:
            if not self._event.is_set():
                self._callbacks.append(fn)
                return
        fn()

    def wait(self, timeout: float | None = None) -> TruthSnapshot:
        """Block until the batch is applied; return the covering snapshot.

        Raises the batch's failure (e.g. a one-truth conflict) if the
        refit rejected it, or :class:`TimeoutError` on ``timeout``.
        """
        if not self._event.wait(timeout):
            raise TimeoutError("ingest not applied within timeout")
        if self._error is not None:
            raise self._error
        assert self._snapshot is not None
        return self._snapshot

    def _settled(self) -> None:
        with self._cb_lock:
            callbacks, self._callbacks = self._callbacks, []
        for fn in callbacks:
            fn()

    def _resolve(self, snapshot: TruthSnapshot) -> None:
        self._snapshot = snapshot
        self._event.set()
        self._settled()

    def _fail(self, error: BaseException) -> None:
        self._error = error
        self._event.set()
        self._settled()


@dataclass(frozen=True)
class QueryAnswer:
    """A point read plus the snapshot metadata that scopes its staleness."""

    object: ObjectId
    attribute: AttributeId
    value: Value | None
    found: bool
    version: int
    watermark: int
    exact: bool


class TruthService:
    """Thread-safe query/ingest front-end over the TD-AC engines.

    Parameters
    ----------
    base:
        Base truth discovery algorithm ``F`` for every refit.
    dataset:
        The initial corpus served at watermark 0.
    config:
        :class:`~repro.core.config.TDACConfig` shared by every refit
        (``None`` means defaults).  Its fingerprint keys the partition
        cache and stamps every snapshot.
    service_config:
        :class:`~repro.serving.config.ServiceConfig` holding every
        serving knob — refit modes, micro-batch sizing, queue bounds,
        checkpoint cadence (``None`` means defaults).  The old per-knob
        keywords (``refit=``, ``max_batch_size=``, ...) still work
        through a :class:`DeprecationWarning` shim that folds them into
        the equivalent config; see CHANGELOG 1.5.0 for the removal
        window.
    partition_cache:
        Optional shared :class:`~repro.core.cache.PartitionCache`.
    tracer:
        Optional :class:`~repro.observability.SpanTracer`; the worker
        thread activates it so ``serve.*`` spans, counters and gauges
        land in the same report as the pipeline stages they wrap.
    store:
        Optional durable backing: a :class:`~repro.store.TruthStore`
        or a directory path for one.  When set, every admitted batch is
        appended to the claim WAL *before* its ticket is returned, every
        applied batch writes a commit record before its ticket resolves,
        and checkpoints are cut on start, every ``snapshot_every``
        batches and on clean :meth:`stop`.  ``None`` (default) keeps the
        service purely in-memory.
    """

    def __init__(
        self,
        base: TruthDiscoveryAlgorithm,
        dataset: Dataset,
        *,
        config: TDACConfig | None = None,
        service_config: ServiceConfig | None = None,
        partition_cache: PartitionCache | None = None,
        tracer: SpanTracer | None = None,
        store: TruthStore | str | Path | None = None,
        **legacy,
    ) -> None:
        service_config = fold_legacy_kwargs(
            "TruthService", service_config, legacy, SERVICE_LEGACY_KWARGS
        )
        self.service_config = service_config
        self.partition_cache = partition_cache
        self.store = None if store is None else open_store(store)
        self._base = base
        self._config = config if config is not None else TDACConfig()
        self._initial_dataset = dataset
        self._incremental = IncrementalTDAC(
            base,
            repartition_fraction=service_config.repartition_fraction,
            warm_window=service_config.warm_window,
            config=self._config,
            partition_cache=partition_cache,
        )
        self._tracer = tracer
        self._cond = threading.Condition()
        self._pending: deque[IngestTicket] = deque()
        self._pending_claims = 0
        self._in_flight = 0
        self._next_sequence = 0
        self._applied: list[Claim] = []
        self._snapshot: TruthSnapshot | None = None
        self._thread: threading.Thread | None = None
        self._started = False
        self._closed = False
        self._last_batch_seconds = 0.05
        # Restore continuity: a resumed service publishes versions and
        # watermarks continuing the checkpoint's numbering, not 1/0.
        self._version_base = 0
        self._watermark_base = 0
        self._resuming = False
        self._batches_since_checkpoint = 0
        self._stop_complete = False
        self._stats = {
            "ingested_tickets": 0,
            "ingested_claims": 0,
            "rejected_claims": 0,
            "overloaded_tickets": 0,
            "retry_after_last_seconds": 0.0,
            "batches": 0,
            "batch_errors": 0,
            "applied_claims": 0,
            "refits_full": 0,
            "refits_incremental": 0,
            "queue_depth_peak": 0,
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def config(self) -> TDACConfig:
        """The config every refit runs under."""
        return self._config

    # Per-knob views over ``service_config`` — existing callers (and the
    # network layer) read these as plain attributes.
    @property
    def refit(self) -> str:
        return self.service_config.refit

    @property
    def replay_refit(self) -> str:
        return self.service_config.replay_refit

    @property
    def max_batch_size(self) -> int:
        return self.service_config.max_batch_size

    @property
    def max_wait_ms(self) -> float:
        return self.service_config.max_wait_ms

    @property
    def queue_capacity(self) -> int:
        return self.service_config.queue_capacity

    @property
    def snapshot_every(self) -> int:
        return self.service_config.snapshot_every

    def start(self) -> TruthSnapshot:
        """Run the initial fit, publish the first snapshot, start the batcher.

        A fresh service with a ``store`` refuses to start over a
        non-empty store directory: silently refitting from scratch would
        shadow the durable state.  Use :meth:`restore` to resume it.
        """
        if (
            self.store is not None
            and not self._resuming
            and not self.store.is_empty()
        ):
            raise StoreError(
                f"store at {self.store.root} already holds durable state; "
                "use TruthService.restore(...) to resume from it"
            )
        with self._cond:
            if self._started:
                raise RuntimeError("service already started")
            if self._closed:
                raise ServiceStoppedError("service was stopped")
            self._started = True
        with activate(self._tracer):
            with current_tracer().span("serve.start"):
                outcome = self._incremental.fit(self._initial_dataset)
        snapshot = TruthSnapshot(
            version=self._version_base + 1,
            watermark=self._watermark_base,
            result=outcome.result,
            partition=outcome.partition,
            silhouette_by_k=dict(outcome.silhouette_by_k),
            exact=True,
            pending_claims=0,
            dataset_fingerprint=self._initial_dataset.fingerprint,
            config_fingerprint=self._config.fingerprint(),
        )
        self._snapshot = snapshot
        if self.store is not None and not self._resuming:
            # Baseline checkpoint: the initial dataset is otherwise only
            # held in memory, and recovery needs it to replay from 0.
            self.checkpoint()
        self._thread = threading.Thread(
            target=self._worker, name="tdac-truth-service", daemon=True
        )
        self._thread.start()
        return snapshot

    def stop(
        self, timeout: float | None = None, checkpoint: bool = True
    ) -> None:
        """Drain the queue, apply what remains, and stop the batcher.

        With a store attached, a clean stop cuts a final checkpoint (so
        the next :meth:`restore` replays nothing) and closes the WAL.
        ``checkpoint=False`` skips the final checkpoint — the store then
        looks exactly as it would after a crash at this point.

        ``stop`` is idempotent: repeated calls (e.g. the network
        front-end's drain followed by the CLI's ``finally``) return
        immediately once the first completed.
        """
        with self._cond:
            if self._stop_complete:
                return
            self._closed = True
            self._cond.notify_all()
        if self._thread is not None:
            self._thread.join(timeout)
        if self.store is not None:
            if checkpoint and self._snapshot is not None:
                self.checkpoint()
            self.store.close()
        self._stop_complete = True

    def checkpoint(self) -> Path | None:
        """Persist the current snapshot (plus dataset) as a checkpoint.

        Returns the written path, or None without a store.  Meant to be
        called from the batcher between batches or while the service is
        quiescent, so the snapshot and the accumulated dataset agree.
        """
        if self.store is None:
            return None
        snapshot = self.snapshot()
        with self._cond:
            next_sequence = self._next_sequence
        with activate(self._tracer):
            path = self.store.record_snapshot(
                snapshot,
                self._incremental.dataset,
                next_sequence=next_sequence,
                base_algorithm=self._base.name,
                reference_algorithm=self._base.name,
                config=self._config,
            )
        self._batches_since_checkpoint = 0
        return path

    def __enter__(self) -> "TruthService":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    @classmethod
    def restore(
        cls,
        store: TruthStore | str | Path,
        base: TruthDiscoveryAlgorithm | None = None,
        *,
        config: TDACConfig | None = None,
        service_config: ServiceConfig | None = None,
        partition_cache: PartitionCache | None = None,
        tracer: SpanTracer | None = None,
        **service_kwargs,
    ) -> "TruthService":
        """Resume a service from a store directory after a crash or stop.

        Loads the latest valid checkpoint, replays the WAL tail —
        committed batches first, then admitted-but-unsettled batches
        (acknowledged admissions survive the crash; batches whose abort
        record made it to disk stay rejected) — and returns a running
        service whose published snapshot is bit-identical to an
        uninterrupted run over the same claim prefix.  The tail replays
        under ``replay_refit`` (default ``"incremental"``): one full fit
        on the checkpointed dataset, then exact delta refits per batch,
        instead of a full ``TDAC.run`` per replayed batch.  Finishes by
        cutting a fresh checkpoint so the next restore replays nothing.

        ``base`` and ``config`` default to what the checkpoint recorded
        (the base algorithm is resolved through the
        :mod:`repro.algorithms` registry by its stored name).
        """
        from repro.data.io import dataset_from_dict

        store = open_store(store)
        with activate(tracer):
            recovery = store.recover()
        if recovery.checkpoint is None:
            raise StoreError(
                f"no valid checkpoint under {store.root}; nothing to "
                "restore (was the service ever started with this store?)"
            )
        meta = recovery.checkpoint["store"]
        serving = recovery.checkpoint["result"].get("serving", {})
        if base is None:
            from repro.algorithms import create

            base = create(meta["base_algorithm"])
        if config is None:
            config = config_from_dict(meta["config"])
        dataset = dataset_from_dict(recovery.checkpoint["dataset"])
        service = cls(
            base,
            dataset,
            config=config,
            service_config=service_config,
            partition_cache=partition_cache,
            tracer=tracer,
            store=store,
            **service_kwargs,
        )
        if partition_cache is not None:
            # Warm-start the sweep before the initial fit runs.
            store.snapshots.seed_partition_cache(partition_cache)
        service._version_base = int(serving.get("version", 1)) - 1
        service._watermark_base = int(serving.get("watermark", 0))
        service._resuming = True
        try:
            started = service.start()
            if started.dataset_fingerprint != serving.get(
                "dataset_fingerprint"
            ):
                warnings.warn(
                    "restored dataset fingerprint "
                    f"{started.dataset_fingerprint} does not match the "
                    f"checkpoint's {serving.get('dataset_fingerprint')}",
                    WALCorruptionWarning,
                    stacklevel=2,
                )
            with activate(tracer):
                for batch in recovery.batches:
                    replayed = service._apply(list(batch.claims))
                    if replayed.watermark != batch.watermark:
                        warnings.warn(
                            f"replayed batch reached watermark "
                            f"{replayed.watermark} where its commit "
                            f"record promised {batch.watermark}",
                            WALCorruptionWarning,
                            stacklevel=2,
                        )
                with service._cond:
                    service._next_sequence = max(
                        service._next_sequence, recovery.next_sequence
                    )
                for offset, claims in recovery.uncommitted:
                    try:
                        settled = service._apply(list(claims))
                    except Exception as exc:
                        store.append_abort(
                            [(offset, len(claims))], repr(exc)
                        )
                    else:
                        store.append_commit(
                            settled.version,
                            settled.watermark,
                            [(offset, len(claims))],
                        )
            service.checkpoint()
        finally:
            service._resuming = False
        return service

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------

    def ingest(
        self,
        claims: Iterable[Claim],
        wait: bool = False,
        timeout: float | None = None,
    ) -> IngestTicket:
        """Admit a batch of claims for asynchronous application.

        Returns an :class:`IngestTicket`; with ``wait=True`` blocks
        until the batch is applied and any refit failure re-raises here.
        Raises :class:`ServiceOverloadedError` when the queue is full
        and :class:`ServiceStoppedError` after :meth:`stop`.
        """
        batch = tuple(claims)
        if not batch:
            raise ValueError("ingest requires at least one claim")
        with self._cond:
            if self._closed or not self._started:
                raise ServiceStoppedError(
                    "service is not running; call start() first"
                )
            backlog = self._pending_claims + self._in_flight
            if backlog + len(batch) > self.queue_capacity:
                batches_ahead = max(1, -(-backlog // self.max_batch_size))
                retry_after = self._last_batch_seconds * batches_ahead
                self._stats["rejected_claims"] += len(batch)
                self._stats["overloaded_tickets"] += 1
                self._stats["retry_after_last_seconds"] = retry_after
                self._trace_count("serve.ingest.rejected")
                self._trace_count("serve.overloaded")
                raise ServiceOverloadedError(
                    backlog, self.queue_capacity, retry_after
                )
            ticket = IngestTicket(batch, offset=self._next_sequence)
            if self.store is not None:
                # Durability point: the admit record is on disk before
                # the ticket (the admission ack) is ever visible.  A
                # failed append admits nothing.
                with activate(self._tracer):
                    self.store.append_admit(ticket.offset, batch)
            self._next_sequence += len(batch)
            self._pending.append(ticket)
            self._pending_claims += len(batch)
            depth = self._pending_claims + self._in_flight
            self._stats["ingested_tickets"] += 1
            self._stats["ingested_claims"] += len(batch)
            self._stats["queue_depth_peak"] = max(
                self._stats["queue_depth_peak"], depth
            )
            self._trace_count("serve.ingest")
            self._trace_count("serve.ingest.claims", len(batch))
            self._trace_gauge("serve.queue.depth", depth)
            self._cond.notify_all()
        if wait:
            ticket.wait(timeout)
        return ticket

    # ------------------------------------------------------------------
    # Reads (wait-free)
    # ------------------------------------------------------------------

    def snapshot(self) -> TruthSnapshot:
        """The latest published snapshot (never blocks on writers)."""
        snapshot = self._snapshot
        if snapshot is None:
            raise ServiceStoppedError(
                "service is not running; call start() first"
            )
        return snapshot

    def query(self, obj: ObjectId, attribute: AttributeId) -> QueryAnswer:
        """Point read of one fact against the current snapshot."""
        snapshot = self.snapshot()
        value = snapshot.value(obj, attribute)
        return QueryAnswer(
            object=obj,
            attribute=attribute,
            value=value,
            found=value is not None,
            version=snapshot.version,
            watermark=snapshot.watermark,
            exact=snapshot.exact,
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def stats(self) -> dict:
        """Serving counters plus engine and cache bookkeeping.

        Counters, queue depth and the published snapshot's version and
        watermark are all read in one hold of the snapshot lock, so a
        mid-batch read cannot report e.g. ``queue_depth`` and
        ``overloaded_tickets`` from different instants.
        """
        with self._cond:
            out = dict(self._stats)
            out["pending_claims"] = self._pending_claims + self._in_flight
            snapshot = self._snapshot
        out["version"] = snapshot.version if snapshot else 0
        out["watermark"] = snapshot.watermark if snapshot else 0
        out["engine"] = self._incremental.stats
        if self.partition_cache is not None:
            out["partition_cache"] = self.partition_cache.stats
        if self.store is not None:
            out["store"] = self.store.stats
        return out

    @property
    def claim_log(self) -> tuple[Claim, ...]:
        """Every applied claim, in admission (watermark) order."""
        with self._cond:
            return tuple(self._applied)

    def replay_dataset(self, watermark: int | None = None) -> Dataset:
        """The offline dataset a snapshot at ``watermark`` must match.

        Rebuilds ``initial dataset + claim_log[:watermark]`` through the
        same accumulation routine the service itself uses, so
        ``TDAC(base, config=service.config).run(replay_dataset(w))`` is
        the reference an exact snapshot at watermark ``w`` is
        bit-identical to.
        """
        log = self.claim_log
        base = self._watermark_base
        if watermark is None:
            watermark = base + len(log)
        if not base <= watermark <= base + len(log):
            raise ValueError(
                f"watermark {watermark} outside applied range "
                f"[{base}, {base + len(log)}]"
            )
        if watermark == base:
            return self._initial_dataset
        return extend_dataset(
            self._initial_dataset, list(log[: watermark - base])
        )

    def drain(self, timeout: float | None = None) -> bool:
        """Block until every admitted claim has been applied.

        Returns False if ``timeout`` elapsed with work still pending.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while self._pending or self._in_flight:
                remaining = (
                    None if deadline is None else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    return False
                self._cond.wait(remaining)
        return True

    # ------------------------------------------------------------------
    # Batcher internals
    # ------------------------------------------------------------------

    def _trace_count(self, name: str, n: int = 1) -> None:
        if self._tracer is not None:
            self._tracer.count(name, n)

    def _trace_gauge(self, name: str, value: float) -> None:
        if self._tracer is not None:
            self._tracer.gauge(name, value)

    def _take_batch(self) -> list[IngestTicket] | None:
        """Pop one micro-batch, or None when stopped and fully drained.

        Takes the first available ticket immediately, then lingers up to
        ``max_wait_ms`` coalescing further tickets while the batch stays
        under ``max_batch_size`` claims.
        """
        with self._cond:
            while not self._pending:
                if self._closed:
                    return None
                self._cond.wait()
            tickets = [self._pending.popleft()]
            count = len(tickets[0].claims)
            deadline = time.monotonic() + self.max_wait_ms / 1000.0
            while count < self.max_batch_size:
                if self._pending:
                    head = self._pending[0]
                    if count + len(head.claims) > self.max_batch_size:
                        break
                    self._pending.popleft()
                    tickets.append(head)
                    count += len(head.claims)
                    continue
                remaining = deadline - time.monotonic()
                if remaining <= 0 or self._closed:
                    break
                self._cond.wait(remaining)
            self._pending_claims -= count
            self._in_flight = count
            return tickets

    def _worker(self) -> None:
        with activate(self._tracer):
            tracer = current_tracer()
            while True:
                tickets = self._take_batch()
                if tickets is None:
                    break
                claims = [c for t in tickets for c in t.claims]
                started = time.perf_counter()
                error: BaseException | None = None
                snapshot: TruthSnapshot | None = None
                with tracer.span(
                    "serve.batch", claims=len(claims), tickets=len(tickets)
                ):
                    try:
                        snapshot = self._apply(claims)
                    except Exception as exc:  # keep serving on bad batches
                        error = exc
                elapsed = time.perf_counter() - started
                with self._cond:
                    self._in_flight = 0
                    self._last_batch_seconds = max(elapsed, 1e-4)
                    self._stats["batches"] += 1
                    if error is None:
                        self._stats["applied_claims"] += len(claims)
                    else:
                        self._stats["batch_errors"] += 1
                    self._cond.notify_all()
                tracer.count("serve.batch")
                tracer.count("serve.batch.claims", len(claims))
                tracer.gauge(
                    "serve.batch.occupancy",
                    len(claims) / self.max_batch_size,
                )
                applied = [(t.offset, len(t.claims)) for t in tickets]
                if error is not None:
                    tracer.count("serve.batch.errors")
                    if self.store is not None:
                        # Abort records settle the batch's admits so
                        # compaction is never blocked by a rejection.
                        self.store.append_abort(applied, repr(error))
                    for ticket in tickets:
                        ticket._fail(error)
                    continue
                assert snapshot is not None
                if self.store is not None:
                    # Commit before resolving: a ticket that returned
                    # from wait() is durably part of the replay history.
                    self.store.append_commit(
                        snapshot.version, snapshot.watermark, applied
                    )
                for ticket in tickets:
                    ticket._resolve(snapshot)
                if self.store is not None:
                    self._batches_since_checkpoint += 1
                    if self._batches_since_checkpoint >= self.snapshot_every:
                        self.checkpoint()

    def _apply(self, claims: list[Claim]) -> TruthSnapshot:
        """Refit on ``claims`` and publish the covering snapshot.

        Both refit modes publish ``exact=True`` snapshots: the delta
        path is bit-identical to the full pipeline by construction (see
        :mod:`repro.core.incremental`).  During a :meth:`restore`, the
        WAL tail replays under ``replay_refit`` regardless of the
        steady-state ``refit`` mode.
        """
        tracer = current_tracer()
        previous = self._snapshot
        assert previous is not None
        mode = self.replay_refit if self._resuming else self.refit
        if mode == "full":
            # Extend on a local first: a conflicting batch raises here
            # and leaves the engine (and the published state) untouched.
            dataset = extend_dataset(self._incremental.dataset, claims)
            with tracer.span("serve.refit", mode="full", claims=len(claims)):
                outcome = self._incremental.fit(dataset)
            tracer.count("serve.refit.full")
            self._stats["refits_full"] += 1
        else:
            # update() validates the batch before touching any state, so
            # a conflicting batch is rejected without a published trace.
            with tracer.span(
                "serve.refit", mode="incremental", claims=len(claims)
            ):
                outcome = self._incremental.update(claims)
            tracer.count("serve.refit.incremental")
            self._stats["refits_incremental"] += 1
        result = outcome.result
        partition = outcome.partition
        silhouettes = dict(outcome.silhouette_by_k)
        exact = True
        # Publish under the lock: the applied log, the watermark and the
        # visible snapshot advance as one atomic step, so a concurrent
        # stats() read cannot pair a new watermark with the old version
        # (or vice versa).
        with self._cond:
            self._applied.extend(claims)
            snapshot = TruthSnapshot(
                version=previous.version + 1,
                watermark=self._watermark_base + len(self._applied),
                result=result,
                partition=partition,
                silhouette_by_k=silhouettes,
                exact=exact,
                pending_claims=self._pending_claims,
                dataset_fingerprint=self._incremental.dataset.fingerprint,
                config_fingerprint=self._config.fingerprint(),
            )
            self._snapshot = snapshot
        return snapshot
