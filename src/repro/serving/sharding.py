"""Sharded serving: partition the claim stream itself.

TD-AC's central insight — partition the attribute space, solve blocks
independently, merge (PAPER.md §3) — applies to the *serving* layer as
much as to one pipeline run.  :class:`ShardRouter` runs N in-process
:class:`~repro.serving.service.TruthService` workers, each owning a
slice of the attribute space, and keeps one exact global view:

* **Routing** follows the patched multi-key-partitioning template: an
  attribute's *home* shard is a stable hash of its identifier, and an
  **exception list** overrides the hash for attributes whose block
  placement demands it — at every (re)assignment epoch, whole blocks of
  the current merged partition are placed together, and any block whose
  attributes straddle shards is sent to a deterministic **exception
  shard** (``exception_shard``, default 0).  Routing is sticky within
  an epoch, so one fact's claims always meet on the same shard and the
  shard's own one-truth conflict check fires before any ack.
* **Exact merged view.**  The router keeps a global applied-claim log
  (appended in ticket-resolution order) and an
  :class:`~repro.core.incremental.IncrementalTDAC` *merger* that folds
  the log's delta through the certified-exact delta path.  The merged
  :class:`MergedSnapshot` at watermark ``w`` is therefore bit-identical
  to one offline :meth:`TDAC.run <repro.core.tdac.TDAC.run>` over
  ``initial dataset + log[:w]`` — the same invariant the single-service
  stack pins, now over the union of every shard's admitted claims.
  Merging is lazy (``merge_every`` batches, or on ``snapshot()`` /
  ``drain`` / ``stop``), so the ingest hot path never pays for it.
* **Rebalancing with exact hand-off.**  When shard skew (max/mean
  applied claims) exceeds ``rebalance_threshold``,
  :meth:`ShardRouter.maybe_rebalance` drains every shard, cuts final
  checkpoints (the WAL/snapshot hand-off), re-partitions the attribute
  space block-by-block (greedy by claim count onto the least-loaded
  shard, recording every attribute placed off its hash home in the
  exception list) and rebuilds the workers from the merger's global
  dataset under a fresh store epoch.  The merged view is untouched —
  the applied log is the state, shard placement is only a performance
  choice.
* **Fault injection.**  :meth:`crash_shard` kills one worker the way a
  crash would (queue lost, WAL kept, no final checkpoint);
  :meth:`restore_shard` resurrects it via
  :meth:`TruthService.restore <repro.serving.service.TruthService.restore>`.
  Acked claims live in the global log *and* in the shard's committed
  WAL, so a crash between ack and restore loses nothing.

Cold shards are lazy: a shard whose slice is empty gets no service (and
no threads) until the first claim routes to it, at which point the
batch itself seeds the worker's initial corpus.
"""

from __future__ import annotations

import threading
import time
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Mapping, Sequence

from repro.algorithms.base import TruthDiscoveryAlgorithm, TruthDiscoveryResult
from repro.core.cache import PartitionCache
from repro.core.config import TDACConfig
from repro.core.incremental import IncrementalTDAC, extend_dataset
from repro.core.partition import Partition
from repro.core.schema import result_to_dict
from repro.data.dataset import Dataset
from repro.data.types import AttributeId, Claim, ObjectId, Value
from repro.observability import SpanTracer, activate, current_tracer
from repro.serving.config import ServiceConfig, fold_legacy_kwargs
from repro.serving.service import (
    IngestTicket,
    QueryAnswer,
    SERVICE_LEGACY_KWARGS,
    ServiceOverloadedError,
    ServiceStoppedError,
    TruthService,
)


def attribute_home(attribute: AttributeId, n_shards: int) -> int:
    """Stable hash home of an attribute (process-independent).

    ``zlib.crc32`` rather than ``hash()``: Python string hashing is
    salted per process, and routing must agree across restarts.
    """
    return zlib.crc32(str(attribute).encode("utf-8")) % n_shards


def _clone_base(base: TruthDiscoveryAlgorithm) -> TruthDiscoveryAlgorithm:
    """A fresh instance of ``base`` for one shard's private engine.

    Every worker thread refits concurrently, so sharing one algorithm
    object across shards would be a latent race; registered algorithms
    are cloned through the registry, unregistered ones through their
    (kwarg-free) constructor.
    """
    from repro.algorithms import create

    try:
        return create(base.name)
    except KeyError:
        return type(base)()


@dataclass(frozen=True)
class ShardInfo:
    """Per-shard metadata carried by a :class:`MergedSnapshot`."""

    index: int
    attributes: int
    applied_claims: int
    version: int
    watermark: int
    alive: bool


@dataclass(frozen=True)
class MergedSnapshot:
    """One exact global view over every shard's admitted claims.

    Field-compatible with :class:`~repro.serving.snapshot.TruthSnapshot`
    (``version`` / ``watermark`` / ``result`` / ``value()`` / ...) so
    the front-ends serve either interchangeably, plus a ``shards`` tuple
    describing the per-shard state the merge covered.  ``watermark``
    counts globally applied claims; bit-identity to the offline run at
    that watermark is the router's core invariant.
    """

    version: int
    watermark: int
    result: TruthDiscoveryResult
    partition: Partition
    silhouette_by_k: Mapping[int, float] = field(default_factory=dict)
    exact: bool = True
    pending_claims: int = 0
    dataset_fingerprint: str = ""
    config_fingerprint: str = ""
    shards: tuple[ShardInfo, ...] = ()

    @property
    def predictions(self):
        return self.result.predictions

    @property
    def source_trust(self):
        return self.result.source_trust

    def value(self, obj: ObjectId, attribute: AttributeId) -> Value | None:
        from repro.data.types import Fact

        return self.result.predictions.get(Fact(obj, attribute))

    def to_dict(self) -> dict:
        """``tdac-result/v1`` plus ``serving`` and ``shards`` metadata."""
        payload = result_to_dict(
            self.result,
            partition=self.partition,
            silhouette_by_k=self.silhouette_by_k,
        )
        payload["serving"] = {
            "version": self.version,
            "watermark": self.watermark,
            "exact": self.exact,
            "pending_claims": self.pending_claims,
            "dataset_fingerprint": self.dataset_fingerprint,
            "config_fingerprint": self.config_fingerprint,
        }
        payload["shards"] = [
            {
                "index": s.index,
                "attributes": s.attributes,
                "applied_claims": s.applied_claims,
                "version": s.version,
                "watermark": s.watermark,
                "alive": s.alive,
            }
            for s in self.shards
        ]
        return payload


class _RouterTicket:
    """One router-level admission: the fan-out of a batch over shards.

    Aggregates the per-shard :class:`IngestTicket`s a batch split into
    (plus claims a lazy shard activation applied synchronously) behind
    the same ``wait`` / ``done`` / ``add_done_callback`` surface, so the
    front-ends cannot tell a router from a single service.
    """

    def __init__(
        self,
        router: "ShardRouter",
        claims: Sequence[Claim],
        offset: int,
    ) -> None:
        self.claims = tuple(claims)
        self.offset = offset
        self._router = router
        self._tickets: list[IngestTicket] = []
        self._immediate = 0

    @property
    def done(self) -> bool:
        return all(t.done for t in self._tickets)

    def add_done_callback(self, fn) -> None:
        """Run ``fn()`` once every sub-ticket settles."""
        remaining = [len(self._tickets)]
        lock = threading.Lock()
        if not self._tickets:
            fn()
            return

        def one_settled() -> None:
            with lock:
                remaining[0] -= 1
                if remaining[0]:
                    return
            fn()

        for ticket in self._tickets:
            ticket.add_done_callback(one_settled)

    def wait(self, timeout: float | None = None):
        """Block until every shard applied its slice; return a global ack.

        The ack carries the router's global ``version`` / ``watermark``
        (the merged view's version, which may lag until the next merge
        refresh, and the count of globally applied claims, which covers
        this batch).  Any shard-level failure re-raises here.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        for ticket in self._tickets:
            remaining = (
                None if deadline is None else deadline - time.monotonic()
            )
            ticket.wait(remaining)
        return self._router._global_ack()


@dataclass(frozen=True)
class _GlobalAck:
    """Version/watermark pair answering a router-level ingest."""

    version: int
    watermark: int


class _Shard:
    """One worker slot: a service (possibly not yet activated) + bookkeeping."""

    def __init__(self, index: int) -> None:
        self.index = index
        self.service: TruthService | None = None
        self.lock = threading.Lock()  # guards lazy activation / crash
        self.down = False
        self.applied_claims = 0  # router-side, survives crash/rebuild
        self.store_dir: Path | None = None

    @property
    def alive(self) -> bool:
        return self.service is not None and not self.down


class ShardRouter:
    """Partition the claim stream across N in-process truth services.

    Parameters
    ----------
    base:
        Base algorithm; each shard (and the global merger) gets its own
        clone so worker threads never share mutable algorithm state.
    dataset:
        The initial corpus.  Attributes are assigned to shards block by
        block from the initial partition (exception rule applied), and
        each shard starts over its slice.
    n_shards:
        Worker count.  ``1`` degenerates to a single service behind the
        router surface.
    config:
        Shared :class:`~repro.core.config.TDACConfig` (fingerprint
        stamped on every snapshot, exactly as in the single service).
    service_config:
        :class:`~repro.serving.config.ServiceConfig` applied to every
        shard worker; its ``merge_every`` / ``rebalance_threshold``
        fields drive the router itself.  Legacy per-knob keywords are
        honoured through the usual deprecation shim.
    partition_cache / tracer:
        Shared across every shard and the merger.
    store:
        Optional durability root.  Each shard's WAL + checkpoints live
        under ``<store>/epoch-<E>/shard-<I>``; a rebalance advances the
        epoch so hand-off state never interleaves with live state.
    exception_shard:
        Index of the deterministic shard that receives straddling
        blocks.
    snapshot_store_factory:
        Optional ``(epoch, shard) -> SnapshotStore`` hook letting a
        :class:`~repro.serving.tenancy.TenantRegistry` point shards at
        shared snapshot stores; ``None`` keeps per-shard defaults.
    """

    def __init__(
        self,
        base: TruthDiscoveryAlgorithm,
        dataset: Dataset,
        *,
        n_shards: int = 2,
        config: TDACConfig | None = None,
        service_config: ServiceConfig | None = None,
        partition_cache: PartitionCache | None = None,
        tracer: SpanTracer | None = None,
        store: str | Path | None = None,
        exception_shard: int = 0,
        snapshot_store_factory: Callable[[int, int], object] | None = None,
        **legacy,
    ) -> None:
        if n_shards < 1:
            raise ValueError("n_shards must be at least 1")
        if not 0 <= exception_shard < n_shards:
            raise ValueError(
                f"exception_shard must be in [0, {n_shards}), "
                f"got {exception_shard}"
            )
        self.service_config = fold_legacy_kwargs(
            "ShardRouter", service_config, legacy, SERVICE_LEGACY_KWARGS
        )
        self.n_shards = n_shards
        self.exception_shard = exception_shard
        self.partition_cache = partition_cache
        self._base = base
        self._config = config if config is not None else TDACConfig()
        self._initial_dataset = dataset
        self._tracer = tracer
        self._store_root = None if store is None else Path(store)
        self._snapshot_store_factory = snapshot_store_factory
        self._epoch = 0
        self._shards = [_Shard(i) for i in range(n_shards)]
        #: Attribute -> shard for attributes placed *off* their hash
        #: home (the patched-partitioning exception list).  Everything
        #: else routes to attribute_home().
        self._exceptions: dict[AttributeId, int] = {}
        #: Sticky routing decisions for attributes first seen mid-epoch.
        self._assignment: dict[AttributeId, int] = {}
        self._lock = threading.Lock()  # admission / routing / sequences
        self._merge_lock = threading.Lock()  # merger + merged publication
        self._log_lock = threading.Lock()  # global applied log
        self._global_log: list[Claim] = []
        self._merged_len = 0  # prefix of the log the merger has folded
        self._merger = IncrementalTDAC(
            _clone_base(base),
            repartition_fraction=self.service_config.repartition_fraction,
            warm_window=self.service_config.warm_window,
            config=self._config,
            partition_cache=partition_cache,
        )
        self._merged: MergedSnapshot | None = None
        self._next_sequence = 0
        self._batches_since_merge = 0
        self._started = False
        self._closed = False
        self._stats = {
            "ingested_tickets": 0,
            "ingested_claims": 0,
            "rejected_claims": 0,
            "overloaded_tickets": 0,
            "merge_refreshes": 0,
            "rebalances": 0,
            "shard_crashes": 0,
            "shard_restores": 0,
            "lazy_activations": 0,
        }

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    def shard_of(self, attribute: AttributeId) -> int:
        """Where claims for ``attribute`` go this epoch (sticky)."""
        shard = self._exceptions.get(attribute)
        if shard is not None:
            return shard
        shard = self._assignment.get(attribute)
        if shard is not None:
            return shard
        return attribute_home(attribute, self.n_shards)

    @property
    def exceptions(self) -> dict[AttributeId, int]:
        """Copy of the current exception list (attr -> overriding shard)."""
        with self._lock:
            return dict(self._exceptions)

    def _assign_blocks(
        self, partition: Partition, balance: bool
    ) -> tuple[dict[AttributeId, int], dict[AttributeId, int]]:
        """Place whole blocks; return (assignment, exception list).

        Default rule (``balance=False``): a block whose attributes all
        hash to one home shard lives there; a block that *straddles*
        homes goes to the deterministic exception shard.  Balance rule
        (rebalance path): blocks go greedily, heaviest first by claim
        count, onto the least-loaded shard.  Either way the exception
        list records exactly the attributes placed off their hash home.
        """
        counts = self._claim_counts_by_attribute()
        assignment: dict[AttributeId, int] = {}
        if balance:
            loads = [0] * self.n_shards
            blocks = sorted(
                partition.blocks,
                key=lambda block: (-sum(counts.get(a, 0) for a in block),
                                   str(block[0]) if block else ""),
            )
            for block in blocks:
                shard = min(range(self.n_shards), key=lambda i: loads[i])
                loads[shard] += sum(counts.get(a, 0) for a in block)
                for attribute in block:
                    assignment[attribute] = shard
        else:
            for block in partition.blocks:
                homes = {attribute_home(a, self.n_shards) for a in block}
                shard = homes.pop() if len(homes) == 1 else self.exception_shard
                for attribute in block:
                    assignment[attribute] = shard
        exceptions = {
            attribute: shard
            for attribute, shard in assignment.items()
            if shard != attribute_home(attribute, self.n_shards)
        }
        return assignment, exceptions

    def _claim_counts_by_attribute(self) -> dict[AttributeId, int]:
        counts: dict[AttributeId, int] = {}
        for claim in self._merger.dataset.iter_claims():
            counts[claim.attribute] = counts.get(claim.attribute, 0) + 1
        return counts

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def config(self) -> TDACConfig:
        return self._config

    def start(self) -> MergedSnapshot:
        """Fit the merger, place the attribute space, start the workers."""
        with self._lock:
            if self._started:
                raise RuntimeError("router already started")
            if self._closed:
                raise ServiceStoppedError("router was stopped")
            self._started = True
        with activate(self._tracer):
            with current_tracer().span(
                "shard.start", shards=self.n_shards
            ):
                outcome = self._merger.fit(self._initial_dataset)
        assignment, exceptions = self._assign_blocks(
            outcome.partition, balance=False
        )
        with self._lock:
            self._assignment = assignment
            self._exceptions = exceptions
        self._build_shards(self._initial_dataset)
        merged = MergedSnapshot(
            version=1,
            watermark=0,
            result=outcome.result,
            partition=outcome.partition,
            silhouette_by_k=dict(outcome.silhouette_by_k),
            exact=True,
            pending_claims=0,
            dataset_fingerprint=self._initial_dataset.fingerprint,
            config_fingerprint=self._config.fingerprint(),
            shards=self._shard_infos(),
        )
        with self._merge_lock:
            self._merged = merged
        return merged

    def _shard_store(self, index: int):
        if self._store_root is None:
            return None
        directory = (
            self._store_root / f"epoch-{self._epoch:03d}" / f"shard-{index:02d}"
        )
        if self._snapshot_store_factory is None:
            return directory
        from repro.store import TruthStore

        return TruthStore(
            directory,
            snapshots=self._snapshot_store_factory(self._epoch, index),
        )

    def _make_service(self, index: int, dataset: Dataset) -> TruthService:
        service = TruthService(
            _clone_base(self._base),
            dataset,
            config=self._config,
            service_config=self.service_config,
            partition_cache=self.partition_cache,
            tracer=self._tracer,
            store=self._shard_store(index),
        )
        service.start()
        return service

    def _build_shards(self, dataset: Dataset) -> None:
        """(Re)create every worker over its slice of ``dataset``."""
        slices: dict[int, list[AttributeId]] = {}
        for attribute in dataset.attributes:
            slices.setdefault(self.shard_of(attribute), []).append(attribute)
        for shard in self._shards:
            attrs = slices.get(shard.index, [])
            shard.store_dir = (
                None
                if self._store_root is None
                else self._store_root
                / f"epoch-{self._epoch:03d}"
                / f"shard-{shard.index:02d}"
            )
            if not attrs:
                shard.service = None  # lazy: activated by its first batch
                shard.down = False
                continue
            shard.service = self._make_service(
                shard.index, dataset.restrict_attributes(attrs)
            )
            shard.down = False
            self._gauge(f"shard.{shard.index}.attributes", len(attrs))

    def stop(
        self, timeout: float | None = None, checkpoint: bool = True
    ) -> None:
        """Drain, fold the log into the merged view, stop every worker."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self.drain(timeout)
        with self._merge_lock:
            self._refresh_merged_locked()
        for shard in self._shards:
            if shard.service is not None and not shard.down:
                shard.service.stop(timeout, checkpoint=checkpoint)

    def __enter__(self) -> "ShardRouter":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------

    def ingest(
        self,
        claims: Iterable[Claim],
        wait: bool = False,
        timeout: float | None = None,
    ) -> _RouterTicket:
        """Split a batch across its owning shards and admit each slice.

        At-least-once semantics match the single service: if one shard
        rejects (overloaded / down) after another already admitted, the
        router raises and the client's retry re-asserts the admitted
        slice as duplicate no-ops.
        """
        batch = tuple(claims)
        if not batch:
            raise ValueError("ingest requires at least one claim")
        with self._lock:
            if self._closed or not self._started:
                raise ServiceStoppedError(
                    "router is not running; call start() first"
                )
            by_shard: dict[int, list[Claim]] = {}
            for claim in batch:
                shard = self.shard_of(claim.attribute)
                # Sticky: the first routing decision for a new attribute
                # holds until the next rebalance epoch.
                self._assignment.setdefault(claim.attribute, shard)
                by_shard.setdefault(shard, []).append(claim)
            offset = self._next_sequence
            self._next_sequence += len(batch)
            self._stats["ingested_tickets"] += 1
            self._stats["ingested_claims"] += len(batch)
        ticket = _RouterTicket(self, batch, offset)
        try:
            for index, slice_claims in sorted(by_shard.items()):
                sub = self._ingest_shard(index, slice_claims)
                if sub is not None:
                    ticket._tickets.append(sub)
        except ServiceOverloadedError:
            with self._lock:
                self._stats["overloaded_tickets"] += 1
                self._stats["rejected_claims"] += len(batch)
            self._count("shard.overloaded")
            raise
        self._count("shard.ingest", len(batch))
        if wait:
            ticket.wait(timeout)
        return ticket

    def _ingest_shard(
        self, index: int, claims: list[Claim]
    ) -> IngestTicket | None:
        """Admit one slice on its shard; None if applied synchronously."""
        shard = self._shards[index]
        with shard.lock:
            if shard.down:
                raise ServiceOverloadedError(
                    0, self.service_config.queue_capacity,
                    self._last_batch_seconds,
                )
            if shard.service is None:
                # Cold shard: the first batch seeds the worker's corpus.
                self._activate_shard(shard, claims)
                return None
            service = shard.service
        ticket = service.ingest(claims)
        ticket.add_done_callback(
            lambda: self._on_settled(shard, ticket)
        )
        return ticket

    def _activate_shard(self, shard: _Shard, claims: list[Claim]) -> None:
        """Spin up a lazy shard with ``claims`` as its initial corpus.

        The claims are part of the worker's baseline checkpoint (cut by
        ``start()``), so they are durable before this returns — the same
        ack-after-durability contract the WAL admit path gives.
        """
        seed = Dataset((), (), (), {}, name="shard-seed").extended(claims)
        shard.service = self._make_service(shard.index, seed)
        shard.down = False
        with self._lock:
            self._stats["lazy_activations"] += 1
        self._count("shard.lazy_activation")
        self._append_global(shard, claims)

    def _on_settled(self, shard: _Shard, ticket: IngestTicket) -> None:
        """Ticket callback: fold successful batches into the global log."""
        if ticket._error is not None:
            return
        self._append_global(shard, list(ticket.claims))

    def _append_global(self, shard: _Shard, claims: list[Claim]) -> None:
        with self._log_lock:
            self._global_log.extend(claims)
            shard.applied_claims += len(claims)
            self._batches_since_merge += 1
            due = (
                self.service_config.merge_every > 0
                and self._batches_since_merge
                >= self.service_config.merge_every
            )
        self._gauge(f"shard.{shard.index}.applied_claims",
                    shard.applied_claims)
        if due:
            # Cost lands on the settling shard's batcher thread — the
            # explicit trade of periodic merging; merge_every=0 keeps
            # the hot path entirely merge-free.
            self.refresh_merged()

    # ------------------------------------------------------------------
    # Merged view
    # ------------------------------------------------------------------

    def refresh_merged(self) -> MergedSnapshot:
        """Fold the applied log's unseen suffix into the merged view.

        Exact by the delta-path theorem: the merger's state after
        ``update(log[a:b])`` equals a cold ``TDAC.run`` over
        ``initial + log[:b]``, so every published merged snapshot is
        bit-identical to its offline reference.
        """
        with self._merge_lock:
            return self._refresh_merged_locked()

    def _refresh_merged_locked(self) -> MergedSnapshot:
        merged = self._merged
        if merged is None:
            raise ServiceStoppedError(
                "router is not running; call start() first"
            )
        with self._log_lock:
            delta = list(self._global_log[self._merged_len:])
            self._batches_since_merge = 0
        if not delta:
            return merged
        with activate(self._tracer):
            with current_tracer().span("shard.merge", claims=len(delta)):
                outcome = self._merger.update(delta)
        self._merged_len += len(delta)
        with self._lock:
            self._stats["merge_refreshes"] += 1
        merged = MergedSnapshot(
            version=merged.version + 1,
            watermark=self._merged_len,
            result=outcome.result,
            partition=outcome.partition,
            silhouette_by_k=dict(outcome.silhouette_by_k),
            exact=True,
            pending_claims=self._pending_claims(),
            dataset_fingerprint=self._merger.dataset.fingerprint,
            config_fingerprint=self._config.fingerprint(),
            shards=self._shard_infos(),
        )
        self._merged = merged
        self._gauge("shard.merged.watermark", merged.watermark)
        return merged

    def snapshot(self) -> MergedSnapshot:
        """The exact global view (refreshes the merge lazily)."""
        return self.refresh_merged()

    def query(self, obj: ObjectId, attribute: AttributeId) -> QueryAnswer:
        """Point read from the owning shard's local snapshot (wait-free).

        The owning shard's view of its own attributes is the freshest
        one in the system; a down shard falls back to the (possibly
        staler, still exact) merged view.
        """
        shard = self._shards[self.shard_of(attribute)]
        service = shard.service
        if service is not None and not shard.down:
            return service.query(obj, attribute)
        with self._merge_lock:
            merged = self._merged
        if merged is None:
            raise ServiceStoppedError(
                "router is not running; call start() first"
            )
        value = merged.value(obj, attribute)
        return QueryAnswer(
            object=obj,
            attribute=attribute,
            value=value,
            found=value is not None,
            version=merged.version,
            watermark=merged.watermark,
            exact=merged.exact,
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def claim_log(self) -> tuple[Claim, ...]:
        """Every globally applied claim, in resolution order."""
        with self._log_lock:
            return tuple(self._global_log)

    def replay_dataset(self, watermark: int | None = None) -> Dataset:
        """The offline dataset the merged view at ``watermark`` must match."""
        log = self.claim_log
        if watermark is None:
            watermark = len(log)
        if not 0 <= watermark <= len(log):
            raise ValueError(
                f"watermark {watermark} outside applied range "
                f"[0, {len(log)}]"
            )
        if watermark == 0:
            return self._initial_dataset
        return extend_dataset(self._initial_dataset, list(log[:watermark]))

    def _pending_claims(self) -> int:
        total = 0
        for shard in self._shards:
            service = shard.service
            if service is not None and not shard.down:
                with service._cond:
                    total += service._pending_claims + service._in_flight
        return total

    def _shard_infos(self) -> tuple[ShardInfo, ...]:
        infos = []
        with self._lock:
            owned: dict[int, int] = {}
            for attribute, shard_index in self._assignment.items():
                owned[shard_index] = owned.get(shard_index, 0) + 1
        for shard in self._shards:
            service = shard.service
            snapshot = None
            if service is not None and not shard.down:
                snapshot = service._snapshot
            infos.append(
                ShardInfo(
                    index=shard.index,
                    attributes=owned.get(shard.index, 0),
                    applied_claims=shard.applied_claims,
                    version=snapshot.version if snapshot else 0,
                    watermark=snapshot.watermark if snapshot else 0,
                    alive=shard.alive,
                )
            )
        return tuple(infos)

    @property
    def _last_batch_seconds(self) -> float:
        worst = 0.05
        for shard in self._shards:
            service = shard.service
            if service is not None and not shard.down:
                worst = max(worst, service._last_batch_seconds)
        return worst

    @property
    def stats(self) -> dict:
        """Router counters, merged progress and per-shard sub-stats."""
        with self._lock:
            out = dict(self._stats)
        with self._merge_lock:
            merged = self._merged
        with self._log_lock:
            out["applied_claims"] = len(self._global_log)
            out["merged_lag_claims"] = len(self._global_log) - self._merged_len
        out["version"] = merged.version if merged else 0
        out["watermark"] = merged.watermark if merged else 0
        out["pending_claims"] = self._pending_claims()
        out["n_shards"] = self.n_shards
        out["epoch"] = self._epoch
        out["exceptions"] = len(self._exceptions)
        out["skew"] = self.skew()
        out["shards"] = {
            str(shard.index): (
                shard.service.stats
                if shard.service is not None and not shard.down
                else {"alive": False,
                      "applied_claims": shard.applied_claims}
            )
            for shard in self._shards
        }
        return out

    def skew(self) -> float:
        """Max/mean applied-claim load across shards (1.0 = balanced)."""
        loads = [shard.applied_claims for shard in self._shards]
        mean = sum(loads) / len(loads)
        if mean <= 0:
            return 1.0
        return max(loads) / mean

    def drain(self, timeout: float | None = None) -> bool:
        """Block until every shard applied everything it admitted."""
        deadline = None if timeout is None else time.monotonic() + timeout
        for shard in self._shards:
            service = shard.service
            if service is None or shard.down:
                continue
            remaining = (
                None if deadline is None else deadline - time.monotonic()
            )
            if remaining is not None and remaining <= 0:
                return False
            if not service.drain(remaining):
                return False
        return True

    def _global_ack(self) -> _GlobalAck:
        with self._merge_lock:
            version = self._merged.version if self._merged else 0
        with self._log_lock:
            watermark = len(self._global_log)
        return _GlobalAck(version=version, watermark=watermark)

    # ------------------------------------------------------------------
    # Rebalancing (exact hand-off)
    # ------------------------------------------------------------------

    def maybe_rebalance(self) -> bool:
        """Rebalance iff the skew threshold is set and exceeded."""
        threshold = self.service_config.rebalance_threshold
        if threshold <= 0 or self.skew() <= threshold:
            return False
        self.rebalance()
        return True

    def rebalance(self) -> None:
        """Re-partition the attribute space with exact hand-off.

        Drain → merge (the global log *is* the state) → final per-shard
        checkpoints → re-place whole blocks of the merged partition
        greedily by claim count → rebuild every worker over its new
        slice of the merger's dataset under a fresh store epoch.  The
        merged view is bitwise unchanged across the hand-off; only
        placement (and therefore future shard-local work) moves.
        """
        self.drain()
        with self._merge_lock:
            merged = self._refresh_merged_locked()
        with activate(self._tracer):
            with current_tracer().span("shard.rebalance"):
                for shard in self._shards:
                    if shard.service is not None and not shard.down:
                        shard.service.stop(checkpoint=True)
                    shard.service = None
                    shard.down = False
                assignment, exceptions = self._assign_blocks(
                    merged.partition, balance=True
                )
                with self._lock:
                    # Attributes outside the merged partition (possible
                    # only transiently) keep their sticky routing.
                    sticky = {
                        a: s
                        for a, s in self._assignment.items()
                        if a not in assignment
                    }
                    self._assignment = {**sticky, **assignment}
                    self._exceptions = exceptions
                    self._epoch += 1
                    self._stats["rebalances"] += 1
                self._build_shards(self._merger.dataset)
        self._count("shard.rebalance")
        self._gauge("shard.epoch", self._epoch)

    # ------------------------------------------------------------------
    # Fault injection
    # ------------------------------------------------------------------

    def crash_shard(self, index: int) -> None:
        """Kill one worker the way a crash would.

        Its admission queue is dropped (unapplied tickets fail with a
        retryable overload, exactly what a vanished worker looks like to
        a client), the worker thread exits after the in-flight batch,
        and the store closes with **no** final checkpoint — the WAL is
        left exactly as a real crash would leave it.
        """
        shard = self._shards[index]
        with shard.lock:
            service = shard.service
            if service is None or shard.down:
                raise ValueError(f"shard {index} is not running")
            shard.down = True
        dropped: list[IngestTicket] = []
        with service._cond:
            service._closed = True
            while service._pending:
                ticket = service._pending.popleft()
                service._pending_claims -= len(ticket.claims)
                dropped.append(ticket)
            service._cond.notify_all()
        if service._thread is not None:
            service._thread.join()
        for ticket in dropped:
            ticket._fail(
                ServiceOverloadedError(
                    len(ticket.claims),
                    self.service_config.queue_capacity,
                    self._last_batch_seconds,
                )
            )
        if service.store is not None:
            service.store.close()
        with self._lock:
            self._stats["shard_crashes"] += 1
        self._count("shard.crash")
        self._gauge(f"shard.{index}.alive", 0)

    def restore_shard(self, index: int) -> None:
        """Resurrect a crashed worker from its WAL + checkpoints.

        :meth:`TruthService.restore` replays the committed tail (every
        acked claim) and re-applies uncommitted admits.  The global log
        already holds everything that was acked, so the merged view
        needs no reconciliation — restore re-establishes the *shard's*
        local state, after which routing to it resumes.
        """
        shard = self._shards[index]
        with shard.lock:
            if not shard.down:
                raise ValueError(f"shard {index} is not down")
            if shard.store_dir is None:
                raise ValueError(
                    f"shard {index} has no store; cannot restore"
                )
            store = shard.store_dir
            if self._snapshot_store_factory is not None:
                from repro.store import TruthStore

                store = TruthStore(
                    store,
                    snapshots=self._snapshot_store_factory(
                        self._epoch, index
                    ),
                )
            shard.service = TruthService.restore(
                store,
                _clone_base(self._base),
                config=self._config,
                service_config=self.service_config,
                partition_cache=self.partition_cache,
                tracer=self._tracer,
            )
            shard.down = False
        with self._lock:
            self._stats["shard_restores"] += 1
        self._count("shard.restore")
        self._gauge(f"shard.{index}.alive", 1)

    # ------------------------------------------------------------------

    def _count(self, name: str, n: int = 1) -> None:
        if self._tracer is not None:
            self._tracer.count(name, n)

    def _gauge(self, name: str, value: float) -> None:
        if self._tracer is not None:
            self._tracer.gauge(name, value)
