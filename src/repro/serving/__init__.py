"""Serving layer: a long-lived, micro-batching truth discovery engine.

The ROADMAP's production framing — heavy query traffic over a stream of
claims — needs more than one-shot ``TDAC.run`` calls.  This package
provides it:

* :class:`~repro.serving.service.TruthService` — thread-safe
  query/ingest API with an admission queue, a micro-batcher
  (``max_batch_size`` / ``max_wait_ms``), bounded-queue backpressure and
  ``serve.*`` span/counter/gauge instrumentation;
* :class:`~repro.serving.snapshot.TruthSnapshot` — immutable,
  monotonically versioned read views with a claims-seen watermark and
  staleness metadata, each (in the default full-refit mode)
  bit-identical to an offline ``TDAC.run`` over the claims at its
  watermark;
* :class:`~repro.core.cache.PartitionCache` (re-exported) — the shared
  LRU that lets repeated cold starts replay selected partitions;
* :mod:`~repro.serving.frontend` — the JSON-lines driver behind the
  ``repro serve`` CLI subcommand and its ``--smoke`` round trip;
* :mod:`~repro.serving.net` / :mod:`~repro.serving.client` — the
  asyncio TCP front-end behind ``repro serve --listen`` (persistent
  multiplexed connections, per-connection backpressure, graceful
  drain) and the matching reconnect/backoff/retry-after client;
* :class:`~repro.serving.config.ServiceConfig` — one frozen,
  fingerprintable config object holding every serving knob (the old
  per-knob keywords survive behind a deprecation shim);
* :mod:`~repro.serving.schema` — the versioned ``tdac-serve/v1`` wire
  envelope every front-end response carries, with
  :class:`ServeEnvelope` / :func:`serve_envelope_from_dict` as the
  typed client-side view;
* :class:`~repro.serving.sharding.ShardRouter` — N service workers
  partitioning the attribute space (hash homes + an exception list for
  straddling blocks), an exact lazily-merged global view
  (:class:`MergedSnapshot`), skew-triggered rebalancing with exact
  WAL/checkpoint hand-off, and crash/restore fault injection;
* :class:`~repro.serving.tenancy.TenantRegistry` — named tenants
  multiplexed over fingerprint-keyed shared engines with per-tenant
  admission quotas, counters and WAL namespaces.

Durability is opt-in through :mod:`repro.store`: pass ``store=`` to
:class:`TruthService` and every admission is WAL-logged before its
ticket returns, checkpoints are cut periodically, and
:meth:`TruthService.restore` resumes the service bit-identically after
a crash.
"""

from repro.core.cache import PartitionCache
from repro.serving.client import (
    AsyncTruthClient,
    RetryPolicy,
    TruthClientError,
)
from repro.serving.config import ServiceConfig, service_config_from_dict
from repro.serving.frontend import handle_request, run_smoke, serve_jsonl
from repro.serving.net import TruthServer, serve_network
from repro.serving.schema import (
    SERVE_SCHEMA,
    ServeEnvelope,
    serve_envelope_from_dict,
)
from repro.serving.service import (
    IngestTicket,
    QueryAnswer,
    REFIT_MODES,
    ServiceOverloadedError,
    ServiceStoppedError,
    TruthService,
)
from repro.serving.sharding import MergedSnapshot, ShardRouter
from repro.serving.snapshot import TruthSnapshot
from repro.serving.tenancy import (
    TenantHandle,
    TenantQuotaError,
    TenantRegistry,
    UnknownTenantError,
)

__all__ = [
    "AsyncTruthClient",
    "IngestTicket",
    "MergedSnapshot",
    "PartitionCache",
    "QueryAnswer",
    "REFIT_MODES",
    "RetryPolicy",
    "SERVE_SCHEMA",
    "ServeEnvelope",
    "ServiceConfig",
    "ServiceOverloadedError",
    "ServiceStoppedError",
    "ShardRouter",
    "TenantHandle",
    "TenantQuotaError",
    "TenantRegistry",
    "TruthClientError",
    "TruthServer",
    "TruthService",
    "TruthSnapshot",
    "UnknownTenantError",
    "handle_request",
    "run_smoke",
    "serve_envelope_from_dict",
    "serve_jsonl",
    "serve_network",
    "service_config_from_dict",
]
