"""Frozen configuration object for the serving stack.

:class:`ServiceConfig` is to the serving layer what
:class:`~repro.core.config.TDACConfig` is to the pipeline: one
immutable, validated, fingerprintable value holding every serving knob
that used to sprawl across the :class:`~repro.serving.service.TruthService`,
:class:`~repro.serving.net.TruthServer` and
:func:`~repro.serving.net.serve_network` constructors — batch sizing,
queue bounds, refit modes, checkpoint cadence, and the network framing /
timeout / backpressure limits.

``TruthService(..., service_config=ServiceConfig(...))`` is the primary
spelling; the old per-knob keyword arguments keep working through a
deprecation shim that folds them into the equivalent config (one
:class:`DeprecationWarning` per construction — see CHANGELOG 1.5.0 for
the removal window).  None of these knobs affects *what* a snapshot
contains — every refit mode is bit-identical to offline ``TDAC.run`` —
so the :meth:`fingerprint` is an operational identity (used by the
tenant registry and the admin surface), not a result key.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass

#: Refit strategies: both are bit-identical to offline ``TDAC.run``;
#: ``"full"`` recomputes every stage per batch, ``"incremental"``
#: reuses whatever the batch provably could not have changed.
REFIT_MODES = ("full", "incremental")

#: Default per-line framing bound (1 MiB of JSON is already a huge batch).
DEFAULT_MAX_LINE_BYTES = 1 << 20


@dataclass(frozen=True)
class ServiceConfig:
    """Every serving knob, validated and frozen.

    Service-side (micro-batching / admission / durability):

    refit:
        ``"full"`` (default) re-runs the whole pipeline per batch;
        ``"incremental"`` applies the exact delta path of
        :meth:`IncrementalTDAC.update`.  Snapshots are bit-identical to
        offline ``TDAC.run`` either way.
    replay_refit:
        Refit mode used while :meth:`TruthService.restore` replays the
        WAL tail; defaults to ``"incremental"``.
    repartition_fraction:
        Forwarded to :class:`~repro.core.incremental.IncrementalTDAC`.
    warm_window:
        Half-width of the ``k`` window of the warm-started
        partition-drift probe.
    max_batch_size / max_wait_ms:
        Micro-batch claim target and straggler linger.
    queue_capacity:
        Bound on pending (admitted, unapplied) claims per service.
    snapshot_every:
        Applied batches between periodic checkpoints (with a store).

    Network-side (:class:`~repro.serving.net.TruthServer`):

    max_line_bytes:
        Request-line framing bound.
    max_inflight_per_connection:
        Concurrent-request cap per connection.
    idle_timeout / write_timeout / write_buffer_bytes / drain_timeout:
        Connection lifecycle bounds (idle close, slow-loris cutoff,
        bounded write buffers, graceful-drain flush window).

    Sharding / tenancy (:class:`~repro.serving.sharding.ShardRouter`):

    merge_every:
        Applied shard batches between automatic merged-view refreshes
        (``0`` refreshes only on demand — ``snapshot()`` / ``drain`` /
        ``stop``).
    rebalance_threshold:
        Shard skew ratio (max/mean applied claims) above which
        :meth:`ShardRouter.maybe_rebalance` re-partitions the attribute
        space; ``0`` disables automatic rebalancing.
    """

    refit: str = "full"
    replay_refit: str = "incremental"
    repartition_fraction: float = 0.2
    warm_window: int = 1
    max_batch_size: int = 64
    max_wait_ms: float = 10.0
    queue_capacity: int = 1024
    snapshot_every: int = 8
    max_line_bytes: int = DEFAULT_MAX_LINE_BYTES
    max_inflight_per_connection: int = 32
    idle_timeout: float = 300.0
    write_timeout: float = 10.0
    write_buffer_bytes: int = 256 * 1024
    drain_timeout: float = 30.0
    merge_every: int = 0
    rebalance_threshold: float = 0.0

    def __post_init__(self) -> None:
        if self.refit not in REFIT_MODES:
            raise ValueError(
                f"refit must be one of {REFIT_MODES}, got {self.refit!r}"
            )
        if self.replay_refit not in REFIT_MODES:
            raise ValueError(
                f"replay_refit must be one of {REFIT_MODES}, "
                f"got {self.replay_refit!r}"
            )
        if not 0.0 < self.repartition_fraction <= 1.0:
            raise ValueError("repartition_fraction must be in (0, 1]")
        if self.warm_window < 0:
            raise ValueError("warm_window must be >= 0")
        if self.max_batch_size < 1:
            raise ValueError("max_batch_size must be at least 1")
        if self.max_wait_ms < 0:
            raise ValueError("max_wait_ms must be non-negative")
        if self.queue_capacity < 1:
            raise ValueError("queue_capacity must be at least 1")
        if self.snapshot_every < 1:
            raise ValueError("snapshot_every must be at least 1")
        if self.max_line_bytes < 64:
            raise ValueError("max_line_bytes must be at least 64")
        if self.max_inflight_per_connection < 1:
            raise ValueError("max_inflight_per_connection must be >= 1")
        for name in ("idle_timeout", "write_timeout", "drain_timeout"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if self.write_buffer_bytes < 1:
            raise ValueError("write_buffer_bytes must be positive")
        if self.merge_every < 0:
            raise ValueError("merge_every must be >= 0")
        if self.rebalance_threshold < 0:
            raise ValueError("rebalance_threshold must be >= 0")

    # ------------------------------------------------------------------

    def replace(self, **changes) -> "ServiceConfig":
        """A copy of this config with ``changes`` applied (re-validated)."""
        return dataclasses.replace(self, **changes)

    def fingerprint(self) -> str:
        """Stable digest over every knob (operational identity).

        Unlike :meth:`TDACConfig.fingerprint` this is not a result key —
        no serving knob changes what a snapshot contains — it identifies
        the serving *configuration* for the tenant registry and the
        admin surface.
        """
        payload = {
            f.name: getattr(self, f.name)
            for f in dataclasses.fields(self)
        }
        blob = json.dumps(payload, sort_keys=True, default=repr)
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]

    def to_dict(self) -> dict:
        """JSON-ready view of every knob plus the fingerprint."""
        out = {
            f.name: getattr(self, f.name)
            for f in dataclasses.fields(self)
        }
        out["fingerprint"] = self.fingerprint()
        return out


#: Field names of :class:`ServiceConfig` (the deprecated per-knob shim
#: of :class:`TruthService` / :class:`TruthServer` accepts exactly the
#: subset each constructor historically took).
SERVICE_CONFIG_FIELD_NAMES = tuple(
    f.name for f in dataclasses.fields(ServiceConfig)
)


def service_config_from_dict(payload: dict) -> ServiceConfig:
    """Rebuild a :class:`ServiceConfig` from its :meth:`~ServiceConfig.to_dict`.

    A recorded ``fingerprint`` is validated against the rebuilt config,
    so a hand-edited payload cannot silently run under the wrong knobs.
    """
    data = dict(payload)
    recorded = data.pop("fingerprint", None)
    config = ServiceConfig(**data)
    if recorded is not None and config.fingerprint() != recorded:
        raise ValueError(
            f"stored service-config fingerprint {recorded} does not match "
            f"its knobs (recomputed {config.fingerprint()})"
        )
    return config


def fold_legacy_kwargs(
    owner: str,
    service_config: ServiceConfig | None,
    legacy: dict,
    allowed: tuple[str, ...],
) -> ServiceConfig:
    """Shared deprecation shim: fold per-knob kwargs into a config.

    ``legacy`` keys outside ``allowed`` raise :class:`TypeError` (typo
    protection, matching normal keyword behaviour); a non-empty
    ``legacy`` alongside an explicit ``service_config`` also raises.
    Warns once per construction, like the :class:`TDACConfig` shim.
    """
    import warnings

    unknown = set(legacy) - set(allowed)
    if unknown:
        raise TypeError(
            f"{owner}() got unexpected keyword arguments "
            f"{sorted(unknown)!r}"
        )
    if not legacy:
        return service_config if service_config is not None else ServiceConfig()
    if service_config is not None:
        raise TypeError(
            f"pass knobs through service_config=ServiceConfig(...) or as "
            f"legacy keywords, not both ({owner})"
        )
    warnings.warn(
        f"passing {sorted(legacy)!r} to {owner}() is deprecated; use "
        "service_config=ServiceConfig(...) (removal per CHANGELOG 1.5.0 "
        "deprecation window)",
        DeprecationWarning,
        stacklevel=3,
    )
    return ServiceConfig(**legacy)
