"""The ``tdac-serve/v1`` wire envelope.

Before 1.5.0 the serving stack answered with ad-hoc JSON shapes — an
``ingest`` ack, a ``stats`` payload, an ``overloaded`` or ``draining``
rejection each carried a slightly different set of keys and nothing
identified the protocol version.  Every response now carries one
envelope::

    {"schema": "tdac-serve/v1", "ok": true, "op": "ingest", ...}

with optional routing context (``tenant``, ``shard``) stamped when the
responding stack knows it.  The change is **additive**: every key a
pre-1.5 client read (``applied``, ``offset``, ``version``,
``watermark``, ``error``, ``retry_after_seconds``, ``stats``,
``snapshot``, ``id`` ...) is still present with the same meaning, so
old clients keep working and new clients can dispatch on ``schema``.

:class:`ServeEnvelope` is the typed view: :func:`serve_envelope_from_dict`
parses any wire response into envelope fields plus a ``body`` of
op-specific keys, and :meth:`ServeEnvelope.to_dict` flattens it back —
a lossless round trip (modulo key order) for every response the stack
emits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

#: Wire schema identifier stamped on every serving response.
SERVE_SCHEMA = "tdac-serve/v1"

#: Envelope-level keys; everything else in a response is op body.
SERVE_ENVELOPE_KEYS = (
    "schema",
    "ok",
    "op",
    "error",
    "retry_after_seconds",
    "tenant",
    "shard",
)


@dataclass(frozen=True)
class ServeEnvelope:
    """One parsed serving response: envelope fields plus op body.

    ``ok`` is the only mandatory field.  ``op`` names the operation the
    response answers (absent on transport-level rejections such as a
    malformed frame); ``error`` / ``retry_after_seconds`` carry the
    failure contract; ``tenant`` / ``shard`` are routing context the
    multi-tenant sharded stack stamps when it knows it.  ``body`` holds
    every op-specific key (``applied``, ``version``, ``stats``,
    ``snapshot``, the echoed ``id``, ...), untouched.
    """

    ok: bool
    op: str | None = None
    error: str | None = None
    retry_after_seconds: float | None = None
    tenant: str | None = None
    shard: int | None = None
    body: Mapping[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict:
        """Flatten back to the wire shape (envelope keys + body keys)."""
        out: dict = {"schema": SERVE_SCHEMA, "ok": self.ok}
        for key in ("op", "error", "retry_after_seconds", "tenant", "shard"):
            value = getattr(self, key)
            if value is not None:
                out[key] = value
        for key, value in self.body.items():
            if key in SERVE_ENVELOPE_KEYS:
                raise ValueError(
                    f"body key {key!r} collides with an envelope key"
                )
            out[key] = value
        return out

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ServeEnvelope":
        """Parse a wire response; rejects foreign/missing schemas."""
        schema = payload.get("schema")
        if schema != SERVE_SCHEMA:
            raise ValueError(
                f"expected schema {SERVE_SCHEMA!r}, got {schema!r}"
            )
        if "ok" not in payload:
            raise ValueError("envelope is missing the 'ok' field")
        body = {
            key: value
            for key, value in payload.items()
            if key not in SERVE_ENVELOPE_KEYS
        }
        return cls(
            ok=bool(payload["ok"]),
            op=payload.get("op"),
            error=payload.get("error"),
            retry_after_seconds=payload.get("retry_after_seconds"),
            tenant=payload.get("tenant"),
            shard=payload.get("shard"),
            body=body,
        )


def serve_envelope_from_dict(payload: Mapping[str, Any]) -> ServeEnvelope:
    """Module-level spelling of :meth:`ServeEnvelope.from_dict`."""
    return ServeEnvelope.from_dict(payload)


def envelope_tag(
    response: dict,
    *,
    tenant: str | None = None,
    shard: int | None = None,
) -> dict:
    """Stamp the ``tdac-serve/v1`` envelope onto a response dict.

    Adds ``schema`` (and routing context when given) without disturbing
    any existing key — the additive-compatibility workhorse used by the
    front-ends on every response they emit.  Returns ``response`` (the
    same dict) for call-site convenience.
    """
    response.setdefault("schema", SERVE_SCHEMA)
    if tenant is not None:
        response.setdefault("tenant", tenant)
    if shard is not None:
        response.setdefault("shard", shard)
    return response


def envelope_error(
    error: str,
    *,
    op: str | None = None,
    retry_after_seconds: float | None = None,
    tenant: str | None = None,
    shard: int | None = None,
    **body: Any,
) -> dict:
    """Build a rejection response under the v1 envelope.

    Used for overload, draining, malformed-frame and unknown-op
    rejections so every failure a client can see carries the same
    ``schema`` / ``ok`` / ``error`` (+ optional ``retry_after_seconds``)
    contract.
    """
    out: dict = {"schema": SERVE_SCHEMA, "ok": False, "error": error}
    if op is not None:
        out["op"] = op
    if retry_after_seconds is not None:
        out["retry_after_seconds"] = retry_after_seconds
    if tenant is not None:
        out["tenant"] = tenant
    if shard is not None:
        out["shard"] = shard
    out.update(body)
    return out
