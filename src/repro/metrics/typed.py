"""Type-aware evaluation: set-valued PRF, tolerant continuous, mixed.

The claim-labelling protocol of :mod:`repro.metrics.classification`
assumes one discrete truth per fact.  Typed datasets break that in two
ways:

* **multi** attributes hold set-valued truths (tuples).  Following
  SmartMTD's multi-truth evaluation, every *element* claimed for the
  fact becomes a labelling decision: positive when the predicted set
  contains it, gold-positive when the true set does.  Set precision /
  recall / F1 fall out of the same confusion ratios.
* **continuous** attributes have no meaningful value-equality decisions
  at all; each evaluated fact contributes a single decision — correct
  when :func:`~repro.algorithms.similarity.value_similarity` to the
  truth reaches the tolerance (the CRH/CATD tolerance contract),
  otherwise one false positive plus one false negative.

:func:`evaluate_typed` routes each attribute-type block to its protocol
and sums the confusion counts into one overall report.  On an untyped
(all-categorical) dataset it *is* ``evaluate_predictions`` — same
counts, same ratios — so single-truth metrics are unchanged by this
module's existence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.data.dataset import Dataset
from repro.data.types import (
    CATEGORICAL,
    CONTINUOUS,
    MULTI,
    Fact,
    GroundTruthError,
    Value,
)
from repro.metrics.classification import (
    ConfusionCounts,
    EvaluationReport,
    confusion_counts,
    evaluate_predictions,
    report_from_counts,
)

_DEFAULT_TOLERANCE = 0.99


@dataclass(frozen=True)
class TypedEvaluationReport:
    """Per-type and combined evaluation of one prediction set."""

    overall: EvaluationReport
    by_type: Mapping[str, EvaluationReport]
    tolerance: float


def _as_value_set(value: Value) -> set:
    return set(value) if isinstance(value, tuple) else {value}


def set_confusion_counts(
    dataset: Dataset, predictions: Mapping[Fact, Value]
) -> tuple[ConfusionCounts, int]:
    """Element-level confusion counts for set-valued (multi) truths.

    The candidate universe of a fact is the union of the elements of its
    distinct claimed tuples — the same "only claimed values are
    decisions" rule the categorical protocol uses.
    """
    if not dataset.has_truth:
        raise GroundTruthError("evaluation requires a dataset with ground truth")
    tp = fp = fn = tn = 0
    n_facts = 0
    for fact in dataset.facts:
        truth = dataset.true_value(fact)
        if truth is None:
            continue
        predicted = predictions.get(fact)
        if predicted is None:
            continue
        n_facts += 1
        truth_set = _as_value_set(truth)
        predicted_set = _as_value_set(predicted)
        candidates: set = set()
        for claimed in dataset.values_for(fact):
            candidates |= _as_value_set(claimed)
        for value in sorted(candidates, key=repr):
            labelled_true = value in predicted_set
            actually_true = value in truth_set
            if labelled_true and actually_true:
                tp += 1
            elif labelled_true:
                fp += 1
            elif actually_true:
                fn += 1
            else:
                tn += 1
    return ConfusionCounts(tp, fp, fn, tn), n_facts


def tolerant_confusion_counts(
    dataset: Dataset,
    predictions: Mapping[Fact, Value],
    tolerance: float = _DEFAULT_TOLERANCE,
) -> tuple[ConfusionCounts, int]:
    """One decision per continuous fact: similar-enough or wrong.

    A miss counts as one false positive (a wrong value was asserted)
    plus one false negative (the true value was not), so precision and
    recall both reflect the miss.
    """
    from repro.algorithms.similarity import value_similarity

    if not dataset.has_truth:
        raise GroundTruthError("evaluation requires a dataset with ground truth")
    if not 0.0 < tolerance <= 1.0:
        raise ValueError("tolerance must be in (0, 1]")
    tp = fp = fn = 0
    n_facts = 0
    for fact in dataset.facts:
        truth = dataset.true_value(fact)
        predicted = predictions.get(fact)
        if truth is None or predicted is None:
            continue
        n_facts += 1
        if value_similarity(predicted, truth) >= tolerance:
            tp += 1
        else:
            fp += 1
            fn += 1
    return ConfusionCounts(tp, fp, fn, 0), n_facts


def evaluate_typed(
    dataset: Dataset,
    predictions: Mapping[Fact, Value],
    tolerance: float = _DEFAULT_TOLERANCE,
) -> TypedEvaluationReport:
    """Evaluate ``predictions`` with each attribute type's protocol.

    Untyped datasets short-circuit to the classic claim-labelling
    report, bit-for-bit.
    """
    if not dataset.has_typed_attributes:
        report = evaluate_predictions(dataset, predictions)
        return TypedEvaluationReport(
            overall=report,
            by_type={CATEGORICAL: report},
            tolerance=tolerance,
        )
    counters = {
        CATEGORICAL: confusion_counts,
        MULTI: set_confusion_counts,
        CONTINUOUS: lambda ds, preds: tolerant_confusion_counts(
            ds, preds, tolerance
        ),
    }
    by_type: dict[str, EvaluationReport] = {}
    tp = fp = fn = tn = 0
    n_facts = 0
    for kind, counter in counters.items():
        attrs = dataset.attributes_of_type(kind)
        if not attrs:
            continue
        sub = dataset.restrict_attributes(attrs)
        if not sub.has_truth or sub.n_claims == 0:
            continue
        counts, kind_facts = counter(sub, predictions)
        by_type[kind] = report_from_counts(counts, kind_facts)
        tp += counts.true_positives
        fp += counts.false_positives
        fn += counts.false_negatives
        tn += counts.true_negatives
        n_facts += kind_facts
    overall = report_from_counts(ConfusionCounts(tp, fp, fn, tn), n_facts)
    return TypedEvaluationReport(
        overall=overall, by_type=by_type, tolerance=tolerance
    )


def typed_fact_accuracy(
    dataset: Dataset,
    predictions: Mapping[Fact, Value],
    tolerance: float = _DEFAULT_TOLERANCE,
) -> float:
    """Fact accuracy under each type's notion of "correct".

    Categorical facts match exactly, multi facts match as value *sets*
    (claim order inside the tuple is presentation, not content), and
    continuous facts match within the similarity tolerance.
    """
    from repro.algorithms.similarity import value_similarity

    if not dataset.has_truth:
        raise GroundTruthError("evaluation requires a dataset with ground truth")
    types = dataset.attribute_types
    correct = 0
    evaluated = 0
    for fact in dataset.facts:
        truth = dataset.true_value(fact)
        predicted = predictions.get(fact)
        if truth is None or predicted is None:
            continue
        evaluated += 1
        kind = types.get(fact.attribute, CATEGORICAL)
        if kind == CONTINUOUS:
            hit = value_similarity(predicted, truth) >= tolerance
        elif kind == MULTI:
            hit = _as_value_set(predicted) == _as_value_set(truth)
        else:
            hit = predicted == truth
        if hit:
            correct += 1
    return correct / evaluated if evaluated else 0.0
