"""Source-ranking quality: does estimated trust order the sources right?

Trust scores feed downstream decisions (which feed to pay for, which
scraper to drop), where the *ordering* matters more than the scale.
:func:`kendall_tau` measures rank agreement between estimated trust and
true accuracy; :func:`top_k_precision` asks the operational question
"are the k sources the algorithm trusts most actually the best k?".
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.data.dataset import Dataset
from repro.data.types import SourceId
from repro.metrics.classification import source_accuracy


def kendall_tau(
    scores_a: Sequence[float], scores_b: Sequence[float]
) -> float:
    """Kendall's tau-a rank correlation between two score sequences.

    Concordant pairs minus discordant pairs over all pairs; ties count
    as neither.  Returns 0.0 for fewer than two items.
    """
    if len(scores_a) != len(scores_b):
        raise ValueError("score sequences differ in length")
    n = len(scores_a)
    if n < 2:
        return 0.0
    concordant = discordant = 0
    for i in range(n):
        for j in range(i + 1, n):
            a = (scores_a[i] > scores_a[j]) - (scores_a[i] < scores_a[j])
            b = (scores_b[i] > scores_b[j]) - (scores_b[i] < scores_b[j])
            product = a * b
            if product > 0:
                concordant += 1
            elif product < 0:
                discordant += 1
    return (concordant - discordant) / (n * (n - 1) / 2)


def trust_ranking_quality(
    dataset: Dataset, estimated_trust: Mapping[SourceId, float]
) -> float:
    """Kendall tau between estimated trust and true source accuracy."""
    actual = source_accuracy(dataset)
    sources = [s for s in dataset.sources if s in actual]
    if len(sources) < 2:
        raise ValueError("need at least two sources with claims")
    return kendall_tau(
        [estimated_trust.get(s, 0.0) for s in sources],
        [actual[s] for s in sources],
    )


def top_k_precision(
    dataset: Dataset,
    estimated_trust: Mapping[SourceId, float],
    k: int,
) -> float:
    """Fraction of the top-k estimated sources that are truly top-k.

    Ties in either ranking are broken by source order, which is
    deterministic; with heavy ties this is a pessimistic estimate.
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    actual = source_accuracy(dataset)
    sources = [s for s in dataset.sources if s in actual]
    if k > len(sources):
        raise ValueError(f"k={k} exceeds the {len(sources)} scored sources")
    by_estimate = sorted(
        sources, key=lambda s: -estimated_trust.get(s, 0.0)
    )[:k]
    by_actual = set(sorted(sources, key=lambda s: -actual[s])[:k])
    return sum(1 for s in by_estimate if s in by_actual) / k
