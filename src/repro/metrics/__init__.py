"""Evaluation metrics: claim-level confusion, partition quality, timing."""

from repro.metrics.classification import (
    ConfusionCounts,
    EvaluationReport,
    confusion_counts,
    evaluate_predictions,
    fact_accuracy,
    source_accuracy,
    tolerant_fact_accuracy,
)
from repro.metrics.ranking import (
    kendall_tau,
    top_k_precision,
    trust_ranking_quality,
)
from repro.metrics.partition_quality import (
    PartitionAgreement,
    compare_partitions,
    is_refinement,
)
from repro.metrics.timing import Stopwatch, Timer

__all__ = [
    "ConfusionCounts",
    "EvaluationReport",
    "PartitionAgreement",
    "Stopwatch",
    "Timer",
    "compare_partitions",
    "confusion_counts",
    "evaluate_predictions",
    "fact_accuracy",
    "is_refinement",
    "kendall_tau",
    "source_accuracy",
    "tolerant_fact_accuracy",
    "top_k_precision",
    "trust_ranking_quality",
]
