"""Evaluation metrics: claim-level confusion, partition quality, timing."""

from repro.metrics.classification import (
    ConfusionCounts,
    EvaluationReport,
    confusion_counts,
    evaluate_predictions,
    fact_accuracy,
    report_from_counts,
    source_accuracy,
    tolerant_fact_accuracy,
)
from repro.metrics.typed import (
    TypedEvaluationReport,
    evaluate_typed,
    set_confusion_counts,
    tolerant_confusion_counts,
    typed_fact_accuracy,
)
from repro.metrics.ranking import (
    kendall_tau,
    top_k_precision,
    trust_ranking_quality,
)
from repro.metrics.partition_quality import (
    PartitionAgreement,
    compare_partitions,
    is_refinement,
)
from repro.metrics.timing import Stopwatch, Timer

__all__ = [
    "ConfusionCounts",
    "EvaluationReport",
    "PartitionAgreement",
    "Stopwatch",
    "Timer",
    "TypedEvaluationReport",
    "compare_partitions",
    "confusion_counts",
    "evaluate_predictions",
    "evaluate_typed",
    "fact_accuracy",
    "is_refinement",
    "kendall_tau",
    "report_from_counts",
    "set_confusion_counts",
    "source_accuracy",
    "tolerant_confusion_counts",
    "tolerant_fact_accuracy",
    "top_k_precision",
    "trust_ranking_quality",
    "typed_fact_accuracy",
]
