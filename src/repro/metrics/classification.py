"""Evaluation metrics: precision, recall, accuracy, F1 (paper Section 4.1).

The paper evaluates with the claim-labelling protocol of Waguih &
Berti-Equille's experimental survey, which it cites for its settings.
Every *distinct claimed value* of every fact with known ground truth is a
labelling decision:

* the algorithm labels the value positive when it elected it as the
  truth, negative otherwise;
* the gold label is positive when the value equals the ground truth.

Precision / recall / accuracy / F1 are then the usual confusion-matrix
ratios over those decisions.  This is the only protocol under which the
paper's tables are internally consistent — with a fact-level protocol
(one decision per fact) precision and recall would coincide, but the
tables report them apart.

A fact-level view (:func:`fact_accuracy`) is also provided because the
literature often quotes it ("error rate").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.data.dataset import Dataset
from repro.data.types import Fact, GroundTruthError, Value


@dataclass(frozen=True)
class ConfusionCounts:
    """Raw confusion-matrix counts over value-labelling decisions."""

    true_positives: int
    false_positives: int
    false_negatives: int
    true_negatives: int

    @property
    def total(self) -> int:
        """Total number of labelling decisions."""
        return (
            self.true_positives
            + self.false_positives
            + self.false_negatives
            + self.true_negatives
        )


@dataclass(frozen=True)
class EvaluationReport:
    """Precision / recall / accuracy / F1 of one prediction set."""

    precision: float
    recall: float
    accuracy: float
    f1: float
    counts: ConfusionCounts
    n_facts_evaluated: int

    def as_row(self) -> tuple[float, float, float, float]:
        """The four headline metrics in the paper's column order."""
        return (self.precision, self.recall, self.accuracy, self.f1)


def confusion_counts(
    dataset: Dataset, predictions: Mapping[Fact, Value]
) -> tuple[ConfusionCounts, int]:
    """Count claim-labelling decisions of ``predictions`` against truth.

    Only facts that both carry ground truth and received at least one
    claim participate.  Returns the counts plus the number of facts
    evaluated.
    """
    if not dataset.has_truth:
        raise GroundTruthError("evaluation requires a dataset with ground truth")
    tp = fp = fn = tn = 0
    n_facts = 0
    for fact in dataset.facts:
        truth = dataset.true_value(fact)
        if truth is None:
            continue
        predicted = predictions.get(fact)
        if predicted is None:
            continue
        n_facts += 1
        for value in dataset.values_for(fact):
            labelled_true = value == predicted
            actually_true = value == truth
            if labelled_true and actually_true:
                tp += 1
            elif labelled_true:
                fp += 1
            elif actually_true:
                fn += 1
            else:
                tn += 1
    return ConfusionCounts(tp, fp, fn, tn), n_facts


def report_from_counts(
    counts: ConfusionCounts, n_facts: int
) -> EvaluationReport:
    """Derive the headline ratios from raw confusion counts."""
    tp = counts.true_positives
    fp = counts.false_positives
    fn = counts.false_negatives
    precision = tp / (tp + fp) if (tp + fp) else 0.0
    recall = tp / (tp + fn) if (tp + fn) else 0.0
    accuracy = (
        (tp + counts.true_negatives) / counts.total if counts.total else 0.0
    )
    f1 = (
        2 * precision * recall / (precision + recall)
        if (precision + recall)
        else 0.0
    )
    return EvaluationReport(
        precision=precision,
        recall=recall,
        accuracy=accuracy,
        f1=f1,
        counts=counts,
        n_facts_evaluated=n_facts,
    )


def evaluate_predictions(
    dataset: Dataset, predictions: Mapping[Fact, Value]
) -> EvaluationReport:
    """Full evaluation report of ``predictions`` against the ground truth."""
    counts, n_facts = confusion_counts(dataset, predictions)
    return report_from_counts(counts, n_facts)


def fact_accuracy(
    dataset: Dataset, predictions: Mapping[Fact, Value]
) -> float:
    """Fraction of evaluated facts whose predicted value is the truth."""
    if not dataset.has_truth:
        raise GroundTruthError("evaluation requires a dataset with ground truth")
    correct = 0
    evaluated = 0
    for fact in dataset.facts:
        truth = dataset.true_value(fact)
        predicted = predictions.get(fact)
        if truth is None or predicted is None:
            continue
        evaluated += 1
        if predicted == truth:
            correct += 1
    return correct / evaluated if evaluated else 0.0


def tolerant_fact_accuracy(
    dataset: Dataset,
    predictions: Mapping[Fact, Value],
    tolerance: float = 0.99,
) -> float:
    """Fact accuracy where "correct" means similar enough to the truth.

    Numeric corpora (prices, sensor readings) rarely contain the truth
    verbatim — honest reports carry rounding noise — so exact-match
    accuracy under-credits every algorithm equally.  A prediction counts
    as correct when its :func:`~repro.algorithms.similarity.value_similarity`
    to the truth reaches ``tolerance``.
    """
    from repro.algorithms.similarity import value_similarity

    if not dataset.has_truth:
        raise GroundTruthError("evaluation requires a dataset with ground truth")
    if not 0.0 < tolerance <= 1.0:
        raise ValueError("tolerance must be in (0, 1]")
    correct = 0
    evaluated = 0
    for fact in dataset.facts:
        truth = dataset.true_value(fact)
        predicted = predictions.get(fact)
        if truth is None or predicted is None:
            continue
        evaluated += 1
        if value_similarity(predicted, truth) >= tolerance:
            correct += 1
    return correct / evaluated if evaluated else 0.0


def source_accuracy(dataset: Dataset) -> Mapping[str, float]:
    """True per-source accuracy against ground truth (generator checks)."""
    if not dataset.has_truth:
        raise GroundTruthError("source accuracy requires ground truth")
    correct: dict[str, int] = {}
    total: dict[str, int] = {}
    for claim in dataset.iter_claims():
        truth = dataset.true_value(claim.fact)
        if truth is None:
            continue
        total[claim.source] = total.get(claim.source, 0) + 1
        if claim.value == truth:
            correct[claim.source] = correct.get(claim.source, 0) + 1
    return {
        source: correct.get(source, 0) / count
        for source, count in total.items()
        if count
    }
