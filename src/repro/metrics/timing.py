"""Wall-clock instrumentation used by the evaluation harness.

A tiny context-manager timer plus an accumulating stopwatch for the
per-phase breakdowns (reference pass / clustering / per-block passes)
that the efficiency analysis in Section 4.5 discusses.

The stopwatch interoperates with the span tracer of
:mod:`repro.observability`: pass a :class:`Stopwatch` to
``SpanTracer(stopwatch=...)`` to mirror every top-level span into its
phases as it closes, or fold a finished tracer in afterwards with
:meth:`Stopwatch.from_tracer`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field


@dataclass
class Timer:
    """Context-manager wall-clock timer.

    >>> with Timer() as timer:
    ...     _ = sum(range(1000))
    >>> timer.elapsed >= 0.0
    True
    """

    elapsed: float = 0.0
    _start: float = field(default=0.0, repr=False)

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self.elapsed = time.perf_counter() - self._start


@dataclass
class Stopwatch:
    """Accumulates named phase durations across repeated measurements."""

    phases: dict[str, float] = field(default_factory=dict)

    def measure(self, phase: str) -> "_PhaseContext":
        """Context manager adding its duration to ``phase``'s total."""
        return _PhaseContext(self, phase)

    def add(self, phase: str, seconds: float) -> None:
        """Manually add ``seconds`` to a phase's total."""
        if seconds < 0:
            raise ValueError("cannot add negative time")
        self.phases[phase] = self.phases.get(phase, 0.0) + seconds

    @property
    def total(self) -> float:
        """Sum of all phase totals."""
        return sum(self.phases.values())

    def breakdown(self) -> dict[str, float]:
        """Phase → fraction-of-total mapping (empty if nothing measured)."""
        if self.total == 0.0:
            return {}
        return {name: seconds / self.total for name, seconds in self.phases.items()}

    @classmethod
    def from_tracer(cls, tracer, stopwatch: "Stopwatch | None" = None) -> "Stopwatch":
        """Fold a span tracer's top-level stages into a stopwatch.

        ``tracer`` is anything with a ``stage_seconds() -> dict`` method
        (duck-typed so this module stays stdlib-only); an existing
        ``stopwatch`` accumulates in place, otherwise a fresh one is
        returned.
        """
        target = cls() if stopwatch is None else stopwatch
        for phase, seconds in tracer.stage_seconds().items():
            target.add(phase, seconds)
        return target


class _PhaseContext:
    def __init__(self, stopwatch: Stopwatch, phase: str) -> None:
        self._stopwatch = stopwatch
        self._phase = phase
        self._start = 0.0

    def __enter__(self) -> "_PhaseContext":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self._stopwatch.add(self._phase, time.perf_counter() - self._start)
