"""Partition-quality metrics for comparing Table 5 rows.

How close is a returned attribute partition to the one the generator
planted?  Exact equality is too strict a yardstick (merging two blocks
whose sources behave identically is harmless), so graded agreement
measures are provided alongside it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.partition import Partition, adjusted_rand_index, rand_index


@dataclass(frozen=True)
class PartitionAgreement:
    """Agreement summary between a reference and a candidate partition."""

    exact: bool
    rand: float
    adjusted_rand: float
    n_blocks_reference: int
    n_blocks_candidate: int

    def as_row(self) -> tuple:
        """(exact, Rand, ARI, |P_ref|, |P_cand|) summary row."""
        return (
            self.exact,
            round(self.rand, 3),
            round(self.adjusted_rand, 3),
            self.n_blocks_reference,
            self.n_blocks_candidate,
        )


def compare_partitions(
    reference: Partition, candidate: Partition
) -> PartitionAgreement:
    """Full agreement summary between two partitions."""
    return PartitionAgreement(
        exact=reference == candidate,
        rand=rand_index(reference, candidate),
        adjusted_rand=adjusted_rand_index(reference, candidate),
        n_blocks_reference=reference.n_blocks,
        n_blocks_candidate=candidate.n_blocks,
    )


def is_refinement(finer: Partition, coarser: Partition) -> bool:
    """Whether every block of ``finer`` sits inside a block of ``coarser``.

    A candidate that *refines* the planted partition never mixes
    attributes with different reliability profiles — a weaker but often
    sufficient recovery condition.
    """
    if finer.attributes != coarser.attributes:
        raise ValueError("partitions cover different attribute sets")
    coarse_of = {
        attribute: block
        for block in coarser.blocks
        for attribute in block
    }
    for block in finer.blocks:
        homes = {coarse_of[a] for a in block}
        if len(homes) > 1:
            return False
    return True
