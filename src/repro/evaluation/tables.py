"""ASCII rendering of paper-style result tables.

The benchmarks print their regenerated tables through these helpers so
the output can be compared side by side with the paper's Tables 4–9.
"""

from __future__ import annotations

from typing import Sequence

from repro.evaluation.runner import PerformanceRecord

PERFORMANCE_HEADER = (
    "Algorithm",
    "Precision",
    "Recall",
    "Accuracy",
    "F1-measure",
    "Time(s)",
    "#Iteration",
)


def format_table(
    header: Sequence[str], rows: Sequence[Sequence], title: str | None = None
) -> str:
    """Fixed-width table with a header rule, like the paper's layout."""
    columns = len(header)
    for row in rows:
        if len(row) != columns:
            raise ValueError(
                f"row has {len(row)} cells, header has {columns}"
            )
    rendered = [[_cell(value) for value in row] for row in rows]
    widths = [
        max(len(str(header[i])), *(len(r[i]) for r in rendered), 1)
        if rendered
        else len(str(header[i]))
        for i in range(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append(
        "  ".join(str(h).ljust(widths[i]) for i, h in enumerate(header))
    )
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(columns)))
    return "\n".join(lines)


def performance_table(
    records: Sequence[PerformanceRecord], title: str | None = None
) -> str:
    """Render performance records in the paper's column layout."""
    rows = [record.as_row() for record in records]
    return format_table(PERFORMANCE_HEADER, rows, title=title)


def _cell(value) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)
