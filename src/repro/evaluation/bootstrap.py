"""Bootstrap confidence intervals for evaluation metrics.

A single accuracy number hides its sampling noise — with 100 objects, a
two-point accuracy gap between two algorithms may be luck.  This module
resamples *objects* with replacement (facts of one object are correlated
through the shared generator draw, so the object is the right resampling
unit) and reports percentile intervals for any metric of a fixed
prediction set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping

import numpy as np

from repro.data.dataset import Dataset
from repro.data.types import Fact, Value

MetricFn = Callable[[Dataset, Mapping[Fact, Value]], float]


@dataclass(frozen=True)
class ConfidenceInterval:
    """A point estimate with a percentile bootstrap interval."""

    point: float
    low: float
    high: float
    confidence: float
    n_resamples: int

    def contains(self, value: float) -> bool:
        """Whether ``value`` lies inside the interval."""
        return self.low <= value <= self.high

    def overlaps(self, other: "ConfidenceInterval") -> bool:
        """Whether two intervals overlap (a quick difference check)."""
        return self.low <= other.high and other.low <= self.high

    def __str__(self) -> str:
        return (
            f"{self.point:.3f} "
            f"[{self.low:.3f}, {self.high:.3f}] @ {self.confidence:.0%}"
        )


def bootstrap_metric(
    dataset: Dataset,
    predictions: Mapping[Fact, Value],
    metric: MetricFn,
    n_resamples: int = 200,
    confidence: float = 0.95,
    seed: int = 0,
) -> ConfidenceInterval:
    """Percentile bootstrap of ``metric`` over object resamples.

    ``metric(dataset, predictions)`` is evaluated on datasets rebuilt
    from objects drawn with replacement; predictions are fixed (the
    algorithm is *not* re-run — this measures evaluation noise, not
    training noise).
    """
    if n_resamples < 10:
        raise ValueError("need at least 10 resamples")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    objects = list(dataset.objects)
    if not objects:
        raise ValueError("dataset has no objects")
    point = metric(dataset, predictions)
    rng = np.random.default_rng(seed)
    # Pre-group facts and truths by object to make resampling cheap.
    facts_by_object: dict[str, list[Fact]] = {}
    for fact in dataset.facts:
        facts_by_object.setdefault(fact.object, []).append(fact)

    samples = []
    for _ in range(n_resamples):
        drawn = rng.choice(len(objects), size=len(objects), replace=True)
        # Build a pseudo-dataset via fact filtering: evaluate the metric
        # over the multiset of drawn objects by weighting repeats.
        correct_metric = _resampled_metric(
            dataset, predictions, metric, [objects[i] for i in drawn],
            facts_by_object,
        )
        samples.append(correct_metric)
    lower = float(np.percentile(samples, 100 * (1 - confidence) / 2))
    upper = float(np.percentile(samples, 100 * (1 + confidence) / 2))
    return ConfidenceInterval(
        point=point,
        low=lower,
        high=upper,
        confidence=confidence,
        n_resamples=n_resamples,
    )


def _resampled_metric(
    dataset: Dataset,
    predictions: Mapping[Fact, Value],
    metric: MetricFn,
    drawn_objects: list,
    facts_by_object: dict,
) -> float:
    """Evaluate ``metric`` on the multiset of drawn objects.

    Objects may repeat; a repeated object's facts are duplicated under
    alias names so the generic metric sees a plain dataset.
    """
    from repro.data.builder import DatasetBuilder

    builder = DatasetBuilder(name="bootstrap")
    builder.declare_sources(dataset.sources)
    builder.declare_attributes(dataset.attributes)
    aliased_predictions: dict[Fact, Value] = {}
    for copy_index, obj in enumerate(drawn_objects):
        alias = f"{obj}#{copy_index}"
        for fact in facts_by_object.get(obj, []):
            for claim in dataset.claims_by_fact[fact]:
                builder.add_claim(claim.source, alias, claim.attribute, claim.value)
            truth = dataset.true_value(fact)
            if truth is not None:
                builder.set_truth(alias, fact.attribute, truth)
            predicted = predictions.get(fact)
            if predicted is not None:
                aliased_predictions[Fact(alias, fact.attribute)] = predicted
    return metric(builder.build(), aliased_predictions)
