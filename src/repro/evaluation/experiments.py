"""Per-experiment drivers for every table and figure of the paper.

Each function regenerates the data behind one artefact (see the
experiment index in DESIGN.md) and returns plain records the benchmarks
print.  Sizes default to the paper's, with a ``scale`` knob so tests and
benches can trade fidelity for speed (the brute-force AccuGenPartition
rows are Bell(6) = 203 full base-algorithm sweeps and dominate cost).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.algorithms import (
    Accu,
    AccuSim,
    Depen,
    MajorityVote,
    TruthFinder,
)
from repro.algorithms.base import TruthDiscoveryAlgorithm
from repro.baselines.gen_partition import AccuGenPartition
from repro.core.partition import Partition
from repro.core.config import TDACConfig
from repro.core.tdac import TDAC
from repro.data.dataset import Dataset
from repro.data.stats import DatasetStats, dataset_stats
from repro.datasets.exam import make_semi_synthetic
from repro.datasets.registry import load
from repro.datasets.synthetic import planted_partition
from repro.evaluation.runner import PerformanceRecord, run_algorithm


def standard_suite() -> list[TruthDiscoveryAlgorithm]:
    """The five standard algorithms of the paper's comparison."""
    return [MajorityVote(), TruthFinder(), Depen(), Accu(), AccuSim()]


def table4_experiment(
    dataset_name: str,
    scale: float = 1.0,
    gen_partition_scale: float | None = 0.05,
    seed: int = 0,
) -> list[PerformanceRecord]:
    """Tables 4a–4c: the full comparison on one synthetic dataset.

    ``gen_partition_scale`` shrinks the dataset for the brute-force rows
    only (the paper itself reports them as ~200x slower); ``None`` skips
    those rows entirely.
    """
    dataset = load(dataset_name, seed=seed, scale=scale)
    records = [
        run_algorithm(algorithm, dataset) for algorithm in standard_suite()
    ]
    if gen_partition_scale is not None:
        gen_dataset = (
            dataset
            if gen_partition_scale == scale
            else load(dataset_name, seed=seed, scale=gen_partition_scale)
        )
        for weighting in ("max", "avg", "oracle"):
            baseline = AccuGenPartition(Accu(), weighting=weighting)
            records.append(run_algorithm(baseline, gen_dataset))
    records.append(
        run_algorithm(TDAC(Accu(), config=TDACConfig(seed=seed)), dataset)
    )
    return records


def figure1_series(
    records_by_dataset: Mapping[str, Sequence[PerformanceRecord]],
) -> dict[str, dict[str, float]]:
    """Figure 1: accuracy of every algorithm per synthetic dataset."""
    return {
        dataset_name: {r.algorithm: r.accuracy for r in records}
        for dataset_name, records in records_by_dataset.items()
    }


@dataclass(frozen=True)
class PartitionRow:
    """One row of Table 5: which partition an approach selected."""

    approach: str
    dataset: str
    partition: Partition

    def as_row(self) -> tuple:
        return (self.approach, self.dataset, str(self.partition))


def table5_experiment(
    dataset_name: str,
    scale: float = 0.1,
    seed: int = 0,
) -> list[PartitionRow]:
    """Table 5: partitions chosen by the generator, AccuGenPartition
    (Max / Avg / Oracle) and TD-AC."""
    dataset = load(dataset_name, seed=seed, scale=scale)
    rows = [
        PartitionRow(
            "Synthetic data generator",
            dataset_name,
            planted_partition(dataset_name),
        )
    ]
    for weighting in ("max", "avg", "oracle"):
        baseline = AccuGenPartition(Accu(), weighting=weighting)
        result = baseline.run(dataset)
        rows.append(
            PartitionRow(
                f"AccuGenPartition ({weighting.capitalize()})",
                dataset_name,
                result.partition,
            )
        )
    tdac_result = TDAC(Accu(), config=TDACConfig(seed=seed)).run(dataset)
    rows.append(PartitionRow("TD-AC (F=Accu)", dataset_name, tdac_result.partition))
    return rows


def semi_synthetic_experiment(
    n_attributes: int,
    range_size: int,
    seed: int = 0,
) -> list[PerformanceRecord]:
    """Tables 6 and 7: Accu / TD-AC+Accu / TruthFinder / TD-AC+TruthFinder
    on a semi-synthetic Exam slice."""
    dataset = make_semi_synthetic(n_attributes, range_size, seed=seed)
    return _pairwise_records(dataset, seed=seed)


def table8_experiment(seed: int = 0, scale: float = 1.0) -> list[DatasetStats]:
    """Table 8: statistics of the real datasets."""
    names = ("Stocks", "Exam 32", "Exam 62", "Exam 124", "Flights")
    return [dataset_stats(load(name, seed=seed, scale=scale)) for name in names]


def table9_experiment(
    dataset_name: str,
    scale: float = 1.0,
    seed: int = 0,
) -> list[PerformanceRecord]:
    """Table 9: the four-algorithm comparison on one real dataset."""
    dataset = load(dataset_name, seed=seed, scale=scale)
    return _pairwise_records(dataset, seed=seed)


def pairwise_accuracy_series(
    records_by_dataset: Mapping[str, Sequence[PerformanceRecord]],
) -> dict[str, dict[str, float]]:
    """Figures 2–5: base-vs-TD-AC accuracy pairs per dataset."""
    series: dict[str, dict[str, float]] = {}
    for dataset_name, records in records_by_dataset.items():
        series[dataset_name] = {r.algorithm: r.accuracy for r in records}
    return series


def _pairwise_records(
    dataset: Dataset, seed: int
) -> list[PerformanceRecord]:
    """Accu / TD-AC(F=Accu) / TruthFinder / TD-AC(F=TruthFinder)."""
    algorithms: list[TruthDiscoveryAlgorithm | TDAC] = [
        Accu(),
        TDAC(Accu(), config=TDACConfig(seed=seed)),
        TruthFinder(),
        TDAC(TruthFinder(), config=TDACConfig(seed=seed)),
    ]
    return [run_algorithm(algorithm, dataset) for algorithm in algorithms]
