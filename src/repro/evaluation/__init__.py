"""Evaluation harness: runners, paper-style tables, experiment drivers."""

from repro.evaluation.experiments import (
    PartitionRow,
    figure1_series,
    pairwise_accuracy_series,
    semi_synthetic_experiment,
    standard_suite,
    table4_experiment,
    table5_experiment,
    table8_experiment,
    table9_experiment,
)
from repro.evaluation.analysis import (
    DisagreementProfile,
    TrustCalibration,
    disagreement_profile,
    per_attribute_accuracy,
    trust_calibration,
)
from repro.evaluation.bootstrap import ConfidenceInterval, bootstrap_metric
from repro.evaluation.leaderboard import LeaderboardEntry, leaderboard
from repro.evaluation.report import build_report, collect_artifacts, write_report
from repro.evaluation.sweeps import (
    SweepRecord,
    best_configuration,
    parameter_grid,
    sweep,
)
from repro.evaluation.runner import (
    PerformanceRecord,
    record_from_result,
    records_by_algorithm,
    run_algorithm,
    run_suite,
)
from repro.evaluation.tables import (
    PERFORMANCE_HEADER,
    format_table,
    performance_table,
)

__all__ = [
    "PERFORMANCE_HEADER",
    "PartitionRow",
    "PerformanceRecord",
    "SweepRecord",
    "ConfidenceInterval",
    "DisagreementProfile",
    "LeaderboardEntry",
    "TrustCalibration",
    "best_configuration",
    "bootstrap_metric",
    "build_report",
    "collect_artifacts",
    "disagreement_profile",
    "figure1_series",
    "format_table",
    "leaderboard",
    "pairwise_accuracy_series",
    "parameter_grid",
    "per_attribute_accuracy",
    "performance_table",
    "record_from_result",
    "records_by_algorithm",
    "run_algorithm",
    "run_suite",
    "semi_synthetic_experiment",
    "standard_suite",
    "sweep",
    "table4_experiment",
    "table5_experiment",
    "table8_experiment",
    "table9_experiment",
    "trust_calibration",
    "write_report",
]
