"""Leaderboard: every registered algorithm on one dataset, ranked.

The first question a practitioner asks of a new corpus is "which
algorithm should I even use here?".  :func:`leaderboard` answers it by
running the whole registry (optionally TD-AC-wrapped as well), ranking
by accuracy and reporting the ranking in the paper's table layout.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.algorithms.registry import available, capability_gap, create
from repro.core.config import TDACConfig
from repro.core.tdac import TDAC
from repro.data.dataset import Dataset
from repro.evaluation.runner import PerformanceRecord, run_algorithm


@dataclass(frozen=True)
class LeaderboardEntry:
    """One ranked row of a leaderboard."""

    rank: int
    record: PerformanceRecord

    def as_row(self) -> tuple:
        return (self.rank,) + self.record.as_row()


@dataclass(frozen=True)
class SkippedAlgorithm:
    """An algorithm excluded from a leaderboard, and why."""

    algorithm: str
    reason: str


def leaderboard(
    dataset: Dataset,
    include_tdac: bool = True,
    algorithms: Sequence[str] | None = None,
    seed: int = 0,
    config: TDACConfig | None = None,
    skipped: list[SkippedAlgorithm] | None = None,
) -> list[LeaderboardEntry]:
    """Run the registry on ``dataset`` and rank by accuracy.

    ``algorithms`` restricts to a subset of registry names; by default
    every registered algorithm runs, each optionally also wrapped in
    TD-AC.  ``config`` carries the TD-AC knobs (parallelism, policy,
    ...) for the wrapped rows; ``seed`` is honored only when no config
    is given.  Ties rank by precision, then by wall time (faster
    first).

    Algorithms whose declared value types do not cover the dataset's
    attribute types are skipped, never run: a continuous estimator on a
    categorical corpus (or a slot voter on numeric data) would produce
    garbage, not a ranking.  Pass a list as ``skipped`` to collect one
    :class:`SkippedAlgorithm` per exclusion, with the reason.
    """
    tdac_config = config if config is not None else TDACConfig(seed=seed)
    names = tuple(algorithms) if algorithms is not None else available()
    records: list[PerformanceRecord] = []
    for name in names:
        base = create(name)
        gap = capability_gap(base, dataset)
        if gap is not None:
            if skipped is not None:
                skipped.append(SkippedAlgorithm(algorithm=name, reason=gap))
            continue
        records.append(run_algorithm(base, dataset))
        if include_tdac:
            records.append(
                run_algorithm(TDAC(create(name), config=tdac_config), dataset)
            )
    ranked = sorted(
        records,
        key=lambda r: (-r.accuracy, -r.precision, r.elapsed_seconds),
    )
    return [
        LeaderboardEntry(rank=i + 1, record=record)
        for i, record in enumerate(ranked)
    ]
