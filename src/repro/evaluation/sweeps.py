"""Hyper-parameter sweep harness.

Runs a factory over the cartesian product of named parameter grids and
evaluates each configuration on each dataset, producing flat records a
bench can tabulate.  Used to make design decisions reproducible — e.g.
the Accu stabilisation grid of DESIGN.md §5b is a bench built on this
(`bench_ablation_accu_grid.py`) rather than a one-off note.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

from repro.algorithms.base import TruthDiscoveryAlgorithm
from repro.data.dataset import Dataset
from repro.metrics.classification import evaluate_predictions

AlgorithmFactory = Callable[..., TruthDiscoveryAlgorithm]


@dataclass(frozen=True)
class SweepRecord:
    """One (configuration, dataset) cell of a sweep."""

    parameters: Mapping[str, object]
    dataset: str
    accuracy: float
    precision: float
    iterations: int

    def label(self) -> str:
        """Compact ``k=v`` rendering of the configuration."""
        return ", ".join(f"{k}={v}" for k, v in sorted(self.parameters.items()))


def parameter_grid(grid: Mapping[str, Sequence]) -> list[dict]:
    """All combinations of the named parameter value lists."""
    if not grid:
        return [{}]
    names = sorted(grid)
    combinations = itertools.product(*(grid[name] for name in names))
    return [dict(zip(names, combo)) for combo in combinations]


def sweep(
    factory: AlgorithmFactory,
    grid: Mapping[str, Sequence],
    datasets: Sequence[Dataset],
    wrapper: Callable[[TruthDiscoveryAlgorithm], object] | None = None,
) -> list[SweepRecord]:
    """Evaluate every grid configuration on every dataset.

    ``wrapper`` optionally lifts each configured algorithm into another
    runner (e.g. ``lambda base: TDAC(base, config=TDACConfig(seed=0))``); the wrapped object
    must expose ``discover`` or ``run`` returning predictions.
    """
    records: list[SweepRecord] = []
    for parameters in parameter_grid(grid):
        algorithm = factory(**parameters)
        runner = wrapper(algorithm) if wrapper is not None else algorithm
        for dataset in datasets:
            if hasattr(runner, "run"):
                outcome = runner.run(dataset)
                predictions = outcome.predictions
                iterations = getattr(outcome, "iterations", 1)
            else:
                result = runner.discover(dataset)
                predictions = result.predictions
                iterations = result.iterations
            report = evaluate_predictions(dataset, predictions)
            records.append(
                SweepRecord(
                    parameters=dict(parameters),
                    dataset=dataset.name,
                    accuracy=report.accuracy,
                    precision=report.precision,
                    iterations=int(iterations),
                )
            )
    return records


def best_configuration(
    records: Sequence[SweepRecord],
) -> Mapping[str, object]:
    """Configuration with the best *worst-case* accuracy across datasets.

    Min-max selection: a default must not fall apart on any dataset, so
    the winner maximises the minimum accuracy over the swept datasets.
    """
    if not records:
        raise ValueError("no sweep records")
    by_config: dict[tuple, list[float]] = {}
    parameters_of: dict[tuple, Mapping[str, object]] = {}
    for record in records:
        key = tuple(sorted(record.parameters.items()))
        by_config.setdefault(key, []).append(record.accuracy)
        parameters_of[key] = record.parameters
    best_key = max(by_config, key=lambda k: (min(by_config[k]), k))
    return parameters_of[best_key]
