"""Assemble regenerated bench artefacts into one markdown report.

Every benchmark writes its regenerated table/figure under
``benchmarks/output/``; :func:`build_report` stitches those text
artefacts into a single markdown document (the measured appendix of
EXPERIMENTS.md).  Keeping the assembly in the library makes the
paper-vs-measured record reproducible with one command::

    python -c "from repro.evaluation.report import build_report, write_report; \
               write_report('benchmarks/output', 'EXPERIMENTS_MEASURED.md')"
"""

from __future__ import annotations

from pathlib import Path

#: Display order and section headers of the known artefacts.
SECTIONS: tuple[tuple[str, str], ...] = (
    ("table3", "Table 3 — synthetic generator configurations"),
    ("table4", "Tables 4a–4c — synthetic datasets"),
    ("figure1", "Figure 1 — accuracy on DS1–DS3"),
    ("table5", "Table 5 — partitions returned"),
    ("table6", "Table 6 — semi-synthetic, 62 attributes"),
    ("table7", "Table 7 — semi-synthetic, 124 attributes"),
    ("figure2", "Figure 2 — pairwise accuracy, 62 attributes"),
    ("figure3", "Figure 3 — pairwise accuracy, 124 attributes"),
    ("table8", "Table 8 — real dataset statistics"),
    ("table9", "Table 9 — real datasets"),
    ("figure4", "Figure 4 — TD-AC impact at high coverage"),
    ("figure5", "Figure 5 — TD-AC impact at low coverage"),
    ("ablation", "Ablations A-1 … A-6"),
    ("extension", "Extension experiments"),
    ("scenarios", "Degradation leaderboards — adversarial scenarios"),
)


def collect_artifacts(output_dir: str | Path) -> dict[str, str]:
    """Read every ``*.txt`` artefact in ``output_dir``, keyed by stem."""
    directory = Path(output_dir)
    if not directory.is_dir():
        raise FileNotFoundError(f"no artefact directory at {directory}")
    return {
        path.stem: path.read_text().rstrip()
        for path in sorted(directory.glob("*.txt"))
    }


def build_report(output_dir: str | Path, title: str = "Measured artefacts") -> str:
    """Render all artefacts as one markdown document."""
    artifacts = collect_artifacts(output_dir)
    lines = [f"# {title}", ""]
    used: set[str] = set()
    for prefix, header in SECTIONS:
        matching = [name for name in artifacts if name.startswith(prefix)]
        if not matching:
            continue
        lines.append(f"## {header}")
        lines.append("")
        for name in sorted(matching):
            used.add(name)
            lines.append("```text")
            lines.append(artifacts[name])
            lines.append("```")
            lines.append("")
    leftovers = sorted(set(artifacts) - used)
    if leftovers:
        lines.append("## Other artefacts")
        lines.append("")
        for name in leftovers:
            lines.append("```text")
            lines.append(artifacts[name])
            lines.append("```")
            lines.append("")
    return "\n".join(lines).rstrip() + "\n"


def write_report(
    output_dir: str | Path,
    destination: str | Path,
    title: str = "Measured artefacts",
) -> Path:
    """Build the report and write it to ``destination``."""
    destination = Path(destination)
    destination.write_text(build_report(output_dir, title=title))
    return destination
