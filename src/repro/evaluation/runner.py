"""Uniform algorithm execution with the paper's reporting columns.

:func:`run_algorithm` executes any algorithm-like object (a plain
:class:`TruthDiscoveryAlgorithm`, a :class:`TDAC`, or an
:class:`AccuGenPartition`) on a dataset and produces a
:class:`PerformanceRecord` holding exactly the columns of Tables 4, 6, 7
and 9: precision, recall, accuracy, F1-measure, wall time, iterations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.algorithms.base import TruthDiscoveryAlgorithm, TruthDiscoveryResult
from repro.algorithms.registry import capability_gap
from repro.baselines.gen_partition import AccuGenPartition
from repro.core.partition import Partition
from repro.core.tdac import TDAC
from repro.data.dataset import Dataset
from repro.data.types import DataError
from repro.metrics.classification import evaluate_predictions, fact_accuracy
from repro.observability import SpanTracer, activate, current_tracer


class UnsupportedDataError(DataError):
    """An algorithm was asked to run on value types it does not support."""


def check_capability(
    algorithm: TruthDiscoveryAlgorithm | TDAC | AccuGenPartition,
    dataset: Dataset,
) -> None:
    """Raise :class:`UnsupportedDataError` when the run would be unsound.

    Meta algorithms (TD-AC, GenPartition) are unwrapped to their base:
    the partition machinery itself is type-agnostic, so the base's
    declared value types decide.
    """
    base = getattr(algorithm, "base", algorithm)
    gap = capability_gap(base, dataset)
    if gap is not None:
        raise UnsupportedDataError(gap)


@dataclass(frozen=True)
class PerformanceRecord:
    """One row of a paper-style performance table."""

    dataset: str
    algorithm: str
    precision: float
    recall: float
    accuracy: float
    f1: float
    elapsed_seconds: float
    iterations: int
    fact_accuracy: float
    partition: Partition | None = None

    def as_row(self) -> tuple:
        """The (algorithm, P, R, A, F1, time, iterations) table row."""
        return (
            self.algorithm,
            round(self.precision, 3),
            round(self.recall, 3),
            round(self.accuracy, 3),
            round(self.f1, 3),
            round(self.elapsed_seconds, 3),
            self.iterations,
        )


def run_algorithm(
    algorithm: TruthDiscoveryAlgorithm | TDAC | AccuGenPartition,
    dataset: Dataset,
    tracer: SpanTracer | None = None,
) -> PerformanceRecord:
    """Execute ``algorithm`` on ``dataset`` and evaluate against truth.

    ``tracer`` (optional) is activated for the duration of the run:
    TD-AC emits its per-stage spans into it, other algorithms are
    covered by a single ``discover`` span, and the metric evaluation is
    recorded as ``evaluate`` — together the top-level spans tile the
    whole call.
    """
    check_capability(algorithm, dataset)
    with activate(tracer):
        partition: Partition | None = None
        if isinstance(algorithm, TDAC):
            tdac_result = algorithm.run(dataset)
            result = tdac_result.result
            partition = tdac_result.partition
        elif isinstance(algorithm, AccuGenPartition):
            with current_tracer().span("discover"):
                gen_result = algorithm.run(dataset)
            result = gen_result.result
            partition = gen_result.partition
        else:
            with current_tracer().span("discover"):
                result = algorithm.discover(dataset)
        with current_tracer().span("evaluate"):
            return record_from_result(dataset, result, partition)


def record_from_result(
    dataset: Dataset,
    result: TruthDiscoveryResult,
    partition: Partition | None = None,
) -> PerformanceRecord:
    """Build a performance record from an already-computed result.

    Typed datasets (any non-categorical attribute) are scored with the
    type-aware protocols of :mod:`repro.metrics.typed`; untyped ones
    keep the classic claim-labelling report, unchanged.
    """
    if dataset.has_typed_attributes:
        from repro.metrics.typed import evaluate_typed, typed_fact_accuracy

        report = evaluate_typed(dataset, result.predictions).overall
        facts_right = typed_fact_accuracy(dataset, result.predictions)
    else:
        report = evaluate_predictions(dataset, result.predictions)
        facts_right = fact_accuracy(dataset, result.predictions)
    return PerformanceRecord(
        dataset=dataset.name,
        algorithm=result.algorithm,
        precision=report.precision,
        recall=report.recall,
        accuracy=report.accuracy,
        f1=report.f1,
        elapsed_seconds=result.elapsed_seconds,
        iterations=result.iterations,
        fact_accuracy=facts_right,
        partition=partition,
    )


def run_suite(
    algorithms: Sequence[TruthDiscoveryAlgorithm | TDAC | AccuGenPartition],
    dataset: Dataset,
) -> list[PerformanceRecord]:
    """Run several algorithms on one dataset; one record each."""
    return [run_algorithm(algorithm, dataset) for algorithm in algorithms]


def records_by_algorithm(
    records: Sequence[PerformanceRecord],
) -> Mapping[str, PerformanceRecord]:
    """Index records by algorithm display name (last one wins)."""
    return {record.algorithm: record for record in records}
