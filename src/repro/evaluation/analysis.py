"""Result analysis: where did a truth discovery run go right or wrong?

Post-hoc diagnostics a practitioner needs before trusting a resolution:

* :func:`trust_calibration` — how well do the algorithm's estimated
  source reliabilities track the *true* per-source accuracies (Pearson
  correlation plus mean absolute error after rank-preserving scaling);
* :func:`per_attribute_accuracy` — which attributes the run resolves
  well, the natural view for spotting the structural correlation TD-AC
  exploits;
* :func:`disagreement_profile` — how contested the dataset is (claims
  per fact, distinct values per fact, margin of the winning vote).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.algorithms.base import TruthDiscoveryResult
from repro.data.dataset import Dataset
from repro.data.types import AttributeId, Fact, Value
from repro.metrics.classification import source_accuracy


@dataclass(frozen=True)
class TrustCalibration:
    """Agreement between estimated trust and true source accuracy."""

    correlation: float
    mean_absolute_error: float
    n_sources: int

    def is_informative(self, threshold: float = 0.5) -> bool:
        """Whether estimated trust ranks sources better than chance."""
        return self.correlation >= threshold


def trust_calibration(
    dataset: Dataset, result: TruthDiscoveryResult
) -> TrustCalibration:
    """Compare estimated per-source trust against ground-truth accuracy.

    Estimated trusts live on algorithm-specific scales, so they are
    min-max rescaled before the mean-absolute-error comparison; the
    correlation is scale-free.
    """
    true_accuracy = source_accuracy(dataset)
    sources = [s for s in dataset.sources if s in true_accuracy]
    if len(sources) < 2:
        raise ValueError("need at least two sources with claims")
    estimated = np.array([result.source_trust.get(s, 0.0) for s in sources])
    actual = np.array([true_accuracy[s] for s in sources])
    if np.ptp(estimated) > 0:
        scaled = (estimated - estimated.min()) / np.ptp(estimated)
    else:
        scaled = np.full_like(estimated, 0.5)
    if np.ptp(estimated) == 0 or np.ptp(actual) == 0:
        correlation = 0.0
    else:
        correlation = float(np.corrcoef(estimated, actual)[0, 1])
    return TrustCalibration(
        correlation=correlation,
        mean_absolute_error=float(np.abs(scaled - actual).mean()),
        n_sources=len(sources),
    )


def per_attribute_accuracy(
    dataset: Dataset, result: TruthDiscoveryResult
) -> Mapping[AttributeId, float]:
    """Fraction of facts resolved correctly, per attribute."""
    correct: dict[AttributeId, int] = {}
    total: dict[AttributeId, int] = {}
    for fact in dataset.facts:
        truth = dataset.true_value(fact)
        predicted = result.predictions.get(fact)
        if truth is None or predicted is None:
            continue
        total[fact.attribute] = total.get(fact.attribute, 0) + 1
        if predicted == truth:
            correct[fact.attribute] = correct.get(fact.attribute, 0) + 1
    return {
        attribute: correct.get(attribute, 0) / count
        for attribute, count in total.items()
    }


@dataclass(frozen=True)
class DisagreementProfile:
    """How contested a dataset is, aggregated over facts."""

    mean_claims_per_fact: float
    mean_distinct_values: float
    mean_winning_margin: float
    n_unanimous_facts: int
    n_facts: int


def disagreement_profile(dataset: Dataset) -> DisagreementProfile:
    """Aggregate conflict statistics over all facts."""
    claims_counts = []
    distinct_counts = []
    margins = []
    unanimous = 0
    for fact, claims in dataset.claims_by_fact.items():
        counts: dict[Value, int] = {}
        for claim in claims:
            counts[claim.value] = counts.get(claim.value, 0) + 1
        ordered = sorted(counts.values(), reverse=True)
        claims_counts.append(len(claims))
        distinct_counts.append(len(counts))
        top = ordered[0]
        runner_up = ordered[1] if len(ordered) > 1 else 0
        margins.append((top - runner_up) / len(claims))
        if len(counts) == 1:
            unanimous += 1
    n_facts = len(claims_counts)
    if n_facts == 0:
        raise ValueError("dataset has no facts")
    return DisagreementProfile(
        mean_claims_per_fact=float(np.mean(claims_counts)),
        mean_distinct_values=float(np.mean(distinct_counts)),
        mean_winning_margin=float(np.mean(margins)),
        n_unanimous_facts=unanimous,
        n_facts=n_facts,
    )
