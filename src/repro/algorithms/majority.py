"""Majority voting, the simplest truth discovery baseline.

Every source's vote counts equally; the value claimed by the largest
number of sources wins (ties break toward the value seen first in source
order, which keeps runs deterministic).  Source trust is reported as the
fraction of each source's claims that agree with the elected truths,
which downstream consumers (e.g. partition scoring) can use even though
the vote itself ignores it.
"""

from __future__ import annotations

from repro.algorithms.base import EngineState, TruthDiscoveryAlgorithm
from repro.data.index import DatasetIndex

import numpy as np


class MajorityVote(TruthDiscoveryAlgorithm):
    """One-person-one-vote truth discovery (single pass)."""

    name = "MajorityVote"

    def _solve(self, index: DatasetIndex) -> EngineState:
        votes = index.votes_per_slot
        confidence = index.normalize_per_fact(votes)
        winners = index.winning_slots(votes)
        winner_mask = np.zeros(index.n_slots, dtype=index.dtype)
        winner_mask[winners] = 1.0
        trust = index.source_mean_of_slots(winner_mask)
        return EngineState(
            slot_confidence=confidence,
            source_trust=trust,
            iterations=1,
        )
