"""Convergence criteria for the iterative fixed points.

Iterative truth discovery algorithms stop when the per-source trust
vector stabilises.  TruthFinder's original paper uses the change in
*cosine similarity* between consecutive trust vectors; the Bayesian
family (Accu and friends) uses the set of predicted truths and a
maximum-change criterion.  Both are offered here behind one small class
so algorithms share stopping behaviour and tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True, slots=True)
class ConvergenceCriterion:
    """Detects stabilisation of consecutive trust vectors.

    Parameters
    ----------
    tolerance:
        Threshold under which the chosen change measure counts as
        converged.
    measure:
        ``"cosine"`` — 1 minus the cosine similarity of consecutive
        vectors (TruthFinder's criterion); ``"max_change"`` — the largest
        absolute per-component change; ``"l2"`` — Euclidean distance.
    """

    tolerance: float = 1e-3
    measure: str = "cosine"

    def change(self, previous: np.ndarray, current: np.ndarray) -> float:
        """The change measure between two consecutive trust vectors."""
        if previous.shape != current.shape:
            raise ValueError("trust vectors changed shape between iterations")
        if self.measure == "cosine":
            denom = float(np.linalg.norm(previous) * np.linalg.norm(current))
            if denom == 0.0:
                return 0.0 if not previous.any() and not current.any() else 1.0
            cosine = float(np.dot(previous, current)) / denom
            return 1.0 - cosine
        if self.measure == "max_change":
            return float(np.max(np.abs(previous - current), initial=0.0))
        if self.measure == "l2":
            return float(np.linalg.norm(previous - current))
        raise ValueError(f"unknown convergence measure: {self.measure!r}")

    def converged(self, previous: np.ndarray, current: np.ndarray) -> bool:
        """Whether the change between the two vectors is under tolerance."""
        return self.change(previous, current) < self.tolerance
