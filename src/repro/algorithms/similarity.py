"""Value similarity functions used by TruthFinder and AccuSim.

TruthFinder's "implication" between claimed values and AccuSim's
similarity-aware vote counts both need a symmetric similarity
``sim(v1, v2) in [0, 1]`` between two claimed values:

* numbers compare by relative difference — two stock prices of 10.00 and
  10.01 support each other strongly, 10 and 1000 not at all;
* strings compare by a blend of normalised Levenshtein similarity and
  token Jaccard, so "Barack Obama" and "Obama, Barack" are close;
* values of incomparable types have similarity 0.

:class:`SlotSimilarity` precomputes, per fact, the dense slot-by-slot
similarity matrix (diagonal zeroed: a value does not *additionally*
support itself), which is what the iterative updates consume.
"""

from __future__ import annotations

import numbers
import threading
from functools import lru_cache
from weakref import WeakKeyDictionary

import numpy as np

from repro.algorithms import kernels
from repro.data.index import DatasetIndex
from repro.data.types import Value


def numeric_similarity(a: float, b: float) -> float:
    """Similarity of two numbers by relative difference, in [0, 1]."""
    if a == b:
        return 1.0
    scale = max(abs(a), abs(b))
    if scale == 0.0:
        return 1.0
    return max(0.0, 1.0 - abs(a - b) / scale)


def levenshtein_distance(a: str, b: str) -> int:
    """Classic edit distance with a two-row dynamic program."""
    if a == b:
        return 0
    if not a:
        return len(b)
    if not b:
        return len(a)
    if len(a) < len(b):
        a, b = b, a
    previous = list(range(len(b) + 1))
    for i, ch_a in enumerate(a, start=1):
        current = [i]
        for j, ch_b in enumerate(b, start=1):
            cost = 0 if ch_a == ch_b else 1
            current.append(
                min(previous[j] + 1, current[j - 1] + 1, previous[j - 1] + cost)
            )
        previous = current
    return previous[-1]


def string_similarity(a: str, b: str) -> float:
    """Blend of normalised edit similarity and token Jaccard, in [0, 1]."""
    if a == b:
        return 1.0
    longest = max(len(a), len(b))
    if longest == 0:
        return 1.0
    edit = 1.0 - levenshtein_distance(a.lower(), b.lower()) / longest
    tokens_a = set(a.lower().split())
    tokens_b = set(b.lower().split())
    union = tokens_a | tokens_b
    jaccard = len(tokens_a & tokens_b) / len(union) if union else 1.0
    return max(edit, jaccard)


def sequence_similarity(a: tuple, b: tuple) -> float:
    """Jaccard similarity of two value sequences, in [0, 1].

    List-valued claims (author lists, cast lists) are compared as sets:
    the order books sites list authors in is presentation, not
    information — but a missing or extra author is a real disagreement
    (the TruthFinder paper's original evaluation domain).
    """
    set_a, set_b = set(a), set(b)
    union = set_a | set_b
    if not union:
        return 1.0
    return len(set_a & set_b) / len(union)


def _value_similarity_uncached(a: Value, b: Value) -> float:
    if isinstance(a, bool) != isinstance(b, bool):
        # Guard before the equality check: Python treats True == 1.
        return 0.0
    if a == b:
        return 1.0
    a_num = isinstance(a, numbers.Real) and not isinstance(a, bool)
    b_num = isinstance(b, numbers.Real) and not isinstance(b, bool)
    if a_num and b_num:
        return numeric_similarity(float(a), float(b))
    if isinstance(a, str) and isinstance(b, str):
        return string_similarity(a, b)
    if isinstance(a, tuple) and isinstance(b, tuple):
        return sequence_similarity(a, b)
    return 0.0


#: Process-wide value-pair memo.  String similarity runs a Levenshtein
#: dynamic program, and the same value pairs recur across the reference
#: pass, every block view and every serving refresh of one corpus — the
#: cache turns all but the first computation into a dict hit.
_cached_pair_similarity = lru_cache(maxsize=1 << 16)(_value_similarity_uncached)


def value_similarity(a: Value, b: Value) -> float:
    """Symmetric similarity between two claimed values, in [0, 1].

    Pure function of its arguments; hashable pairs are memoised
    process-wide (unhashable values fall through to direct evaluation).
    """
    try:
        return _cached_pair_similarity(a, b)
    except TypeError:
        return _value_similarity_uncached(a, b)


class SlotSimilarity:
    """Per-fact slot similarity matrices for a compiled dataset.

    ``matrix(fact_id)`` returns the dense ``(n_slots_f, n_slots_f)``
    similarity matrix of the fact's distinct values with a zero diagonal.
    Matrices are computed lazily and memoised because many facts are never
    touched by similarity-aware algorithms (facts with a single slot).
    """

    #: Shared instances, weakly keyed by index (see :meth:`shared`).
    _SHARED: "WeakKeyDictionary[DatasetIndex, SlotSimilarity]" = (
        WeakKeyDictionary()
    )
    _SHARED_LOCK = threading.Lock()

    def __init__(self, index: DatasetIndex) -> None:
        self._index = index
        self._matrix = lru_cache(maxsize=None)(self._compute_matrix)
        self._active: list[tuple[int, int, np.ndarray]] | None = None
        self._groups: list[tuple[np.ndarray, np.ndarray]] | None = None

    @classmethod
    def shared(cls, index: DatasetIndex) -> "SlotSimilarity":
        """The memoised instance for ``index`` (created on first use).

        Similarity matrices depend only on the index's slot values, so
        every solve over the same index (repeated runs, serving
        refreshes) can share one instance and its cached matrices.
        """
        with cls._SHARED_LOCK:
            instance = cls._SHARED.get(index)
            if instance is None:
                instance = cls(index)
                cls._SHARED[index] = instance
            return instance

    def _compute_matrix(self, fact_id: int) -> np.ndarray:
        start = self._index.fact_slot_start[fact_id]
        stop = self._index.fact_slot_start[fact_id + 1]
        values = self._index.slot_values[start:stop]
        n = len(values)
        matrix = np.zeros((n, n), dtype=float)
        for i in range(n):
            for j in range(i + 1, n):
                sim = value_similarity(values[i], values[j])
                matrix[i, j] = sim
                matrix[j, i] = sim
        return matrix

    def matrix(self, fact_id: int) -> np.ndarray:
        """Similarity matrix of ``fact_id``'s slots (zero diagonal)."""
        return self._matrix(fact_id)

    def weighted_support(
        self, slot_score: np.ndarray, weight: float
    ) -> np.ndarray:
        """Add cross-value support to per-slot scores, fact by fact.

        Computes ``score*(v) = score(v) + weight * sum_{v'} sim(v, v') *
        score(v')`` — TruthFinder's implication adjustment and AccuSim's
        similarity-augmented vote count share this exact form.

        The default path batches the facts whose similarity matrix has at
        least one nonzero entry (facts with all-dissimilar values leave
        their scores untouched, so skipping them is exact) by slot count
        and applies each size group as one ``(b, n, n) @ (b, n, 1)``
        batched matmul — bit-identical to the per-fact products, since
        batched ``np.matmul`` computes each matrix-vector product exactly
        as the standalone ``m @ v`` does (including the float64 upcast of
        float32 scores).  The original every-fact loop remains available
        as the reference kernel.
        """
        starts = self._index.fact_slot_start
        if kernels.reference_enabled():
            adjusted = slot_score.astype(float).copy()
            for fact_id in range(self._index.n_facts):
                start, stop = starts[fact_id], starts[fact_id + 1]
                if stop - start < 2:
                    continue
                block = slot_score[start:stop]
                adjusted[start:stop] = (
                    block + weight * self.matrix(fact_id) @ block
                )
            return adjusted
        # float32 inputs stay in float32; everything else matches the
        # reference kernel's float64 working dtype.
        work = np.float32 if slot_score.dtype == np.float32 else np.float64
        adjusted = slot_score.astype(work, copy=True)
        for gather, matrices in self._active_groups():
            blocks = slot_score[gather]
            # (weight * M) @ b, not weight * (M @ b): the reference
            # kernel scales the matrix first, and bit-identity demands
            # the same floating-point association.
            support = np.matmul(weight * matrices, blocks[..., None])[..., 0]
            adjusted[gather] = blocks + support
        return adjusted

    def _active_facts(self) -> list[tuple[int, int, np.ndarray]]:
        """(start, stop, matrix) of every fact with nonzero similarity."""
        if self._active is None:
            starts = self._index.fact_slot_start
            active = []
            for fact_id in range(self._index.n_facts):
                start, stop = int(starts[fact_id]), int(starts[fact_id + 1])
                if stop - start < 2:
                    continue
                matrix = self.matrix(fact_id)
                if matrix.any():
                    active.append((start, stop, matrix))
            self._active = active
        return self._active

    def _active_groups(self) -> list[tuple[np.ndarray, np.ndarray]]:
        """Active facts packed by slot count: (gather, stacked matrices).

        ``gather`` is the ``(b, n)`` slot-id array of a size group's
        facts; ``matrices`` stacks their similarity matrices into
        ``(b, n, n)``.  Facts are disjoint slot ranges, so scattering
        through ``gather`` never collides.
        """
        if self._groups is None:
            by_size: dict[int, list[tuple[int, np.ndarray]]] = {}
            for start, stop, matrix in self._active_facts():
                by_size.setdefault(stop - start, []).append((start, matrix))
            packed = []
            for size, items in sorted(by_size.items()):
                group_starts = np.array([s for s, _ in items], dtype=np.intp)
                gather = group_starts[:, None] + np.arange(size, dtype=np.intp)
                matrices = np.stack([m for _, m in items])
                packed.append((gather, matrices))
            self._groups = packed
        return self._groups
