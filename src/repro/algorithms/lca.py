"""SimpleLCA — Latent Credibility Analysis (Pasternack & Roth, WWW 2013).

A proper generative model: each source ``s`` has an honesty ``H(s)``;
given the (latent) truth of a fact with ``m`` candidate values, ``s``
asserts the truth with probability ``H(s)`` and any specific wrong
candidate with probability ``(1 - H(s)) / (m - 1)``.  EM alternates:

* **E-step** — posterior belief of every candidate value given the
  current honesties (a per-fact soft-max over log-likelihoods);
* **M-step** — each source's honesty becomes the mean posterior belief
  of the values it asserted.

Unlike the heuristic fixed points (Sums, TruthFinder), LCA's updates
are exact EM on an explicit likelihood, so each iteration provably does
not decrease it.  Part of the extended comparison suite.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import EngineState, TruthDiscoveryAlgorithm
from repro.algorithms.convergence import ConvergenceCriterion
from repro.data.index import DatasetIndex

_HONESTY_EPSILON = 1e-4


class SimpleLCA(TruthDiscoveryAlgorithm):
    """EM over the single-honesty-per-source credibility model.

    Parameters
    ----------
    initial_honesty:
        Starting honesty of every source, in (0, 1).
    tolerance / max_iterations:
        Stopping controls on the honesty fixed point.
    """

    name = "SimpleLCA"

    def __init__(
        self,
        initial_honesty: float = 0.8,
        tolerance: float = 1e-4,
        max_iterations: int = 30,
    ) -> None:
        if not 0.0 < initial_honesty < 1.0:
            raise ValueError("initial_honesty must be in (0, 1)")
        if max_iterations < 1:
            raise ValueError("max_iterations must be at least 1")
        self.initial_honesty = initial_honesty
        self.criterion = ConvergenceCriterion(tolerance, measure="max_change")
        self.max_iterations = max_iterations

    def _solve(self, index: DatasetIndex) -> EngineState:
        honesty = np.full(index.n_sources, self.initial_honesty, dtype=index.dtype)
        # Number of candidate values of every fact, >= 1.
        m = np.maximum(index.slots_per_fact, 1.0)
        wrong_denominator = np.maximum(m - 1.0, 1.0)[index.claim_fact]
        belief = index.normalize_per_fact(index.votes_per_slot)
        iterations = 0
        for iterations in range(1, self.max_iterations + 1):
            h = np.clip(honesty, _HONESTY_EPSILON, 1.0 - _HONESTY_EPSILON)
            log_h = np.log(h)
            log_wrong_claim = np.log(1.0 - h)[index.claim_source] - np.log(
                wrong_denominator
            )
            # log-likelihood of slot v being the truth:
            #   sum over claimers of v of log H(s)
            # + sum over the fact's OTHER claimers of log((1-H)/ (m-1)).
            claim_log_h = log_h[index.claim_source]
            support = index.sum_per_slot(claim_log_h)
            fact_wrong_total = index.sum_per_fact(log_wrong_claim)
            slot_wrong = index.sum_per_slot(log_wrong_claim)
            log_likelihood = (
                support + fact_wrong_total[index.slot_fact] - slot_wrong
            )
            belief = index.softmax_per_fact(log_likelihood)
            new_honesty = index.source_mean_of_slots(belief)
            new_honesty = np.clip(
                new_honesty, _HONESTY_EPSILON, 1.0 - _HONESTY_EPSILON
            )
            if self.criterion.converged(honesty, new_honesty):
                honesty = new_honesty
                break
            honesty = new_honesty
        return EngineState(
            slot_confidence=belief,
            source_trust=honesty,
            iterations=iterations,
        )
