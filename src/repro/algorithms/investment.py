"""Investment and PooledInvestment (Pasternack & Roth, COLING 2010).

A source "invests" its trust uniformly across the claims it makes; a
value's belief grows super-linearly (``G(x) = x ** g``) in the invested
total, and each source earns back belief proportionally to its share of
the investment.  PooledInvestment additionally normalises the grown
belief within each fact's candidate set, which tempers runaway winners.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import EngineState, TruthDiscoveryAlgorithm
from repro.algorithms.convergence import ConvergenceCriterion
from repro.data.index import DatasetIndex


class Investment(TruthDiscoveryAlgorithm):
    """Trust-investment fixed point with super-linear belief growth."""

    name = "Investment"
    _pooled = False

    def __init__(
        self,
        growth: float = 1.2,
        tolerance: float = 1e-4,
        max_iterations: int = 20,
    ) -> None:
        if growth <= 0:
            raise ValueError("growth must be positive")
        if max_iterations < 1:
            raise ValueError("max_iterations must be at least 1")
        self.growth = growth
        self.criterion = ConvergenceCriterion(tolerance, measure="max_change")
        self.max_iterations = max_iterations

    def _solve(self, index: DatasetIndex) -> EngineState:
        counts = np.maximum(index.claims_per_source, 1.0)
        trust = np.ones(index.n_sources, dtype=index.dtype)
        belief = np.zeros(index.n_slots, dtype=index.dtype)
        iterations = 0
        for iterations in range(1, self.max_iterations + 1):
            per_claim = trust / counts
            invested = index.slot_scores(per_claim)
            safe_invested = np.where(invested > 0, invested, 1.0)
            belief = self._grow(index, invested)
            # Each source earns back belief in proportion to its share of
            # every slot's total investment.
            payout = belief / safe_invested
            new_trust = index.sum_per_source(
                per_claim[index.claim_source] * payout[index.claim_slot]
            )
            trust_max = new_trust.max(initial=0.0)
            if trust_max > 0:
                new_trust = new_trust / trust_max
            if self.criterion.converged(trust, new_trust):
                trust = new_trust
                break
            trust = new_trust
        return EngineState(
            slot_confidence=index.normalize_per_fact(belief),
            source_trust=trust,
            iterations=iterations,
        )

    def _grow(self, index: DatasetIndex, invested: np.ndarray) -> np.ndarray:
        return invested**self.growth


class PooledInvestment(Investment):
    """Investment with per-fact pooling of the grown beliefs."""

    name = "PooledInvestment"

    def _grow(self, index: DatasetIndex, invested: np.ndarray) -> np.ndarray:
        grown = invested**self.growth
        pooled_share = index.normalize_per_fact(grown)
        return invested * pooled_share * index.slots_per_fact[index.slot_fact]
