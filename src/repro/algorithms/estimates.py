"""2-Estimates and 3-Estimates (Galland et al., WSDM 2010).

Unlike the positive-vote-only algorithms, the Estimates family also
counts *negative* votes: a source that covers a fact but claims a
different value implicitly asserts that every other candidate is false.

* **2-Estimates** jointly estimates value truth probabilities and source
  reliabilities from positive and negative votes, with the affine
  rescaling ("lambda-normalisation") of the original paper to keep both
  estimate vectors spread over [0, 1].
* **3-Estimates** adds a per-value *difficulty*: getting an easy value
  wrong hurts a source's estimated reliability more than getting a hard
  one wrong.  We follow the averaging updates of the original paper with
  truncation of the auxiliary estimates into [epsilon, 1].
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import EngineState, TruthDiscoveryAlgorithm
from repro.algorithms.convergence import ConvergenceCriterion
from repro.data.index import DatasetIndex
from repro.data.index import segment_sum

_EPSILON = 1e-6


def _rescale(values: np.ndarray, strength: float) -> np.ndarray:
    """Affine rescale toward full [0, 1] spread, blended by ``strength``."""
    low = values.min(initial=0.0)
    high = values.max(initial=1.0)
    if high - low < _EPSILON:
        return values
    stretched = (values - low) / (high - low)
    return (1.0 - strength) * values + strength * stretched


class TwoEstimates(TruthDiscoveryAlgorithm):
    """Joint truth/reliability estimation with negative votes."""

    name = "2-Estimates"

    def __init__(
        self,
        rescale_strength: float = 0.5,
        tolerance: float = 1e-4,
        max_iterations: int = 20,
    ) -> None:
        if not 0.0 <= rescale_strength <= 1.0:
            raise ValueError("rescale_strength must be in [0, 1]")
        if max_iterations < 1:
            raise ValueError("max_iterations must be at least 1")
        self.rescale_strength = rescale_strength
        self.criterion = ConvergenceCriterion(tolerance, measure="max_change")
        self.max_iterations = max_iterations

    def _solve(self, index: DatasetIndex) -> EngineState:
        trust = np.full(index.n_sources, 0.8, dtype=index.dtype)
        belief = np.zeros(index.n_slots, dtype=index.dtype)
        # Number of sources covering every fact (voters on each slot).
        fact_voters = index.claims_per_fact
        iterations = 0
        for iterations in range(1, self.max_iterations + 1):
            # Positive votes: providers with their trust.  Negative votes:
            # the fact's other voters with (1 - trust).
            positive = index.slot_scores(trust)
            one_minus = 1.0 - trust
            covered_negative = index.sum_per_fact(one_minus[index.claim_source])
            negative = covered_negative[index.slot_fact] - index.slot_scores(one_minus)
            belief = (positive + negative) / np.maximum(
                fact_voters[index.slot_fact], 1.0
            )
            belief = np.clip(_rescale(belief, self.rescale_strength), 0.0, 1.0)

            # Trust: average agreement of the source's implicit vote matrix.
            fact_disbelief = segment_sum(1.0 - belief, index.fact_slot_start)
            claimed_belief = belief[index.claim_slot]
            agreement = (
                claimed_belief
                - (1.0 - claimed_belief)
                + fact_disbelief[index.claim_fact]
            )
            votes_cast = index.slots_per_fact[index.claim_fact]
            sums = index.sum_per_source(agreement)
            totals = index.sum_per_source(votes_cast)
            new_trust = np.where(totals > 0, sums / np.maximum(totals, 1.0), 0.0)
            new_trust = np.clip(
                _rescale(new_trust, self.rescale_strength), _EPSILON, 1.0
            )
            if self.criterion.converged(trust, new_trust):
                trust = new_trust
                break
            trust = new_trust
        return EngineState(
            slot_confidence=belief,
            source_trust=trust,
            iterations=iterations,
        )


class ThreeEstimates(TwoEstimates):
    """2-Estimates plus a per-value difficulty estimate."""

    name = "3-Estimates"

    def _solve(self, index: DatasetIndex) -> EngineState:
        error = np.full(index.n_sources, 0.2, dtype=index.dtype)
        difficulty = np.full(index.n_slots, 0.5, dtype=index.dtype)
        belief = np.full(index.n_slots, 0.5, dtype=index.dtype)
        fact_voters = index.claims_per_fact
        iterations = 0
        for iterations in range(1, self.max_iterations + 1):
            # A positive vote on v is correct with prob 1 - error*difficulty;
            # a negative vote (source claimed a sibling) asserts falseness
            # with the same per-vote correctness.
            vote_quality = 1.0 - np.clip(
                error[index.claim_source] * difficulty[index.claim_slot], 0.0, 1.0
            )
            positive = index.sum_per_slot(vote_quality)
            # Negative evidence against v: other voters of the fact.
            fact_quality = index.sum_per_fact(
                1.0 - error[index.claim_source] * 0.5
            )
            negative_votes = (
                fact_voters[index.slot_fact] - index.votes_per_slot
            )
            # Average per-voter quality of the fact, applied to non-claimers.
            mean_quality = fact_quality / np.maximum(fact_voters, 1.0)
            negative = negative_votes * (1.0 - mean_quality[index.slot_fact])
            belief = (positive + negative) / np.maximum(
                fact_voters[index.slot_fact], 1.0
            )
            belief = np.clip(_rescale(belief, self.rescale_strength), 0.0, 1.0)

            # Difficulty: how often trusted voters get this value wrong.
            claimed_belief = belief[index.claim_slot]
            miss = 1.0 - claimed_belief
            safe_error = np.clip(error, _EPSILON, 1.0)
            diff_num = index.sum_per_slot(miss / safe_error[index.claim_source])
            difficulty = np.clip(
                diff_num / np.maximum(index.votes_per_slot, 1.0), _EPSILON, 1.0
            )

            # Error: average miss scaled by value difficulty.
            safe_difficulty = np.clip(difficulty, _EPSILON, 1.0)
            err_num = index.sum_per_source(
                miss / safe_difficulty[index.claim_slot]
            )
            new_error = np.clip(
                err_num / np.maximum(index.claims_per_source, 1.0), _EPSILON, 1.0
            )
            if self.criterion.converged(error, new_error):
                error = new_error
                break
            error = new_error
        return EngineState(
            slot_confidence=belief,
            source_trust=1.0 - error,
            iterations=iterations,
        )
