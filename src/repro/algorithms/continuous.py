"""Continuous-valued truth discovery: CRH / CATD weighted estimation.

The slot machinery votes among *claimed* values, which is sound for
categorical data but wrong for numeric attributes: the best estimate of a
sensor reading or a price is a reliability-weighted aggregate that no
single source may have claimed verbatim.  This module carries the
continuous halves of CRH (Li et al., SIGMOD 2014) and CATD (Li et al.,
VLDB 2015): truths are weighted means of the claimed values, losses are
per-fact-normalised squared errors, and source weights follow each
framework's closed form (``-log`` loss ratio for CRH, chi-squared
interval over loss for CATD).  :class:`ContinuousMedian` is the
single-pass robust baseline.

All three reuse the compiled :class:`~repro.data.index.DatasetIndex`
(``supports_index`` stays True), so they flow through the claim-index
engine's sliced block views under TD-AC partitioning exactly like the
categorical algorithms; only winner extraction differs — predictions are
real numbers, not slot ids.  Evaluation uses the tolerance contract
(:func:`repro.metrics.classification.tolerant_fact_accuracy` /
the typed metrics), never exact match.
"""

from __future__ import annotations

import time

import numpy as np
from scipy import stats

from repro.algorithms.base import TruthDiscoveryAlgorithm, TruthDiscoveryResult
from repro.algorithms.convergence import ConvergenceCriterion
from repro.data.dataset import Dataset
from repro.data.index import DatasetIndex
from repro.data.types import CONTINUOUS, DataError

_LOSS_FLOOR = 1e-6
_SCALE_FLOOR = 1e-9


class _ContinuousEstimator(TruthDiscoveryAlgorithm):
    """Shared scaffolding: claim-value extraction, result materialisation.

    Subclasses implement :meth:`_estimate` over the per-claim value array
    and return ``(truths, confidence, trust, iterations)``.
    """

    value_types = frozenset({CONTINUOUS})

    def discover(self, data: Dataset | DatasetIndex) -> TruthDiscoveryResult:
        index = data if isinstance(data, DatasetIndex) else DatasetIndex(data)
        start = time.perf_counter()
        claim_value = self._claim_values(index)
        truths, fact_confidence, trust, iterations = self._estimate(
            index, claim_value
        )
        elapsed = time.perf_counter() - start
        predictions = {
            fact: float(truths[f_id]) for f_id, fact in enumerate(index.facts)
        }
        confidence = {
            fact: float(fact_confidence[f_id])
            for f_id, fact in enumerate(index.facts)
        }
        source_trust = {
            source: float(trust[s_id])
            for s_id, source in enumerate(index.dataset.sources)
        }
        return TruthDiscoveryResult(
            algorithm=self.name,
            predictions=predictions,
            confidence=confidence,
            source_trust=source_trust,
            iterations=iterations,
            elapsed_seconds=elapsed,
        )

    @staticmethod
    def _claim_values(index: DatasetIndex) -> np.ndarray:
        try:
            slot_values = np.asarray(
                [float(v) for v in index.slot_values], dtype=np.float64
            )
        except (TypeError, ValueError) as exc:
            raise DataError(
                "continuous estimators require numeric claim values; "
                "tag non-numeric attributes categorical"
            ) from exc
        return slot_values[index.claim_slot]

    @staticmethod
    def _fact_scale(index: DatasetIndex, claim_value: np.ndarray) -> np.ndarray:
        """Per-fact normalisation scale: std of the claimed values.

        Constant across iterations (CRH normalises continuous losses per
        entry so wide-range facts do not dominate the source loss).
        """
        counts = np.maximum(
            np.bincount(index.claim_fact, minlength=index.n_facts), 1
        )
        mean = (
            np.bincount(
                index.claim_fact, weights=claim_value, minlength=index.n_facts
            )
            / counts
        )
        sq = (
            np.bincount(
                index.claim_fact,
                weights=claim_value * claim_value,
                minlength=index.n_facts,
            )
            / counts
        )
        var = np.maximum(sq - mean * mean, 0.0)
        return np.maximum(np.sqrt(var), _SCALE_FLOOR)

    @staticmethod
    def _weighted_mean(
        index: DatasetIndex, claim_value: np.ndarray, weights: np.ndarray
    ) -> np.ndarray:
        claim_weight = weights[index.claim_source]
        num = np.bincount(
            index.claim_fact,
            weights=claim_weight * claim_value,
            minlength=index.n_facts,
        )
        den = np.bincount(
            index.claim_fact, weights=claim_weight, minlength=index.n_facts
        )
        return num / np.maximum(den, _SCALE_FLOOR)

    @staticmethod
    def _residual_confidence(
        index: DatasetIndex,
        claim_value: np.ndarray,
        truths: np.ndarray,
        weights: np.ndarray,
        scale: np.ndarray,
    ) -> np.ndarray:
        """Per-fact confidence: 1 / (1 + weighted RMS normalised residual)."""
        err = (
            (claim_value - truths[index.claim_fact]) / scale[index.claim_fact]
        ) ** 2
        claim_weight = weights[index.claim_source]
        num = np.bincount(
            index.claim_fact, weights=claim_weight * err, minlength=index.n_facts
        )
        den = np.maximum(
            np.bincount(
                index.claim_fact, weights=claim_weight, minlength=index.n_facts
            ),
            _SCALE_FLOOR,
        )
        return 1.0 / (1.0 + np.sqrt(num / den))

    def _estimate(self, index: DatasetIndex, claim_value: np.ndarray):
        raise NotImplementedError

    def _solve(self, index):  # pragma: no cover - discover() is overridden
        raise NotImplementedError(
            "continuous estimators override discover(); _solve is never called"
        )


class ContinuousCRH(_ContinuousEstimator):
    """CRH on numeric data: weighted-mean truths, log-ratio weights."""

    name = "CRH-Cont"

    def __init__(
        self, tolerance: float = 1e-4, max_iterations: int = 20
    ) -> None:
        if max_iterations < 1:
            raise ValueError("max_iterations must be at least 1")
        self.criterion = ConvergenceCriterion(tolerance, measure="max_change")
        self.max_iterations = max_iterations

    def _estimate(self, index: DatasetIndex, claim_value: np.ndarray):
        scale = self._fact_scale(index, claim_value)
        weights = np.ones(index.n_sources, dtype=np.float64)
        counts = np.maximum(index.claims_per_source.astype(np.float64), 1.0)
        iterations = 0
        for iterations in range(1, self.max_iterations + 1):
            truths = self._weighted_mean(index, claim_value, weights)
            err = (
                (claim_value - truths[index.claim_fact])
                / scale[index.claim_fact]
            ) ** 2
            losses = np.bincount(
                index.claim_source, weights=err, minlength=index.n_sources
            )
            losses = np.maximum(losses / counts, _LOSS_FLOOR)
            total = losses.sum()
            new_weights = -np.log(losses / max(total, _LOSS_FLOOR))
            new_weights = np.clip(new_weights, _LOSS_FLOOR, None)
            peak = new_weights.max()
            if peak > 0:
                new_weights = new_weights / peak
            if self.criterion.converged(weights, new_weights):
                weights = new_weights
                break
            weights = new_weights
        truths = self._weighted_mean(index, claim_value, weights)
        confidence = self._residual_confidence(
            index, claim_value, truths, weights, scale
        )
        return truths, confidence, weights, iterations


class ContinuousCATD(_ContinuousEstimator):
    """CATD on numeric data: chi-squared interval weights over losses."""

    name = "CATD-Cont"

    def __init__(
        self,
        significance: float = 0.05,
        tolerance: float = 1e-4,
        max_iterations: int = 20,
    ) -> None:
        if not 0.0 < significance < 1.0:
            raise ValueError("significance must be in (0, 1)")
        if max_iterations < 1:
            raise ValueError("max_iterations must be at least 1")
        self.significance = significance
        self.criterion = ConvergenceCriterion(tolerance, measure="max_change")
        self.max_iterations = max_iterations

    def _estimate(self, index: DatasetIndex, claim_value: np.ndarray):
        scale = self._fact_scale(index, claim_value)
        counts = np.maximum(index.claims_per_source.astype(np.float64), 1.0)
        interval = stats.chi2.ppf(self.significance / 2.0, df=counts)
        interval = np.maximum(interval, _LOSS_FLOOR)

        weights = np.ones(index.n_sources, dtype=np.float64)
        iterations = 0
        for iterations in range(1, self.max_iterations + 1):
            truths = self._weighted_mean(index, claim_value, weights)
            err = (
                (claim_value - truths[index.claim_fact])
                / scale[index.claim_fact]
            ) ** 2
            losses = np.maximum(
                np.bincount(
                    index.claim_source, weights=err, minlength=index.n_sources
                ),
                _LOSS_FLOOR,
            )
            new_weights = interval / losses
            peak = new_weights.max()
            if peak > 0:
                new_weights = new_weights / peak
            if self.criterion.converged(weights, new_weights):
                weights = new_weights
                break
            weights = new_weights
        truths = self._weighted_mean(index, claim_value, weights)
        confidence = self._residual_confidence(
            index, claim_value, truths, weights, scale
        )
        return truths, confidence, weights, iterations


class ContinuousMedian(_ContinuousEstimator):
    """Single-pass per-fact median: the robust unweighted baseline."""

    name = "Median-Cont"

    def _estimate(self, index: DatasetIndex, claim_value: np.ndarray):
        counts = np.bincount(index.claim_fact, minlength=index.n_facts)
        order = np.lexsort((claim_value, index.claim_fact))
        ordered = claim_value[order]
        starts = np.zeros(index.n_facts + 1, dtype=np.int64)
        np.cumsum(counts, out=starts[1:])
        truths = np.zeros(index.n_facts, dtype=np.float64)
        nonempty = counts > 0
        lo = starts[:-1] + (np.maximum(counts, 1) - 1) // 2
        hi = starts[:-1] + np.maximum(counts, 1) // 2
        picked = np.where(nonempty)[0]
        truths[picked] = 0.5 * (ordered[lo[picked]] + ordered[hi[picked]])
        weights = np.ones(index.n_sources, dtype=np.float64)
        scale = self._fact_scale(index, claim_value)
        confidence = self._residual_confidence(
            index, claim_value, truths, weights, scale
        )
        return truths, confidence, weights, 1
