"""Name-based factory for truth discovery algorithms.

The evaluation harness, examples and benchmarks refer to algorithms by
the names the paper's tables use (``"MajorityVote"``, ``"Accu"``, ...);
this registry maps those names to constructors so experiment definitions
stay declarative.
"""

from __future__ import annotations

from typing import Callable

from repro.algorithms.accu import Accu, AccuSim, Depen
from repro.algorithms.base import TruthDiscoveryAlgorithm
from repro.algorithms.catd import CATD
from repro.algorithms.continuous import (
    ContinuousCATD,
    ContinuousCRH,
    ContinuousMedian,
)
from repro.algorithms.crh import CRH
from repro.algorithms.estimates import ThreeEstimates, TwoEstimates
from repro.algorithms.investment import Investment, PooledInvestment
from repro.algorithms.lca import SimpleLCA
from repro.algorithms.majority import MajorityVote
from repro.algorithms.sums import AverageLog, Sums
from repro.algorithms.truthfinder import TruthFinder
from repro.data.dataset import Dataset
from repro.data.types import ATTRIBUTE_TYPES

AlgorithmFactory = Callable[..., TruthDiscoveryAlgorithm]

_REGISTRY: dict[str, AlgorithmFactory] = {}


def register(name: str, factory: AlgorithmFactory) -> None:
    """Register ``factory`` under ``name`` (case-insensitive lookup)."""
    key = name.lower()
    if key in _REGISTRY:
        raise ValueError(f"algorithm {name!r} is already registered")
    _REGISTRY[key] = factory


def create(name: str, **kwargs) -> TruthDiscoveryAlgorithm:
    """Instantiate the algorithm registered under ``name``."""
    try:
        factory = _REGISTRY[name.lower()]
    except KeyError:
        known = ", ".join(sorted(available()))
        raise KeyError(f"unknown algorithm {name!r}; known: {known}") from None
    return factory(**kwargs)


def available() -> tuple[str, ...]:
    """Canonical names of all registered algorithms."""
    return tuple(sorted({factory().name for factory in _REGISTRY.values()}))


def capability_gap(
    algorithm: TruthDiscoveryAlgorithm, dataset: Dataset
) -> str | None:
    """Why ``algorithm`` cannot run on ``dataset``, or None if it can.

    Compares the dataset's attribute-type families (restricted to
    attributes that actually carry claims) against the algorithm's
    declared :attr:`~TruthDiscoveryAlgorithm.value_types`.  Runners and
    leaderboards call this to *skip with a reason* instead of crashing
    (continuous estimator fed strings) or silently producing garbage
    (slot voter fed sensor readings).
    """
    claimed = {a for (_, _, a) in dataset.claims}
    present = {
        kind
        for kind in ATTRIBUTE_TYPES
        if any(a in claimed for a in dataset.attributes_of_type(kind))
    }
    missing = present - set(algorithm.value_types)
    if missing:
        return (
            f"{algorithm.name} does not support "
            f"{'/'.join(sorted(missing))} attributes"
        )
    return None


for _factory in (
    MajorityVote,
    TruthFinder,
    Depen,
    Accu,
    AccuSim,
    Sums,
    AverageLog,
    Investment,
    PooledInvestment,
    TwoEstimates,
    ThreeEstimates,
    CRH,
    CATD,
    SimpleLCA,
    ContinuousCRH,
    ContinuousCATD,
    ContinuousMedian,
):
    register(_factory().name, _factory)
