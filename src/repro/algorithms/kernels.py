"""Process-wide switch between vectorized and reference kernels.

The claim-index engine rewrites the hot per-iteration loops of the base
algorithms (dependence-discounted voting, similarity support) as segment
reductions, and replaces the per-block ``restrict_attributes`` dataset
rebuilds with sliced views of one shared :class:`~repro.data.claim_engine.
ClaimIndexEngine`.  Every one of those rewrites is bit-identical to the
loop it replaced, and the benchmarks and regression tests prove it by
running both paths in the same process and comparing outputs exactly.

:func:`reference_kernels` is that proof's lever: inside the context the
original loop implementations and the legacy per-block dataset rebuilds
are used instead of the vectorized engine.  It is a plain module global
(not a context variable) so worker threads spawned by the block executor
observe the same mode as the caller; it is meant for benchmarks and
tests, not for concurrent toggling from production code.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

_REFERENCE = False


@contextmanager
def reference_kernels() -> Iterator[None]:
    """Run the enclosed code on the pre-engine loop implementations."""
    global _REFERENCE
    previous = _REFERENCE
    _REFERENCE = True
    try:
        yield
    finally:
        _REFERENCE = previous


def reference_enabled() -> bool:
    """Whether the reference (loop) kernels are currently selected."""
    return _REFERENCE
