"""Base truth discovery algorithms.

The paper evaluates MajorityVote, TruthFinder, DEPEN, Accu and AccuSim;
this package implements those five plus the extended comparison set it
lists as future work (Sums, AverageLog, Investment, PooledInvestment,
2-Estimates, 3-Estimates, CRH, CATD, SimpleLCA).  All algorithms share the
:class:`~repro.algorithms.base.TruthDiscoveryAlgorithm` interface and can
serve as the base algorithm ``F`` of TD-AC.
"""

from repro.algorithms import kernels
from repro.algorithms.accu import Accu, AccuSim, CopyDetector, Depen
from repro.algorithms.catd import CATD
from repro.algorithms.continuous import (
    ContinuousCATD,
    ContinuousCRH,
    ContinuousMedian,
)
from repro.algorithms.crh import CRH
from repro.algorithms.base import (
    EngineState,
    TruthDiscoveryAlgorithm,
    TruthDiscoveryResult,
)
from repro.algorithms.convergence import ConvergenceCriterion
from repro.algorithms.estimates import ThreeEstimates, TwoEstimates
from repro.algorithms.investment import Investment, PooledInvestment
from repro.algorithms.lca import SimpleLCA
from repro.algorithms.majority import MajorityVote
from repro.algorithms.registry import (
    available,
    capability_gap,
    create,
    register,
)
from repro.algorithms.routing import TypeRouted
from repro.algorithms.similarity import (
    SlotSimilarity,
    levenshtein_distance,
    numeric_similarity,
    sequence_similarity,
    string_similarity,
    value_similarity,
)
from repro.algorithms.sums import AverageLog, Sums
from repro.algorithms.truthfinder import TruthFinder

__all__ = [
    "Accu",
    "AccuSim",
    "AverageLog",
    "CATD",
    "CRH",
    "ContinuousCATD",
    "ContinuousCRH",
    "ContinuousMedian",
    "ConvergenceCriterion",
    "CopyDetector",
    "Depen",
    "EngineState",
    "Investment",
    "MajorityVote",
    "PooledInvestment",
    "SimpleLCA",
    "SlotSimilarity",
    "Sums",
    "ThreeEstimates",
    "TruthDiscoveryAlgorithm",
    "TruthDiscoveryResult",
    "TruthFinder",
    "TwoEstimates",
    "TypeRouted",
    "available",
    "capability_gap",
    "create",
    "kernels",
    "levenshtein_distance",
    "numeric_similarity",
    "register",
    "sequence_similarity",
    "string_similarity",
    "value_similarity",
]
