"""TruthFinder (Yin, Han & Yu, TKDE 2008).

A Bayesian-flavoured fixed point between source trustworthiness and value
confidence:

1. trustworthiness score of a source: ``tau(s) = -ln(1 - t(s))`` where
   ``t(s)`` is the current trust (probability that a value from ``s`` is
   correct);
2. raw confidence score of a value: ``sigma(v) = sum of tau(s)`` over the
   sources claiming it;
3. implication adjustment: similar values support each other,
   ``sigma*(v) = sigma(v) + rho * sum sim(v, v') * sigma(v')``;
4. final confidence through a dampened logistic,
   ``s(v) = 1 / (1 + exp(-gamma * sigma*(v)))``;
5. new trust of a source: average confidence of the values it provides.

Iteration stops when the cosine similarity of consecutive trust vectors
changes by less than ``tolerance`` (the criterion of the original paper).
Default hyper-parameters follow Waguih & Berti-Equille's experimental
survey, which the reproduced paper cites for its settings.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import EngineState, TruthDiscoveryAlgorithm
from repro.algorithms.convergence import ConvergenceCriterion
from repro.algorithms.similarity import SlotSimilarity
from repro.data.index import DatasetIndex

_TRUST_EPSILON = 1e-6


class TruthFinder(TruthDiscoveryAlgorithm):
    """Iterative trust / confidence fixed point with value implication.

    Parameters
    ----------
    initial_trust:
        Starting trust of every source, in (0, 1).
    dampening:
        The ``gamma`` of the logistic squashing; compensates for the
        false independence assumption between sources.
    influence:
        The ``rho`` weighting how strongly similar values support each
        other; 0 disables the implication adjustment entirely.
    tolerance / max_iterations:
        Stopping controls for the fixed point.
    """

    name = "TruthFinder"

    def __init__(
        self,
        initial_trust: float = 0.9,
        dampening: float = 0.3,
        influence: float = 0.5,
        tolerance: float = 1e-3,
        max_iterations: int = 20,
    ) -> None:
        if not 0.0 < initial_trust < 1.0:
            raise ValueError("initial_trust must be in (0, 1)")
        if max_iterations < 1:
            raise ValueError("max_iterations must be at least 1")
        self.initial_trust = initial_trust
        self.dampening = dampening
        self.influence = influence
        self.criterion = ConvergenceCriterion(tolerance, measure="cosine")
        self.max_iterations = max_iterations

    def _solve(self, index: DatasetIndex) -> EngineState:
        similarity = SlotSimilarity.shared(index) if self.influence > 0 else None
        trust = np.full(index.n_sources, self.initial_trust, dtype=index.dtype)
        confidence = np.zeros(index.n_slots, dtype=index.dtype)
        sigma = np.zeros(index.n_slots, dtype=index.dtype)
        iterations = 0
        for iterations in range(1, self.max_iterations + 1):
            tau = -np.log(np.clip(1.0 - trust, _TRUST_EPSILON, None))
            sigma = index.slot_scores(tau)
            if similarity is not None:
                sigma = similarity.weighted_support(sigma, self.influence)
            confidence = 1.0 / (1.0 + np.exp(-self.dampening * sigma))
            new_trust = index.source_mean_of_slots(confidence)
            new_trust = np.clip(new_trust, _TRUST_EPSILON, 1.0 - _TRUST_EPSILON)
            if self.criterion.converged(trust, new_trust):
                trust = new_trust
                break
            trust = new_trust
        # The logistic saturates to 1.0 when many sources support a value,
        # erasing the ordering; rank winners by the raw adjusted score.
        return EngineState(
            slot_confidence=confidence,
            source_trust=trust,
            iterations=iterations,
            slot_ranking=sigma,
        )
