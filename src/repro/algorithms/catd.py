"""CATD — Confidence-Aware Truth Discovery (Li et al., VLDB 2015).

Designed for the long tail: sources with very few claims get unstable
reliability estimates, so CATD weights each source by the *upper bound*
of the confidence interval of its error rate instead of the point
estimate — ``w(s) = chi2.ppf(alpha/2, n_s) / loss(s)`` in the original
formulation, where few observations widen the interval and shrink the
weight.  Truths are then weighted votes, iterated to a fixed point.

scipy's chi-squared quantile supplies the interval bound, making this
the one algorithm in the library exercising the scipy.stats substrate.
"""

from __future__ import annotations

import numpy as np
from scipy import stats

from repro.algorithms.base import EngineState, TruthDiscoveryAlgorithm
from repro.algorithms.convergence import ConvergenceCriterion
from repro.data.index import DatasetIndex

_LOSS_FLOOR = 1e-6


class CATD(TruthDiscoveryAlgorithm):
    """Confidence-interval-weighted truth discovery for long-tail sources.

    Parameters
    ----------
    significance:
        The ``alpha`` of the chi-squared interval; smaller values punish
        low-volume sources harder.
    tolerance / max_iterations:
        Stopping controls on the weight fixed point.
    """

    name = "CATD"

    def __init__(
        self,
        significance: float = 0.05,
        tolerance: float = 1e-4,
        max_iterations: int = 20,
    ) -> None:
        if not 0.0 < significance < 1.0:
            raise ValueError("significance must be in (0, 1)")
        if max_iterations < 1:
            raise ValueError("max_iterations must be at least 1")
        self.significance = significance
        self.criterion = ConvergenceCriterion(tolerance, measure="max_change")
        self.max_iterations = max_iterations

    def _solve(self, index: DatasetIndex) -> EngineState:
        counts = np.maximum(index.claims_per_source, 1.0)
        # chi2.ppf(alpha/2, n): the lower quantile of a chi-squared with
        # one degree of freedom per observation — the numerator of the
        # CATD weight.  Constant across iterations.
        interval = stats.chi2.ppf(self.significance / 2.0, df=counts)
        interval = np.maximum(interval, _LOSS_FLOOR).astype(index.dtype)

        weights = np.ones(index.n_sources, dtype=index.dtype)
        votes = index.votes_per_slot
        winners = index.winning_slots(votes)
        iterations = 0
        for iterations in range(1, self.max_iterations + 1):
            votes = index.slot_scores(weights)
            winners = index.winning_slots(votes)
            claim_wrong = (
                winners[index.claim_fact] != index.claim_slot
            ).astype(index.dtype)
            losses = index.sum_per_source(claim_wrong)
            losses = np.maximum(losses, _LOSS_FLOOR)
            new_weights = interval / losses
            scale = new_weights.max()
            if scale > 0:
                new_weights = new_weights / scale
            if self.criterion.converged(weights, new_weights):
                weights = new_weights
                break
            weights = new_weights
        votes = index.slot_scores(weights)
        confidence = index.normalize_per_fact(votes)
        return EngineState(
            slot_confidence=confidence,
            source_trust=weights,
            iterations=iterations,
            slot_ranking=votes,
        )
