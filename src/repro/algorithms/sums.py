"""Sums (Hubs & Authorities) and AverageLog (Pasternack & Roth, COLING 2010).

These web-of-trust style algorithms are part of the "larger set of
standard truth discovery algorithms" the reproduced paper lists as a
comparison perspective.  Both iterate a bipartite reinforcement between
sources and claimed values:

* **Sums** — Kleinberg's hubs/authorities on the source–value graph:
  a value's belief is the sum of its providers' trust, a source's trust
  the sum of its values' beliefs, with max-normalisation each round to
  keep the scores from diverging.
* **AverageLog** — dampens prolific sources: trust is the *average*
  belief of provided values scaled by ``log(|claims(s)|)``, so a source
  is not rewarded for volume alone.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import EngineState, TruthDiscoveryAlgorithm
from repro.algorithms.convergence import ConvergenceCriterion
from repro.data.index import DatasetIndex


class Sums(TruthDiscoveryAlgorithm):
    """Hubs & Authorities over the source–value bipartite graph."""

    name = "Sums"

    def __init__(self, tolerance: float = 1e-4, max_iterations: int = 20) -> None:
        if max_iterations < 1:
            raise ValueError("max_iterations must be at least 1")
        self.criterion = ConvergenceCriterion(tolerance, measure="max_change")
        self.max_iterations = max_iterations

    def _solve(self, index: DatasetIndex) -> EngineState:
        trust = np.ones(index.n_sources, dtype=index.dtype)
        belief = np.zeros(index.n_slots, dtype=index.dtype)
        iterations = 0
        for iterations in range(1, self.max_iterations + 1):
            belief = index.slot_scores(trust)
            belief_max = belief.max(initial=0.0)
            if belief_max > 0:
                belief = belief / belief_max
            new_trust = index.sum_per_source(belief[index.claim_slot])
            trust_max = new_trust.max(initial=0.0)
            if trust_max > 0:
                new_trust = new_trust / trust_max
            if self.criterion.converged(trust, new_trust):
                trust = new_trust
                break
            trust = new_trust
        return EngineState(
            slot_confidence=index.normalize_per_fact(belief),
            source_trust=trust,
            iterations=iterations,
        )


class AverageLog(TruthDiscoveryAlgorithm):
    """Sums variant weighting trust by log-claim-count times mean belief."""

    name = "AverageLog"

    def __init__(self, tolerance: float = 1e-4, max_iterations: int = 20) -> None:
        if max_iterations < 1:
            raise ValueError("max_iterations must be at least 1")
        self.criterion = ConvergenceCriterion(tolerance, measure="max_change")
        self.max_iterations = max_iterations

    def _solve(self, index: DatasetIndex) -> EngineState:
        counts = index.claims_per_source
        log_weight = np.log(np.maximum(counts, 1.0))
        # Sources with a single claim would get log(1) = 0 trust forever;
        # give them the minimal positive weight instead.
        log_weight = np.where(counts > 0, np.maximum(log_weight, np.log(2.0) / 2), 0.0)
        trust = np.ones(index.n_sources, dtype=index.dtype)
        belief = np.zeros(index.n_slots, dtype=index.dtype)
        iterations = 0
        for iterations in range(1, self.max_iterations + 1):
            belief = index.slot_scores(trust)
            belief_max = belief.max(initial=0.0)
            if belief_max > 0:
                belief = belief / belief_max
            new_trust = log_weight * index.source_mean_of_slots(belief)
            trust_max = new_trust.max(initial=0.0)
            if trust_max > 0:
                new_trust = new_trust / trust_max
            if self.criterion.converged(trust, new_trust):
                trust = new_trust
                break
            trust = new_trust
        return EngineState(
            slot_confidence=index.normalize_per_fact(belief),
            source_trust=trust,
            iterations=iterations,
        )
