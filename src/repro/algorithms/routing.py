"""Per-attribute-type estimator routing for mixed datasets.

:class:`TypeRouted` lets one dataset mix categorical, continuous and
multi-valued attribute blocks: it splits its input by
``dataset.attribute_type`` and hands each group to the estimator family
that is sound for it — the slot-voting base algorithms for categorical
(and tuple-valued multi) attributes, the continuous CRH/CATD estimators
for numeric ones — then merges predictions and claim-count-weighted
source trust exactly like TD-AC's block merge.

``supports_index`` is False on purpose: the block runners and the
incremental engine already have a Dataset path for meta algorithms
(``dataset.restrict_attributes(block)``), so a ``TDAC(TypeRouted(...))``
pipeline routes *within every block* of the winning partition with no
change to ``TDAC.run`` — reference pass, block runs and merge see one
algorithm.  On an all-categorical dataset the router is the categorical
base verbatim (one group, identical compiled index), so existing
single-truth results are unchanged.
"""

from __future__ import annotations

import time
from collections import Counter

from repro.algorithms.base import TruthDiscoveryAlgorithm, TruthDiscoveryResult
from repro.algorithms.continuous import ContinuousCRH
from repro.algorithms.majority import MajorityVote
from repro.data.dataset import Dataset
from repro.data.index import DatasetIndex
from repro.data.types import (
    CATEGORICAL,
    CONTINUOUS,
    MULTI,
    DataError,
    Fact,
    SourceId,
    Value,
)


class TypeRouted(TruthDiscoveryAlgorithm):
    """Route each attribute-type group to a sound estimator family.

    Parameters
    ----------
    categorical:
        Slot-voting algorithm for categorical attributes (default
        :class:`~repro.algorithms.majority.MajorityVote`).
    continuous:
        Estimator for numeric attributes (default
        :class:`~repro.algorithms.continuous.ContinuousCRH`).
    multi:
        Algorithm for multi-valued (tuple) attributes; defaults to the
        categorical algorithm, i.e. full-set voting among claimed tuples.
    """

    supports_index = False
    value_types = frozenset({CATEGORICAL, CONTINUOUS, MULTI})

    def __init__(
        self,
        categorical: TruthDiscoveryAlgorithm | None = None,
        continuous: TruthDiscoveryAlgorithm | None = None,
        multi: TruthDiscoveryAlgorithm | None = None,
    ) -> None:
        self.categorical = (
            categorical if categorical is not None else MajorityVote()
        )
        self.continuous = (
            continuous if continuous is not None else ContinuousCRH()
        )
        self.multi = multi if multi is not None else self.categorical
        for kind, algorithm in (
            (CATEGORICAL, self.categorical),
            (CONTINUOUS, self.continuous),
            (MULTI, self.multi),
        ):
            if kind not in algorithm.value_types:
                raise DataError(
                    f"{algorithm.name} does not support {kind} attributes"
                )
        self.name = (
            f"Routed[{self.categorical.name}|{self.continuous.name}]"
        )

    def discover(self, data: Dataset | DatasetIndex) -> TruthDiscoveryResult:
        if isinstance(data, DatasetIndex):
            # A sliced block index keeps a reference to the *full*
            # dataset, so the restricted claim set cannot be recovered
            # here; block runners hand meta algorithms Datasets.
            raise TypeError(
                "TypeRouted routes over Datasets; pass the dataset, "
                "not a compiled index"
            )
        start = time.perf_counter()
        # Group attribute-type families by estimator object so
        # categorical + multi (same voter by default) stay one run.
        plan: list[tuple[TruthDiscoveryAlgorithm, list]] = []
        by_algorithm: dict[int, int] = {}
        for kind, algorithm in (
            (CATEGORICAL, self.categorical),
            (MULTI, self.multi),
            (CONTINUOUS, self.continuous),
        ):
            attrs = data.attributes_of_type(kind)
            if not attrs:
                continue
            slot = by_algorithm.get(id(algorithm))
            if slot is None:
                by_algorithm[id(algorithm)] = len(plan)
                plan.append((algorithm, list(attrs)))
            else:
                plan[slot][1].extend(attrs)
        if not plan:
            raise DataError("cannot route a dataset with no claims")
        group_results: list[tuple[list, TruthDiscoveryResult]] = []
        for algorithm, attrs in plan:
            # Attribute order within a merged group must follow dataset
            # order (restrict_attributes re-orders, but keep the call
            # canonical for cache keys).
            rank = {a: i for i, a in enumerate(data.attributes)}
            attrs = sorted(attrs, key=rank.__getitem__)
            sub = (
                data
                if len(attrs) == len(data.attributes)
                else data.restrict_attributes(attrs)
            )
            group_results.append((attrs, algorithm.discover(sub)))
        return self._merge(data, group_results, start)

    def _merge(
        self,
        dataset: Dataset,
        group_results: list[tuple[list, TruthDiscoveryResult]],
        start: float,
    ) -> TruthDiscoveryResult:
        """Union predictions; claim-count-weighted mean of group trusts.

        The same aggregation as TD-AC's block merge, so a routed base
        under ``TDAC.run`` composes without a second convention.
        """
        predictions: dict[Fact, Value] = {}
        confidence: dict[Fact, float] = {}
        iterations = 0
        for _, result in group_results:
            predictions.update(result.predictions)
            confidence.update(result.confidence)
            iterations = max(iterations, result.iterations)
        weights: dict[SourceId, float] = {s: 0.0 for s in dataset.sources}
        trust_sums: dict[SourceId, float] = {s: 0.0 for s in dataset.sources}
        claims_per_attribute = Counter(a for (_, _, a) in dataset.claims)
        for attrs, result in group_results:
            group_claims = sum(claims_per_attribute[a] for a in attrs)
            weight = float(max(group_claims, 1))
            for source, trust in result.source_trust.items():
                trust_sums[source] += weight * trust
                weights[source] += weight
        source_trust = {
            s: (trust_sums[s] / weights[s]) if weights[s] > 0 else 0.0
            for s in dataset.sources
        }
        return TruthDiscoveryResult(
            algorithm=self.name,
            predictions=predictions,
            confidence=confidence,
            source_trust=source_trust,
            iterations=iterations,
            elapsed_seconds=time.perf_counter() - start,
            extras={
                "routed": {
                    kind: algorithm.name
                    for kind, algorithm in (
                        (CATEGORICAL, self.categorical),
                        (CONTINUOUS, self.continuous),
                        (MULTI, self.multi),
                    )
                }
            },
        )

    def _solve(self, index):  # pragma: no cover - discover() is overridden
        raise NotImplementedError(
            "TypeRouted overrides discover(); _solve is never called"
        )
