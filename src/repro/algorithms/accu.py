"""The Accu family (Dong, Berti-Equille & Srivastava, VLDB 2009).

Three algorithms share a Bayesian machinery:

* **Depen** — detects copying relationships between sources and performs
  dependence-discounted voting with a *uniform* source accuracy;
* **Accu** — additionally estimates per-source accuracy and weights votes
  by ``ln(n * A(s) / (1 - A(s)))``;
* **AccuSim** — Accu plus cross-value similarity support (values that are
  close in meaning partially share their vote counts).

Copy detection compares every pair of sources on their commonly covered
facts, splitting agreements into *common true values* (weak evidence of
copying — independent good sources also agree on the truth) and *common
false values* (strong evidence — two independent sources rarely make the
same mistake), and applies Bayes' rule with a prior ``alpha`` on
dependence and an assumed copy rate ``c``.  Votes are then counted in
decreasing source-accuracy order, discounting each vote by the
probability that it was copied from an already-counted source.

The pairwise agreement counts are sparse-matrix products over the
claim-incidence matrix, so detection costs one sparse GEMM per iteration
rather than a Python double loop over source pairs.
"""

from __future__ import annotations

from weakref import WeakKeyDictionary

import numpy as np
from scipy import sparse

from repro.algorithms import kernels
from repro.algorithms.base import EngineState, TruthDiscoveryAlgorithm
from repro.algorithms.convergence import ConvergenceCriterion
from repro.algorithms.similarity import SlotSimilarity
from repro.data.index import DatasetIndex

_ACC_EPSILON = 1e-4


class CopyDetector:
    """Bayesian pairwise source-dependence estimation.

    Parameters
    ----------
    alpha:
        Prior probability that an arbitrary pair of sources is dependent.
    copy_rate:
        Probability ``c`` that a dependent source copies any particular
        claim rather than providing it independently.
    n_false_values:
        Size of the false-value domain per fact.  ``None`` (default)
        adapts to the data: the mean number of observed alternative
        values per fact, clamped to at least 1.  A fixed domain size
        (Dong et al. use 100) flattens the accuracy weights
        ``ln(n*A/(1-A))`` into near-uniform votes on datasets whose facts
        have only a handful of candidates.
    """

    def __init__(
        self,
        alpha: float = 0.2,
        copy_rate: float = 0.8,
        n_false_values: int | None = None,
        calibrate_true_agreement: bool = True,
    ) -> None:
        if not 0.0 < alpha < 1.0:
            raise ValueError("alpha must be in (0, 1)")
        if not 0.0 < copy_rate < 1.0:
            raise ValueError("copy_rate must be in (0, 1)")
        self.alpha = alpha
        self.copy_rate = copy_rate
        self.n_false_values = n_false_values
        self.calibrate_true_agreement = calibrate_true_agreement

    def prepare(self, index: DatasetIndex) -> None:
        """Precompute the iteration-independent incidence products.

        The claim/fact incidence matrices come from the shared index
        (cached there, so repeated solves of the same block reuse them);
        only the two Gram products are computed per detector.
        """
        self._claims = index.incidence_source_slot
        fact_incidence = index.incidence_source_fact
        self._common_facts = np.asarray(
            (fact_incidence @ fact_incidence.T).todense(), dtype=float
        )
        self._common_values = np.asarray(
            (self._claims @ self._claims.T).todense(), dtype=float
        )
        self._index = index

    def dependence(
        self,
        winners: np.ndarray,
        accuracy: np.ndarray,
        fact_confident: np.ndarray | None = None,
    ) -> np.ndarray:
        """Posterior P(dependent) for every source pair.

        ``winners`` is the current per-fact winning slot (the working
        truth used to split agreements into true/false), ``accuracy`` the
        current per-source accuracy estimates.

        ``fact_confident`` optionally restricts the evidence to facts
        where the working truth is trustworthy.  Without the gate,
        contested facts poison the detector: whichever side *lost* the
        working vote looks like a clique sharing "false" values, so
        honest sources get branded copiers of each other exactly on the
        facts that matter most.
        """
        index = self._index
        claim_is_true = (
            winners[index.claim_fact] == index.claim_slot
        ).astype(float)
        if fact_confident is None:
            claim_counted = np.ones(index.n_claims)
            common_facts = self._common_facts
            common_values = self._common_values
        else:
            claim_counted = fact_confident[index.claim_fact].astype(float)
            claim_is_true = claim_is_true * claim_counted
            counted_claims = sparse.csr_matrix(
                (claim_counted, (index.claim_source, index.claim_slot)),
                shape=(index.n_sources, index.n_slots),
            )
            counted_facts = sparse.csr_matrix(
                (claim_counted, (index.claim_source, index.claim_fact)),
                shape=(index.n_sources, index.n_facts),
            )
            common_facts = np.asarray(
                (counted_facts @ counted_facts.T).todense(), dtype=float
            )
            common_values = np.asarray(
                (counted_claims @ counted_claims.T).todense(), dtype=float
            )
        true_claims = sparse.csr_matrix(
            (claim_is_true, (index.claim_source, index.claim_slot)),
            shape=(index.n_sources, index.n_slots),
        )
        k_true = np.asarray((true_claims @ true_claims.T).todense(), dtype=float)
        k_false = common_values - k_true
        k_diff = common_facts - common_values

        # Pairwise accuracy: mean of the two sources' current accuracies.
        acc = np.clip(accuracy, _ACC_EPSILON, 1.0 - _ACC_EPSILON)
        pair_acc = (acc[:, None] + acc[None, :]) / 2.0
        n = self._false_domain_size()
        c = self.copy_rate

        # True-agreement calibration: two highly accurate sources agree on
        # the truth almost always, so observing them agree carries no
        # copying signal.  When the observed true-agreement rate exceeds
        # what the current (possibly underestimated) accuracies predict,
        # trust the observation — otherwise honest good sources drift into
        # "copier" territory one true agreement at a time.
        if self.calibrate_true_agreement:
            with np.errstate(invalid="ignore", divide="ignore"):
                true_rate = np.where(
                    common_facts > 0, k_true / np.maximum(common_facts, 1.0), 0.0
                )
            q_true = np.clip(
                np.maximum(pair_acc**2, true_rate),
                _ACC_EPSILON,
                1.0 - _ACC_EPSILON,
            )
        else:
            q_true = np.clip(pair_acc**2, _ACC_EPSILON, 1.0 - _ACC_EPSILON)
        a_effective = np.sqrt(q_true)

        p_same_true_ind = q_true
        p_same_false_ind = (1.0 - pair_acc) ** 2 / n
        p_diff_ind = np.clip(
            1.0 - p_same_true_ind - p_same_false_ind, _ACC_EPSILON, None
        )
        p_same_true_dep = c * a_effective + (1.0 - c) * p_same_true_ind
        p_same_false_dep = c * (1.0 - pair_acc) + (1.0 - c) * p_same_false_ind
        p_diff_dep = (1.0 - c) * p_diff_ind

        log_ind = (
            k_true * np.log(p_same_true_ind)
            + k_false * np.log(np.clip(p_same_false_ind, 1e-300, None))
            + k_diff * np.log(p_diff_ind)
        )
        log_dep = (
            k_true * np.log(p_same_true_dep)
            + k_false * np.log(np.clip(p_same_false_dep, 1e-300, None))
            + k_diff * np.log(np.clip(p_diff_dep, 1e-300, None))
        )
        logit = (
            np.log(self.alpha) - np.log(1.0 - self.alpha) + log_dep - log_ind
        )
        posterior = 1.0 / (1.0 + np.exp(-np.clip(logit, -500, 500)))
        np.fill_diagonal(posterior, 0.0)
        return posterior

    def _false_domain_size(self) -> float:
        if self.n_false_values is not None:
            return float(max(self.n_false_values, 1))
        # Observed alternatives averaged over facts.
        alternatives = self._index.slots_per_fact - 1.0
        return float(max(alternatives.mean(), 1.0))


def bayesian_vote_weights(
    index: DatasetIndex,
    accuracy: np.ndarray,
    n_false_values: float,
    estimate_accuracy: bool,
    clamp: float,
) -> np.ndarray:
    """Per-source vote weights of the Accu family, clipped to be >= 0.

    The single Bayesian vote-weight helper shared by Depen (uniform
    weights), Accu and AccuSim (``ln(n * A / (1 - A))`` with the accuracy
    clamped away from the extremes), so the discounted-vote kernel has
    exactly one call site per iteration whatever the variant.
    """
    if estimate_accuracy:
        clamped = np.clip(accuracy, clamp, 1.0 - clamp)
        weight = np.log(n_false_values * clamped / (1.0 - clamped))
    else:
        weight = np.ones(index.n_sources, dtype=accuracy.dtype)
    return np.clip(weight, 0.0, None)


def discounted_votes(
    index: DatasetIndex,
    dependence: np.ndarray,
    accuracy: np.ndarray,
    copy_rate: float,
    vote_weight: np.ndarray,
) -> np.ndarray:
    """Dependence-discounted weighted vote count per value slot.

    For every slot, its providers are walked in decreasing-accuracy
    order; each provider's ``vote_weight`` is multiplied by the
    probability that its claim is independent of every already-counted
    provider of the same slot: ``prod(1 - c * P(dep))``.

    Dispatches to the vectorized segment-reduction kernel; the original
    per-slot loop is kept as the reference implementation (selected by
    :func:`repro.algorithms.kernels.reference_kernels`) and the two are
    bit-identical — the kernel evaluates the same products and the same
    per-slot dot in the same order.
    """
    if kernels.reference_enabled():
        return _discounted_votes_reference(
            index, dependence, accuracy, copy_rate, vote_weight
        )
    return _discounted_votes_vectorized(
        index, dependence, accuracy, copy_rate, vote_weight
    )


def _discounted_votes_reference(
    index: DatasetIndex,
    dependence: np.ndarray,
    accuracy: np.ndarray,
    copy_rate: float,
    vote_weight: np.ndarray,
) -> np.ndarray:
    order = np.argsort(-accuracy, kind="stable")
    rank = np.empty_like(order)
    rank[order] = np.arange(len(order))

    totals = np.zeros(index.n_slots, dtype=float)
    slot_sorted = np.argsort(index.claim_slot, kind="stable")
    slots = index.claim_slot[slot_sorted]
    sources = index.claim_source[slot_sorted]
    boundaries = np.flatnonzero(np.diff(slots)) + 1
    groups = np.split(sources, boundaries)
    slot_ids = slots[np.concatenate(([0], boundaries))] if len(slots) else []
    for slot_id, providers in zip(slot_ids, groups):
        providers = providers[np.argsort(rank[providers], kind="stable")]
        if len(providers) == 1:
            totals[slot_id] = vote_weight[providers[0]]
            continue
        sub = dependence[np.ix_(providers, providers)]
        independence = np.ones(len(providers))
        # Lower triangle: provider i versus already-counted providers j < i.
        factors = 1.0 - copy_rate * sub
        for i in range(1, len(providers)):
            independence[i] = np.prod(factors[i, :i])
        totals[slot_id] = float(np.dot(independence, vote_weight[providers]))
    return totals


#: Per-index cache of the iteration-independent pair structure used by
#: the vectorized kernel.  Weakly keyed: dropping the index frees it.
_PAIR_STRUCTURES: "WeakKeyDictionary[DatasetIndex, tuple]" = WeakKeyDictionary()


def _pair_structure(index: DatasetIndex) -> tuple:
    """Lower-triangle provider-pair layout of every multi-provider slot.

    In slot-sorted claim order, provider ``i`` of a slot must be
    discounted against providers ``j < i`` (in decreasing-accuracy
    order).  Which (i, j) pairs exist depends only on the slot sizes, so
    the flattened pair positions are computed once per index:

    ``pos_i`` / ``pos_j`` index into the slot-sorted claim sequence;
    ``row_starts`` delimits each provider's run of pairs so the
    independence products are one ``np.multiply.reduceat``; ``row_pos``
    maps each run back to its provider position.  Singleton slots are
    kept separately — their vote is just the provider's weight.
    """
    cached = _PAIR_STRUCTURES.get(index)
    if cached is not None:
        return cached
    starts = index.slot_claim_starts
    sizes = np.diff(starts)
    local = np.arange(index.n_claims) - np.repeat(starts[:-1], sizes)
    row_pos = np.flatnonzero(local >= 1)
    row_len = local[row_pos]
    row_starts = np.concatenate(([0], np.cumsum(row_len))).astype(np.int64)
    pos_i = np.repeat(row_pos, row_len)
    slot_start_of_row = np.repeat(starts[:-1], sizes)[row_pos]
    pos_j = (
        np.arange(len(pos_i), dtype=np.int64)
        - np.repeat(row_starts[:-1], row_len)
        + np.repeat(slot_start_of_row, row_len)
    )
    single = sizes == 1
    single_slots = np.flatnonzero(single)
    single_pos = starts[:-1][single]
    multi_slots = np.flatnonzero(~single)
    multi = list(
        zip(
            multi_slots.tolist(),
            starts[:-1][~single].tolist(),
            starts[1:][~single].tolist(),
        )
    )
    cached = (row_pos, row_starts, pos_i, pos_j, single_slots, single_pos, multi)
    _PAIR_STRUCTURES[index] = cached
    return cached


def _discounted_votes_vectorized(
    index: DatasetIndex,
    dependence: np.ndarray,
    accuracy: np.ndarray,
    copy_rate: float,
    vote_weight: np.ndarray,
) -> np.ndarray:
    totals = np.zeros(index.n_slots, dtype=float)
    if index.n_claims == 0:
        return totals
    order = np.argsort(-accuracy, kind="stable")
    rank = np.empty_like(order)
    rank[order] = np.arange(len(order))

    # Claims sorted by (slot, provider accuracy rank): the composite key
    # is unique (one claim per source per slot), so this reproduces the
    # reference per-slot provider order in one global argsort.
    slot_sorted = index.claims_slot_sorted
    key = index.claim_slot[slot_sorted] * np.int64(index.n_sources)
    key += rank[index.claim_source[slot_sorted]]
    perm = np.argsort(key, kind="stable")
    src = index.claim_source[slot_sorted][perm]

    row_pos, row_starts, pos_i, pos_j, single_slots, single_pos, multi = (
        _pair_structure(index)
    )
    independence = np.ones(index.n_claims, dtype=float)
    if len(pos_i):
        factors = 1.0 - copy_rate * dependence[src[pos_i], src[pos_j]]
        # One multiply.reduceat evaluates every provider's running
        # product prod(factors[i, :i]) exactly as np.prod would.
        independence[row_pos] = np.multiply.reduceat(factors, row_starts[:-1])
    weights = vote_weight[src]
    totals[single_slots] = weights[single_pos]
    # Per-slot np.dot keeps the reference BLAS summation order, so the
    # totals are bitwise equal to the loop implementation.
    for slot_id, start, stop in multi:
        totals[slot_id] = np.dot(independence[start:stop], weights[start:stop])
    return totals


def _confident_facts(
    index: DatasetIndex,
    confidence: np.ndarray,
    winners: np.ndarray,
    margin: float,
) -> np.ndarray:
    """Facts whose working truth wins by at least ``margin`` of the mass.

    ``confidence`` must be normalised within each fact.  Facts with a
    single claimed value are always confident (unanimous).
    """
    from repro.data.index import segment_max

    winner_share = confidence[winners]
    masked = confidence.copy()
    masked[winners] = -np.inf
    runner_up = segment_max(masked, index.fact_slot_start)
    runner_up = np.where(np.isfinite(runner_up), runner_up, 0.0)
    return (winner_share - runner_up) >= margin


class _AccuBase(TruthDiscoveryAlgorithm):
    """Shared fixed point of the Depen / Accu / AccuSim family."""

    #: Whether per-source accuracy is estimated (Accu) or uniform (Depen).
    estimate_accuracy = True
    #: Similarity weight for AccuSim; 0 disables similarity support.
    similarity_weight = 0.0

    #: Accuracy clamp used for the vote weights ln(n*A/(1-A)): estimates
    #: at the extremes would otherwise produce unbounded weights and an
    #: oscillating fixed point.
    _WEIGHT_CLAMP = 0.05

    def __init__(
        self,
        initial_accuracy: float = 0.8,
        alpha: float = 0.2,
        copy_rate: float = 0.8,
        n_false_values: int | None = None,
        damping: float = 0.3,
        warmup_iterations: int = 0,
        confidence_gate: float = 0.0,
        calibrate_true_agreement: bool = True,
        tolerance: float = 1e-3,
        max_iterations: int = 20,
    ) -> None:
        if not 0.0 < initial_accuracy < 1.0:
            raise ValueError("initial_accuracy must be in (0, 1)")
        if not 0.0 <= damping < 1.0:
            raise ValueError("damping must be in [0, 1)")
        if warmup_iterations < 0:
            raise ValueError("warmup_iterations must be non-negative")
        if confidence_gate > 1.0:
            raise ValueError("confidence_gate must be at most 1 (<= 0 disables)")
        if max_iterations < 1:
            raise ValueError("max_iterations must be at least 1")
        self.initial_accuracy = initial_accuracy
        self.damping = damping
        self.warmup_iterations = warmup_iterations
        self.confidence_gate = confidence_gate
        self.detector = CopyDetector(
            alpha, copy_rate, n_false_values, calibrate_true_agreement
        )
        self.criterion = ConvergenceCriterion(tolerance, measure="max_change")
        self.max_iterations = max_iterations

    def _solve(self, index: DatasetIndex) -> EngineState:
        # A fresh detector per call: `prepare` caches dataset-specific
        # matrices, and one algorithm instance may solve several blocks
        # concurrently under TDAC(n_jobs > 1).
        detector = CopyDetector(
            alpha=self.detector.alpha,
            copy_rate=self.detector.copy_rate,
            n_false_values=self.detector.n_false_values,
            calibrate_true_agreement=self.detector.calibrate_true_agreement,
        )
        detector.prepare(index)
        similarity = (
            SlotSimilarity.shared(index) if self.similarity_weight > 0 else None
        )
        accuracy = np.full(index.n_sources, self.initial_accuracy, dtype=index.dtype)
        n = detector._false_domain_size()

        # Bootstrap the working truth with a plain majority vote.
        winners = index.winning_slots(index.votes_per_slot)
        confidence = index.normalize_per_fact(index.votes_per_slot)
        no_dependence = np.zeros(
            (index.n_sources, index.n_sources), dtype=index.dtype
        )
        iterations = 0
        for iterations in range(1, self.max_iterations + 1):
            # Copy-detection evidence is gated to facts where the working
            # truth is confident: on contested facts (majority near 50/50)
            # the losing side's honest agreement would read as a clique
            # sharing false values.  An optional accuracy-only warm-up
            # (ablation knob) skips detection entirely for a few rounds.
            if self.estimate_accuracy and iterations <= self.warmup_iterations:
                dependence = no_dependence
            else:
                fact_confident = (
                    None
                    if self.confidence_gate <= 0.0
                    else _confident_facts(
                        index, confidence, winners, self.confidence_gate
                    )
                )
                dependence = detector.dependence(
                    winners, accuracy, fact_confident
                )
            weight = bayesian_vote_weights(
                index, accuracy, n, self.estimate_accuracy, self._WEIGHT_CLAMP
            )
            votes = discounted_votes(
                index, dependence, accuracy, detector.copy_rate, weight
            )
            if similarity is not None:
                votes = similarity.weighted_support(votes, self.similarity_weight)
            confidence = index.softmax_per_fact(votes)
            winners = index.winning_slots(votes)
            estimated = index.source_mean_of_slots(confidence)
            # Damped update: the raw estimate is winner-take-all after the
            # soft-max and makes the fixed point oscillate; keep a share of
            # the previous estimate.
            new_accuracy = (
                self.damping * accuracy + (1.0 - self.damping) * estimated
            )
            new_accuracy = np.clip(new_accuracy, _ACC_EPSILON, 1.0 - _ACC_EPSILON)
            stable = self.criterion.converged(accuracy, new_accuracy)
            accuracy = new_accuracy
            if stable:
                break
        return EngineState(
            slot_confidence=confidence,
            source_trust=accuracy,
            iterations=iterations,
        )


class Depen(_AccuBase):
    """Dependence-aware voting with uniform source accuracy."""

    name = "DEPEN"
    estimate_accuracy = False


class Accu(_AccuBase):
    """Joint source-accuracy estimation and copy detection."""

    name = "Accu"
    estimate_accuracy = True


class AccuSim(_AccuBase):
    """Accu with similarity support between claimed values."""

    name = "AccuSim"
    estimate_accuracy = True
    similarity_weight = 0.5

    def __init__(self, *args, similarity_weight: float = 0.5, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.similarity_weight = similarity_weight
