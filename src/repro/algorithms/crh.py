"""CRH — Conflict Resolution on Heterogeneous data (Li et al., SIGMOD 2014).

An optimisation-based framework: find truths and source weights
minimising the weighted loss

    sum_s w(s) * sum_f loss(v(s, f), truth(f))

subject to a regularisation on the weights, which yields the closed-form
update ``w(s) = -log(loss(s) / sum_s' loss(s'))``.  For categorical data
the loss is 0/1 disagreement with the current truth, and the truth
update is a weighted majority vote — giving a simple, fast fixed point
that behaves very differently from the Bayesian family (no copy
detection, purely loss-driven weights).

Part of the extended comparison set (the paper's future-work item of
comparing against "a larger set of standard truth discovery
algorithms").
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import EngineState, TruthDiscoveryAlgorithm
from repro.algorithms.convergence import ConvergenceCriterion
from repro.data.index import DatasetIndex

_LOSS_FLOOR = 1e-6


class CRH(TruthDiscoveryAlgorithm):
    """Loss-minimisation truth discovery with log-ratio source weights.

    Parameters
    ----------
    tolerance / max_iterations:
        Stopping controls on the source-weight fixed point.
    """

    name = "CRH"

    def __init__(
        self, tolerance: float = 1e-4, max_iterations: int = 20
    ) -> None:
        if max_iterations < 1:
            raise ValueError("max_iterations must be at least 1")
        self.criterion = ConvergenceCriterion(tolerance, measure="max_change")
        self.max_iterations = max_iterations

    def _solve(self, index: DatasetIndex) -> EngineState:
        weights = np.ones(index.n_sources, dtype=index.dtype)
        votes = index.votes_per_slot
        winners = index.winning_slots(votes)
        iterations = 0
        for iterations in range(1, self.max_iterations + 1):
            # Truth update: weighted vote under the current weights.
            votes = index.slot_scores(weights)
            winners = index.winning_slots(votes)
            # Loss of every source: fraction of its claims disagreeing
            # with the current truths.
            claim_wrong = (
                winners[index.claim_fact] != index.claim_slot
            ).astype(index.dtype)
            losses = index.sum_per_source(claim_wrong)
            counts = np.maximum(index.claims_per_source, 1.0)
            losses = np.maximum(losses / counts, _LOSS_FLOOR)
            total = losses.sum()
            new_weights = -np.log(losses / max(total, _LOSS_FLOOR))
            new_weights = np.clip(new_weights, _LOSS_FLOOR, None)
            scale = new_weights.max()
            if scale > 0:
                new_weights = new_weights / scale
            if self.criterion.converged(weights, new_weights):
                weights = new_weights
                break
            weights = new_weights
        votes = index.slot_scores(weights)
        confidence = index.normalize_per_fact(votes)
        return EngineState(
            slot_confidence=confidence,
            source_trust=weights,
            iterations=iterations,
            slot_ranking=votes,
        )
