"""Common interface and result type for truth discovery algorithms.

Every algorithm consumes a :class:`~repro.data.dataset.Dataset` (or a
pre-compiled :class:`~repro.data.index.DatasetIndex`) and produces a
:class:`TruthDiscoveryResult`: one predicted value per fact, the final
per-source trust estimates, plus bookkeeping (iterations, wall time) that
the paper reports in its tables.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from repro.data.dataset import Dataset
from repro.data.index import DatasetIndex
from repro.data.types import Fact, SourceId, Value


@dataclass(frozen=True)
class TruthDiscoveryResult:
    """The output of one truth discovery run.

    Attributes
    ----------
    algorithm:
        Display name of the algorithm that produced the result.
    predictions:
        Predicted true value for every fact that received at least one
        claim.
    confidence:
        Confidence score of the predicted value per fact, normalised to
        the fact's candidate set where the algorithm defines one.
    source_trust:
        Final estimated reliability of every source (algorithm-specific
        scale; larger is more trusted).
    iterations:
        Number of fixed-point iterations executed (1 for single-pass
        algorithms such as majority voting).
    elapsed_seconds:
        Wall-clock time of the run.
    """

    algorithm: str
    predictions: Mapping[Fact, Value]
    confidence: Mapping[Fact, float]
    source_trust: Mapping[SourceId, float]
    iterations: int
    elapsed_seconds: float
    extras: Mapping[str, object] = field(default_factory=dict)

    def predicted_value(self, fact: Fact) -> Value | None:
        """Predicted value of ``fact``, or None if no source covered it."""
        return self.predictions.get(fact)

    def to_dict(self) -> dict:
        """``tdac-result/v1`` rendering (no partition provenance).

        The same versioned schema is emitted by
        :meth:`repro.core.tdac.TDACResult.to_dict` and the serving
        layer's snapshots, so every engine serializes identically.
        """
        from repro.core.schema import result_to_dict

        return result_to_dict(self)

    def __len__(self) -> int:
        return len(self.predictions)


@dataclass(frozen=True, slots=True)
class EngineState:
    """Internal fixed-point state handed back by algorithm cores.

    ``slot_ranking`` optionally carries an unsquashed per-slot score used
    for winner selection when ``slot_confidence`` saturates (e.g.
    TruthFinder's logistic flattens to 1.0 for every slot once hundreds
    of sources vote); it must be monotone in the algorithm's preference.
    """

    slot_confidence: np.ndarray
    source_trust: np.ndarray
    iterations: int
    slot_ranking: np.ndarray | None = None


class TruthDiscoveryAlgorithm(ABC):
    """Base class for every truth discovery algorithm in the library.

    Subclasses implement :meth:`_solve` over a compiled
    :class:`DatasetIndex`; the base class handles timing, winner
    extraction and result materialisation so all algorithms report
    uniformly.
    """

    #: Display name; subclasses override.
    name: str = "abstract"

    #: Value families (:data:`repro.data.types.ATTRIBUTE_TYPES`) this
    #: algorithm can resolve.  The slot machinery votes among claimed
    #: values by equality, which is sound for categorical truths and for
    #: multi-valued truths represented as whole tuples (full-set voting),
    #: but not for continuous data, where the right estimate is an
    #: aggregate no source may have claimed.  Continuous estimators
    #: declare ``{"continuous"}``; routers declare all three.  The
    #: runner and leaderboard check this against the dataset's attribute
    #: types and skip-with-reason instead of producing garbage.
    value_types: frozenset = frozenset({"categorical", "multi"})

    #: Whether :meth:`discover` accepts a pre-compiled
    #: :class:`DatasetIndex` (all index-solving algorithms do).  Meta
    #: algorithms that override :meth:`discover` to run a full pipeline
    #: over the raw Dataset (e.g. TDAC itself) set this False so block
    #: runners hand them datasets instead of sliced index views.
    supports_index: bool = True

    def discover(self, data: Dataset | DatasetIndex) -> TruthDiscoveryResult:
        """Run the algorithm and return its result.

        Accepts either a dataset (compiled on the fly) or an index that
        the caller compiled once and reuses across algorithms.
        """
        index = data if isinstance(data, DatasetIndex) else DatasetIndex(data)
        start = time.perf_counter()
        state = self._solve(index)
        elapsed = time.perf_counter() - start
        ranking = (
            state.slot_ranking
            if state.slot_ranking is not None
            else state.slot_confidence
        )
        winners = index.winning_slots(ranking)
        predictions = index.predictions_from_slots(winners)
        confidence = {
            fact: float(state.slot_confidence[winners[f_id]])
            for f_id, fact in enumerate(index.facts)
        }
        trust = {
            source: float(state.source_trust[s_id])
            for s_id, source in enumerate(index.dataset.sources)
        }
        return TruthDiscoveryResult(
            algorithm=self.name,
            predictions=predictions,
            confidence=confidence,
            source_trust=trust,
            iterations=state.iterations,
            elapsed_seconds=elapsed,
        )

    @abstractmethod
    def _solve(self, index: DatasetIndex) -> EngineState:
        """Compute per-slot confidences and per-source trust."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
