"""The silhouette index (Rousseeuw 1987), used by TD-AC to pick ``k``.

For a point ``x`` in cluster ``g``:

* cohesion ``alpha(x)`` — mean distance from ``x`` to the other members
  of ``g`` (paper's Eq. 5);
* separation ``beta(x)`` — smallest mean distance from ``x`` to the
  members of any other cluster;
* silhouette ``CS(x) = (beta - alpha) / max(alpha, beta)``.

The paper aggregates per cluster (Eq. 6) and then averages the cluster
coefficients (Eq. 7) — note this *macro* average weights small clusters
as much as large ones, unlike scikit-learn's point-wise mean; both are
offered, and TD-AC uses the paper's macro variant.

Singleton clusters have an undefined ``alpha``; following Rousseeuw's
convention their silhouette is 0.
"""

from __future__ import annotations

import numpy as np


def silhouette_samples(
    distances: np.ndarray, labels: np.ndarray
) -> np.ndarray:
    """Per-point silhouette coefficients from a pairwise distance matrix.

    Vectorised: the (n, k) matrix of summed distances to every cluster is
    one matrix product against the one-hot membership matrix, from which
    cohesion (own cluster, self excluded) and separation (best foreign
    cluster) follow without Python loops.
    """
    distances = np.asarray(distances, dtype=float)
    labels = np.asarray(labels)
    n = len(labels)
    if distances.shape != (n, n):
        raise ValueError("distance matrix shape does not match labels")
    unique, dense = np.unique(labels, return_inverse=True)
    k = len(unique)
    if k < 2:
        raise ValueError("silhouette requires at least 2 clusters")
    membership = np.zeros((n, k))
    membership[np.arange(n), dense] = 1.0
    counts = membership.sum(axis=0)
    sums = distances @ membership  # (n, k): total distance to each cluster

    own_counts = counts[dense]
    own_sums = sums[np.arange(n), dense]
    with np.errstate(invalid="ignore", divide="ignore"):
        alpha = np.where(own_counts > 1, own_sums / np.maximum(own_counts - 1, 1), 0.0)
    foreign_means = sums / counts[None, :]
    foreign_means[np.arange(n), dense] = np.inf
    beta = foreign_means.min(axis=1)

    denominator = np.maximum(alpha, beta)
    coefficients = np.where(
        (own_counts > 1) & (denominator > 0), (beta - alpha) / np.where(denominator > 0, denominator, 1.0), 0.0
    )
    return coefficients


def silhouette_score(
    distances: np.ndarray, labels: np.ndarray, average: str = "macro"
) -> float:
    """Aggregate silhouette of a clustering.

    ``average="macro"`` follows the paper's Eqs. 6–7 (mean of per-cluster
    means); ``average="micro"`` is the plain mean over points
    (scikit-learn's convention).
    """
    samples = silhouette_samples(distances, labels)
    labels = np.asarray(labels)
    if average == "micro":
        return float(samples.mean())
    if average == "macro":
        cluster_means = [
            samples[labels == cluster].mean() for cluster in np.unique(labels)
        ]
        return float(np.mean(cluster_means))
    raise ValueError(f"unknown average mode {average!r}")
