"""The silhouette index (Rousseeuw 1987), used by TD-AC to pick ``k``.

For a point ``x`` in cluster ``g``:

* cohesion ``alpha(x)`` — mean distance from ``x`` to the other members
  of ``g`` (paper's Eq. 5);
* separation ``beta(x)`` — smallest mean distance from ``x`` to the
  members of any other cluster;
* silhouette ``CS(x) = (beta - alpha) / max(alpha, beta)``.

The paper aggregates per cluster (Eq. 6) and then averages the cluster
coefficients (Eq. 7) — note this *macro* average weights small clusters
as much as large ones, unlike scikit-learn's point-wise mean; both are
offered, and TD-AC uses the paper's macro variant.

Singleton clusters have an undefined ``alpha``; following Rousseeuw's
convention their silhouette is 0.

Everything downstream of the ``(n, k)`` matrix of summed distances to
each cluster is cheap; that aggregation is the silhouette's only
``O(n^2)`` reduction.  A k-sweep evaluating many candidate clusterings
over the **same** distance matrix can therefore precompute the
label-independent row sums once (:func:`total_distance_row_sums`) and
build each clustering's aggregate with :func:`cluster_distance_sums`,
which touches every distance column once instead of running a
``k``-wide matrix product per candidate.  The fast path sums plain
column slices, so callers should only pass ``row_sums`` when the
distances are integer-valued (e.g. Hamming counts), where every
summation order is exact; :func:`silhouette_samples` with no
``cluster_sums`` keeps the historical one-hot matrix product.
"""

from __future__ import annotations

import numpy as np


def total_distance_row_sums(distances: np.ndarray) -> np.ndarray:
    """Per-point sum of distances to **all** points.

    Label-independent, so a k-sweep computes it once and reuses it for
    every candidate clustering via :func:`cluster_distance_sums`.
    """
    distances = np.asarray(distances, dtype=float)
    return distances.sum(axis=1)


def cluster_distance_sums(
    distances: np.ndarray,
    labels: np.ndarray,
    row_sums: np.ndarray | None = None,
) -> np.ndarray:
    """``(n, k)`` summed distance from every point to every cluster.

    One pass over the distance matrix: columns are grouped by cluster
    and summed slice by slice.  With ``row_sums`` (from
    :func:`total_distance_row_sums`) the largest cluster's column is
    derived by subtraction instead of summed, skipping the widest slice
    entirely.  Exact (bit-identical to the one-hot matrix product) when
    the distances are integer-valued, as Hamming distances are.
    """
    distances = np.asarray(distances, dtype=float)
    labels = np.asarray(labels)
    n = len(labels)
    if distances.shape != (n, n):
        raise ValueError("distance matrix shape does not match labels")
    unique, dense = np.unique(labels, return_inverse=True)
    k = len(unique)
    order = np.argsort(dense, kind="stable")
    counts = np.bincount(dense, minlength=k)
    starts = np.concatenate(([0], np.cumsum(counts)))
    sums = np.empty((n, k), dtype=float)
    skip = int(np.argmax(counts)) if row_sums is not None else -1
    for cluster in range(k):
        if cluster == skip:
            continue
        members = order[starts[cluster] : starts[cluster + 1]]
        sums[:, cluster] = distances[:, members].sum(axis=1)
    if skip >= 0:
        others = [c for c in range(k) if c != skip]
        sums[:, skip] = row_sums - sums[:, others].sum(axis=1)
    return sums


def silhouette_samples(
    distances: np.ndarray,
    labels: np.ndarray,
    cluster_sums: np.ndarray | None = None,
) -> np.ndarray:
    """Per-point silhouette coefficients from a pairwise distance matrix.

    Vectorised: the (n, k) matrix of summed distances to every cluster is
    one matrix product against the one-hot membership matrix, from which
    cohesion (own cluster, self excluded) and separation (best foreign
    cluster) follow without Python loops.  ``cluster_sums`` may supply
    that aggregate precomputed (see :func:`cluster_distance_sums`), which
    is how the k-sweep avoids re-reducing the distance matrix per
    candidate ``k``.
    """
    distances = np.asarray(distances, dtype=float)
    labels = np.asarray(labels)
    n = len(labels)
    if distances.shape != (n, n):
        raise ValueError("distance matrix shape does not match labels")
    unique, dense = np.unique(labels, return_inverse=True)
    k = len(unique)
    if k < 2:
        raise ValueError("silhouette requires at least 2 clusters")
    counts = np.bincount(dense, minlength=k).astype(float)
    if cluster_sums is None:
        membership = np.zeros((n, k))
        membership[np.arange(n), dense] = 1.0
        sums = distances @ membership  # (n, k): total distance to each cluster
    else:
        sums = np.asarray(cluster_sums, dtype=float)
        if sums.shape != (n, k):
            raise ValueError("cluster_sums shape does not match labels")

    own_counts = counts[dense]
    own_sums = sums[np.arange(n), dense]
    with np.errstate(invalid="ignore", divide="ignore"):
        alpha = np.where(own_counts > 1, own_sums / np.maximum(own_counts - 1, 1), 0.0)
    foreign_means = sums / counts[None, :]
    foreign_means[np.arange(n), dense] = np.inf
    beta = foreign_means.min(axis=1)

    denominator = np.maximum(alpha, beta)
    coefficients = np.where(
        (own_counts > 1) & (denominator > 0), (beta - alpha) / np.where(denominator > 0, denominator, 1.0), 0.0
    )
    return coefficients


def silhouette_score(
    distances: np.ndarray,
    labels: np.ndarray,
    average: str = "macro",
    cluster_sums: np.ndarray | None = None,
) -> float:
    """Aggregate silhouette of a clustering.

    ``average="macro"`` follows the paper's Eqs. 6–7 (mean of per-cluster
    means); ``average="micro"`` is the plain mean over points
    (scikit-learn's convention).  ``cluster_sums`` is forwarded to
    :func:`silhouette_samples`.
    """
    samples = silhouette_samples(distances, labels, cluster_sums=cluster_sums)
    labels = np.asarray(labels)
    if average == "micro":
        return float(samples.mean())
    if average == "macro":
        cluster_means = [
            samples[labels == cluster].mean() for cluster in np.unique(labels)
        ]
        return float(np.mean(cluster_means))
    raise ValueError(f"unknown average mode {average!r}")
