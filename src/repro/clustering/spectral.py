"""Spectral clustering over a similarity graph (TD-AC ablation option).

Classic normalised spectral clustering (Ng, Jordan & Weiss 2002) built
on numpy's symmetric eigensolver: turn pairwise distances into a
Gaussian affinity, form the symmetric normalised Laplacian, embed each
point into the space of the ``k`` smallest eigenvectors, and k-means the
rows of the embedding.  Offered as a third clustering family for the
A-2 ablation: unlike k-means it can recover non-convex attribute groups,
at the cost of an O(n^3) eigendecomposition (n = #attributes, so cheap
here).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.clustering.kmeans import KMeans


@dataclass(frozen=True)
class SpectralResult:
    """Outcome of one spectral clustering fit."""

    labels: np.ndarray
    n_clusters: int
    embedding: np.ndarray

    def clusters(self) -> list[list[int]]:
        """Row indices grouped by cluster id."""
        groups: list[list[int]] = [[] for _ in range(self.n_clusters)]
        for row, label in enumerate(self.labels):
            groups[int(label)].append(row)
        return groups


class Spectral:
    """Normalised spectral clustering from a pairwise distance matrix.

    Parameters
    ----------
    n_clusters:
        Number of clusters (and of Laplacian eigenvectors used).
    bandwidth:
        Gaussian affinity bandwidth as a multiple of the median pairwise
        distance; ``None`` uses the median itself.
    seed:
        Seed of the embedded k-means step.
    """

    def __init__(
        self,
        n_clusters: int,
        bandwidth: float | None = None,
        seed: int = 0,
    ) -> None:
        if n_clusters < 1:
            raise ValueError("n_clusters must be at least 1")
        if bandwidth is not None and bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        self.n_clusters = n_clusters
        self.bandwidth = bandwidth
        self.seed = seed

    def fit_distances(self, distances: np.ndarray) -> SpectralResult:
        """Cluster from a symmetric pairwise distance matrix."""
        distances = np.asarray(distances, dtype=float)
        n = len(distances)
        if distances.shape != (n, n):
            raise ValueError("expected a square distance matrix")
        if self.n_clusters > n:
            raise ValueError(
                f"cannot form {self.n_clusters} clusters from {n} points"
            )
        off_diagonal = distances[~np.eye(n, dtype=bool)]
        median = float(np.median(off_diagonal)) if len(off_diagonal) else 1.0
        sigma = median * (self.bandwidth or 1.0)
        sigma = max(sigma, 1e-12)
        affinity = np.exp(-(distances**2) / (2.0 * sigma**2))
        np.fill_diagonal(affinity, 0.0)

        degree = affinity.sum(axis=1)
        with np.errstate(divide="ignore"):
            inv_sqrt = np.where(degree > 0, 1.0 / np.sqrt(np.maximum(degree, 1e-12)), 0.0)
        laplacian = np.eye(n) - inv_sqrt[:, None] * affinity * inv_sqrt[None, :]
        eigenvalues, eigenvectors = np.linalg.eigh(laplacian)
        embedding = eigenvectors[:, np.argsort(eigenvalues)[: self.n_clusters]]
        norms = np.linalg.norm(embedding, axis=1, keepdims=True)
        embedding = embedding / np.maximum(norms, 1e-12)

        fit = KMeans(n_clusters=self.n_clusters, seed=self.seed).fit(embedding)
        return SpectralResult(
            labels=fit.labels,
            n_clusters=len(np.unique(fit.labels)),
            embedding=embedding,
        )
