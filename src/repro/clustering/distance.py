"""Distance metrics and pairwise matrices for attribute clustering.

The paper measures attribute similarity with the Hamming distance over
binary truth vectors (its Equation 2).  For 0/1 vectors Hamming equals
squared Euclidean distance, which is why running standard k-means on the
binary matrix minimises exactly the paper's clustering objective.

``masked_hamming`` is the missing-data-aware variant motivated by the
paper's first research perspective: ranks where the source did not cover
the (object, attribute) cell carry no information, so the distance is
computed only over mutually observed ranks and rescaled to the full
vector length.
"""

from __future__ import annotations

import numpy as np


def hamming(a: np.ndarray, b: np.ndarray) -> float:
    """Number of positions where two equal-length vectors differ.

    For binary vectors this is ``sum |a_i - b_i|``, the paper's Eq. 2.
    """
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if a.shape != b.shape:
        raise ValueError("vectors must have the same shape")
    return float(np.sum(a != b))


def euclidean(a: np.ndarray, b: np.ndarray) -> float:
    """Plain Euclidean distance."""
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if a.shape != b.shape:
        raise ValueError("vectors must have the same shape")
    return float(np.linalg.norm(a - b))


def masked_hamming(
    a: np.ndarray, b: np.ndarray, mask_a: np.ndarray, mask_b: np.ndarray
) -> float:
    """Hamming distance over mutually observed positions, rescaled.

    ``mask_*`` are boolean vectors marking observed ranks.  The distance
    counts disagreements on positions both vectors observe and rescales
    by ``len / observed`` so sparsely-overlapping pairs are not
    artificially close.  Pairs with no overlap get the maximal distance.
    """
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    mask_a = np.asarray(mask_a, dtype=bool)
    mask_b = np.asarray(mask_b, dtype=bool)
    if not (a.shape == b.shape == mask_a.shape == mask_b.shape):
        raise ValueError("vectors and masks must have the same shape")
    mask = mask_a & mask_b
    observed = int(mask.sum())
    if observed == 0:
        return float(len(a))
    raw = float(np.sum(a[mask] != b[mask]))
    return raw * len(a) / observed


# Memory budget for the non-binary pairwise fallback: the comparison is
# evaluated in row chunks so the intermediate boolean block stays within
# roughly this many elements instead of materialising an (n, n, d) cube.
_CHUNK_ELEMENT_BUDGET = 4_000_000


def pairwise_hamming(matrix: np.ndarray) -> np.ndarray:
    """Pairwise Hamming distance matrix of the rows of ``matrix``.

    Vectorised for binary inputs: ``d(x, y) = sum x + sum y - 2 x.y``.
    Non-binary inputs fall back to elementwise comparison, evaluated in
    row chunks so memory stays bounded by ``_CHUNK_ELEMENT_BUDGET``
    instead of growing as ``n^2 * d``.
    """
    matrix = np.asarray(matrix, dtype=float)
    if matrix.ndim != 2:
        raise ValueError("expected a 2-D matrix of row vectors")
    unique = np.unique(matrix)
    if np.isin(unique, (0.0, 1.0)).all():
        gram = matrix @ matrix.T
        row_sums = matrix.sum(axis=1)
        distances = row_sums[:, None] + row_sums[None, :] - 2.0 * gram
        return np.maximum(distances, 0.0)
    n, d = matrix.shape
    distances = np.empty((n, n), dtype=float)
    chunk = max(1, _CHUNK_ELEMENT_BUDGET // max(n * d, 1))
    for start in range(0, n, chunk):
        stop = min(start + chunk, n)
        block = matrix[start:stop, None, :] != matrix[None, :, :]
        distances[start:stop] = block.sum(axis=2)
    return distances


def _rescale_overlap(raw: np.ndarray, observed: np.ndarray, length: int) -> np.ndarray:
    """Rescale overlap-restricted disagreement counts to full length.

    The zero-overlap distance is defined **explicitly**: a pair with no
    mutually observed position carries no agreement evidence and gets
    the maximal distance ``length`` (matching the scalar
    :func:`masked_hamming`).  The division is evaluated only where
    ``observed > 0`` — never on the zero-overlap cells — so no NaN or
    inf can leak into the matrix and silently poison the silhouette
    scores or the integral-distance fast path downstream.
    """
    scaled = np.full_like(raw, float(length))
    np.divide(raw * length, observed, out=scaled, where=observed > 0)
    return scaled


def pairwise_masked_hamming(matrix: np.ndarray, mask: np.ndarray) -> np.ndarray:
    """Pairwise :func:`masked_hamming` matrix of the rows of ``matrix``.

    Zero-overlap pairs get the maximal distance ``length`` (see
    :func:`_rescale_overlap`); the result is always finite.
    """
    matrix = np.asarray(matrix, dtype=float)
    mask = np.asarray(mask, dtype=bool)
    if matrix.shape != mask.shape:
        raise ValueError("matrix and mask must have the same shape")
    n, length = matrix.shape
    observed = mask.astype(float) @ mask.astype(float).T
    masked = np.where(mask, matrix, 0.0)
    # Disagreements over mutually observed binary positions:
    # |x - y| summed = sum x + sum y - 2 x.y restricted to the overlap.
    gram = masked @ masked.T
    ones = mask.astype(float)
    sums_in_overlap_a = masked @ ones.T  # sum of a over positions b observes
    sums_in_overlap_b = ones @ masked.T
    raw = sums_in_overlap_a + sums_in_overlap_b - 2.0 * gram
    scaled = _rescale_overlap(raw, observed, length)
    np.fill_diagonal(scaled, 0.0)
    return np.maximum(scaled, 0.0)


def _dense_gram(left, right_t, chunk_elements: int | None = None) -> np.ndarray:
    """Dense ``left @ right_t`` of two sparse operands, built in row chunks.

    The naive spelling ``(left @ right_t).todense()`` materialises the
    whole product twice — once as an intermediate sparse matrix (whose
    index overhead can exceed the dense array for near-dense Grams) and
    once as an ``np.matrix`` that is then copied again by ``asarray``.
    Here the dense output is allocated exactly once and filled one row
    chunk at a time, so the transient footprint beyond the result is one
    chunk's sparse product rather than the full Gram.

    ``chunk_elements`` caps the per-chunk output cells (default
    ``_CHUNK_ELEMENT_BUDGET``); it is exposed so tests can force
    multi-chunk execution on small matrices.  Chunking only partitions
    output rows — each cell is still a single sparse dot product — so
    the result is bitwise independent of the chunk size.
    """
    budget = _CHUNK_ELEMENT_BUDGET if chunk_elements is None else chunk_elements
    n = left.shape[0]
    m = right_t.shape[1]
    out = np.empty((n, m), dtype=np.float64)
    chunk = max(1, budget // max(m, 1))
    for start in range(0, n, chunk):
        stop = min(start + chunk, n)
        block = left[start:stop] @ right_t
        out[start:stop] = block.toarray()
    return out


def pairwise_hamming_sparse(matrix, chunk_elements: int | None = None) -> np.ndarray:
    """:func:`pairwise_hamming` on a scipy CSR/CSC binary matrix.

    Same Gram expansion ``sum x + sum y - 2 x.y``, with the product taken
    directly on the sparse operand — ``O(nnz)`` work instead of
    ``O(n * d)``.  All quantities are counts of 0/1 agreements, which
    float64 represents exactly, so the result is bit-identical to the
    dense path whatever the summation order.  The Gram is densified in
    row chunks (see :func:`_dense_gram`), so peak memory stays at the
    ``n x n`` result plus one chunk instead of several full copies.
    """
    from scipy import sparse as sp

    if not sp.issparse(matrix):
        raise TypeError("expected a scipy sparse matrix")
    csr = matrix.tocsr().astype(np.float64)
    csr_t = csr.T.tocsc()
    gram = _dense_gram(csr, csr_t, chunk_elements)
    row_sums = np.asarray(csr.sum(axis=1)).ravel().astype(float)
    gram *= -2.0
    gram += row_sums[:, None]
    gram += row_sums[None, :]
    return np.maximum(gram, 0.0, out=gram)


def pairwise_masked_hamming_sparse(
    matrix, mask, chunk_elements: int | None = None
) -> np.ndarray:
    """:func:`pairwise_masked_hamming` on scipy sparse binary operands.

    ``matrix`` must be zero wherever ``mask`` is zero (the truth-vector
    invariant: a rank can only be confirmed where it is observed), which
    lets the overlap-restricted sums come straight from sparse products.
    Counts are integers, so the result matches the dense path exactly.
    Each of the four Gram-style products is densified in row chunks
    through :func:`_dense_gram` and the expansion is folded in place, so
    at most two ``n x n`` float arrays are live at any point.
    """
    from scipy import sparse as sp

    if not (sp.issparse(matrix) and sp.issparse(mask)):
        raise TypeError("expected scipy sparse matrices")
    if matrix.shape != mask.shape:
        raise ValueError("matrix and mask must have the same shape")
    values = matrix.tocsr().astype(np.float64)
    ones = mask.tocsr().astype(np.float64)
    n, length = values.shape
    values_t = values.T.tocsc()
    ones_t = ones.T.tocsc()
    # raw = (values @ ones.T) + (ones @ values.T) - 2 * (values @ values.T),
    # accumulated into one buffer chunk by chunk.
    overlap = _dense_gram(values, ones_t, chunk_elements)
    raw = overlap + overlap.T  # (values @ ones.T) + (ones @ values.T)
    del overlap
    gram = _dense_gram(values, values_t, chunk_elements)
    raw -= 2.0 * gram
    del gram
    observed = _dense_gram(ones, ones_t, chunk_elements)
    scaled = _rescale_overlap(raw, observed, length)
    np.fill_diagonal(scaled, 0.0)
    return np.maximum(scaled, 0.0, out=scaled)


def pairwise_euclidean(matrix: np.ndarray) -> np.ndarray:
    """Pairwise Euclidean distance matrix of the rows of ``matrix``."""
    matrix = np.asarray(matrix, dtype=float)
    if matrix.ndim != 2:
        raise ValueError("expected a 2-D matrix of row vectors")
    squared = np.sum(matrix**2, axis=1)
    gram = matrix @ matrix.T
    distances = squared[:, None] + squared[None, :] - 2.0 * gram
    return np.sqrt(np.maximum(distances, 0.0))


PAIRWISE_METRICS = {
    "hamming": pairwise_hamming,
    "euclidean": pairwise_euclidean,
}


def pairwise(matrix: np.ndarray, metric: str = "hamming") -> np.ndarray:
    """Pairwise distance matrix under a named metric."""
    try:
        fn = PAIRWISE_METRICS[metric]
    except KeyError:
        known = ", ".join(sorted(PAIRWISE_METRICS))
        raise ValueError(f"unknown metric {metric!r}; known: {known}") from None
    return fn(matrix)
