"""Lloyd's k-means with k-means++ seeding, implemented from scratch.

scikit-learn is not a dependency of this reproduction, so the clustering
substrate the paper relies on is built here: standard Lloyd iterations
minimising the within-cluster sum of squared distances (the paper's
Equation 3), k-means++ or random initialisation, several restarts keeping
the best inertia, and deterministic behaviour through an explicit random
generator.

The module exposes its internals at three altitudes so the k-sweep of
Algorithm 1 can be scheduled by :mod:`repro.clustering.sweep`:

* :class:`KMeans` — the classic fit-and-restart front end;
* :func:`initial_centroid_sequence` — draw the restart seeds of one fit
  up front, consuming the generator in exactly the order ``fit`` would;
* :func:`lloyd` — the deterministic iteration from a given seeding,
  which is the unit of work a parallel sweep fans out.

Because ``lloyd`` draws no randomness, splitting a fit into "draw all
seeds, then iterate each" is bit-identical to the sequential restart
loop, whatever executor runs the iterations.

For the binary attribute truth vectors the squared Euclidean objective
coincides with the paper's Hamming-distance objective (Eq. 2), see
:mod:`repro.clustering.distance`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

# Below this many rows a Python loop over rows beats ``np.ufunc.at``'s
# per-element dispatch by an order of magnitude; both accumulate in row
# order so the results are bit-identical.
_SCATTER_LOOP_MAX_ROWS = 512


@dataclass(frozen=True)
class KMeansResult:
    """Outcome of one k-means fit.

    Attributes
    ----------
    labels:
        Cluster id of every input row, in ``range(k)`` with no gaps.
    centroids:
        ``(k, n_features)`` array of cluster centres.
    inertia:
        Within-cluster sum of squared Euclidean distances (Eq. 3).
    n_iterations:
        Lloyd iterations of the best restart.
    """

    labels: np.ndarray
    centroids: np.ndarray
    inertia: float
    n_iterations: int

    @property
    def k(self) -> int:
        """Number of clusters."""
        return len(self.centroids)

    def clusters(self) -> list[list[int]]:
        """Row indices grouped by cluster id."""
        groups: list[list[int]] = [[] for _ in range(self.k)]
        for row, label in enumerate(self.labels):
            groups[int(label)].append(row)
        return groups


class KMeans:
    """Lloyd's algorithm with k-means++ seeding and restarts.

    Parameters
    ----------
    n_clusters:
        The ``k`` to fit.
    n_init:
        Number of independent restarts; the fit with the lowest inertia
        wins.
    max_iterations:
        Cap on Lloyd iterations per restart.
    tolerance:
        Stop when no centroid moves by more than this (squared norm).
    init:
        ``"k-means++"`` (default) or ``"random"`` seeding.
    seed:
        Integer seed or :class:`numpy.random.Generator` for determinism.
    """

    def __init__(
        self,
        n_clusters: int,
        n_init: int = 10,
        max_iterations: int = 300,
        tolerance: float = 1e-6,
        init: str = "k-means++",
        seed: int | np.random.Generator | None = 0,
    ) -> None:
        if n_clusters < 1:
            raise ValueError("n_clusters must be at least 1")
        if n_init < 1:
            raise ValueError("n_init must be at least 1")
        if init not in ("k-means++", "random"):
            raise ValueError(f"unknown init strategy {init!r}")
        self.n_clusters = n_clusters
        self.n_init = n_init
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        self.init = init
        self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------

    def fit(self, data: np.ndarray) -> KMeansResult:
        """Cluster the rows of ``data`` into ``n_clusters`` groups."""
        data = np.asarray(data, dtype=float)
        if data.ndim != 2:
            raise ValueError("expected a 2-D matrix of row vectors")
        n_rows = len(data)
        if self.n_clusters > n_rows:
            raise ValueError(
                f"cannot fit {self.n_clusters} clusters to {n_rows} rows"
            )
        seedings = initial_centroid_sequence(
            data, self.n_clusters, self.n_init, self._rng, init=self.init
        )
        data_norms = np.einsum("ij,ij->i", data, data)
        best: KMeansResult | None = None
        for centroids in seedings:
            result = lloyd(
                data,
                centroids,
                max_iterations=self.max_iterations,
                tolerance=self.tolerance,
                data_norms=data_norms,
            )
            if best is None or result.inertia < best.inertia:
                best = result
        assert best is not None
        return best


# ----------------------------------------------------------------------
# Seeding
# ----------------------------------------------------------------------


def initial_centroid_sequence(
    data: np.ndarray,
    n_clusters: int,
    n_init: int,
    rng: np.random.Generator,
    init: str = "k-means++",
) -> list[np.ndarray]:
    """The restart seedings of one fit, drawn up front.

    Consumes ``rng`` in exactly the order :meth:`KMeans.fit` would (one
    seeding per restart, back to back), so running the returned seedings
    through :func:`lloyd` — in any schedule — reproduces the sequential
    fit bit for bit.
    """
    return [
        initial_centroids(data, n_clusters, rng, init=init)
        for _ in range(n_init)
    ]


def initial_centroids(
    data: np.ndarray,
    n_clusters: int,
    rng: np.random.Generator,
    init: str = "k-means++",
) -> np.ndarray:
    """One seeding: k-means++ spreading or uniform row sampling."""
    n_rows = len(data)
    if init == "random":
        chosen = rng.choice(n_rows, size=n_clusters, replace=False)
        return data[chosen].copy()
    if init != "k-means++":
        raise ValueError(f"unknown init strategy {init!r}")
    # k-means++: spread seeds proportionally to squared distance from
    # the nearest already-chosen seed.
    first = int(rng.integers(n_rows))
    centroids = [data[first]]
    closest = np.sum((data - centroids[0]) ** 2, axis=1)
    for _ in range(1, n_clusters):
        total = float(closest.sum())
        if total <= 0.0:
            # All remaining points coincide with a seed; pick any
            # distinct row to keep the requested k.
            remaining = np.setdiff1d(
                np.arange(n_rows), [int(rng.integers(n_rows))]
            )
            pick = int(rng.choice(remaining))
        else:
            probabilities = closest / total
            pick = int(rng.choice(n_rows, p=probabilities))
        centroids.append(data[pick])
        closest = np.minimum(
            closest, np.sum((data - centroids[-1]) ** 2, axis=1)
        )
    return np.asarray(centroids)


# ----------------------------------------------------------------------
# Iteration
# ----------------------------------------------------------------------


def lloyd(
    data: np.ndarray,
    seeding: np.ndarray,
    max_iterations: int = 300,
    tolerance: float = 1e-6,
    data_norms: np.ndarray | None = None,
) -> KMeansResult:
    """Lloyd iterations from a given seeding; draws no randomness.

    ``data_norms`` may carry the precomputed per-row squared norms
    (``einsum("ij,ij->i", data, data)``); they depend only on ``data``,
    so one computation serves every restart and every ``k`` of a sweep.
    """
    data = np.asarray(data, dtype=float)
    if data_norms is None:
        data_norms = np.einsum("ij,ij->i", data, data)
    centroids = np.asarray(seeding, dtype=float)
    n_clusters = len(centroids)
    labels = np.zeros(len(data), dtype=np.int64)
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        distances = _squared_distances(data, centroids, data_norms)
        labels = np.argmin(distances, axis=1)
        new_centroids = _update_centroids(
            data, labels, centroids, n_clusters, data_norms
        )
        shift = float(np.max(np.sum((new_centroids - centroids) ** 2, axis=1)))
        centroids = new_centroids
        if shift <= tolerance:
            break
    distances = _squared_distances(data, centroids, data_norms)
    labels = np.argmin(distances, axis=1)
    labels, centroids = _compact_labels(labels, centroids)
    inertia = float(
        np.sum(np.min(_squared_distances(data, centroids, data_norms), axis=1))
    )
    return KMeansResult(
        labels=labels,
        centroids=centroids,
        inertia=inertia,
        n_iterations=iterations,
    )


def _update_centroids(
    data: np.ndarray,
    labels: np.ndarray,
    previous: np.ndarray,
    n_clusters: int,
    data_norms: np.ndarray | None = None,
) -> np.ndarray:
    sums = np.zeros_like(previous)
    if len(data) <= _SCATTER_LOOP_MAX_ROWS:
        # Row-order accumulation, same addition order as np.add.at.
        for row, label in zip(data, labels):
            sums[label] += row
    else:
        np.add.at(sums, labels, data)
    counts = np.bincount(labels, minlength=n_clusters).astype(float)
    occupied = counts > 0
    centroids = previous.copy()
    centroids[occupied] = sums[occupied] / counts[occupied, None]
    empty = np.flatnonzero(~occupied)
    if len(empty):
        # Empty-cluster repair: reseed at the points farthest from
        # their assigned centroid, a standard Lloyd fix-up.
        distances = _squared_distances(data, previous, data_norms)
        assigned = np.min(distances, axis=1)
        farthest = np.argsort(-assigned)
        for slot, cluster in enumerate(empty):
            centroids[cluster] = data[farthest[slot % len(data)]]
    return centroids


def _squared_distances(
    data: np.ndarray,
    centroids: np.ndarray,
    data_norms: np.ndarray | None = None,
) -> np.ndarray:
    """``(n_rows, k)`` squared Euclidean distances to every centroid.

    Uses the Gram expansion ``|x|^2 + |c|^2 - 2 x.c`` so the heavy part
    is one BLAS matrix product instead of a broadcast (n, k, d) cube.
    ``data_norms`` optionally carries the row norms, which are constant
    across Lloyd iterations and restarts.
    """
    if data_norms is None:
        data_norms = np.einsum("ij,ij->i", data, data)
    centroid_norms = np.einsum("ij,ij->i", centroids, centroids)
    cross = data @ centroids.T
    distances = data_norms[:, None] + centroid_norms[None, :] - 2.0 * cross
    return np.maximum(distances, 0.0)


def _compact_labels(
    labels: np.ndarray, centroids: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Renumber labels to remove empty clusters, keeping first-seen order."""
    seen: dict[int, int] = {}
    compacted = np.empty_like(labels)
    for i, label in enumerate(labels):
        new = seen.setdefault(int(label), len(seen))
        compacted[i] = new
    kept = [old for old in seen]
    return compacted, centroids[kept]


def inertia_of(data: np.ndarray, labels: np.ndarray) -> float:
    """Within-cluster sum of squares of an arbitrary labelling."""
    data = np.asarray(data, dtype=float)
    labels = np.asarray(labels)
    total = 0.0
    for cluster in np.unique(labels):
        members = data[labels == cluster]
        centroid = members.mean(axis=0)
        total += float(np.sum((members - centroid) ** 2))
    return total
