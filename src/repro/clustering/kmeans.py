"""Lloyd's k-means with k-means++ seeding, implemented from scratch.

scikit-learn is not a dependency of this reproduction, so the clustering
substrate the paper relies on is built here: standard Lloyd iterations
minimising the within-cluster sum of squared distances (the paper's
Equation 3), k-means++ or random initialisation, several restarts keeping
the best inertia, and deterministic behaviour through an explicit random
generator.

For the binary attribute truth vectors the squared Euclidean objective
coincides with the paper's Hamming-distance objective (Eq. 2), see
:mod:`repro.clustering.distance`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class KMeansResult:
    """Outcome of one k-means fit.

    Attributes
    ----------
    labels:
        Cluster id of every input row, in ``range(k)`` with no gaps.
    centroids:
        ``(k, n_features)`` array of cluster centres.
    inertia:
        Within-cluster sum of squared Euclidean distances (Eq. 3).
    n_iterations:
        Lloyd iterations of the best restart.
    """

    labels: np.ndarray
    centroids: np.ndarray
    inertia: float
    n_iterations: int

    @property
    def k(self) -> int:
        """Number of clusters."""
        return len(self.centroids)

    def clusters(self) -> list[list[int]]:
        """Row indices grouped by cluster id."""
        groups: list[list[int]] = [[] for _ in range(self.k)]
        for row, label in enumerate(self.labels):
            groups[int(label)].append(row)
        return groups


class KMeans:
    """Lloyd's algorithm with k-means++ seeding and restarts.

    Parameters
    ----------
    n_clusters:
        The ``k`` to fit.
    n_init:
        Number of independent restarts; the fit with the lowest inertia
        wins.
    max_iterations:
        Cap on Lloyd iterations per restart.
    tolerance:
        Stop when no centroid moves by more than this (squared norm).
    init:
        ``"k-means++"`` (default) or ``"random"`` seeding.
    seed:
        Integer seed or :class:`numpy.random.Generator` for determinism.
    """

    def __init__(
        self,
        n_clusters: int,
        n_init: int = 10,
        max_iterations: int = 300,
        tolerance: float = 1e-6,
        init: str = "k-means++",
        seed: int | np.random.Generator | None = 0,
    ) -> None:
        if n_clusters < 1:
            raise ValueError("n_clusters must be at least 1")
        if n_init < 1:
            raise ValueError("n_init must be at least 1")
        if init not in ("k-means++", "random"):
            raise ValueError(f"unknown init strategy {init!r}")
        self.n_clusters = n_clusters
        self.n_init = n_init
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        self.init = init
        self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------

    def fit(self, data: np.ndarray) -> KMeansResult:
        """Cluster the rows of ``data`` into ``n_clusters`` groups."""
        data = np.asarray(data, dtype=float)
        if data.ndim != 2:
            raise ValueError("expected a 2-D matrix of row vectors")
        n_rows = len(data)
        if self.n_clusters > n_rows:
            raise ValueError(
                f"cannot fit {self.n_clusters} clusters to {n_rows} rows"
            )
        best: KMeansResult | None = None
        for _ in range(self.n_init):
            result = self._fit_once(data)
            if best is None or result.inertia < best.inertia:
                best = result
        assert best is not None
        return best

    # ------------------------------------------------------------------

    def _fit_once(self, data: np.ndarray) -> KMeansResult:
        centroids = self._initial_centroids(data)
        labels = np.zeros(len(data), dtype=np.int64)
        iterations = 0
        for iterations in range(1, self.max_iterations + 1):
            distances = _squared_distances(data, centroids)
            labels = np.argmin(distances, axis=1)
            new_centroids = self._update_centroids(data, labels, centroids)
            shift = float(np.max(np.sum((new_centroids - centroids) ** 2, axis=1)))
            centroids = new_centroids
            if shift <= self.tolerance:
                break
        distances = _squared_distances(data, centroids)
        labels = np.argmin(distances, axis=1)
        labels, centroids = _compact_labels(labels, centroids)
        inertia = float(np.sum(np.min(_squared_distances(data, centroids), axis=1)))
        return KMeansResult(
            labels=labels,
            centroids=centroids,
            inertia=inertia,
            n_iterations=iterations,
        )

    def _initial_centroids(self, data: np.ndarray) -> np.ndarray:
        n_rows = len(data)
        if self.init == "random":
            chosen = self._rng.choice(n_rows, size=self.n_clusters, replace=False)
            return data[chosen].copy()
        # k-means++: spread seeds proportionally to squared distance from
        # the nearest already-chosen seed.
        first = int(self._rng.integers(n_rows))
        centroids = [data[first]]
        closest = np.sum((data - centroids[0]) ** 2, axis=1)
        for _ in range(1, self.n_clusters):
            total = float(closest.sum())
            if total <= 0.0:
                # All remaining points coincide with a seed; pick any
                # distinct row to keep the requested k.
                remaining = np.setdiff1d(
                    np.arange(n_rows), [int(self._rng.integers(n_rows))]
                )
                pick = int(self._rng.choice(remaining))
            else:
                probabilities = closest / total
                pick = int(self._rng.choice(n_rows, p=probabilities))
            centroids.append(data[pick])
            closest = np.minimum(
                closest, np.sum((data - centroids[-1]) ** 2, axis=1)
            )
        return np.asarray(centroids)

    def _update_centroids(
        self, data: np.ndarray, labels: np.ndarray, previous: np.ndarray
    ) -> np.ndarray:
        sums = np.zeros_like(previous)
        np.add.at(sums, labels, data)
        counts = np.bincount(labels, minlength=self.n_clusters).astype(float)
        occupied = counts > 0
        centroids = previous.copy()
        centroids[occupied] = sums[occupied] / counts[occupied, None]
        empty = np.flatnonzero(~occupied)
        if len(empty):
            # Empty-cluster repair: reseed at the points farthest from
            # their assigned centroid, a standard Lloyd fix-up.
            distances = _squared_distances(data, previous)
            assigned = np.min(distances, axis=1)
            farthest = np.argsort(-assigned)
            for slot, cluster in enumerate(empty):
                centroids[cluster] = data[farthest[slot % len(data)]]
        return centroids


def _squared_distances(data: np.ndarray, centroids: np.ndarray) -> np.ndarray:
    """``(n_rows, k)`` squared Euclidean distances to every centroid.

    Uses the Gram expansion ``|x|^2 + |c|^2 - 2 x.c`` so the heavy part
    is one BLAS matrix product instead of a broadcast (n, k, d) cube.
    """
    row_norms = np.einsum("ij,ij->i", data, data)
    centroid_norms = np.einsum("ij,ij->i", centroids, centroids)
    cross = data @ centroids.T
    distances = row_norms[:, None] + centroid_norms[None, :] - 2.0 * cross
    return np.maximum(distances, 0.0)


def _compact_labels(
    labels: np.ndarray, centroids: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Renumber labels to remove empty clusters, keeping first-seen order."""
    seen: dict[int, int] = {}
    compacted = np.empty_like(labels)
    for i, label in enumerate(labels):
        new = seen.setdefault(int(label), len(seen))
        compacted[i] = new
    kept = [old for old in seen]
    return compacted, centroids[kept]


def inertia_of(data: np.ndarray, labels: np.ndarray) -> float:
    """Within-cluster sum of squares of an arbitrary labelling."""
    data = np.asarray(data, dtype=float)
    labels = np.asarray(labels)
    total = 0.0
    for cluster in np.unique(labels):
        members = data[labels == cluster]
        centroid = members.mean(axis=0)
        total += float(np.sum((members - centroid) ** 2))
    return total
