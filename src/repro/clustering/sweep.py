"""The k-means restart grid of Algorithm 1's sweep, as schedulable tasks.

TD-AC (and the alternative k-selectors) refit k-means for every
``k in [2, |A|-1]`` with ``n_init`` restarts each.  Run naively that is
``(k_max - 1) * n_init`` sequential Lloyd solves.  The restarts are
independent once their seedings are drawn, so this module splits each
fit into

1. a cheap, **sequential** seeding pass per ``k`` — consuming the
   per-``k`` generator in exactly the order :meth:`KMeans.fit` would —
   followed by
2. the Lloyd iterations of every ``(k, init)`` cell, fanned out over a
   shared executor (:mod:`repro.execution`), and
3. an order-preserving reduction keeping, per ``k``, the first restart
   that strictly improves the inertia — the same tie-break as the
   sequential restart loop.

Because :func:`repro.clustering.kmeans.lloyd` draws no randomness and
the gather is in task order, the result is bit-identical to calling
``KMeans(n_clusters=k, n_init=n_init, seed=seed).fit(data)`` for every
``k``, whatever ``n_jobs`` or ``backend``.  The per-row squared norms
are computed once and shared by every cell of the grid.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.clustering.kmeans import (
    KMeansResult,
    initial_centroid_sequence,
    lloyd,
)
from repro.execution import ExecutionPolicy, ordered_map, validate_backend
from repro.observability import current_tracer


def sweep_kmeans(
    data: np.ndarray,
    k_values: Iterable[int],
    n_init: int = 10,
    seed: int = 0,
    n_jobs: int = 1,
    backend: str = "threads",
    init: str = "k-means++",
    max_iterations: int = 300,
    tolerance: float = 1e-6,
    policy: ExecutionPolicy | None = None,
) -> dict[int, KMeansResult]:
    """Best-of-``n_init`` k-means fit for every ``k`` in ``k_values``.

    Equivalent to ``{k: KMeans(n_clusters=k, n_init=n_init, seed=seed,
    init=init).fit(data) for k in k_values}`` — bit for bit — but the
    ``(k, init)`` restart grid runs on one shared executor and the data
    row norms are computed once for the whole grid.
    """
    validate_backend(backend)
    data = np.asarray(data, dtype=float)
    if data.ndim != 2:
        raise ValueError("expected a 2-D matrix of row vectors")
    k_values = list(k_values)
    if not k_values:
        return {}
    n_rows = len(data)
    for k in k_values:
        if k < 1:
            raise ValueError("every k must be at least 1")
        if k > n_rows:
            raise ValueError(f"cannot fit {k} clusters to {n_rows} rows")
    with current_tracer().span(
        "k_sweep", n_candidates=len(k_values), n_init=n_init
    ):
        data_norms = np.einsum("ij,ij->i", data, data)

        # Seeding stays sequential per k: each k gets a fresh generator
        # seeded like KMeans(seed=seed) so the draws match the classic
        # path.
        tasks: list[tuple[np.ndarray, np.ndarray, int, float, np.ndarray]] = []
        owners: list[int] = []
        for k in k_values:
            rng = np.random.default_rng(seed)
            for seeding in initial_centroid_sequence(
                data, k, n_init, rng, init=init
            ):
                tasks.append(
                    (data, seeding, max_iterations, tolerance, data_norms)
                )
                owners.append(k)

        results = ordered_map(
            lloyd,
            tasks,
            n_jobs=n_jobs,
            backend=backend,
            policy=policy,
            label="k_sweep",
        )

        # Scan-order reduction per k: first strict improvement wins,
        # exactly like the sequential restart loop inside KMeans.fit.
        best: dict[int, KMeansResult] = {}
        for k, result in zip(owners, results):
            incumbent = best.get(k)
            if incumbent is None or result.inertia < incumbent.inertia:
                best[k] = result
        return best
