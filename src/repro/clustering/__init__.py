"""Clustering substrate: distances, k-means, silhouette, k selection.

Everything here is implemented from scratch (scikit-learn is not a
dependency): the Hamming / Euclidean / masked distance metrics of the
paper's Eq. 2, Lloyd's k-means with k-means++ seeding (Eq. 3), the
silhouette index (Eqs. 5–7), hierarchical clustering for ablations, and
three k-selection strategies.
"""

from repro.clustering.agglomerative import Agglomerative, AgglomerativeResult
from repro.clustering.distance import (
    PAIRWISE_METRICS,
    euclidean,
    hamming,
    masked_hamming,
    pairwise,
    pairwise_euclidean,
    pairwise_hamming,
    pairwise_masked_hamming,
)
from repro.clustering.kmeans import KMeans, KMeansResult, inertia_of
from repro.clustering.kselect import (
    K_SELECTORS,
    KSelectionResult,
    select_k_elbow,
    select_k_gap,
    select_k_silhouette,
)
from repro.clustering.silhouette import silhouette_samples, silhouette_score
from repro.clustering.spectral import Spectral, SpectralResult

__all__ = [
    "Agglomerative",
    "AgglomerativeResult",
    "KMeans",
    "KMeansResult",
    "KSelectionResult",
    "K_SELECTORS",
    "PAIRWISE_METRICS",
    "euclidean",
    "hamming",
    "inertia_of",
    "masked_hamming",
    "pairwise",
    "pairwise_euclidean",
    "pairwise_hamming",
    "pairwise_masked_hamming",
    "select_k_elbow",
    "select_k_gap",
    "select_k_silhouette",
    "silhouette_samples",
    "silhouette_score",
    "Spectral",
    "SpectralResult",
]
