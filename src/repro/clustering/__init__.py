"""Clustering substrate: distances, k-means, silhouette, k selection.

Everything here is implemented from scratch (scikit-learn is not a
dependency): the Hamming / Euclidean / masked distance metrics of the
paper's Eq. 2, Lloyd's k-means with k-means++ seeding (Eq. 3), the
silhouette index (Eqs. 5–7), hierarchical clustering for ablations, and
three k-selection strategies.
"""

from repro.clustering.agglomerative import Agglomerative, AgglomerativeResult
from repro.clustering.distance import (
    PAIRWISE_METRICS,
    euclidean,
    hamming,
    masked_hamming,
    pairwise,
    pairwise_euclidean,
    pairwise_hamming,
    pairwise_hamming_sparse,
    pairwise_masked_hamming,
    pairwise_masked_hamming_sparse,
)
from repro.clustering.kmeans import (
    KMeans,
    KMeansResult,
    inertia_of,
    initial_centroid_sequence,
    lloyd,
)
from repro.clustering.kselect import (
    K_SELECTORS,
    KSelectionResult,
    score_silhouette_sweep,
    select_k_elbow,
    select_k_gap,
    select_k_silhouette,
)
from repro.clustering.silhouette import (
    cluster_distance_sums,
    silhouette_samples,
    silhouette_score,
    total_distance_row_sums,
)
from repro.clustering.spectral import Spectral, SpectralResult
from repro.clustering.sweep import sweep_kmeans

__all__ = [
    "Agglomerative",
    "AgglomerativeResult",
    "KMeans",
    "KMeansResult",
    "KSelectionResult",
    "K_SELECTORS",
    "PAIRWISE_METRICS",
    "cluster_distance_sums",
    "euclidean",
    "hamming",
    "inertia_of",
    "initial_centroid_sequence",
    "lloyd",
    "masked_hamming",
    "pairwise",
    "pairwise_euclidean",
    "pairwise_hamming",
    "pairwise_hamming_sparse",
    "pairwise_masked_hamming",
    "pairwise_masked_hamming_sparse",
    "score_silhouette_sweep",
    "select_k_elbow",
    "select_k_gap",
    "select_k_silhouette",
    "silhouette_samples",
    "silhouette_score",
    "Spectral",
    "SpectralResult",
    "sweep_kmeans",
    "total_distance_row_sums",
]
