"""Agglomerative (hierarchical) clustering, used as a TD-AC ablation.

A straightforward bottom-up Lance–Williams implementation over a
precomputed distance matrix with single, complete and average linkage.
TD-AC uses k-means; this clusterer answers the design question "does the
partition quality depend on the clustering family?" (ablation A-2 in
DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

_LINKAGES = ("single", "complete", "average")


@dataclass(frozen=True)
class AgglomerativeResult:
    """Outcome of one agglomerative fit at a fixed cluster count."""

    labels: np.ndarray
    n_clusters: int
    merge_heights: tuple[float, ...]

    def clusters(self) -> list[list[int]]:
        """Row indices grouped by cluster id."""
        groups: list[list[int]] = [[] for _ in range(self.n_clusters)]
        for row, label in enumerate(self.labels):
            groups[int(label)].append(row)
        return groups


class Agglomerative:
    """Bottom-up merging until ``n_clusters`` groups remain.

    Parameters
    ----------
    n_clusters:
        Number of clusters to stop at.
    linkage:
        ``"single"`` (minimum), ``"complete"`` (maximum) or ``"average"``
        inter-cluster distance update.
    """

    def __init__(self, n_clusters: int, linkage: str = "average") -> None:
        if n_clusters < 1:
            raise ValueError("n_clusters must be at least 1")
        if linkage not in _LINKAGES:
            raise ValueError(f"unknown linkage {linkage!r}; known: {_LINKAGES}")
        self.n_clusters = n_clusters
        self.linkage = linkage

    def fit_distances(self, distances: np.ndarray) -> AgglomerativeResult:
        """Cluster from a symmetric pairwise distance matrix."""
        distances = np.asarray(distances, dtype=float)
        n = len(distances)
        if distances.shape != (n, n):
            raise ValueError("expected a square distance matrix")
        if self.n_clusters > n:
            raise ValueError(
                f"cannot form {self.n_clusters} clusters from {n} points"
            )
        # Active cluster bookkeeping: id -> member list; working matrix d.
        members: dict[int, list[int]] = {i: [i] for i in range(n)}
        d = distances.astype(float).copy()
        np.fill_diagonal(d, np.inf)
        active = list(range(n))
        heights: list[float] = []
        while len(active) > self.n_clusters:
            sub = d[np.ix_(active, active)]
            flat = int(np.argmin(sub))
            i_pos, j_pos = divmod(flat, len(active))
            if i_pos == j_pos:  # all-infinite guard (identical points)
                break
            a, b = active[min(i_pos, j_pos)], active[max(i_pos, j_pos)]
            heights.append(float(d[a, b]))
            d = self._merge(d, members, a, b)
            members[a] = members[a] + members.pop(b)
            active.remove(b)
        labels = np.empty(n, dtype=np.int64)
        ordered = sorted(active, key=lambda c: min(members[c]))
        for new_id, cluster in enumerate(ordered):
            for row in members[cluster]:
                labels[row] = new_id
        return AgglomerativeResult(
            labels=labels,
            n_clusters=len(active),
            merge_heights=tuple(heights),
        )

    def _merge(
        self, d: np.ndarray, members: dict[int, list[int]], a: int, b: int
    ) -> np.ndarray:
        """Lance–Williams update of cluster ``a`` absorbing ``b``."""
        size_a, size_b = len(members[a]), len(members[b])
        if self.linkage == "single":
            merged = np.minimum(d[a], d[b])
        elif self.linkage == "complete":
            merged = np.maximum(d[a], d[b])
        else:  # average
            merged = (size_a * d[a] + size_b * d[b]) / (size_a + size_b)
        d[a], d[:, a] = merged, merged
        d[a, a] = np.inf
        d[b], d[:, b] = np.inf, np.inf
        return d
