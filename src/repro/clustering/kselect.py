"""Strategies for choosing the number of clusters ``k``.

TD-AC sweeps ``k`` from 2 to ``n-1`` and keeps the clustering with the
best silhouette (Algorithm 1, lines 6–18).  Two classic alternatives are
provided for the ablation benches: the elbow criterion (largest relative
inertia drop) and Tibshirani's gap statistic against a uniform reference.

Every strategy returns a :class:`KSelectionResult` with the chosen ``k``,
its labelling, and the full diagnostic curve so benches can plot it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.clustering.distance import pairwise_hamming
from repro.clustering.kmeans import KMeans
from repro.clustering.silhouette import silhouette_score


@dataclass(frozen=True)
class KSelectionResult:
    """Chosen ``k``, its labels, and the per-k diagnostic scores."""

    k: int
    labels: np.ndarray
    scores: Mapping[int, float]
    strategy: str


def _fit_all(
    data: np.ndarray,
    k_range: range,
    seed: int,
    n_init: int,
) -> dict[int, np.ndarray]:
    """Fit k-means for every k in the range; labels per k."""
    fits: dict[int, np.ndarray] = {}
    for k in k_range:
        result = KMeans(n_clusters=k, n_init=n_init, seed=seed).fit(data)
        fits[k] = result.labels
    return fits


def _valid_range(n_rows: int, k_min: int, k_max: int | None) -> range:
    upper = n_rows - 1 if k_max is None else min(k_max, n_rows - 1)
    if upper < k_min:
        raise ValueError(
            f"no valid k in [{k_min}, {upper}] for {n_rows} rows"
        )
    return range(k_min, upper + 1)


def select_k_silhouette(
    data: np.ndarray,
    k_min: int = 2,
    k_max: int | None = None,
    seed: int = 0,
    n_init: int = 10,
    average: str = "macro",
    distances: np.ndarray | None = None,
) -> KSelectionResult:
    """The paper's sweep: best silhouette over ``k in [2, n-1]``.

    ``distances`` may supply a precomputed pairwise matrix (e.g. the
    masked Hamming variant); otherwise plain Hamming on ``data`` is used,
    matching Eq. 2.
    """
    data = np.asarray(data, dtype=float)
    k_range = _valid_range(len(data), k_min, k_max)
    if distances is None:
        distances = pairwise_hamming(data)
    fits = _fit_all(data, k_range, seed, n_init)
    scores: dict[int, float] = {}
    for k, labels in fits.items():
        if len(np.unique(labels)) < 2:
            scores[k] = -1.0
            continue
        scores[k] = silhouette_score(distances, labels, average=average)
    best_k = max(scores, key=lambda k: (scores[k], -k))
    return KSelectionResult(
        k=best_k, labels=fits[best_k], scores=scores, strategy="silhouette"
    )


def select_k_elbow(
    data: np.ndarray,
    k_min: int = 2,
    k_max: int | None = None,
    seed: int = 0,
    n_init: int = 10,
) -> KSelectionResult:
    """Elbow criterion: k with the largest curvature of the inertia curve."""
    data = np.asarray(data, dtype=float)
    k_range = _valid_range(len(data), k_min, k_max)
    inertias: dict[int, float] = {}
    fits: dict[int, np.ndarray] = {}
    for k in k_range:
        result = KMeans(n_clusters=k, n_init=n_init, seed=seed).fit(data)
        inertias[k] = result.inertia
        fits[k] = result.labels
    ks = sorted(inertias)
    if len(ks) <= 2:
        best_k = ks[0]
    else:
        # Second difference of the inertia curve; the sharpest bend wins.
        curvatures = {
            ks[i]: inertias[ks[i - 1]] - 2 * inertias[ks[i]] + inertias[ks[i + 1]]
            for i in range(1, len(ks) - 1)
        }
        best_k = max(curvatures, key=lambda k: (curvatures[k], -k))
    return KSelectionResult(
        k=best_k, labels=fits[best_k], scores=inertias, strategy="elbow"
    )


def select_k_gap(
    data: np.ndarray,
    k_min: int = 2,
    k_max: int | None = None,
    seed: int = 0,
    n_init: int = 10,
    n_references: int = 10,
) -> KSelectionResult:
    """Tibshirani's gap statistic with a uniform-box reference.

    Picks the smallest ``k`` with ``gap(k) >= gap(k+1) - s(k+1)``; falls
    back to the max-gap ``k`` when the inequality never holds.
    """
    data = np.asarray(data, dtype=float)
    k_range = _valid_range(len(data), k_min, k_max)
    rng = np.random.default_rng(seed)
    lows, highs = data.min(axis=0), data.max(axis=0)
    gaps: dict[int, float] = {}
    errors: dict[int, float] = {}
    fits: dict[int, np.ndarray] = {}
    for k in k_range:
        fit = KMeans(n_clusters=k, n_init=n_init, seed=seed).fit(data)
        fits[k] = fit.labels
        observed = np.log(max(fit.inertia, 1e-12))
        reference_logs = []
        for _ in range(n_references):
            fake = rng.uniform(lows, highs, size=data.shape)
            ref = KMeans(n_clusters=k, n_init=1, seed=seed).fit(fake)
            reference_logs.append(np.log(max(ref.inertia, 1e-12)))
        reference_logs = np.asarray(reference_logs)
        gaps[k] = float(reference_logs.mean() - observed)
        errors[k] = float(
            reference_logs.std(ddof=0) * np.sqrt(1.0 + 1.0 / n_references)
        )
    ks = sorted(gaps)
    best_k = None
    for i, k in enumerate(ks[:-1]):
        nxt = ks[i + 1]
        if gaps[k] >= gaps[nxt] - errors[nxt]:
            best_k = k
            break
    if best_k is None:
        best_k = max(gaps, key=lambda k: (gaps[k], -k))
    return KSelectionResult(
        k=best_k, labels=fits[best_k], scores=gaps, strategy="gap"
    )


K_SELECTORS = {
    "silhouette": select_k_silhouette,
    "elbow": select_k_elbow,
    "gap": select_k_gap,
}
