"""Strategies for choosing the number of clusters ``k``.

TD-AC sweeps ``k`` from 2 to ``n-1`` and keeps the clustering with the
best silhouette (Algorithm 1, lines 6–18).  Two classic alternatives are
provided for the ablation benches: the elbow criterion (largest relative
inertia drop) and Tibshirani's gap statistic against a uniform reference.

Every strategy returns a :class:`KSelectionResult` with the chosen ``k``,
its labelling, and the full diagnostic curve so benches can plot it.

All three accept ``n_jobs`` / ``backend``: the underlying ``(k, init)``
restart grid is fanned out over a shared executor by
:mod:`repro.clustering.sweep`, with results gathered in task order so
any worker count selects the same ``k`` and labels as a sequential run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.clustering.distance import pairwise_hamming
from repro.clustering.kmeans import KMeans, KMeansResult
from repro.clustering.silhouette import (
    cluster_distance_sums,
    silhouette_score,
    total_distance_row_sums,
)
from repro.clustering.sweep import sweep_kmeans
from repro.execution import ExecutionPolicy, ordered_map
from repro.observability import current_tracer


@dataclass(frozen=True)
class KSelectionResult:
    """Chosen ``k``, its labels, and the per-k diagnostic scores."""

    k: int
    labels: np.ndarray
    scores: Mapping[int, float]
    strategy: str


def _valid_range(n_rows: int, k_min: int, k_max: int | None) -> range:
    upper = n_rows - 1 if k_max is None else min(k_max, n_rows - 1)
    if upper < k_min:
        raise ValueError(
            f"no valid k in [{k_min}, {upper}] for {n_rows} rows"
        )
    return range(k_min, upper + 1)


def _distances_are_integral(distances: np.ndarray) -> bool:
    """Whether every pairwise distance is an exact integer (e.g. Hamming).

    Integer-valued distance matrices admit the single-pass cluster-sum
    aggregation of :func:`cluster_distance_sums` with no floating-point
    drift; fractional matrices (e.g. masked Hamming) keep the one-hot
    matrix product so scores stay bit-identical to the classic path.

    Non-finite entries (NaN / inf) disqualify the fast path *loudly*:
    they indicate an upstream distance-kernel bug (the kernels define
    the zero-overlap distance explicitly, so a well-formed matrix is
    always finite), and letting them flow into silhouette scoring
    silently poisons every score downstream.
    """
    if not np.isfinite(distances).all():
        raise ValueError(
            "pairwise distance matrix contains non-finite entries"
        )
    return bool(np.equal(np.floor(distances), distances).all())


def score_silhouette_sweep(
    distances: np.ndarray,
    fits: Mapping[int, KMeansResult],
    average: str = "macro",
) -> dict[int, float]:
    """Silhouette of every swept clustering over one distance matrix.

    Degenerate fits (fewer than 2 distinct labels) score -1.  The
    label-independent distance row sums are computed once and reused by
    every candidate ``k`` when the distances are integral.
    """
    with current_tracer().span("silhouette_scoring", n_candidates=len(fits)):
        row_sums = (
            total_distance_row_sums(distances)
            if _distances_are_integral(distances)
            else None
        )
        scores: dict[int, float] = {}
        for k in sorted(fits):
            labels = fits[k].labels
            if len(np.unique(labels)) < 2:
                scores[k] = -1.0
                continue
            cluster_sums = (
                cluster_distance_sums(distances, labels, row_sums=row_sums)
                if row_sums is not None
                else None
            )
            scores[k] = silhouette_score(
                distances, labels, average=average, cluster_sums=cluster_sums
            )
        return scores


def select_k_silhouette(
    data: np.ndarray,
    k_min: int = 2,
    k_max: int | None = None,
    seed: int = 0,
    n_init: int = 10,
    average: str = "macro",
    distances: np.ndarray | None = None,
    n_jobs: int = 1,
    backend: str = "threads",
    policy: ExecutionPolicy | None = None,
) -> KSelectionResult:
    """The paper's sweep: best silhouette over ``k in [2, n-1]``.

    ``distances`` may supply a precomputed pairwise matrix (e.g. the
    masked Hamming variant); otherwise plain Hamming on ``data`` is used,
    matching Eq. 2.

    When every swept fit collapses to fewer than 2 distinct labels
    (every score is the degenerate -1), the sweep carries no signal and
    the result falls back to the trivial one-cluster labelling — the
    same graceful degradation :meth:`repro.core.tdac.TDAC.select_partition`
    applies, so the two selection paths agree.
    """
    data = np.asarray(data, dtype=float)
    k_range = _valid_range(len(data), k_min, k_max)
    if distances is None:
        distances = pairwise_hamming(data)
    fits = sweep_kmeans(
        data,
        k_range,
        n_init=n_init,
        seed=seed,
        n_jobs=n_jobs,
        backend=backend,
        policy=policy,
    )
    scores = score_silhouette_sweep(distances, fits, average=average)
    candidates = [
        k for k in sorted(fits) if len(np.unique(fits[k].labels)) >= 2
    ]
    if not candidates:
        return KSelectionResult(
            k=1,
            labels=np.zeros(len(data), dtype=np.int64),
            scores=scores,
            strategy="silhouette",
        )
    best_k = max(candidates, key=lambda k: (scores[k], -k))
    return KSelectionResult(
        k=best_k, labels=fits[best_k].labels, scores=scores, strategy="silhouette"
    )


def select_k_elbow(
    data: np.ndarray,
    k_min: int = 2,
    k_max: int | None = None,
    seed: int = 0,
    n_init: int = 10,
    n_jobs: int = 1,
    backend: str = "threads",
    policy: ExecutionPolicy | None = None,
) -> KSelectionResult:
    """Elbow criterion: k with the largest curvature of the inertia curve.

    With three or more candidates the sharpest bend (largest second
    difference) wins.  With exactly two candidates there is no interior
    point to bend at, so the single inertia drop decides: the larger
    ``k`` wins only when moving to it removes at least half the
    remaining inertia — the extra cluster has to pay for itself —
    otherwise the smaller ``k`` is kept.  A single candidate is
    returned as-is.
    """
    data = np.asarray(data, dtype=float)
    k_range = _valid_range(len(data), k_min, k_max)
    fits = sweep_kmeans(
        data,
        k_range,
        n_init=n_init,
        seed=seed,
        n_jobs=n_jobs,
        backend=backend,
        policy=policy,
    )
    inertias = {k: fits[k].inertia for k in k_range}
    ks = sorted(inertias)
    if len(ks) == 1:
        best_k = ks[0]
    elif len(ks) == 2:
        first, second = inertias[ks[0]], inertias[ks[1]]
        drop = first - second
        best_k = ks[1] if drop >= 0.5 * max(first, 1e-12) else ks[0]
    else:
        # Second difference of the inertia curve; the sharpest bend wins.
        curvatures = {
            ks[i]: inertias[ks[i - 1]] - 2 * inertias[ks[i]] + inertias[ks[i + 1]]
            for i in range(1, len(ks) - 1)
        }
        best_k = max(curvatures, key=lambda k: (curvatures[k], -k))
    return KSelectionResult(
        k=best_k, labels=fits[best_k].labels, scores=inertias, strategy="elbow"
    )


def _fit_reference(fake: np.ndarray, k: int, seed: int) -> float:
    """Log-inertia of a 1-restart fit on one uniform reference draw."""
    ref = KMeans(n_clusters=k, n_init=1, seed=seed).fit(fake)
    return float(np.log(max(ref.inertia, 1e-12)))


def select_k_gap(
    data: np.ndarray,
    k_min: int = 2,
    k_max: int | None = None,
    seed: int = 0,
    n_init: int = 10,
    n_references: int = 10,
    n_jobs: int = 1,
    backend: str = "threads",
    policy: ExecutionPolicy | None = None,
) -> KSelectionResult:
    """Tibshirani's gap statistic with a uniform-box reference.

    Picks the smallest ``k`` with ``gap(k) >= gap(k+1) - s(k+1)``; falls
    back to the max-gap ``k`` when the inequality never holds.  The
    reference datasets are drawn sequentially (one generator, fixed
    order) and only the fits are fanned out, keeping any ``n_jobs``
    bit-identical to the sequential pass.
    """
    data = np.asarray(data, dtype=float)
    k_range = _valid_range(len(data), k_min, k_max)
    rng = np.random.default_rng(seed)
    lows, highs = data.min(axis=0), data.max(axis=0)
    fits = sweep_kmeans(
        data,
        k_range,
        n_init=n_init,
        seed=seed,
        n_jobs=n_jobs,
        backend=backend,
        policy=policy,
    )
    reference_tasks: list[tuple[np.ndarray, int, int]] = []
    for k in k_range:
        for _ in range(n_references):
            fake = rng.uniform(lows, highs, size=data.shape)
            reference_tasks.append((fake, k, seed))
    reference_log_list = ordered_map(
        _fit_reference,
        reference_tasks,
        n_jobs=n_jobs,
        backend=backend,
        policy=policy,
        label="gap_references",
    )
    gaps: dict[int, float] = {}
    errors: dict[int, float] = {}
    for i, k in enumerate(k_range):
        observed = np.log(max(fits[k].inertia, 1e-12))
        reference_logs = np.asarray(
            reference_log_list[i * n_references : (i + 1) * n_references]
        )
        gaps[k] = float(reference_logs.mean() - observed)
        errors[k] = float(
            reference_logs.std(ddof=0) * np.sqrt(1.0 + 1.0 / n_references)
        )
    ks = sorted(gaps)
    best_k = None
    for i, k in enumerate(ks[:-1]):
        nxt = ks[i + 1]
        if gaps[k] >= gaps[nxt] - errors[nxt]:
            best_k = k
            break
    if best_k is None:
        best_k = max(gaps, key=lambda k: (gaps[k], -k))
    return KSelectionResult(
        k=best_k, labels=fits[best_k].labels, scores=gaps, strategy="gap"
    )


K_SELECTORS = {
    "silhouette": select_k_silhouette,
    "elbow": select_k_elbow,
    "gap": select_k_gap,
}
