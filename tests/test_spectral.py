"""Unit tests for spectral clustering."""

import numpy as np
import pytest

from repro.clustering import Spectral, pairwise_euclidean


def blob_distances():
    points = np.array(
        [[0.0], [0.2], [0.4], [10.0], [10.2], [10.4]], dtype=float
    )
    return pairwise_euclidean(points)


class TestSpectral:
    def test_recovers_separated_groups(self):
        result = Spectral(n_clusters=2, seed=0).fit_distances(blob_distances())
        labels = result.labels
        assert labels[0] == labels[1] == labels[2]
        assert labels[3] == labels[4] == labels[5]
        assert labels[0] != labels[3]

    def test_embedding_shape(self):
        result = Spectral(n_clusters=2, seed=0).fit_distances(blob_distances())
        assert result.embedding.shape == (6, 2)

    def test_clusters_listing(self):
        result = Spectral(n_clusters=2, seed=0).fit_distances(blob_distances())
        members = sorted(i for g in result.clusters() for i in g)
        assert members == list(range(6))

    def test_non_convex_rings_need_spectral(self):
        # Two concentric rings: k-means on raw coordinates mixes them,
        # spectral with a tight bandwidth separates them.
        angles = np.linspace(0, 2 * np.pi, 60, endpoint=False)
        inner = np.stack([np.cos(angles), np.sin(angles)], axis=1)
        outer = 6.0 * np.stack([np.cos(angles), np.sin(angles)], axis=1)
        points = np.vstack([inner, outer])
        distances = pairwise_euclidean(points)
        result = Spectral(n_clusters=2, bandwidth=0.2, seed=0).fit_distances(
            distances
        )
        inner_labels = set(result.labels[:60].tolist())
        outer_labels = set(result.labels[60:].tolist())
        assert len(inner_labels) == 1
        assert len(outer_labels) == 1
        assert inner_labels != outer_labels

    def test_validation(self):
        with pytest.raises(ValueError):
            Spectral(n_clusters=0)
        with pytest.raises(ValueError):
            Spectral(n_clusters=2, bandwidth=0.0)
        with pytest.raises(ValueError, match="square"):
            Spectral(n_clusters=2).fit_distances(np.zeros((2, 3)))
        with pytest.raises(ValueError, match="cannot form"):
            Spectral(n_clusters=9).fit_distances(blob_distances())

    def test_deterministic(self):
        first = Spectral(n_clusters=2, seed=1).fit_distances(blob_distances())
        second = Spectral(n_clusters=2, seed=1).fit_distances(blob_distances())
        assert (first.labels == second.labels).all()
