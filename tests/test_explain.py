"""Unit tests for the explanation utilities."""

import pytest

from repro.algorithms import Accu, MajorityVote
from repro.core import TDAC, explain_fact, explain_partition
from repro.data import Fact


class TestExplainFact:
    def test_candidates_cover_all_values(self, tiny_dataset):
        result = MajorityVote().discover(tiny_dataset)
        fact = Fact("o1", "a")
        explanation = explain_fact(tiny_dataset, result, fact)
        assert {c.value for c in explanation.candidates} == set(
            tiny_dataset.values_for(fact)
        )
        assert explanation.elected == result.predictions[fact]

    def test_exactly_one_elected(self, tiny_dataset):
        result = MajorityVote().discover(tiny_dataset)
        explanation = explain_fact(tiny_dataset, result, Fact("o1", "a"))
        assert sum(c.elected for c in explanation.candidates) == 1

    def test_margin_positive_for_trusted_majority(self, small_ds1):
        dataset = small_ds1.dataset
        result = Accu().discover(dataset)
        fact = dataset.facts[0]
        explanation = explain_fact(dataset, result, fact)
        assert explanation.margin() == pytest.approx(explanation.margin())

    def test_render_mentions_sources(self, tiny_dataset):
        result = MajorityVote().discover(tiny_dataset)
        text = explain_fact(tiny_dataset, result, Fact("o1", "a")).render()
        assert "s1" in text
        assert "*" in text  # elected marker

    def test_unknown_fact_raises(self, tiny_dataset):
        result = MajorityVote().discover(tiny_dataset)
        with pytest.raises(KeyError):
            explain_fact(tiny_dataset, result, Fact("nope", "a"))


class TestExplainPartition:
    def test_separation_on_structured_data(self, small_ds1):
        dataset = small_ds1.dataset
        outcome = TDAC(Accu(), seed=0).run(dataset)
        explanation = explain_partition(outcome.truth_vectors, outcome.partition)
        # TD-AC's chosen blocks should be far better separated than mixed.
        assert explanation.separation_ratio > 1.5
        assert "separation ratio" in explanation.render()

    def test_single_block_partition(self, small_ds1):
        from repro.core import Partition, build_truth_vectors

        dataset = small_ds1.dataset
        vectors = build_truth_vectors(dataset, MajorityVote())
        whole = Partition.whole(dataset.attributes)
        explanation = explain_partition(vectors, whole)
        assert explanation.mean_across_distance == 0.0
