"""Unit tests for the immutable Dataset container."""

import pytest

from repro.data import DataError, Dataset, Fact


def make(claims, truth=None, **kwargs):
    sources = sorted({s for s, _, _ in claims})
    objects = sorted({o for _, o, _ in claims})
    attributes = sorted({a for _, _, a in claims})
    return Dataset(sources, objects, attributes, claims, truth, **kwargs)


BASIC = {
    ("s1", "o1", "a1"): "x",
    ("s2", "o1", "a1"): "y",
    ("s1", "o1", "a2"): "u",
    ("s2", "o2", "a1"): "z",
}


class TestConstruction:
    def test_sizes(self):
        ds = make(BASIC)
        assert len(ds) == 4
        assert ds.n_claims == 4
        assert ds.sources == ("s1", "s2")
        assert ds.attributes == ("a1", "a2")

    def test_rejects_unknown_source(self):
        with pytest.raises(DataError, match="unknown source"):
            Dataset(["s1"], ["o1"], ["a1"], {("sX", "o1", "a1"): 1})

    def test_rejects_unknown_object(self):
        with pytest.raises(DataError, match="unknown object"):
            Dataset(["s1"], ["o1"], ["a1"], {("s1", "oX", "a1"): 1})

    def test_rejects_unknown_attribute(self):
        with pytest.raises(DataError, match="unknown attribute"):
            Dataset(["s1"], ["o1"], ["a1"], {("s1", "o1", "aX"): 1})

    def test_rejects_duplicate_sources(self):
        with pytest.raises(DataError, match="duplicate source"):
            Dataset(["s1", "s1"], ["o1"], ["a1"], {})

    def test_rejects_truth_for_unknown_fact(self):
        with pytest.raises(DataError, match="unknown fact"):
            Dataset(["s1"], ["o1"], ["a1"], {}, truth={("oX", "a1"): 1})


class TestAccess:
    def test_value_lookup(self):
        ds = make(BASIC)
        assert ds.value("s1", "o1", "a1") == "x"
        assert ds.value("s2", "o2", "a2") is None

    def test_facts_cover_only_claimed_slots(self):
        ds = make(BASIC)
        assert set(ds.facts) == {
            Fact("o1", "a1"),
            Fact("o1", "a2"),
            Fact("o2", "a1"),
        }

    def test_facts_order_is_object_major(self):
        ds = make(BASIC)
        assert ds.facts == (
            Fact("o1", "a1"),
            Fact("o1", "a2"),
            Fact("o2", "a1"),
        )

    def test_claims_by_fact_in_source_order(self):
        ds = make(BASIC)
        claims = ds.claims_by_fact[Fact("o1", "a1")]
        assert [c.source for c in claims] == ["s1", "s2"]

    def test_values_for_distinct_in_first_seen_order(self):
        claims = dict(BASIC)
        claims[("s3", "o1", "a1")] = "x"  # duplicate value of s1
        ds = make(claims)
        assert ds.values_for(Fact("o1", "a1")) == ("x", "y")

    def test_sources_for(self):
        ds = make(BASIC)
        assert ds.sources_for(Fact("o1", "a1")) == ("s1", "s2")

    def test_iter_claims_roundtrip(self):
        ds = make(BASIC)
        seen = {(c.source, c.object, c.attribute): c.value for c in ds.iter_claims()}
        assert seen == BASIC


class TestTruth:
    def test_true_value(self):
        ds = make(BASIC, truth={("o1", "a1"): "x"})
        assert ds.true_value(Fact("o1", "a1")) == "x"
        assert ds.true_value(Fact("o2", "a1")) is None
        assert ds.has_truth

    def test_with_truth_attaches(self):
        ds = make(BASIC)
        assert not ds.has_truth
        enriched = ds.with_truth({("o1", "a1"): "x"})
        assert enriched.has_truth
        assert not ds.has_truth  # original untouched


class TestRestriction:
    def test_restrict_attributes_drops_claims(self):
        ds = make(BASIC, truth={("o1", "a1"): "x", ("o1", "a2"): "u"})
        sub = ds.restrict_attributes(["a1"])
        assert sub.attributes == ("a1",)
        assert sub.n_claims == 3
        assert sub.truth == {("o1", "a1"): "x"}
        # Sources and objects are preserved for index alignment.
        assert sub.sources == ds.sources
        assert sub.objects == ds.objects

    def test_restrict_attributes_keeps_order(self):
        ds = make(BASIC)
        sub = ds.restrict_attributes(["a2", "a1"])
        assert sub.attributes == ("a1", "a2")

    def test_restrict_unknown_attribute_raises(self):
        ds = make(BASIC)
        with pytest.raises(DataError, match="unknown attributes"):
            ds.restrict_attributes(["nope"])

    def test_restrict_sources(self):
        ds = make(BASIC)
        sub = ds.restrict_sources(["s1"])
        assert sub.sources == ("s1",)
        assert sub.n_claims == 2

    def test_restrict_unknown_source_raises(self):
        ds = make(BASIC)
        with pytest.raises(DataError, match="unknown sources"):
            ds.restrict_sources(["sX"])

    def test_renamed(self):
        ds = make(BASIC).renamed("other")
        assert ds.name == "other"
