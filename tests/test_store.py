"""Unit tests for :mod:`repro.store`: records, WAL, snapshots, facade.

Corruption handling is the heart of the contract: a torn tail, a
bit-flipped record or a sequence gap must recover to the last valid
offset with a loud :class:`WALCorruptionWarning` — never a silent skip
of interior records.
"""

import json

import pytest

from repro import MajorityVote, TDACConfig, TruthService
from repro.core import PartitionCache, TDAC
from repro.data import Claim
from repro.datasets import make_synthetic
from repro.serving import ServiceConfig
from repro.store import (
    ClaimWAL,
    RecordCorruptError,
    SnapshotStore,
    StoreError,
    TruthStore,
    WALCorruptionWarning,
    decode_claim,
    decode_record,
    encode_claim,
    encode_record,
    open_store,
    snapshot_address,
)
from repro.store.wal import segment_first_lsn, segment_name


@pytest.fixture
def dataset():
    return make_synthetic("DS1", n_objects=15, seed=11).dataset


def fresh_claims(dataset, tag, count):
    """``count`` new-object claims that can never conflict."""
    source = dataset.sources[0]
    attribute = dataset.attributes[0]
    return [
        Claim(source, f"obj-{tag}-{i}", attribute, f"v-{tag}-{i}")
        for i in range(count)
    ]


class TestRecords:
    def test_record_round_trip(self):
        line = encode_record(7, "admit", {"offset": 7, "claims": []})
        record = decode_record(line)
        assert record.lsn == 7
        assert record.type == "admit"
        assert record.body == {"offset": 7, "claims": []}

    def test_checksum_mismatch_detected(self):
        line = encode_record(0, "commit", {"watermark": 3, "applied": []})
        tampered = line.replace('"watermark":3', '"watermark":4')
        with pytest.raises(RecordCorruptError):
            decode_record(tampered)

    def test_unknown_type_rejected(self):
        with pytest.raises(StoreError):
            encode_record(0, "checkpoint", {})

    def test_claim_round_trip_preserves_value_types(self):
        for value in ["x", 3, 2.5, True, None, ("a", ("b", 1)), ()]:
            claim = Claim("s", "o", "a", value)
            assert decode_claim(encode_claim(claim)) == claim

    def test_bare_list_value_rejected(self):
        with pytest.raises(RecordCorruptError):
            decode_claim({"s": "s", "o": "o", "a": "a", "v": [1, 2]})


class TestClaimWAL:
    def test_append_scan_round_trip(self, tmp_path):
        wal = ClaimWAL(tmp_path, sync="never")
        for i in range(5):
            wal.append("admit", {"offset": i, "claims": []})
        wal.close()
        scan = ClaimWAL(tmp_path, sync="never").scan()
        assert [r.lsn for r in scan.records] == list(range(5))
        assert scan.next_lsn == 5
        assert not scan.warnings

    def test_segment_rotation_by_record_count(self, tmp_path):
        wal = ClaimWAL(tmp_path, segment_max_records=2, sync="never")
        for i in range(5):
            wal.append("admit", {"offset": i, "claims": []})
        wal.close()
        names = [p.name for p in wal.segments()]
        assert names == [segment_name(0), segment_name(2), segment_name(4)]
        assert segment_first_lsn(wal.segments()[1]) == 2

    def test_concurrent_appends_keep_lsn_order(self, tmp_path):
        # Regression: admits arrive from ingest threads while the
        # batcher appends commits.  Unsynchronised appends interleave
        # LSN assignment with the write carrying it, producing
        # out-of-order LSNs that the next recovery scan truncates at —
        # silently dropping acknowledged records.
        import threading

        wal = ClaimWAL(tmp_path, segment_max_records=64, sync="never")
        barrier = threading.Barrier(4)

        def hammer(worker: int) -> None:
            barrier.wait()
            for i in range(200):
                wal.append("admit", {"offset": worker * 1_000 + i, "claims": []})

        threads = [
            threading.Thread(target=hammer, args=(w,)) for w in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        wal.close()
        scan = ClaimWAL(tmp_path, sync="never").scan()
        assert not scan.warnings
        assert [r.lsn for r in scan.records] == list(range(800))

    def test_torn_tail_recovers_with_loud_warning(self, tmp_path):
        wal = ClaimWAL(tmp_path, sync="never")
        for i in range(3):
            wal.append("admit", {"offset": i, "claims": []})
        wal.close()
        segment = wal.segments()[-1]
        raw = segment.read_bytes()
        segment.write_bytes(raw[:-7])  # tear the last record mid-line
        with pytest.warns(WALCorruptionWarning, match="torn tail"):
            reopened = ClaimWAL(tmp_path, sync="never")
        assert reopened.next_lsn == 2
        # The repair physically truncated the tail: a fresh scan is clean.
        assert not reopened.scan().warnings
        reopened.append("admit", {"offset": 2, "claims": []})
        reopened.close()

    def test_interior_corruption_never_silently_skipped(self, tmp_path):
        wal = ClaimWAL(tmp_path, sync="never")
        for i in range(4):
            wal.append("admit", {"offset": i, "claims": []})
        wal.close()
        segment = wal.segments()[-1]
        lines = segment.read_bytes().splitlines(keepends=True)
        lines[1] = lines[1].replace(b'"offset":1', b'"offset":9')
        segment.write_bytes(b"".join(lines))
        with pytest.warns(WALCorruptionWarning, match="corrupt record"):
            scan = ClaimWAL(tmp_path, sync="never").scan()
        # Replay stops at the corruption; records 2 and 3 are *dropped
        # with a warning*, not replayed around the hole.
        assert [r.lsn for r in scan.records] == [0]

    def test_missing_segment_detected(self, tmp_path):
        wal = ClaimWAL(tmp_path, segment_max_records=2, sync="never")
        for i in range(6):
            wal.append("admit", {"offset": i, "claims": []})
        wal.close()
        wal.segments()[1].unlink()  # drop the middle segment
        with pytest.warns(WALCorruptionWarning, match="expected"):
            scan = ClaimWAL(tmp_path, sync="never").scan()
        assert [r.lsn for r in scan.records] == [0, 1]

    def test_compact_only_removes_fully_covered_sealed_segments(
        self, tmp_path
    ):
        wal = ClaimWAL(tmp_path, segment_max_records=2, sync="never")
        for i in range(7):
            wal.append("admit", {"offset": i, "claims": []})
        removed = wal.compact(keep_from_lsn=4)
        assert [p.name for p in removed] == [segment_name(0), segment_name(2)]
        assert [r.lsn for r in wal.scan().records] == [4, 5, 6]
        wal.close()

    def test_invalid_knobs(self, tmp_path):
        with pytest.raises(ValueError):
            ClaimWAL(tmp_path, segment_max_records=0)
        with pytest.raises(ValueError):
            ClaimWAL(tmp_path, sync="sometimes")


def _stopped_service(tmp_path, dataset, claims=0, **kwargs):
    """A started+stopped durable service, returning its store dir."""
    store_dir = tmp_path / "store"
    service = TruthService(
        MajorityVote(),
        dataset,
        config=TDACConfig(seed=3),
        store=store_dir,
        service_config=ServiceConfig(max_wait_ms=1.0, **kwargs),
    )
    service.start()
    if claims:
        service.ingest(fresh_claims(dataset, "seed", claims), wait=True)
    service.stop()
    return store_dir


class TestSnapshotStore:
    def test_checkpoint_files_are_content_addressed(self, tmp_path, dataset):
        store_dir = _stopped_service(tmp_path, dataset, claims=3)
        store = TruthStore(store_dir)
        entries = store.snapshots.entries()
        assert entries  # newest first
        payload, path = store.snapshots.latest_valid()
        serving = payload["result"]["serving"]
        expected = snapshot_address(
            serving["dataset_fingerprint"],
            serving["config_fingerprint"],
            serving["watermark"],
        )
        assert entries[0].address == expected
        assert expected in path.name

    def test_corrupt_snapshot_falls_back_loudly(self, tmp_path, dataset):
        store_dir = _stopped_service(tmp_path, dataset, claims=3)
        snapshots = SnapshotStore(store_dir / "snapshots")
        newest = snapshots.entries()[0].path
        payload = json.loads(newest.read_text())
        payload["result"]["serving"]["watermark"] += 1  # breaks checksum
        newest.write_text(json.dumps(payload))
        with pytest.warns(WALCorruptionWarning, match="falling back"):
            fallback, path = snapshots.latest_valid()
        assert path != newest
        assert fallback["store"]["checksum"]

    def test_seed_partition_cache_matches_tdac_key(self, tmp_path, dataset):
        store_dir = _stopped_service(tmp_path, dataset)
        cache = PartitionCache()
        seeded = TruthStore(store_dir).snapshots.seed_partition_cache(cache)
        assert seeded >= 1
        # A cold TDAC.run over the same corpus must hit the seeded entry.
        outcome = TDAC(
            MajorityVote(),
            config=TDACConfig(seed=3),
            partition_cache=cache,
        ).run(dataset)
        assert cache.stats["hits"] >= 1
        assert outcome.partition.blocks  # partition replayed, not re-swept


class TestTruthStore:
    def test_open_store_passthrough(self, tmp_path):
        store = TruthStore(tmp_path)
        assert open_store(store) is store
        with pytest.raises(StoreError):
            open_store(store, sync="never")

    def test_admit_commit_lifecycle_and_compaction(self, tmp_path, dataset):
        store_dir = tmp_path / "store"
        service = TruthService(
            MajorityVote(),
            dataset,
            config=TDACConfig(seed=3),
            store=TruthStore(store_dir, segment_max_records=2, sync="never"),
            service_config=ServiceConfig(snapshot_every=1, max_wait_ms=1.0),
        )
        service.start()
        for j in range(4):
            service.ingest(fresh_claims(dataset, f"t{j}", 2), wait=True)
        service.stop()
        store = TruthStore(store_dir)
        kinds = store.inspect()["wal"]["records_by_type"]
        assert kinds["admit"] == 4
        assert kinds["commit"] == 4
        outcome = store.compact()
        assert outcome["removed_segments"]  # sealed prefix folded away
        recovery = store.recover()
        assert recovery.batches == []  # everything below the checkpoint
        assert recovery.uncommitted == []

    def test_rejected_batch_writes_abort_record(self, tmp_path, dataset):
        store_dir = tmp_path / "store"
        service = TruthService(
            MajorityVote(),
            dataset,
            config=TDACConfig(seed=3),
            store=store_dir,
            service_config=ServiceConfig(max_wait_ms=1.0),
        )
        service.start()
        good = fresh_claims(dataset, "ok", 2)
        service.ingest(good, wait=True)
        # Two sources claiming different values for one fact violates
        # the accumulated one-truth constraint and fails the batch.
        conflicting = [
            Claim(dataset.sources[0], "obj-x", dataset.attributes[0], "a"),
            Claim(dataset.sources[0], "obj-x", dataset.attributes[0], "b"),
        ]
        ticket = service.ingest(conflicting)
        with pytest.raises(Exception):
            ticket.wait(timeout=10.0)
        service.stop()
        store = TruthStore(store_dir)
        kinds = store.inspect()["wal"]["records_by_type"]
        assert kinds.get("abort", 0) == 1
        recovery = store.recover()
        assert recovery.aborted_claims == 2
        assert recovery.uncommitted == []  # the abort settled the admit

    def test_fresh_start_over_nonempty_store_refused(self, tmp_path, dataset):
        store_dir = _stopped_service(tmp_path, dataset, claims=2)
        service = TruthService(MajorityVote(), dataset, store=store_dir)
        with pytest.raises(StoreError, match="restore"):
            service.start()

    def test_stats_expose_durability_counters(self, tmp_path, dataset):
        store_dir = tmp_path / "store"
        service = TruthService(
            MajorityVote(),
            dataset,
            config=TDACConfig(seed=3),
            store=store_dir,
            service_config=ServiceConfig(max_wait_ms=1.0),
        )
        service.start()
        service.ingest(fresh_claims(dataset, "t", 3), wait=True)
        stats = service.stats["store"]
        assert stats["durable_bytes"] > 0
        assert stats["wal_records"] == 2  # one admit + one commit
        assert stats["snapshots_written"] >= 1
        service.stop()


class TestStoreObservability:
    def test_store_spans_and_counters_land_in_tracer(self, tmp_path, dataset):
        from repro import SpanTracer

        tracer = SpanTracer()
        service = TruthService(
            MajorityVote(),
            dataset,
            config=TDACConfig(seed=3),
            store=tmp_path / "store",
            service_config=ServiceConfig(snapshot_every=1, max_wait_ms=1.0),
            tracer=tracer,
        )
        service.start()
        service.ingest(fresh_claims(dataset, "t", 2), wait=True)
        service.stop()
        span_names = {s.name for s in tracer.spans}
        assert {"store.append", "store.flush"} <= span_names
        assert tracer.counters["store.durable_bytes"] > 0
        assert tracer.counters["store.commits"] == 1
